// Mechanical layer of Xheal's cloud management.
//
// CloudRegistry owns all clouds, tracks node -> cloud memberships and keeps
// each cloud's color claims in the network graph synchronized with its
// topology (creating, rebuilding, growing and shrinking clouds). Policy —
// which clouds to form, free-node selection, sharing, combining — lives in
// XhealHealer; the registry only provides safe primitives and maintains the
// structural invariants:
//
//   * a color claim on (u, v) exists iff the cloud of that color has both
//     u and v as members and its topology contains the pair;
//   * a node belongs to at most one secondary cloud;
//   * every cloud has >= 2 members (smaller clouds are dissolved);
//   * every cloud has a leader and (when size >= 2) a distinct vice-leader.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/cloud.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xheal::core {

class CloudRegistry {
public:
    /// d = Hamilton-cycle count of cloud expanders; kappa = 2d.
    /// rebuild_on_half_loss applies the paper's Section-5 rule that a cloud
    /// losing half its membership is reconstructed from a fresh random
    /// H-graph (disable only for the bench_ablation study).
    explicit CloudRegistry(std::size_t d, bool rebuild_on_half_loss = true);

    std::size_t d() const { return d_; }
    std::size_t kappa() const { return 2 * d_; }

    // ----- cloud lifecycle -----

    /// Create a cloud over `members` (>= 2 distinct, all present in g),
    /// claim its edges in g and register memberships. Returns its color.
    graph::ColorId create_cloud(graph::Graph& g, CloudKind kind,
                                const std::vector<graph::NodeId>& members,
                                util::Rng& rng, std::size_t* claims_added = nullptr);

    /// Remove all of the cloud's claims from g and unregister it.
    void destroy_cloud(graph::Graph& g, graph::ColorId color,
                       std::size_t* claims_removed = nullptr);

    /// Remove member v from the cloud. If `deleted_from_graph`, v's incident
    /// edges are already gone from g and only bookkeeping is purged.
    /// Dissolves the cloud if fewer than 2 members remain and returns the
    /// surviving member (invalid_node otherwise). Applies the half-loss
    /// rebuild rule and repairs the leader/vice-leader invariant.
    graph::NodeId remove_member(graph::Graph& g, graph::ColorId color, graph::NodeId v,
                                util::Rng& rng, bool deleted_from_graph,
                                std::size_t* claims_added = nullptr,
                                std::size_t* claims_removed = nullptr);

    /// Add member v (present in g) to the cloud, claim the new edges.
    void insert_member(graph::Graph& g, graph::ColorId color, graph::NodeId v,
                       util::Rng& rng, std::size_t* claims_added = nullptr,
                       std::size_t* claims_removed = nullptr);

    // ----- queries -----

    Cloud* find(graph::ColorId color);
    const Cloud* find(graph::ColorId color) const;
    bool exists(graph::ColorId color) const { return find(color) != nullptr; }

    /// Colors of the primary clouds containing v, ascending. Empty if none.
    std::vector<graph::ColorId> primary_clouds_of(graph::NodeId v) const;

    /// Allocation-free variant: fills `out` (cleared first) with the primary
    /// colors of v. The healer's hot path feeds its scratch buffer here.
    void primary_clouds_of(graph::NodeId v, std::vector<graph::ColorId>& out) const;

    /// The (unique) secondary cloud containing v, if any.
    std::optional<graph::ColorId> secondary_cloud_of(graph::NodeId v) const;

    /// Free = member of no secondary cloud (paper Section 3).
    bool is_free(graph::NodeId v) const { return !secondary_cloud_of(v).has_value(); }

    /// Free members of a cloud, ascending.
    std::vector<graph::NodeId> free_members_of(graph::ColorId color) const;

    /// Allocation-free variant: fills `out` (cleared first). The healer's
    /// connect_units path feeds its scratch buffers here.
    void free_members_of(graph::ColorId color, std::vector<graph::NodeId>& out) const;

    /// All live colors, ascending.
    std::vector<graph::ColorId> colors() const;

    std::size_t cloud_count() const { return index_.size(); }

    /// True if v belongs to at least one cloud.
    bool in_any_cloud(graph::NodeId v) const;

    /// Verify every structural invariant against the graph; throws on
    /// violation. O(total cloud size); used by tests and failure injection.
    void verify(const graph::Graph& g) const;

    /// Id-compaction support (DESIGN.md decision 12): rewrite every live
    /// cloud and the membership table through the ascending old->new map
    /// (`live_count` = number of valid targets). Dead nodes must carry no
    /// memberships; their rows' storage is retired into the pool exactly as
    /// retire_membership_row would. Pooled (destroyed) clouds hold stale ids
    /// but are fully re-initialized on revival, so only live clouds are
    /// touched. No rng draws.
    void remap_ids(const std::vector<graph::NodeId>& old_to_new,
                   std::size_t live_count);

private:
    /// Full resync: diff the cloud's topology projection against its claim
    /// mirror and apply the changes to g. Used after constructions, mode
    /// switches and rebuilds; runs on reusable scratch (no allocation at
    /// capacity). Counts added/removed claims if requested.
    void sync_claims(graph::Graph& g, Cloud& cloud, std::size_t* added,
                     std::size_t* removed);

    /// Incremental sync: resolve the candidates of `delta_` (one splice)
    /// against the topology and the claim mirror, applying only the claims
    /// that actually changed. The steady-state path — no allocation.
    void apply_splice(graph::Graph& g, Cloud& cloud, std::size_t* added,
                      std::size_t* removed);

    /// Re-establish leader and vice-leader after membership changed.
    void fix_leadership(Cloud& cloud, util::Rng& rng);

    void register_membership(graph::NodeId v, graph::ColorId color);
    void unregister_membership(graph::NodeId v, graph::ColorId color);
    /// v was deleted from the graph and left its last cloud: recycle its
    /// membership row's storage for a future fresh id.
    void retire_membership_row(graph::NodeId v);

    /// Unlink `color` from the directory and return its pool slot to the
    /// free list; the Cloud object (and its buffer capacities) is retained
    /// for the next create_cloud.
    void release_cloud(graph::ColorId color);

    /// Directory position of `color` (insertion point when absent).
    std::size_t index_lower_bound(graph::ColorId color) const;

    std::size_t d_;
    bool rebuild_on_half_loss_;
    graph::ColorId next_color_ = 1;  // 0 is invalid_color
    /// Cloud arena: pool_ owns every Cloud ever created (unique_ptr so Cloud
    /// pointers stay stable); destroyed clouds push their slot onto
    /// free_slots_ and create_cloud revives them in place, retaining the
    /// topology/claim/bridge buffer capacities — the structural repair path
    /// allocates nothing at steady state. index_ is the live directory,
    /// sorted by color; colors are allocated monotonically and never reused,
    /// so registration is always a push_back.
    std::vector<std::unique_ptr<Cloud>> pool_;
    std::vector<std::uint32_t> free_slots_;
    std::vector<std::pair<graph::ColorId, std::uint32_t>> index_;
    /// memberships_[v] = sorted colors of the clouds containing v. Indexed
    /// directly by node id (ids are dense and never reused); inner vectors
    /// keep their capacity across churn, so re-registering never allocates.
    /// Rows of graph-deleted nodes are retired into membership_pool_ and
    /// re-issued to fresh ids (capped), so a churning population's first
    /// cloud registrations don't allocate either.
    static constexpr std::size_t membership_pool_cap = 256;
    std::vector<std::vector<graph::ColorId>> memberships_;
    std::vector<std::vector<graph::ColorId>> membership_pool_;
    // Repair-path scratch, reused across every mutation (zero steady-state
    // allocations; see DESIGN.md decision 6).
    expander::TopoDelta delta_;
    std::vector<std::pair<graph::NodeId, graph::NodeId>> desired_;
};

}  // namespace xheal::core
