// Expander-cloud bookkeeping shared by the centralized and distributed
// Xheal implementations.
//
// A *primary* cloud is the kappa-regular expander (or clique) Xheal builds
// over the neighbors of a deleted node; a *secondary* cloud connects one
// "bridge" node from each of several primary clouds. Nodes that belong to no
// secondary cloud are *free*; a bridge node belongs to exactly one secondary
// cloud and is associated with at most one primary cloud on whose behalf it
// bridges (paper Section 3).
#pragma once

#include <algorithm>
#include <string_view>
#include <utility>
#include <vector>

#include "expander/cloud_topology.hpp"
#include "graph/types.hpp"
#include "util/sorted_vec.hpp"

namespace xheal::core {

enum class CloudKind { primary, secondary };

std::string_view to_string(CloudKind kind);

struct Cloud {
    graph::ColorId color = graph::invalid_color;
    CloudKind kind = CloudKind::primary;
    expander::CloudTopology topology;

    /// Mirror of the color claims this cloud currently holds in the network
    /// graph: pairs normalized u < v, sorted ascending. Kept in lock-step by
    /// CloudRegistry (a flat vector so steady-state claim churn reuses
    /// capacity instead of allocating tree nodes).
    std::vector<std::pair<graph::NodeId, graph::NodeId>> claimed;

    bool has_claim(graph::NodeId u, graph::NodeId v) const {
        return util::sorted_contains(claimed, {std::min(u, v), std::max(u, v)});
    }
    /// Insert into the sorted mirror; returns false if already present.
    bool add_claim(graph::NodeId u, graph::NodeId v) {
        return util::sorted_insert(claimed, {std::min(u, v), std::max(u, v)});
    }
    /// Erase from the sorted mirror; returns false if absent.
    bool drop_claim(graph::NodeId u, graph::NodeId v) {
        return util::sorted_erase(claimed, {std::min(u, v), std::max(u, v)});
    }

    /// Secondary clouds only: which primary cloud each bridge member
    /// represents; invalid_color for bridges that entered as singleton units
    /// (e.g. black neighbors of a deleted node). Sorted by bridge id (a flat
    /// vector so pooled clouds reuse capacity and iteration is ordered —
    /// consumers that feed rng-driven choices rely on the deterministic
    /// order).
    std::vector<std::pair<graph::NodeId, graph::ColorId>> bridge_assoc;

    /// Association of bridge v, or invalid_color when v has none recorded.
    graph::ColorId bridge_assoc_of(graph::NodeId v) const {
        auto it = assoc_lower_bound(v);
        return it != bridge_assoc.end() && it->first == v ? it->second
                                                         : graph::invalid_color;
    }
    bool has_bridge_assoc(graph::NodeId v) const {
        auto it = assoc_lower_bound(v);
        return it != bridge_assoc.end() && it->first == v;
    }
    /// Insert or overwrite v's association.
    void set_bridge_assoc(graph::NodeId v, graph::ColorId c) {
        auto it = bridge_assoc.begin() + (assoc_lower_bound(v) - bridge_assoc.begin());
        if (it != bridge_assoc.end() && it->first == v) it->second = c;
        else bridge_assoc.insert(it, {v, c});
    }
    /// Drop v's association; returns false if absent.
    bool erase_bridge_assoc(graph::NodeId v) {
        auto at = assoc_lower_bound(v) - bridge_assoc.begin();
        if (static_cast<std::size_t>(at) == bridge_assoc.size() ||
            bridge_assoc[at].first != v)
            return false;
        bridge_assoc.erase(bridge_assoc.begin() + at);
        return true;
    }

    /// Distributed invariants (paper Section 5, Case 1): every cloud keeps a
    /// randomly chosen leader plus a vice-leader that takes over when the
    /// leader is deleted.
    graph::NodeId leader = graph::invalid_node;
    graph::NodeId vice_leader = graph::invalid_node;

    /// Number of half-loss reconstructions this cloud has undergone.
    std::size_t rebuild_count = 0;

    Cloud(graph::ColorId c, CloudKind k, expander::CloudTopology topo)
        : color(c), kind(k), topology(std::move(topo)) {}

    /// Re-initialize the bookkeeping for pooled reuse under a fresh color.
    /// The topology is reset separately (CloudTopology::reset) so its
    /// buffers — and this struct's vectors — keep their capacity.
    void reset(graph::ColorId c, CloudKind k) {
        color = c;
        kind = k;
        claimed.clear();
        bridge_assoc.clear();
        leader = graph::invalid_node;
        vice_leader = graph::invalid_node;
        rebuild_count = 0;
    }

    /// Id-compaction support: rewrite every id this cloud carries through
    /// the ascending old->new map. Both sorted mirrors stay sorted because
    /// the map is monotone over live ids (pairs are normalized u < v and
    /// monotone maps preserve both coordinates' order).
    void remap_ids(const std::vector<graph::NodeId>& old_to_new) {
        topology.remap_ids(old_to_new);
        for (auto& [u, v] : claimed) {
            u = old_to_new[u];
            v = old_to_new[v];
        }
        for (auto& [v, c] : bridge_assoc) v = old_to_new[v];
        if (leader != graph::invalid_node) leader = old_to_new[leader];
        if (vice_leader != graph::invalid_node) vice_leader = old_to_new[vice_leader];
    }

    std::size_t size() const { return topology.size(); }
    bool has_member(graph::NodeId v) const { return topology.contains(v); }
    std::vector<graph::NodeId> members_sorted() const { return topology.members_sorted(); }

private:
    std::vector<std::pair<graph::NodeId, graph::ColorId>>::const_iterator
    assoc_lower_bound(graph::NodeId v) const {
        return std::lower_bound(
            bridge_assoc.begin(), bridge_assoc.end(), v,
            [](const std::pair<graph::NodeId, graph::ColorId>& e, graph::NodeId id) {
                return e.first < id;
            });
    }
};

}  // namespace xheal::core
