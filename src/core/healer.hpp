// Self-healing algorithm interface (the "repair" step of the node insert,
// delete and network repair model, Fig. 1 of the paper).
//
// A Healer is driven by a HealingSession: after the adversary inserts a node
// (with its black edges already placed) the session calls on_insert; when
// the adversary deletes node v the session calls on_delete with v still
// present so the healer can observe the edges being destroyed — the healer
// removes v itself and then adds/drops edges to repair.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "graph/graph.hpp"

namespace xheal::core {

/// Accounting for one repair, used by the benches.
struct RepairReport {
    std::size_t edges_added = 0;      ///< color claims added to the graph
    std::size_t edges_removed = 0;    ///< color claims removed from the graph
    std::size_t clouds_touched = 0;   ///< clouds repaired, created or destroyed
    std::size_t combines = 0;         ///< costly combine operations triggered
    std::size_t combine_members = 0;  ///< total membership of combined clouds
    std::size_t rebuilds = 0;         ///< half-loss expander reconstructions
    std::size_t messages = 0;         ///< distributed only: messages exchanged
    std::size_t rounds = 0;           ///< distributed only: synchronous rounds
    std::size_t retries = 0;          ///< distributed only: re-sends forced by loss

    void accumulate(const RepairReport& other) {
        edges_added += other.edges_added;
        edges_removed += other.edges_removed;
        clouds_touched += other.clouds_touched;
        combines += other.combines;
        combine_members += other.combine_members;
        rebuilds += other.rebuilds;
        messages += other.messages;
        rounds += other.rounds;
        retries += other.retries;
    }
};

/// Per-phase network fault overrides (scenario keys `drop=` / `latency=`).
/// An unset field means "fall back to the healer's base model" (the spec's
/// healer-level `drop=`/`latency=` params, default lossless).
struct NetFaults {
    std::optional<double> drop;
    std::optional<std::size_t> latency;
};

class Healer {
public:
    virtual ~Healer() = default;

    virtual std::string_view name() const = 0;

    /// Node v was inserted by the adversary; its black edges are already in
    /// g. Most healers (including Xheal) take no action on insertion.
    virtual void on_insert(graph::Graph& g, graph::NodeId v) {
        (void)g;
        (void)v;
    }

    /// The adversary deletes v. Called with v still present in g; the
    /// implementation must remove v (dropping all its edges) and may then
    /// add or remove edges to repair. Returns repair accounting.
    virtual RepairReport on_delete(graph::Graph& g, graph::NodeId v) = 0;

    /// Batched deletion (the scenario grammar's `batch=k` phases): delete v
    /// and perform the local part of the repair now, but allow the global
    /// reconnection work to be deferred until flush_staged(). Healers with
    /// no batch support fall back to full per-event repair, which keeps the
    /// batched schedule correct (just unamortized).
    virtual RepairReport on_delete_staged(graph::Graph& g, graph::NodeId v) {
        return on_delete(g, v);
    }

    /// Complete any repair work deferred by on_delete_staged. Called at
    /// batch boundaries; must leave the graph exactly as healed as the
    /// unbatched path would. Default: nothing was deferred.
    virtual RepairReport flush_staged(graph::Graph& g) {
        (void)g;
        return {};
    }

    /// Number of deletions whose reconnection work is currently deferred
    /// (staged by on_delete_staged, not yet flushed). The session's
    /// compaction guard asserts this is zero — compacting with parked
    /// repair units would renumber ids out from under them. Default: a
    /// healer that never defers has nothing staged.
    virtual std::size_t staged_count() const { return 0; }

    /// Id-compaction epoch (DESIGN.md decision 12): the session renumbered
    /// the live node ids through the ascending dense map `old_to_new`
    /// (indexed by old id; invalid_node marks a retired id). The graphs are
    /// already rewritten when this fires; implementations remap any
    /// id-bearing internal state (cloud registries, mailbox keys). Only
    /// ever called on a fully healed graph — no staged repairs, no
    /// in-flight messages. Must not draw from any rng stream: compaction is
    /// a pure renumbering and replay depends on the draw sequence being
    /// untouched. Default: stateless healers have nothing to remap.
    virtual void on_compact(graph::Graph& g,
                            const std::vector<graph::NodeId>& old_to_new) {
        (void)g;
        (void)old_to_new;
    }

    /// Optional deep self-check (registry/claims consistency). Throws on
    /// violation. Default: no internal state to check.
    virtual void check_consistency(const graph::Graph& g) const { (void)g; }

    /// Scenario phase entry hook: apply (or clear, when fields are unset)
    /// network fault-injection overrides. Only message-passing healers have
    /// a network; the default is a no-op.
    virtual void set_network_faults(const NetFaults& faults) { (void)faults; }
};

}  // namespace xheal::core
