// The Xheal self-healing algorithm (paper Section 3), centralized reference
// implementation. DistributedXheal reuses this class for repair decisions
// and adds faithful LOCAL-model round/message accounting.
//
// Case structure on deletion of node v:
//   Case 1   — v belonged to no cloud (all its edges black): build one
//              primary expander cloud over its neighbors.
//   Case 2.1 — v belonged to primary clouds only: fix each primary cloud
//              (incremental expander repair), then connect one free node per
//              affected cloud — plus each black neighbor as a singleton
//              unit — with a new secondary expander cloud. Free-node
//              shortages are resolved by *sharing* (physically adding a
//              spare free node to the deficient cloud); if the affected
//              units hold fewer distinct free nodes than units, all units
//              are *combined* into one primary cloud (the amortized-costly
//              operation).
//   Case 2.2 — v was a bridge in secondary cloud F: fix the primaries, then
//              replace v's bridge role in F with a fresh free node from its
//              associated primary (sharing/combining as above), and connect
//              the primaries F does not cover as in Case 2.1, including one
//              representative unit from F's side so the two groups stay
//              connected (DESIGN.md decision 3).
//
// Batched mode (scenario `batch=k` phases): on_delete_staged performs the
// per-victim work — teardown, FixPrimary, secondary-bridge repair — but
// parks the units that would form a new secondary on a pending list;
// flush_staged dedupes the accumulated units and runs ONE connect_units for
// the whole batch, amortizing the structural splices (DESIGN.md decision 9).
#pragma once

#include <optional>
#include <vector>

#include "core/cloud_registry.hpp"
#include "core/healer.hpp"
#include "util/rng.hpp"

namespace xheal::core {

struct XhealConfig {
    /// Hamilton cycles per expander cloud; kappa = 2d. The paper's
    /// implementation-dependent degree parameter.
    std::size_t d = 4;
    /// Seed of the healer's private randomness (hidden from the adversary).
    std::uint64_t seed = 42;
    /// Section-5 rule: reconstruct a cloud after it has lost half of its
    /// members, restoring the w.h.p. expansion guarantee. Disable only for
    /// the bench_ablation study.
    bool rebuild_on_half_loss = true;
};

/// One structural operation performed during a repair. DistributedXheal
/// replays these as LOCAL-model protocol phases with faithful round and
/// message accounting (paper Section 5).
struct HealEvent {
    enum class Kind {
        fix_cloud,         ///< incremental expander repair after member loss
        dissolve_cloud,    ///< cloud fell below 2 members
        create_primary,    ///< new primary expander built by a leader
        create_secondary,  ///< new secondary expander among bridge nodes
        insert_member,     ///< H-graph INSERT (sharing / bridge replacement)
        combine,           ///< costly merge of several clouds into one
    };
    Kind kind;
    graph::ColorId color = graph::invalid_color;
    std::vector<graph::NodeId> members;  ///< creation/combine: full member list
    std::size_t cloud_size = 0;          ///< size after the operation
    bool leader_was_deleted = false;     ///< fix_cloud: leader handover needed
    bool rebuilt = false;                ///< fix_cloud: half-loss reconstruction
};

class XhealHealer : public Healer {
public:
    explicit XhealHealer(XhealConfig config = {});

    std::string_view name() const override { return "xheal"; }
    RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
    RepairReport on_delete_staged(graph::Graph& g, graph::NodeId v) override;
    RepairReport flush_staged(graph::Graph& g) override;
    std::size_t staged_count() const override { return pending_units_.size(); }
    void on_compact(graph::Graph& g,
                    const std::vector<graph::NodeId>& old_to_new) override;
    void check_consistency(const graph::Graph& g) const override;

    const CloudRegistry& registry() const { return registry_; }
    std::size_t kappa() const { return registry_.kappa(); }
    const XhealConfig& config() const { return config_; }

    /// Structural operations of the most recent on_delete / on_delete_staged
    /// / flush_staged call, in order.
    const std::vector<HealEvent>& last_events() const { return events_; }

private:
    /// One "side" that a secondary cloud must connect: either an existing
    /// primary cloud or a lone node (black neighbor / dissolved-cloud
    /// survivor, treated as a singleton primary cloud per the paper).
    struct Unit {
        graph::ColorId cloud = graph::invalid_color;
        graph::NodeId singleton = graph::invalid_node;

        bool is_cloud() const { return cloud != graph::invalid_color; }
        static Unit of_cloud(graph::ColorId c) { return Unit{c, graph::invalid_node}; }
        static Unit of_node(graph::NodeId n) { return Unit{graph::invalid_color, n}; }
    };

    /// Outcome of repairing secondary cloud F after bridge v was removed.
    /// Reused across repairs (the vector keeps its capacity).
    struct SecondaryFix {
        /// Primary colors still connected through F (excluded from the new
        /// secondary built for the leftover clouds). Sorted ascending.
        std::vector<graph::ColorId> connected;
        /// A unit on F's side to include in the new secondary so both
        /// groups stay connected; nullopt if F's side offers no free node.
        std::optional<Unit> representative;
        /// If no representative exists but F is alive, new bridges are
        /// INSERTed into F itself instead of forming a new secondary.
        graph::ColorId insert_into = graph::invalid_color;

        void clear() {
            connected.clear();
            representative.reset();
            insert_into = graph::invalid_color;
        }
    };

    /// The full per-victim repair. With defer == nullptr this is the
    /// unbatched Xheal step (connect_units runs inline); otherwise the units
    /// a new secondary would connect are appended to *defer instead.
    void repair(graph::Graph& g, graph::NodeId v, RepairReport& report,
                std::vector<Unit>* defer);

    void fix_secondary(graph::Graph& g, graph::ColorId f_color,
                       graph::ColorId assoc_of_v, RepairReport& report,
                       SecondaryFix& fix);

    /// Pick a free node to serve as cloud Ci's bridge: a free member of Ci,
    /// else a free node shared from one of `donor_clouds` (physically added
    /// to Ci), else invalid_node (combine required).
    graph::NodeId pick_free_node(graph::Graph& g, graph::ColorId ci,
                                 const std::vector<graph::ColorId>& donor_clouds,
                                 RepairReport& report);

    /// Connect `units` with a secondary cloud (or into an existing one),
    /// applying free-node assignment, sharing and the combine fallback.
    void connect_units(graph::Graph& g, const std::vector<Unit>& units,
                       graph::ColorId into_secondary, RepairReport& report);

    /// Merge all units into a single fresh primary cloud. Returns its color.
    graph::ColorId combine_units(graph::Graph& g, const std::vector<Unit>& units,
                                 RepairReport& report);

    /// Drop duplicate units, dead clouds, and singletons already covered by
    /// a cloud unit in the list. In place, on reusable scratch.
    void dedupe_units_inplace(std::vector<Unit>& units);

    /// Remove v from cloud `c` recording fix/dissolve events and rebuild
    /// accounting; returns the dissolved cloud's survivor (or invalid_node).
    graph::NodeId remove_member_logged(graph::Graph& g, graph::ColorId c,
                                       graph::NodeId v, RepairReport& report);

    /// insert_member wrapper that records the event.
    void insert_member_logged(graph::Graph& g, graph::ColorId c, graph::NodeId w,
                              RepairReport& report);

    /// Live primary colors bridged by f, sorted + deduped into `out`.
    void live_assocs_of(const Cloud& f, std::vector<graph::ColorId>& out) const;

    /// Append a new event, its members vector drawn from the recycling pool
    /// (push_event) — the caller fills members/size/flags via the returned
    /// reference before the next push.
    HealEvent& push_event(HealEvent::Kind kind, graph::ColorId color);

    /// Return every event's members vector to the pool and clear the list;
    /// called at the start of each repair entry point so steady-state event
    /// logging performs no allocation.
    void recycle_events();

    std::vector<graph::NodeId> take_members();

    XhealConfig config_;
    CloudRegistry registry_;
    util::Rng rng_;
    std::vector<HealEvent> events_;
    std::vector<std::vector<graph::NodeId>> member_pool_;

    // Batched-mode state: units parked by on_delete_staged until the flush.
    std::vector<Unit> pending_units_;

    // Repair-path scratch, reused across on_delete calls so the common
    // steady-state repair (fix one cloud, nothing structural) performs no
    // heap allocation (DESIGN.md decision 6). The connect_units/combine
    // scratch below extends that guarantee to the structural path
    // (decision 9) — pinned by connect_units_soak_test at 0 allocations.
    std::vector<graph::ColorId> prim_;        ///< v's primary clouds
    std::vector<graph::NodeId> black_nbrs_;   ///< v's purely-black neighbors
    std::vector<graph::NodeId> survivors_;    ///< remnants of dissolved 2-clouds
    std::vector<Unit> units_;                 ///< units the new secondary connects
    std::vector<Unit> units_tmp_;             ///< dedupe staging
    std::vector<graph::ColorId> seen_clouds_; ///< dedupe: cloud units listed
    std::vector<graph::NodeId> seen_nodes_;   ///< dedupe: singleton units listed
    SecondaryFix secfix_;                     ///< Case 2.2 outcome
    std::vector<graph::ColorId> assocs_;      ///< live_assocs scratch
    std::vector<graph::ColorId> donors_;      ///< pick_free_node donor list
    std::vector<Unit> fix_to_combine_;        ///< Case 2.2 combine fallback
    std::vector<graph::NodeId> free_scratch_; ///< free_members_of staging
    // connect_units scratch (sorted flat vectors mirror the former std::set
    // iteration order, keeping the rng draw sequence bit-identical):
    std::vector<std::vector<graph::NodeId>> cu_candidates_;  ///< per-unit free nodes
    std::vector<graph::NodeId> all_free_;     ///< distinct free nodes, ascending
    std::vector<std::size_t> order_;          ///< units by candidate scarcity
    std::vector<graph::NodeId> taken_;        ///< assigned free nodes, ascending
    std::vector<graph::NodeId> assigned_;     ///< unit index -> free node
    std::vector<std::size_t> deficient_;      ///< units with no open candidate
    std::vector<graph::NodeId> open_;         ///< unassigned candidates of a unit
    std::vector<graph::NodeId> spares_;       ///< unassigned free nodes overall
    std::vector<std::pair<graph::NodeId, graph::ColorId>> bridges_;  ///< node, assoc
    std::vector<graph::NodeId> bridge_nodes_; ///< bridge ids for create_cloud
    std::vector<graph::NodeId> pair_members_; ///< share-into-singleton pair
    // combine_units scratch:
    std::vector<graph::NodeId> comb_members_;   ///< merged membership, ascending
    std::vector<graph::ColorId> comb_destroyed_;///< clouds merged away, ascending
    std::vector<graph::ColorId> foreign_;       ///< secondaries touching members
    std::vector<graph::NodeId> stale_;          ///< bridges freed by the merge
};

}  // namespace xheal::core
