#include "core/distributed_xheal.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "util/expects.hpp"

namespace xheal::core {

using graph::ColorId;
using graph::Graph;
using graph::NodeId;

namespace {
// Salt separating the network's drop-coin stream from the healer's repair
// randomness: faults must never perturb which repairs happen.
constexpr std::uint64_t kDropStreamSalt = 0x9e3779b97f4a7c15ull;
}  // namespace

DistributedXheal::DistributedXheal(XhealConfig config, DistFaultConfig faults)
    : inner_(config), base_faults_(faults), max_retries_(faults.retries) {
    XHEAL_EXPECTS(faults.drop >= 0.0 && faults.drop <= 1.0);
    net_.seed_drop_stream(config.seed ^ kDropStreamSalt);
    net_.set_fault_model({faults.drop, faults.latency});
}

void DistributedXheal::set_network_faults(const NetFaults& faults) {
    sim::FaultModel model;
    model.drop = faults.drop.value_or(base_faults_.drop);
    model.latency = faults.latency.value_or(base_faults_.latency);
    XHEAL_EXPECTS(model.drop >= 0.0 && model.drop <= 1.0);
    // The drop stream is intentionally NOT reseeded: phase boundaries must
    // not reset determinism mid-run.
    net_.set_fault_model(model);
}

sim::Handler DistributedXheal::protocol_handler() {
    return [this](const sim::Message& m, sim::Context& ctx) {
        if (m.type == sim::tag::ack) {
            if (!m.payload.empty()) acked_.insert(m.payload[0]);
            return;
        }
        if (m.ack_seq != 0) ctx.send(m.from, sim::tag::ack, {m.ack_seq});
    };
}

void DistributedXheal::ensure_attached(const Graph& g) {
    if (attached_) return;
    for (NodeId v : g.nodes()) {
        if (!net_.has_node(v)) net_.add_node(v, protocol_handler());
    }
    attached_ = true;
}

void DistributedXheal::on_insert(Graph& g, NodeId v) {
    ensure_attached(g);
    if (!net_.has_node(v)) net_.add_node(v, protocol_handler());
    // Insertion requires no healing work (paper Section 5); neighbors'
    // NoN bookkeeping is part of the model's O(1) preprocessing.
    inner_.on_insert(g, v);
}

void DistributedXheal::deliver_reliably(const std::vector<sim::Message>& batch) {
    if (batch.empty()) return;
    const sim::FaultModel& model = net_.fault_model();
    if (model.drop == 0.0) {
        // Perfect-delivery fast path: no acks, so message/round counts are
        // byte-identical to the historical protocol (one delivery round per
        // 1 + latency hops, nothing else in flight).
        for (const sim::Message& m : batch) net_.post(m);
        net_.run(model.latency + 2);
        XHEAL_ASSERT(net_.idle());
        return;
    }
    const std::size_t drain = 2 * (model.latency + 1) + 2;
    const std::uint64_t base = next_seq_;
    next_seq_ += batch.size();
    std::vector<std::size_t> pending(batch.size());
    for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
    for (std::size_t attempt = 0; attempt <= max_retries_ && !pending.empty();
         ++attempt) {
        if (attempt > 0) retries_accum_ += pending.size();
        for (std::size_t i : pending) {
            sim::Message m = batch[i];
            m.ack_seq = base + i;
            net_.post(std::move(m));
        }
        // Timeout = the network draining (send-time drops mean every
        // surviving message resolves within one RTT).
        net_.run(drain);
        XHEAL_ASSERT(net_.idle());
        std::erase_if(pending,
                      [&](std::size_t i) { return acked_.contains(base + i); });
    }
    // Bounded retry: leftovers are abandoned. Repair decisions are
    // leader-local, so an abandoned install costs fidelity only — the
    // repaired graph is unaffected and the budget keeps runs terminating.
}

RepairReport DistributedXheal::on_delete(Graph& g, NodeId v) {
    ensure_attached(g);
    XHEAL_EXPECTS(g.has_node(v));
    // Epoch boundary: a previous repair may never leak in-flight messages
    // into this repair's bill (reset_counters-style guarantee).
    XHEAL_ASSERT(net_.idle());
    // Snapshot: the repair below removes v, so the view must be copied.
    auto nbr_view = g.neighbors(v);
    std::vector<NodeId> nbrs(nbr_view.begin(), nbr_view.end());

    RepairReport report = inner_.on_delete(g, v);

    std::uint64_t messages_before = net_.messages_sent();
    std::uint64_t rounds_before = net_.rounds_executed();
    acked_.clear();
    next_seq_ = 1;
    retries_accum_ = 0;

    // v stays on the network through the notice phase so that, under loss,
    // its neighbors' acks still have a live collector — reliable delivery
    // of the deletion notice itself.
    phase_deletion_notice(v, nbrs);
    if (net_.has_node(v)) net_.remove_node(v);

    for (const HealEvent& event : inner_.last_events()) {
        switch (event.kind) {
            case HealEvent::Kind::fix_cloud:
                phase_fix_cloud(event);
                break;
            case HealEvent::Kind::dissolve_cloud:
                phase_dissolve(event);
                break;
            case HealEvent::Kind::create_primary:
            case HealEvent::Kind::create_secondary:
                phase_create_cloud(event);
                break;
            case HealEvent::Kind::insert_member:
                phase_insert_member(event);
                break;
            case HealEvent::Kind::combine:
                phase_combine(event);
                break;
        }
    }
    XHEAL_ASSERT(net_.idle());

    last_messages_ = net_.messages_sent() - messages_before;
    last_rounds_ = static_cast<std::size_t>(net_.rounds_executed() - rounds_before);
    last_retries_ = retries_accum_;
    report.messages = last_messages_;
    report.rounds = last_rounds_;
    report.retries = last_retries_;
    return report;
}

void DistributedXheal::on_compact(Graph& g, const std::vector<NodeId>& old_to_new) {
    inner_.on_compact(g, old_to_new);
    // Between repairs the network is always drained (every phase ends in a
    // full run()), so the mailbox directory can be rekeyed wholesale. Dead
    // nodes already left the network when their deletion was repaired.
    if (attached_) net_.remap_nodes(old_to_new);
}

void DistributedXheal::check_consistency(const Graph& g) const {
    inner_.check_consistency(g);
    // Every alive graph node must have a network actor once attached.
    if (attached_) {
        for (NodeId v : g.nodes()) XHEAL_ASSERT(net_.has_node(v));
    }
}

void DistributedXheal::phase_deletion_notice(NodeId v, const std::vector<NodeId>& nbrs) {
    std::vector<sim::Message> batch;
    batch.reserve(nbrs.size());
    for (NodeId u : nbrs) batch.push_back({v, u, sim::tag::deletion_notice, {}});
    deliver_reliably(batch);
}

void DistributedXheal::phase_fix_cloud(const HealEvent& event) {
    const Cloud* cloud = registry().find(event.color);
    if (cloud == nullptr) return;  // destroyed by a later combine
    auto members = cloud->members_sorted();
    if (members.empty()) return;

    // H-graph DELETE splice: the deleted node's <= kappa cycle neighbors
    // reconnect pairwise — O(kappa) messages, one round.
    std::size_t splices = std::min(kappa(), members.size());
    std::vector<sim::Message> batch;
    for (std::size_t i = 0; i < splices; ++i) {
        NodeId a = members[i % members.size()];
        NodeId b = members[(i + 1) % members.size()];
        if (a != b) batch.push_back({a, b, sim::tag::splice, {}});
    }
    deliver_reliably(batch);

    if (event.leader_was_deleted) {
        // Vice-leader takes over and announces itself to the cloud.
        NodeId announcer = cloud->leader;
        batch.clear();
        for (NodeId m : members) {
            if (m != announcer) batch.push_back({announcer, m, sim::tag::leader_announce, {}});
        }
        deliver_reliably(batch);
    }
    if (event.rebuilt) {
        // Half-loss rule: leader rebuilt the expander; install it.
        install_topology(event.color);
    }
}

void DistributedXheal::phase_dissolve(const HealEvent& event) {
    if (event.members.empty()) return;
    // The survivor is told the cloud is gone (by the departing leader's
    // final message).
    NodeId survivor = event.members.front();
    deliver_reliably({{survivor, survivor, sim::tag::leader_announce, {}}});
}

graph::NodeId DistributedXheal::run_tournament(const std::vector<NodeId>& candidates) {
    XHEAL_EXPECTS(!candidates.empty());
    std::vector<NodeId> active = candidates;
    std::vector<sim::Message> batch;
    while (active.size() > 1) {
        std::vector<NodeId> winners;
        winners.reserve((active.size() + 1) / 2);
        batch.clear();
        for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
            // Loser reports to winner; one message per match.
            batch.push_back({active[i + 1], active[i], sim::tag::elect, {}});
            winners.push_back(active[i]);
        }
        if (active.size() % 2 == 1) winners.push_back(active.back());
        deliver_reliably(batch);
        active = std::move(winners);
    }
    return active.front();
}

void DistributedXheal::install_topology(ColorId color) {
    const Cloud* cloud = registry().find(color);
    if (cloud == nullptr) return;
    NodeId leader = cloud->leader;
    std::vector<sim::Message> batch;
    batch.reserve(2 * cloud->claimed.size() + 1);
    for (const auto& [a, b] : cloud->claimed) {
        batch.push_back({leader, a, sim::tag::inform_topology, {}});
        batch.push_back({leader, b, sim::tag::inform_topology, {}});
    }
    // Vice-leader designation rides along in the same round.
    if (cloud->vice_leader != graph::invalid_node) {
        batch.push_back({leader, cloud->vice_leader, sim::tag::leader_announce, {}});
    }
    deliver_reliably(batch);
}

void DistributedXheal::phase_create_cloud(const HealEvent& event) {
    if (event.members.size() < 2) return;
    if (event.kind == HealEvent::Kind::create_secondary) {
        // Free-node discovery: each bridge was located by querying its
        // cloud leader — one query + one reply per bridge.
        std::vector<sim::Message> batch;
        batch.reserve(event.members.size());
        for (NodeId b : event.members) batch.push_back({b, b, sim::tag::free_query, {}});
        deliver_reliably(batch);
        batch.clear();
        for (NodeId b : event.members) batch.push_back({b, b, sim::tag::free_reply, {}});
        deliver_reliably(batch);
    }
    run_tournament(event.members);
    install_topology(event.color);
}

void DistributedXheal::phase_insert_member(const HealEvent& event) {
    const Cloud* cloud = registry().find(event.color);
    if (cloud == nullptr || event.members.empty()) return;
    NodeId w = event.members.front();
    NodeId leader = cloud->leader == w && cloud->vice_leader != graph::invalid_node
                        ? cloud->vice_leader
                        : cloud->leader;
    // H-graph INSERT: query the leader for random cycle positions, receive
    // them, then splice in next to <= kappa cycle neighbors.
    deliver_reliably({{w, leader, sim::tag::free_query, {}}});
    deliver_reliably({{leader, w, sim::tag::free_reply, {}}});
    auto members = cloud->members_sorted();
    std::size_t splices = std::min(kappa(), members.size());
    std::vector<sim::Message> batch;
    std::size_t sent = 0;
    for (NodeId m : members) {
        if (m == w) continue;
        batch.push_back({w, m, sim::tag::splice, {}});
        if (++sent >= splices) break;
    }
    deliver_reliably(batch);
}

void DistributedXheal::phase_combine(const HealEvent& event) {
    const Cloud* cloud = registry().find(event.color);
    if (cloud == nullptr || cloud->size() < 2) return;

    // Build the combined cloud's adjacency for the BFS flood.
    std::unordered_map<NodeId, std::vector<NodeId>> adj;
    for (const auto& [a, b] : cloud->claimed) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }

    const bool lossy_mode = lossy();
    // Handler-driven BFS: first flood receipt forwards the wave and
    // convergecasts the node's address toward the root (via its parent).
    // Under loss the convergecast requests an ack so the driver can re-send
    // it; the flood itself is repaired by re-flooding from the visited
    // frontier (see the retry loop below).
    std::unordered_map<NodeId, NodeId> parent;
    NodeId root = cloud->leader;
    parent.emplace(root, root);
    std::vector<std::tuple<NodeId, NodeId, std::uint64_t>> converges;
    auto member_handler = [this, &adj, &parent, &converges, lossy_mode](
                              const sim::Message& m, sim::Context& ctx) {
        if (m.type == sim::tag::ack) {
            if (!m.payload.empty()) acked_.insert(m.payload[0]);
            return;
        }
        if (m.ack_seq != 0) ctx.send(m.from, sim::tag::ack, {m.ack_seq});
        if (m.type != sim::tag::flood) return;
        if (parent.contains(ctx.self())) return;  // already visited
        parent.emplace(ctx.self(), m.from);
        auto it = adj.find(ctx.self());
        if (it != adj.end()) {
            for (NodeId nbr : it->second) {
                if (nbr != m.from) ctx.send(nbr, sim::tag::flood);
            }
        }
        std::uint64_t seq = 0;
        if (lossy_mode) {
            seq = next_seq_++;
            converges.emplace_back(ctx.self(), m.from, seq);
        }
        ctx.send(m.from, sim::tag::converge, {}, seq);  // address convergecast
    };
    auto members = cloud->members_sorted();
    for (NodeId m : members) {
        if (net_.has_node(m)) net_.set_handler(m, member_handler);
    }

    const sim::FaultModel& model = net_.fault_model();
    const std::size_t budget = (model.latency + 1) * (4 * cloud->size() + 8);
    auto root_it = adj.find(root);
    if (root_it != adj.end()) {
        for (NodeId nbr : root_it->second) net_.post(root, nbr, sim::tag::flood);
    }
    net_.run(budget);
    XHEAL_ASSERT(net_.idle());

    if (lossy_mode) {
        // Retry loop: dropped floods are repaired by the visited frontier
        // re-flooding toward still-unvisited members (deterministic order:
        // members_sorted x claimed-edge adjacency); dropped or unacked
        // convergecasts are re-sent with their original sequence numbers.
        for (std::size_t attempt = 0; attempt < max_retries_; ++attempt) {
            std::size_t resent = 0;
            for (NodeId u : members) {
                if (!parent.contains(u)) continue;
                auto it = adj.find(u);
                if (it == adj.end()) continue;
                for (NodeId w : it->second) {
                    if (parent.contains(w)) continue;
                    net_.post(u, w, sim::tag::flood);
                    ++resent;
                }
            }
            for (const auto& [child, par, seq] : converges) {
                if (acked_.contains(seq)) continue;
                net_.post(sim::Message{child, par, sim::tag::converge, {}, seq});
                ++resent;
            }
            if (resent == 0) break;
            retries_accum_ += resent;
            net_.run(budget);
            XHEAL_ASSERT(net_.idle());
        }
    }

    // Restore protocol handlers before the leader's broadcast.
    for (NodeId m : members) {
        if (net_.has_node(m)) net_.set_handler(m, protocol_handler());
    }
    install_topology(event.color);
}

}  // namespace xheal::core
