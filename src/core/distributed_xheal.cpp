#include "core/distributed_xheal.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/expects.hpp"

namespace xheal::core {

using graph::ColorId;
using graph::Graph;
using graph::NodeId;

DistributedXheal::DistributedXheal(XhealConfig config) : inner_(config) {}

void DistributedXheal::ensure_attached(const Graph& g) {
    if (attached_) return;
    for (NodeId v : g.nodes()) {
        if (!net_.has_node(v)) net_.add_node(v);
    }
    attached_ = true;
}

void DistributedXheal::on_insert(Graph& g, NodeId v) {
    ensure_attached(g);
    if (!net_.has_node(v)) net_.add_node(v);
    // Insertion requires no healing work (paper Section 5); neighbors'
    // NoN bookkeeping is part of the model's O(1) preprocessing.
    inner_.on_insert(g, v);
}

RepairReport DistributedXheal::on_delete(Graph& g, NodeId v) {
    ensure_attached(g);
    XHEAL_EXPECTS(g.has_node(v));
    // Snapshot: the repair below removes v, so the view must be copied.
    auto nbr_view = g.neighbors(v);
    std::vector<NodeId> nbrs(nbr_view.begin(), nbr_view.end());

    RepairReport report = inner_.on_delete(g, v);
    if (net_.has_node(v)) net_.remove_node(v);

    std::uint64_t messages_before = net_.messages_sent();
    std::uint64_t rounds_before = net_.rounds_executed();

    phase_deletion_notice(v, nbrs);
    for (const HealEvent& event : inner_.last_events()) {
        switch (event.kind) {
            case HealEvent::Kind::fix_cloud:
                phase_fix_cloud(event);
                break;
            case HealEvent::Kind::dissolve_cloud:
                phase_dissolve(event);
                break;
            case HealEvent::Kind::create_primary:
            case HealEvent::Kind::create_secondary:
                phase_create_cloud(event);
                break;
            case HealEvent::Kind::insert_member:
                phase_insert_member(event);
                break;
            case HealEvent::Kind::combine:
                phase_combine(event);
                break;
        }
    }
    XHEAL_ASSERT(net_.idle());

    last_messages_ = net_.messages_sent() - messages_before;
    last_rounds_ = static_cast<std::size_t>(net_.rounds_executed() - rounds_before);
    report.messages = last_messages_;
    report.rounds = last_rounds_;
    return report;
}

void DistributedXheal::check_consistency(const Graph& g) const {
    inner_.check_consistency(g);
    // Every alive graph node must have a network actor once attached.
    if (attached_) {
        for (NodeId v : g.nodes()) XHEAL_ASSERT(net_.has_node(v));
    }
}

void DistributedXheal::phase_deletion_notice(NodeId v, const std::vector<NodeId>& nbrs) {
    for (NodeId u : nbrs) net_.post(v, u, sim::tag::deletion_notice);
    net_.step();
}

void DistributedXheal::phase_fix_cloud(const HealEvent& event) {
    const Cloud* cloud = registry().find(event.color);
    if (cloud == nullptr) return;  // destroyed by a later combine
    auto members = cloud->members_sorted();
    if (members.empty()) return;

    // H-graph DELETE splice: the deleted node's <= kappa cycle neighbors
    // reconnect pairwise — O(kappa) messages, one round.
    std::size_t splices = std::min(kappa(), members.size());
    for (std::size_t i = 0; i < splices; ++i) {
        NodeId a = members[i % members.size()];
        NodeId b = members[(i + 1) % members.size()];
        if (a != b) net_.post(a, b, sim::tag::splice);
    }
    net_.step();

    if (event.leader_was_deleted) {
        // Vice-leader takes over and announces itself to the cloud.
        NodeId announcer = cloud->leader;
        for (NodeId m : members) {
            if (m != announcer) net_.post(announcer, m, sim::tag::leader_announce);
        }
        net_.step();
    }
    if (event.rebuilt) {
        // Half-loss rule: leader rebuilt the expander; install it.
        install_topology(event.color);
    }
}

void DistributedXheal::phase_dissolve(const HealEvent& event) {
    if (event.members.empty()) return;
    // The survivor is told the cloud is gone (by the departing leader's
    // final message).
    net_.post(event.members.front(), event.members.front(), sim::tag::leader_announce);
    net_.step();
}

graph::NodeId DistributedXheal::run_tournament(const std::vector<NodeId>& candidates) {
    XHEAL_EXPECTS(!candidates.empty());
    std::vector<NodeId> active = candidates;
    while (active.size() > 1) {
        std::vector<NodeId> winners;
        winners.reserve((active.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < active.size(); i += 2) {
            // Loser reports to winner; one message per match.
            net_.post(active[i + 1], active[i], sim::tag::elect);
            winners.push_back(active[i]);
        }
        if (active.size() % 2 == 1) winners.push_back(active.back());
        net_.step();
        active = std::move(winners);
    }
    return active.front();
}

void DistributedXheal::install_topology(ColorId color) {
    const Cloud* cloud = registry().find(color);
    if (cloud == nullptr) return;
    NodeId leader = cloud->leader;
    for (const auto& [a, b] : cloud->claimed) {
        net_.post(leader, a, sim::tag::inform_topology);
        net_.post(leader, b, sim::tag::inform_topology);
    }
    // Vice-leader designation rides along in the same round.
    if (cloud->vice_leader != graph::invalid_node) {
        net_.post(leader, cloud->vice_leader, sim::tag::leader_announce);
    }
    net_.step();
}

void DistributedXheal::phase_create_cloud(const HealEvent& event) {
    if (event.members.size() < 2) return;
    if (event.kind == HealEvent::Kind::create_secondary) {
        // Free-node discovery: each bridge was located by querying its
        // cloud leader — one query + one reply per bridge.
        for (NodeId b : event.members) {
            net_.post(b, b, sim::tag::free_query);
        }
        net_.step();
        for (NodeId b : event.members) {
            net_.post(b, b, sim::tag::free_reply);
        }
        net_.step();
    }
    run_tournament(event.members);
    install_topology(event.color);
}

void DistributedXheal::phase_insert_member(const HealEvent& event) {
    const Cloud* cloud = registry().find(event.color);
    if (cloud == nullptr || event.members.empty()) return;
    NodeId w = event.members.front();
    NodeId leader = cloud->leader == w && cloud->vice_leader != graph::invalid_node
                        ? cloud->vice_leader
                        : cloud->leader;
    // H-graph INSERT: query the leader for random cycle positions, receive
    // them, then splice in next to <= kappa cycle neighbors.
    net_.post(w, leader, sim::tag::free_query);
    net_.step();
    net_.post(leader, w, sim::tag::free_reply);
    net_.step();
    auto members = cloud->members_sorted();
    std::size_t splices = std::min(kappa(), members.size());
    std::size_t sent = 0;
    for (NodeId m : members) {
        if (m == w) continue;
        net_.post(w, m, sim::tag::splice);
        if (++sent >= splices) break;
    }
    net_.step();
}

void DistributedXheal::phase_combine(const HealEvent& event) {
    const Cloud* cloud = registry().find(event.color);
    if (cloud == nullptr || cloud->size() < 2) return;

    // Build the combined cloud's adjacency for the BFS flood.
    std::unordered_map<NodeId, std::vector<NodeId>> adj;
    for (const auto& [a, b] : cloud->claimed) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }

    // Handler-driven BFS: first flood receipt forwards the wave and
    // convergecasts the node's address toward the root (via its parent).
    std::unordered_map<NodeId, NodeId> parent;
    NodeId root = cloud->leader;
    parent.emplace(root, root);
    auto member_handler = [&adj, &parent](const sim::Message& m, sim::Context& ctx) {
        if (m.type != sim::tag::flood) return;
        if (parent.contains(ctx.self())) return;  // already visited
        parent.emplace(ctx.self(), m.from);
        auto it = adj.find(ctx.self());
        if (it != adj.end()) {
            for (NodeId nbr : it->second) {
                if (nbr != m.from) ctx.send(nbr, sim::tag::flood);
            }
        }
        ctx.send(m.from, sim::tag::converge);  // address convergecast
    };
    for (NodeId m : cloud->members_sorted()) {
        if (net_.has_node(m)) net_.set_handler(m, member_handler);
    }

    auto root_it = adj.find(root);
    if (root_it != adj.end()) {
        for (NodeId nbr : root_it->second) net_.post(root, nbr, sim::tag::flood);
    }
    net_.run(4 * cloud->size() + 8);
    XHEAL_ASSERT(net_.idle());

    // Restore sink handlers before the leader's broadcast.
    for (NodeId m : cloud->members_sorted()) {
        if (net_.has_node(m)) net_.set_handler(m, {});
    }
    install_topology(event.color);
}

}  // namespace xheal::core
