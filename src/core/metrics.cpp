#include "core/metrics.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/expects.hpp"

namespace xheal::core {

using graph::Graph;
using graph::NodeId;

DegreeIncrease degree_increase(const Graph& g, const Graph& ref) {
    DegreeIncrease out;
    double sum = 0.0;
    std::size_t counted = 0;
    for (NodeId v : g.nodes()) {
        if (!ref.has_node(v)) continue;
        std::size_t dref = ref.degree(v);
        if (dref == 0) continue;  // isolated insertions have no meaningful ratio
        double ratio = static_cast<double>(g.degree(v)) / static_cast<double>(dref);
        sum += ratio;
        ++counted;
        if (ratio > out.max_ratio) {
            out.max_ratio = ratio;
            out.argmax = v;
        }
    }
    out.mean_ratio = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
    return out;
}

double sampled_stretch(const Graph& g, const Graph& ref, std::size_t samples,
                       util::Rng& rng) {
    // Sampling needs an indexable pool, so this one materializes.
    auto view = g.nodes();
    std::vector<NodeId> alive(view.begin(), view.end());
    if (alive.size() < 2) return 1.0;
    std::vector<NodeId> sources;
    if (samples >= alive.size()) {
        sources = alive;
    } else {
        sources = rng.sample(alive, samples);
        std::sort(sources.begin(), sources.end());
    }
    double s = graph::stretch_vs(g, ref, sources);
    return std::max(s, 1.0);
}

double theorem2_lambda_bound(double lambda_ref, std::size_t dmin_ref,
                             std::size_t dmax_ref, std::size_t kappa) {
    XHEAL_EXPECTS(kappa >= 1);
    if (dmax_ref == 0) return 0.0;
    double kd = static_cast<double>(kappa) * static_cast<double>(dmax_ref);
    double term1 = lambda_ref * lambda_ref * static_cast<double>(dmin_ref) *
                   static_cast<double>(dmin_ref) / (8.0 * kd * kd);
    double term2 = 1.0 / (2.0 * kd * kd);
    return std::min(term1, term2);
}

}  // namespace xheal::core
