// Test-only fault injection: a Healer wrapper that silently *skips* the
// inner healer's repair on every drop_every-th deletion (the node is still
// removed, as the Healer contract requires, but no repair edges are added).
// This is the canonical "forgot to heal" bug the trace-forensics layer
// exists to catch: the fuzzer's invariant oracles flag the resulting
// disconnection / degradation and the shrinker reduces the event stream to
// a minimal reproducer.
//
// The wrapper is registered in the scenario registry as healer kind
// `faulty` (params inner=<kind>, drop_every=N) so shrunk reproducers can
// name it in a standalone .scn and `xheal_run replay` reproduces the buggy
// run byte-for-byte. Wrap *stateless* healers (the baselines): skipping a
// stateful healer's on_delete would desynchronize its internal bookkeeping
// from the graph and turn the demo bug into undefined behavior.
#pragma once

#include <memory>

#include "core/healer.hpp"

namespace xheal::core {

class FaultInjectingHealer : public Healer {
public:
    /// Takes ownership of `inner`. drop_every = 0 never drops (pass-through).
    FaultInjectingHealer(std::unique_ptr<Healer> inner, std::size_t drop_every)
        : inner_(std::move(inner)), drop_every_(drop_every) {}

    std::string_view name() const override { return "faulty"; }

    void on_insert(graph::Graph& g, graph::NodeId v) override {
        inner_->on_insert(g, v);
    }

    RepairReport on_delete(graph::Graph& g, graph::NodeId v) override {
        ++deletions_;
        if (drop_every_ != 0 && deletions_ % drop_every_ == 0) {
            g.remove_node(v);  // the bug: delete applied, repair skipped
            return {};
        }
        return inner_->on_delete(g, v);
    }

    void check_consistency(const graph::Graph& g) const override {
        inner_->check_consistency(g);
    }

    std::size_t deletions_seen() const { return deletions_; }

private:
    std::unique_ptr<Healer> inner_;
    std::size_t drop_every_;
    std::size_t deletions_ = 0;
};

}  // namespace xheal::core
