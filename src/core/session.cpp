#include "core/session.hpp"

#include "util/expects.hpp"

namespace xheal::core {

using graph::Graph;
using graph::NodeId;

namespace {
constexpr std::size_t npos = static_cast<std::size_t>(-1);
}  // namespace

HealingSession::HealingSession(Graph initial, std::unique_ptr<Healer> healer)
    : g_(initial), ref_(std::move(initial)), healer_(std::move(healer)) {
    XHEAL_EXPECTS(healer_ != nullptr);
    pool_pos_.assign(g_.next_id(), npos);
    alive_.reserve(g_.node_count());
    for (NodeId v : g_.nodes()) {
        pool_pos_[v] = alive_.size();
        alive_.push_back(v);
    }
}

NodeId HealingSession::insert_node(const std::vector<NodeId>& neighbors) {
    for (NodeId u : neighbors) XHEAL_EXPECTS(g_.has_node(u));
    NodeId v = g_.add_node();
    ref_.add_node_with_id(v);
    for (NodeId u : neighbors) {
        g_.add_black_edge(v, u);
        ref_.add_black_edge(v, u);
    }
    healer_->on_insert(g_, v);
    if (pool_pos_.size() <= v) pool_pos_.resize(v + 1, npos);
    pool_pos_[v] = alive_.size();
    alive_.push_back(v);
    ++insertions_;
    return v;
}

RepairReport HealingSession::delete_node(NodeId v) {
    XHEAL_EXPECTS(g_.has_node(v));
    deleted_black_degree_.add(static_cast<double>(ref_.degree(v)));
    RepairReport report = healer_->on_delete(g_, v);
    XHEAL_ENSURES(!g_.has_node(v));
    // Swap-remove v from the alive pool: O(1), no materialization.
    std::size_t pos = pool_pos_[v];
    NodeId last = alive_.back();
    alive_[pos] = last;
    pool_pos_[last] = pos;
    alive_.pop_back();
    pool_pos_[v] = npos;
    totals_.accumulate(report);
    ++deletions_;
    return report;
}

RepairReport HealingSession::stage_delete(NodeId v) {
    XHEAL_EXPECTS(g_.has_node(v));
    deleted_black_degree_.add(static_cast<double>(ref_.degree(v)));
    RepairReport report = healer_->on_delete_staged(g_, v);
    XHEAL_ENSURES(!g_.has_node(v));
    std::size_t pos = pool_pos_[v];
    NodeId last = alive_.back();
    alive_[pos] = last;
    pool_pos_[last] = pos;
    alive_.pop_back();
    pool_pos_[v] = npos;
    totals_.accumulate(report);
    ++deletions_;
    return report;
}

RepairReport HealingSession::flush_staged() {
    RepairReport report = healer_->flush_staged(g_);
    totals_.accumulate(report);
    return report;
}

double HealingSession::amortized_messages() const {
    if (deletions_ == 0) return 0.0;
    return static_cast<double>(totals_.messages) / static_cast<double>(deletions_);
}

}  // namespace xheal::core
