#include "core/session.hpp"

#include "core/invariants.hpp"
#include "util/expects.hpp"

namespace xheal::core {

using graph::Graph;
using graph::NodeId;

namespace {
constexpr std::size_t npos = static_cast<std::size_t>(-1);
}  // namespace

HealingSession::HealingSession(Graph initial, std::unique_ptr<Healer> healer)
    : g_(initial), ref_(std::move(initial)), healer_(std::move(healer)) {
    XHEAL_EXPECTS(healer_ != nullptr);
    pool_pos_.assign(g_.next_id(), npos);
    alive_.reserve(g_.node_count());
    for (NodeId v : g_.nodes()) {
        pool_pos_[v] = alive_.size();
        alive_.push_back(v);
    }
}

NodeId HealingSession::insert_node(const std::vector<NodeId>& neighbors) {
    for (NodeId u : neighbors) XHEAL_EXPECTS(g_.has_node(u));
    NodeId v = g_.add_node();
    ref_.add_node_with_id(v);
    for (NodeId u : neighbors) {
        g_.add_black_edge(v, u);
        ref_.add_black_edge(v, u);
    }
    healer_->on_insert(g_, v);
    if (pool_pos_.size() <= v) pool_pos_.resize(v + 1, npos);
    pool_pos_[v] = alive_.size();
    alive_.push_back(v);
    ++insertions_;
    return v;
}

RepairReport HealingSession::delete_node(NodeId v) {
    XHEAL_EXPECTS(g_.has_node(v));
    deleted_black_degree_.add(static_cast<double>(ref_.degree(v)));
    RepairReport report = healer_->on_delete(g_, v);
    XHEAL_ENSURES(!g_.has_node(v));
    // Swap-remove v from the alive pool: O(1), no materialization.
    std::size_t pos = pool_pos_[v];
    NodeId last = alive_.back();
    alive_[pos] = last;
    pool_pos_[last] = pos;
    alive_.pop_back();
    pool_pos_[v] = npos;
    totals_.accumulate(report);
    ++deletions_;
    return report;
}

RepairReport HealingSession::stage_delete(NodeId v) {
    XHEAL_EXPECTS(g_.has_node(v));
    deleted_black_degree_.add(static_cast<double>(ref_.degree(v)));
    RepairReport report = healer_->on_delete_staged(g_, v);
    XHEAL_ENSURES(!g_.has_node(v));
    std::size_t pos = pool_pos_[v];
    NodeId last = alive_.back();
    alive_[pos] = last;
    pool_pos_[last] = pos;
    alive_.pop_back();
    pool_pos_[v] = npos;
    totals_.accumulate(report);
    ++deletions_;
    return report;
}

RepairReport HealingSession::flush_staged() {
    RepairReport report = healer_->flush_staged(g_);
    totals_.accumulate(report);
    return report;
}

const std::vector<NodeId>& HealingSession::compact() {
    // Compacting with staged repairs parked in the healer would renumber
    // ids out from under the pending units; every caller flushes first and
    // this guard keeps it that way.
    XHEAL_EXPECTS(healer_->staged_count() == 0);
    // Purge: a node deleted from G is never consulted in G' again (its
    // black degree fed A(p) at deletion time), and check_reference_edges
    // only covers edges between survivors — so after the purge both graphs
    // carry the identical live id set and can share one compaction map.
    // This is also what keeps G' itself O(live): the insert-only reference
    // would otherwise accumulate every id (and edge) ever issued.
    for (NodeId v = 0; v < ref_.next_id(); ++v)
        if (ref_.has_node(v) && !g_.has_node(v)) ref_.remove_node(v);
    g_.compact(compact_map_);
    ref_.apply_id_map(compact_map_);
    // Remap the swap-remove pool in place: entry order is part of the
    // deterministic sampling substrate, so only the ids are rewritten.
    for (NodeId& v : alive_) v = compact_map_[v];
    pool_pos_.assign(g_.next_id(), npos);
    for (std::size_t i = 0; i < alive_.size(); ++i) pool_pos_[alive_[i]] = i;
    healer_->on_compact(g_, compact_map_);
    // Post-compact validation: the renumbered claim mirror and the
    // reference-edge guarantee must hold on the new numbering. Compaction
    // is rare (waste-threshold triggered), so the O(clouds + edges) sweep
    // is off the hot path.
    healer_->check_consistency(g_);
    check_reference_edges_present(g_, ref_);
    return compact_map_;
}

double HealingSession::amortized_messages() const {
    if (deletions_ == 0) return 0.0;
    return static_cast<double>(totals_.messages) / static_cast<double>(deletions_);
}

}  // namespace xheal::core
