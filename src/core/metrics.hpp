// Success metrics of the model (Fig. 1): degree increase, network stretch,
// edge expansion and spectral comparisons between the healed graph G_t and
// the insert-only reference G'_t.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xheal::core {

struct DegreeIncrease {
    double max_ratio = 0.0;              ///< max_v deg_G(v) / deg_G'(v)
    double mean_ratio = 0.0;
    graph::NodeId argmax = graph::invalid_node;
};

/// Degree-increase metric over nodes alive in g with positive reference
/// degree.
DegreeIncrease degree_increase(const graph::Graph& g, const graph::Graph& ref);

/// Stretch metric estimated from `samples` random alive source nodes
/// (exact when samples >= |V|). Returns +infinity if some pair connected in
/// ref is disconnected in g.
double sampled_stretch(const graph::Graph& g, const graph::Graph& ref,
                       std::size_t samples, util::Rng& rng);

/// Theorem 2(4) lower-bound formula for lambda(G_t), evaluated from the
/// reference graph's spectral data:
///   min( lambda'^2 * dmin'^2 / (8 * (kappa * dmax')^2),
///        1 / (2 * (kappa * dmax')^2) ).
double theorem2_lambda_bound(double lambda_ref, std::size_t dmin_ref,
                             std::size_t dmax_ref, std::size_t kappa);

}  // namespace xheal::core
