#include "core/cloud.hpp"

namespace xheal::core {

std::string_view to_string(CloudKind kind) {
    switch (kind) {
        case CloudKind::primary:
            return "primary";
        case CloudKind::secondary:
            return "secondary";
    }
    return "unknown";
}

}  // namespace xheal::core
