#include "core/xheal_healer.hpp"

#include <algorithm>

#include "util/expects.hpp"
#include "util/sorted_vec.hpp"

namespace xheal::core {

using graph::ColorId;
using graph::Graph;
using graph::NodeId;

XhealHealer::XhealHealer(XhealConfig config)
    : config_(config),
      registry_(config.d, config.rebuild_on_half_loss),
      rng_(config.seed) {}

void XhealHealer::check_consistency(const Graph& g) const { registry_.verify(g); }

RepairReport XhealHealer::on_delete(Graph& g, NodeId v) {
    XHEAL_EXPECTS(g.has_node(v));
    RepairReport report;
    events_.clear();

    // ---- snapshot v's situation before anything is torn down ----
    registry_.primary_clouds_of(v, prim_);
    std::optional<ColorId> sec = registry_.secondary_cloud_of(v);
    ColorId assoc_of_v = graph::invalid_color;
    if (sec.has_value()) {
        const Cloud* f = registry_.find(*sec);
        auto it = f->bridge_assoc.find(v);
        if (it != f->bridge_assoc.end()) assoc_of_v = it->second;
    }
    black_nbrs_.clear();
    for (const auto& [u, claims] : g.row(v)) {
        if (!claims.colored()) black_nbrs_.push_back(u);
    }

    // ---- the adversary's deletion takes effect ----
    g.remove_node(v);

    // ---- Case 1: v belonged to no cloud (all deleted edges black) ----
    if (prim_.empty() && !sec.has_value()) {
        if (black_nbrs_.size() >= 2) {
            ColorId c = registry_.create_cloud(g, CloudKind::primary, black_nbrs_, rng_,
                                               &report.edges_added);
            ++report.clouds_touched;
            events_.push_back(HealEvent{HealEvent::Kind::create_primary, c, black_nbrs_,
                                        black_nbrs_.size(), false, false});
        }
        return report;
    }

    // ---- FixPrimary: every affected primary cloud repairs its expander ----
    survivors_.clear();  // lone remnants of dissolved 2-clouds
    for (ColorId c : prim_) {
        NodeId survivor = remove_member_logged(g, c, v, report);
        if (survivor != graph::invalid_node) survivors_.push_back(survivor);
    }

    // ---- Remove v from its secondary cloud (if any) ----
    NodeId f_survivor = graph::invalid_node;
    bool f_alive = false;
    if (sec.has_value()) {
        f_survivor = remove_member_logged(g, *sec, v, report);
        f_alive = registry_.exists(*sec);
    }

    // ---- Case 2.2: repair the secondary cloud's bridge structure ----
    SecondaryFix fix;
    if (sec.has_value() && f_alive) {
        fix = fix_secondary(g, *sec, assoc_of_v, report);
    }

    // ---- assemble the units the new secondary must connect ----
    units_.clear();
    for (ColorId c : prim_) {
        if (!registry_.exists(c)) continue;        // dissolved or combined away
        if (fix.connected.contains(c)) continue;   // still connected through F
        units_.push_back(Unit::of_cloud(c));
    }
    for (NodeId s : survivors_) {
        if (g.has_node(s)) units_.push_back(Unit::of_node(s));
    }
    for (NodeId b : black_nbrs_) units_.push_back(Unit::of_node(b));
    if (f_survivor != graph::invalid_node && g.has_node(f_survivor)) {
        // F dissolved when v left: its last bridge is now free and its side
        // must be reconnected like any other unit.
        units_.push_back(Unit::of_node(f_survivor));
    }

    dedupe_units_inplace(units_);
    if (units_.empty()) return report;

    if (fix.representative.has_value()) {
        units_.push_back(*fix.representative);
        dedupe_units_inplace(units_);
        connect_units(g, units_, graph::invalid_color, report);
    } else if (fix.insert_into != graph::invalid_color &&
               registry_.exists(fix.insert_into)) {
        connect_units(g, units_, fix.insert_into, report);
    } else {
        connect_units(g, units_, graph::invalid_color, report);
    }
    return report;
}

XhealHealer::SecondaryFix XhealHealer::fix_secondary(Graph& g, ColorId f_color,
                                                     ColorId assoc_of_v,
                                                     RepairReport& report) {
    SecondaryFix fix;
    Cloud* f = registry_.find(f_color);
    XHEAL_ASSERT(f != nullptr);

    // Live primary clouds currently bridged by F.
    auto live_assocs = [&]() {
        std::vector<ColorId> out;
        for (const auto& [bridge, assoc] : f->bridge_assoc) {
            (void)bridge;
            if (assoc != graph::invalid_color && registry_.exists(assoc)) out.push_back(assoc);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    };

    if (assoc_of_v != graph::invalid_color && registry_.exists(assoc_of_v)) {
        // v bridged for primary cloud Ci: find a replacement free node z.
        std::vector<ColorId> donors = live_assocs();
        donors.erase(std::remove(donors.begin(), donors.end(), assoc_of_v), donors.end());
        NodeId z = pick_free_node(g, assoc_of_v, donors, report);
        if (z != graph::invalid_node) {
            insert_member_logged(g, f_color, z, report);
            registry_.find(f_color)->bridge_assoc[z] = assoc_of_v;
        } else {
            // No free node anywhere among F's primary clouds: combine them
            // all into one primary cloud; F's edges are deleted and its
            // bridges become free again (paper Case 2.2 / Case 2.1 rule).
            std::vector<Unit> to_combine;
            for (ColorId c : live_assocs()) to_combine.push_back(Unit::of_cloud(c));
            for (const auto& [bridge, assoc] : f->bridge_assoc) {
                if (assoc == graph::invalid_color || !registry_.exists(assoc)) {
                    to_combine.push_back(Unit::of_node(bridge));
                }
            }
            registry_.destroy_cloud(g, f_color, &report.edges_removed);
            ++report.clouds_touched;
            dedupe_units_inplace(to_combine);
            ColorId combined = combine_units(g, to_combine, report);
            fix.representative = Unit::of_cloud(combined);
            return fix;  // F is gone; `connected` stays empty
        }
    }
    // F survives (possibly just shrunk if v had no live association).
    Cloud* f_now = registry_.find(f_color);
    XHEAL_ASSERT(f_now != nullptr);
    for (ColorId c : live_assocs()) fix.connected.insert(c);

    // Choose a representative unit on F's side for reconnecting leftover
    // clouds: prefer v's own primary, else any live primary of F.
    ColorId rep = graph::invalid_color;
    if (assoc_of_v != graph::invalid_color && registry_.exists(assoc_of_v)) {
        rep = assoc_of_v;
    } else {
        auto assocs = live_assocs();
        if (!assocs.empty()) rep = assocs.front();
    }
    if (rep != graph::invalid_color) {
        fix.representative = Unit::of_cloud(rep);
    } else {
        fix.insert_into = f_color;  // fall back to growing F directly
    }
    return fix;
}

NodeId XhealHealer::pick_free_node(Graph& g, ColorId ci,
                                   const std::vector<ColorId>& donor_clouds,
                                   RepairReport& report) {
    auto own = registry_.free_members_of(ci);
    if (!own.empty()) return rng_.pick(own);
    // Sharing: borrow a free node from a donor cloud and physically add it
    // to ci so it can serve as ci's bridge (paper Section 3).
    for (ColorId donor : donor_clouds) {
        if (!registry_.exists(donor)) continue;
        auto candidates = registry_.free_members_of(donor);
        // The borrowed node must not already sit inside ci.
        std::erase_if(candidates, [&](NodeId w) {
            return registry_.find(ci)->has_member(w);
        });
        if (candidates.empty()) continue;
        NodeId w = rng_.pick(candidates);
        insert_member_logged(g, ci, w, report);
        return w;
    }
    return graph::invalid_node;
}

void XhealHealer::dedupe_units_inplace(std::vector<Unit>& units) {
    units_tmp_.assign(units.begin(), units.end());
    units.clear();
    seen_clouds_.clear();
    seen_nodes_.clear();
    // First pass: cloud units.
    for (const Unit& u : units_tmp_) {
        if (!u.is_cloud()) continue;
        if (!registry_.exists(u.cloud)) continue;
        if (util::sorted_insert(seen_clouds_, u.cloud)) units.push_back(u);
    }
    // Second pass: singletons not already covered by a listed cloud.
    for (const Unit& u : units_tmp_) {
        if (u.is_cloud()) continue;
        if (!util::sorted_insert(seen_nodes_, u.singleton)) continue;
        bool covered = false;
        for (ColorId c : seen_clouds_) {
            const Cloud* cloud = registry_.find(c);
            if (cloud != nullptr && cloud->has_member(u.singleton)) {
                covered = true;
                break;
            }
        }
        if (!covered) units.push_back(u);
    }
}

void XhealHealer::connect_units(Graph& g, const std::vector<Unit>& units,
                                ColorId into_secondary, RepairReport& report) {
    if (units.empty()) return;
    if (units.size() == 1 && into_secondary == graph::invalid_color) return;

    // Candidate free nodes per unit.
    std::vector<std::vector<NodeId>> candidates(units.size());
    std::set<NodeId> all_free;
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (units[i].is_cloud()) {
            candidates[i] = registry_.free_members_of(units[i].cloud);
        } else if (registry_.is_free(units[i].singleton)) {
            candidates[i] = {units[i].singleton};
        }
        for (NodeId w : candidates[i]) all_free.insert(w);
    }

    // The paper's combine rule: fewer distinct free nodes than units means
    // a secondary cloud cannot be built — merge everything into one
    // primary cloud instead.
    if (all_free.size() < units.size()) {
        ColorId combined = combine_units(g, units, report);
        if (combined != graph::invalid_color && into_secondary != graph::invalid_color &&
            registry_.exists(into_secondary)) {
            // We were asked to hang the units off an existing secondary;
            // attach the combined cloud if it still has a free node.
            // (Connectivity fallback; see DESIGN.md decision 3.)
            auto free_nodes = registry_.free_members_of(combined);
            if (!free_nodes.empty()) {
                NodeId w = rng_.pick(free_nodes);
                insert_member_logged(g, into_secondary, w, report);
                registry_.find(into_secondary)->bridge_assoc[w] = combined;
            }
        }
        return;
    }

    // Assign one distinct free node per unit: greedy by scarcity, sharing
    // spares into deficient units. Count guarantees success.
    std::vector<std::size_t> order(units.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (candidates[a].size() != candidates[b].size())
            return candidates[a].size() < candidates[b].size();
        return a < b;
    });

    std::set<NodeId> taken;
    std::vector<NodeId> assigned(units.size(), graph::invalid_node);
    std::vector<std::size_t> deficient;
    for (std::size_t i : order) {
        std::vector<NodeId> open;
        for (NodeId w : candidates[i]) {
            if (!taken.contains(w)) open.push_back(w);
        }
        if (open.empty()) {
            deficient.push_back(i);
            continue;
        }
        NodeId w = rng_.pick(open);
        assigned[i] = w;
        taken.insert(w);
    }
    for (std::size_t i : deficient) {
        std::vector<NodeId> spares;
        for (NodeId w : all_free) {
            if (!taken.contains(w)) spares.push_back(w);
        }
        XHEAL_ASSERT(!spares.empty());  // |all_free| >= units guarantees this
        NodeId w = rng_.pick(spares);
        assigned[i] = w;
        taken.insert(w);
    }

    // Materialize bridges: shared nodes physically join the deficient unit.
    struct Bridge {
        NodeId node;
        ColorId assoc;
    };
    std::vector<Bridge> bridges;
    bridges.reserve(units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
        NodeId w = assigned[i];
        XHEAL_ASSERT(w != graph::invalid_node);
        if (units[i].is_cloud()) {
            Cloud* cloud = registry_.find(units[i].cloud);
            XHEAL_ASSERT(cloud != nullptr);
            if (!cloud->has_member(w)) {
                insert_member_logged(g, units[i].cloud, w, report);
            }
            bridges.push_back({w, units[i].cloud});
        } else if (w == units[i].singleton) {
            bridges.push_back({w, graph::invalid_color});
        } else {
            // Share into a singleton: wrap it in a fresh 2-node primary
            // cloud with the borrowed free node as its bridge.
            std::vector<NodeId> pair_members{units[i].singleton, w};
            ColorId p = registry_.create_cloud(g, CloudKind::primary, pair_members, rng_,
                                               &report.edges_added);
            ++report.clouds_touched;
            events_.push_back(HealEvent{HealEvent::Kind::create_primary, p, pair_members,
                                        pair_members.size(), false, false});
            bridges.push_back({w, p});
        }
    }

    if (into_secondary != graph::invalid_color && registry_.exists(into_secondary)) {
        for (const Bridge& b : bridges) {
            insert_member_logged(g, into_secondary, b.node, report);
            registry_.find(into_secondary)->bridge_assoc[b.node] = b.assoc;
        }
        return;
    }

    if (bridges.size() < 2) return;  // single unit: nothing to connect
    std::vector<NodeId> bridge_nodes;
    bridge_nodes.reserve(bridges.size());
    for (const Bridge& b : bridges) bridge_nodes.push_back(b.node);
    ColorId f = registry_.create_cloud(g, CloudKind::secondary, bridge_nodes, rng_,
                                       &report.edges_added);
    Cloud* cloud = registry_.find(f);
    for (const Bridge& b : bridges) cloud->bridge_assoc[b.node] = b.assoc;
    ++report.clouds_touched;
    events_.push_back(HealEvent{HealEvent::Kind::create_secondary, f, bridge_nodes,
                                bridge_nodes.size(), false, false});
}

ColorId XhealHealer::combine_units(Graph& g, const std::vector<Unit>& units,
                                   RepairReport& report) {
    std::set<NodeId> members;
    std::set<ColorId> destroyed;
    for (const Unit& u : units) {
        if (u.is_cloud()) {
            const Cloud* cloud = registry_.find(u.cloud);
            if (cloud == nullptr) continue;
            for (NodeId m : cloud->members_sorted()) members.insert(m);
        } else {
            members.insert(u.singleton);
        }
    }
    for (const Unit& u : units) {
        if (u.is_cloud() && registry_.exists(u.cloud)) {
            destroyed.insert(u.cloud);
            registry_.destroy_cloud(g, u.cloud, &report.edges_removed);
            ++report.clouds_touched;
        }
    }
    std::vector<NodeId> member_list(members.begin(), members.end());
    if (member_list.size() < 2) {
        // A lone non-free singleton: nothing to merge. It is already held
        // by its own secondary cloud; no new cloud is needed.
        return graph::invalid_color;
    }
    ColorId combined = registry_.create_cloud(g, CloudKind::primary, member_list, rng_,
                                              &report.edges_added);
    ++report.clouds_touched;
    ++report.combines;
    report.combine_members += member_list.size();
    events_.push_back(HealEvent{HealEvent::Kind::combine, combined, member_list,
                                member_list.size(), false, false});

    // The paper's free-node replenishment: non-free nodes of the combined
    // clouds "become free again". A combined member bridging a *foreign*
    // secondary whose associated cloud just died now represents the merged
    // cloud D — one such bridge per foreign secondary suffices, the rest
    // are released (freed). Bridges for clouds that survive elsewhere keep
    // their roles. Without this, targeted bridge deletions starve the
    // system of free nodes and combines cascade (the Section 5(c)
    // amortization depends on it).
    std::set<ColorId> foreign;
    for (NodeId m : member_list) {
        auto sec = registry_.secondary_cloud_of(m);
        if (sec.has_value()) foreign.insert(*sec);
    }
    for (ColorId f_color : foreign) {
        Cloud* f = registry_.find(f_color);
        if (f == nullptr) continue;
        std::vector<NodeId> stale;
        for (NodeId m : member_list) {
            if (!f->has_member(m)) continue;
            auto it = f->bridge_assoc.find(m);
            ColorId assoc = it == f->bridge_assoc.end() ? graph::invalid_color : it->second;
            bool assoc_alive = assoc != graph::invalid_color && registry_.exists(assoc) &&
                               !destroyed.contains(assoc);
            if (!assoc_alive) stale.push_back(m);
        }
        if (stale.empty()) continue;
        // Keep the first stale bridge as D's representative in f.
        f->bridge_assoc[stale.front()] = combined;
        for (std::size_t i = 1; i < stale.size(); ++i) {
            if (f->size() <= 2) break;  // keep f alive; its members stay bridges
            registry_.remove_member(g, f_color, stale[i], rng_,
                                    /*deleted_from_graph=*/false, &report.edges_added,
                                    &report.edges_removed);
            ++report.clouds_touched;
        }
    }
    return combined;
}

NodeId XhealHealer::remove_member_logged(Graph& g, ColorId c, NodeId v,
                                         RepairReport& report) {
    Cloud* cloud = registry_.find(c);
    XHEAL_ASSERT(cloud != nullptr);
    bool leader_deleted = cloud->leader == v;
    std::size_t rebuilds_before = cloud->rebuild_count;
    NodeId survivor = registry_.remove_member(g, c, v, rng_, /*deleted_from_graph=*/true,
                                              &report.edges_added, &report.edges_removed);
    ++report.clouds_touched;
    if (!registry_.exists(c)) {
        HealEvent ev;
        ev.kind = HealEvent::Kind::dissolve_cloud;
        ev.color = c;
        if (survivor != graph::invalid_node) ev.members = {survivor};
        events_.push_back(std::move(ev));
        return survivor;
    }
    Cloud* after = registry_.find(c);
    HealEvent ev;
    ev.kind = HealEvent::Kind::fix_cloud;
    ev.color = c;
    ev.cloud_size = after->size();
    ev.leader_was_deleted = leader_deleted;
    ev.rebuilt = after->rebuild_count > rebuilds_before;
    if (ev.rebuilt) ++report.rebuilds;
    events_.push_back(std::move(ev));
    return survivor;
}

void XhealHealer::insert_member_logged(Graph& g, ColorId c, NodeId w,
                                       RepairReport& report) {
    registry_.insert_member(g, c, w, rng_, &report.edges_added, &report.edges_removed);
    ++report.clouds_touched;
    HealEvent ev;
    ev.kind = HealEvent::Kind::insert_member;
    ev.color = c;
    ev.members = {w};
    ev.cloud_size = registry_.find(c)->size();
    events_.push_back(std::move(ev));
}

}  // namespace xheal::core
