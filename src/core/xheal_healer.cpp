#include "core/xheal_healer.hpp"

#include <algorithm>

#include "util/expects.hpp"
#include "util/sorted_vec.hpp"

namespace xheal::core {

using graph::ColorId;
using graph::Graph;
using graph::NodeId;

XhealHealer::XhealHealer(XhealConfig config)
    : config_(config),
      registry_(config.d, config.rebuild_on_half_loss),
      rng_(config.seed) {}

void XhealHealer::check_consistency(const Graph& g) const { registry_.verify(g); }

void XhealHealer::on_compact(Graph& g, const std::vector<NodeId>& old_to_new) {
    // Compaction only fires on a fully healed graph: a batch in flight would
    // park old-numbering singleton units that the flush could not resolve.
    XHEAL_EXPECTS(pending_units_.empty());
    // The event log describes pre-compaction repairs in the old numbering;
    // retire it rather than remap it (consumers read it per-repair).
    recycle_events();
    registry_.remap_ids(old_to_new, g.node_count());
    // Deliberately no rng_ draw: replay reproduces repairs by consuming the
    // identical draw sequence, and compaction is a pure renumbering.
}

RepairReport XhealHealer::on_delete(Graph& g, NodeId v) {
    RepairReport report;
    recycle_events();
    repair(g, v, report, nullptr);
    return report;
}

RepairReport XhealHealer::on_delete_staged(Graph& g, NodeId v) {
    RepairReport report;
    recycle_events();
    repair(g, v, report, &pending_units_);
    return report;
}

RepairReport XhealHealer::flush_staged(Graph& g) {
    RepairReport report;
    recycle_events();
    if (pending_units_.empty()) return report;
    // Units parked earlier in the batch may reference nodes a later victim
    // took down (the victim itself, or a dissolved 2-cloud's survivor).
    std::erase_if(pending_units_, [&](const Unit& u) {
        return !u.is_cloud() && !g.has_node(u.singleton);
    });
    dedupe_units_inplace(pending_units_);
    connect_units(g, pending_units_, graph::invalid_color, report);
    pending_units_.clear();
    return report;
}

void XhealHealer::repair(Graph& g, NodeId v, RepairReport& report,
                         std::vector<Unit>* defer) {
    XHEAL_EXPECTS(g.has_node(v));

    // ---- snapshot v's situation before anything is torn down ----
    registry_.primary_clouds_of(v, prim_);
    std::optional<ColorId> sec = registry_.secondary_cloud_of(v);
    ColorId assoc_of_v = graph::invalid_color;
    if (sec.has_value()) assoc_of_v = registry_.find(*sec)->bridge_assoc_of(v);
    black_nbrs_.clear();
    for (const auto& [u, claims] : g.row(v)) {
        if (!claims.colored()) black_nbrs_.push_back(u);
    }

    // ---- the adversary's deletion takes effect ----
    g.remove_node(v);

    // ---- Case 1: v belonged to no cloud (all deleted edges black) ----
    if (prim_.empty() && !sec.has_value()) {
        if (black_nbrs_.size() >= 2) {
            ColorId c = registry_.create_cloud(g, CloudKind::primary, black_nbrs_, rng_,
                                               &report.edges_added);
            ++report.clouds_touched;
            HealEvent& ev = push_event(HealEvent::Kind::create_primary, c);
            ev.members.assign(black_nbrs_.begin(), black_nbrs_.end());
            ev.cloud_size = black_nbrs_.size();
        }
        return;
    }

    // ---- FixPrimary: every affected primary cloud repairs its expander ----
    survivors_.clear();  // lone remnants of dissolved 2-clouds
    for (ColorId c : prim_) {
        NodeId survivor = remove_member_logged(g, c, v, report);
        if (survivor != graph::invalid_node) survivors_.push_back(survivor);
    }

    // ---- Remove v from its secondary cloud (if any) ----
    NodeId f_survivor = graph::invalid_node;
    bool f_alive = false;
    if (sec.has_value()) {
        f_survivor = remove_member_logged(g, *sec, v, report);
        f_alive = registry_.exists(*sec);
    }

    // ---- Case 2.2: repair the secondary cloud's bridge structure ----
    secfix_.clear();
    if (sec.has_value() && f_alive) {
        fix_secondary(g, *sec, assoc_of_v, report, secfix_);
    }

    // ---- assemble the units the new secondary must connect ----
    units_.clear();
    for (ColorId c : prim_) {
        if (!registry_.exists(c)) continue;  // dissolved or combined away
        if (util::sorted_contains(secfix_.connected, c)) continue;  // through F
        units_.push_back(Unit::of_cloud(c));
    }
    for (NodeId s : survivors_) {
        if (g.has_node(s)) units_.push_back(Unit::of_node(s));
    }
    for (NodeId b : black_nbrs_) units_.push_back(Unit::of_node(b));
    if (f_survivor != graph::invalid_node && g.has_node(f_survivor)) {
        // F dissolved when v left: its last bridge is now free and its side
        // must be reconnected like any other unit.
        units_.push_back(Unit::of_node(f_survivor));
    }

    dedupe_units_inplace(units_);
    if (units_.empty()) return;

    if (secfix_.representative.has_value()) {
        units_.push_back(*secfix_.representative);
        dedupe_units_inplace(units_);
        if (defer != nullptr) {
            defer->insert(defer->end(), units_.begin(), units_.end());
            return;
        }
        connect_units(g, units_, graph::invalid_color, report);
    } else if (secfix_.insert_into != graph::invalid_color &&
               registry_.exists(secfix_.insert_into)) {
        // Growing an existing secondary is a local splice — do it now even
        // in batched mode (only fresh-secondary construction is deferred).
        connect_units(g, units_, secfix_.insert_into, report);
    } else {
        if (defer != nullptr) {
            defer->insert(defer->end(), units_.begin(), units_.end());
            return;
        }
        connect_units(g, units_, graph::invalid_color, report);
    }
}

void XhealHealer::fix_secondary(Graph& g, ColorId f_color, ColorId assoc_of_v,
                                RepairReport& report, SecondaryFix& fix) {
    Cloud* f = registry_.find(f_color);
    XHEAL_ASSERT(f != nullptr);

    if (assoc_of_v != graph::invalid_color && registry_.exists(assoc_of_v)) {
        // v bridged for primary cloud Ci: find a replacement free node z.
        live_assocs_of(*f, donors_);
        donors_.erase(std::remove(donors_.begin(), donors_.end(), assoc_of_v),
                      donors_.end());
        NodeId z = pick_free_node(g, assoc_of_v, donors_, report);
        if (z != graph::invalid_node) {
            insert_member_logged(g, f_color, z, report);
            registry_.find(f_color)->set_bridge_assoc(z, assoc_of_v);
        } else {
            // No free node anywhere among F's primary clouds: combine them
            // all into one primary cloud; F's edges are deleted and its
            // bridges become free again (paper Case 2.2 / Case 2.1 rule).
            fix_to_combine_.clear();
            live_assocs_of(*f, assocs_);
            for (ColorId c : assocs_) fix_to_combine_.push_back(Unit::of_cloud(c));
            for (const auto& [bridge, assoc] : f->bridge_assoc) {
                if (assoc == graph::invalid_color || !registry_.exists(assoc)) {
                    fix_to_combine_.push_back(Unit::of_node(bridge));
                }
            }
            registry_.destroy_cloud(g, f_color, &report.edges_removed);
            ++report.clouds_touched;
            dedupe_units_inplace(fix_to_combine_);
            ColorId combined = combine_units(g, fix_to_combine_, report);
            fix.representative = Unit::of_cloud(combined);
            return;  // F is gone; `connected` stays empty
        }
    }
    // F survives (possibly just shrunk if v had no live association).
    Cloud* f_now = registry_.find(f_color);
    XHEAL_ASSERT(f_now != nullptr);
    live_assocs_of(*f_now, assocs_);
    fix.connected.assign(assocs_.begin(), assocs_.end());

    // Choose a representative unit on F's side for reconnecting leftover
    // clouds: prefer v's own primary, else any live primary of F.
    ColorId rep = graph::invalid_color;
    if (assoc_of_v != graph::invalid_color && registry_.exists(assoc_of_v)) {
        rep = assoc_of_v;
    } else if (!assocs_.empty()) {
        rep = assocs_.front();
    }
    if (rep != graph::invalid_color) {
        fix.representative = Unit::of_cloud(rep);
    } else {
        fix.insert_into = f_color;  // fall back to growing F directly
    }
}

NodeId XhealHealer::pick_free_node(Graph& g, ColorId ci,
                                   const std::vector<ColorId>& donor_clouds,
                                   RepairReport& report) {
    registry_.free_members_of(ci, free_scratch_);
    if (!free_scratch_.empty()) return rng_.pick(free_scratch_);
    // Sharing: borrow a free node from a donor cloud and physically add it
    // to ci so it can serve as ci's bridge (paper Section 3).
    for (ColorId donor : donor_clouds) {
        if (!registry_.exists(donor)) continue;
        registry_.free_members_of(donor, free_scratch_);
        // The borrowed node must not already sit inside ci.
        std::erase_if(free_scratch_, [&](NodeId w) {
            return registry_.find(ci)->has_member(w);
        });
        if (free_scratch_.empty()) continue;
        NodeId w = rng_.pick(free_scratch_);
        insert_member_logged(g, ci, w, report);
        return w;
    }
    return graph::invalid_node;
}

void XhealHealer::dedupe_units_inplace(std::vector<Unit>& units) {
    units_tmp_.assign(units.begin(), units.end());
    units.clear();
    seen_clouds_.clear();
    seen_nodes_.clear();
    // First pass: cloud units.
    for (const Unit& u : units_tmp_) {
        if (!u.is_cloud()) continue;
        if (!registry_.exists(u.cloud)) continue;
        if (util::sorted_insert(seen_clouds_, u.cloud)) units.push_back(u);
    }
    // Second pass: singletons not already covered by a listed cloud.
    for (const Unit& u : units_tmp_) {
        if (u.is_cloud()) continue;
        if (!util::sorted_insert(seen_nodes_, u.singleton)) continue;
        bool covered = false;
        for (ColorId c : seen_clouds_) {
            const Cloud* cloud = registry_.find(c);
            if (cloud != nullptr && cloud->has_member(u.singleton)) {
                covered = true;
                break;
            }
        }
        if (!covered) units.push_back(u);
    }
}

void XhealHealer::connect_units(Graph& g, const std::vector<Unit>& units,
                                ColorId into_secondary, RepairReport& report) {
    if (units.empty()) return;
    if (units.size() == 1 && into_secondary == graph::invalid_color) return;

    // Candidate free nodes per unit. (Flat sorted vectors below stand in for
    // the std::sets of the original implementation; iteration order — hence
    // the rng draw sequence — is identical.)
    if (cu_candidates_.size() < units.size()) cu_candidates_.resize(units.size());
    all_free_.clear();
    for (std::size_t i = 0; i < units.size(); ++i) {
        std::vector<NodeId>& cand = cu_candidates_[i];
        if (units[i].is_cloud()) {
            registry_.free_members_of(units[i].cloud, cand);
        } else {
            cand.clear();
            if (registry_.is_free(units[i].singleton)) cand.push_back(units[i].singleton);
        }
        for (NodeId w : cand) util::sorted_insert(all_free_, w);
    }

    // The paper's combine rule: fewer distinct free nodes than units means
    // a secondary cloud cannot be built — merge everything into one
    // primary cloud instead.
    if (all_free_.size() < units.size()) {
        ColorId combined = combine_units(g, units, report);
        if (combined != graph::invalid_color && into_secondary != graph::invalid_color &&
            registry_.exists(into_secondary)) {
            // We were asked to hang the units off an existing secondary;
            // attach the combined cloud if it still has a free node.
            // (Connectivity fallback; see DESIGN.md decision 3.)
            registry_.free_members_of(combined, free_scratch_);
            if (!free_scratch_.empty()) {
                NodeId w = rng_.pick(free_scratch_);
                insert_member_logged(g, into_secondary, w, report);
                registry_.find(into_secondary)->set_bridge_assoc(w, combined);
            }
        }
        return;
    }

    // Assign one distinct free node per unit: greedy by scarcity, sharing
    // spares into deficient units. Count guarantees success.
    order_.resize(units.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
        if (cu_candidates_[a].size() != cu_candidates_[b].size())
            return cu_candidates_[a].size() < cu_candidates_[b].size();
        return a < b;
    });

    taken_.clear();
    assigned_.assign(units.size(), graph::invalid_node);
    deficient_.clear();
    for (std::size_t i : order_) {
        open_.clear();
        for (NodeId w : cu_candidates_[i]) {
            if (!util::sorted_contains(taken_, w)) open_.push_back(w);
        }
        if (open_.empty()) {
            deficient_.push_back(i);
            continue;
        }
        NodeId w = rng_.pick(open_);
        assigned_[i] = w;
        util::sorted_insert(taken_, w);
    }
    for (std::size_t i : deficient_) {
        spares_.clear();
        for (NodeId w : all_free_) {
            if (!util::sorted_contains(taken_, w)) spares_.push_back(w);
        }
        XHEAL_ASSERT(!spares_.empty());  // |all_free| >= units guarantees this
        NodeId w = rng_.pick(spares_);
        assigned_[i] = w;
        util::sorted_insert(taken_, w);
    }

    // Materialize bridges: shared nodes physically join the deficient unit.
    bridges_.clear();
    for (std::size_t i = 0; i < units.size(); ++i) {
        NodeId w = assigned_[i];
        XHEAL_ASSERT(w != graph::invalid_node);
        if (units[i].is_cloud()) {
            Cloud* cloud = registry_.find(units[i].cloud);
            XHEAL_ASSERT(cloud != nullptr);
            if (!cloud->has_member(w)) {
                insert_member_logged(g, units[i].cloud, w, report);
            }
            bridges_.push_back({w, units[i].cloud});
        } else if (w == units[i].singleton) {
            bridges_.push_back({w, graph::invalid_color});
        } else {
            // Share into a singleton: wrap it in a fresh 2-node primary
            // cloud with the borrowed free node as its bridge.
            pair_members_.clear();
            pair_members_.push_back(units[i].singleton);
            pair_members_.push_back(w);
            ColorId p = registry_.create_cloud(g, CloudKind::primary, pair_members_, rng_,
                                               &report.edges_added);
            ++report.clouds_touched;
            HealEvent& ev = push_event(HealEvent::Kind::create_primary, p);
            ev.members.assign(pair_members_.begin(), pair_members_.end());
            ev.cloud_size = pair_members_.size();
            bridges_.push_back({w, p});
        }
    }

    if (into_secondary != graph::invalid_color && registry_.exists(into_secondary)) {
        for (const auto& [node, assoc] : bridges_) {
            insert_member_logged(g, into_secondary, node, report);
            registry_.find(into_secondary)->set_bridge_assoc(node, assoc);
        }
        return;
    }

    if (bridges_.size() < 2) return;  // single unit: nothing to connect
    bridge_nodes_.clear();
    for (const auto& [node, assoc] : bridges_) bridge_nodes_.push_back(node);
    ColorId fcol = registry_.create_cloud(g, CloudKind::secondary, bridge_nodes_, rng_,
                                          &report.edges_added);
    Cloud* cloud = registry_.find(fcol);
    for (const auto& [node, assoc] : bridges_) cloud->set_bridge_assoc(node, assoc);
    ++report.clouds_touched;
    HealEvent& ev = push_event(HealEvent::Kind::create_secondary, fcol);
    ev.members.assign(bridge_nodes_.begin(), bridge_nodes_.end());
    ev.cloud_size = bridge_nodes_.size();
}

ColorId XhealHealer::combine_units(Graph& g, const std::vector<Unit>& units,
                                   RepairReport& report) {
    comb_members_.clear();
    comb_destroyed_.clear();
    for (const Unit& u : units) {
        if (u.is_cloud()) {
            const Cloud* cloud = registry_.find(u.cloud);
            if (cloud == nullptr) continue;
            for (NodeId m : cloud->topology.members()) {
                util::sorted_insert(comb_members_, m);
            }
        } else {
            util::sorted_insert(comb_members_, u.singleton);
        }
    }
    for (const Unit& u : units) {
        if (u.is_cloud() && registry_.exists(u.cloud)) {
            util::sorted_insert(comb_destroyed_, u.cloud);
            registry_.destroy_cloud(g, u.cloud, &report.edges_removed);
            ++report.clouds_touched;
        }
    }
    if (comb_members_.size() < 2) {
        // A lone non-free singleton: nothing to merge. It is already held
        // by its own secondary cloud; no new cloud is needed.
        return graph::invalid_color;
    }
    ColorId combined = registry_.create_cloud(g, CloudKind::primary, comb_members_, rng_,
                                              &report.edges_added);
    ++report.clouds_touched;
    ++report.combines;
    report.combine_members += comb_members_.size();
    {
        HealEvent& ev = push_event(HealEvent::Kind::combine, combined);
        ev.members.assign(comb_members_.begin(), comb_members_.end());
        ev.cloud_size = comb_members_.size();
    }

    // The paper's free-node replenishment: non-free nodes of the combined
    // clouds "become free again". A combined member bridging a *foreign*
    // secondary whose associated cloud just died now represents the merged
    // cloud D — one such bridge per foreign secondary suffices, the rest
    // are released (freed). Bridges for clouds that survive elsewhere keep
    // their roles. Without this, targeted bridge deletions starve the
    // system of free nodes and combines cascade (the Section 5(c)
    // amortization depends on it).
    foreign_.clear();
    for (NodeId m : comb_members_) {
        auto sec = registry_.secondary_cloud_of(m);
        if (sec.has_value()) util::sorted_insert(foreign_, *sec);
    }
    for (ColorId f_color : foreign_) {
        Cloud* f = registry_.find(f_color);
        if (f == nullptr) continue;
        stale_.clear();
        for (NodeId m : comb_members_) {
            if (!f->has_member(m)) continue;
            ColorId assoc = f->bridge_assoc_of(m);
            bool assoc_alive = assoc != graph::invalid_color && registry_.exists(assoc) &&
                               !util::sorted_contains(comb_destroyed_, assoc);
            if (!assoc_alive) stale_.push_back(m);
        }
        if (stale_.empty()) continue;
        // Keep the first stale bridge as D's representative in f.
        f->set_bridge_assoc(stale_.front(), combined);
        for (std::size_t i = 1; i < stale_.size(); ++i) {
            if (f->size() <= 2) break;  // keep f alive; its members stay bridges
            registry_.remove_member(g, f_color, stale_[i], rng_,
                                    /*deleted_from_graph=*/false, &report.edges_added,
                                    &report.edges_removed);
            ++report.clouds_touched;
        }
    }
    return combined;
}

NodeId XhealHealer::remove_member_logged(Graph& g, ColorId c, NodeId v,
                                         RepairReport& report) {
    Cloud* cloud = registry_.find(c);
    XHEAL_ASSERT(cloud != nullptr);
    bool leader_deleted = cloud->leader == v;
    std::size_t rebuilds_before = cloud->rebuild_count;
    NodeId survivor = registry_.remove_member(g, c, v, rng_, /*deleted_from_graph=*/true,
                                              &report.edges_added, &report.edges_removed);
    ++report.clouds_touched;
    if (!registry_.exists(c)) {
        HealEvent& ev = push_event(HealEvent::Kind::dissolve_cloud, c);
        if (survivor != graph::invalid_node) ev.members.push_back(survivor);
        return survivor;
    }
    const Cloud* after = registry_.find(c);
    HealEvent& ev = push_event(HealEvent::Kind::fix_cloud, c);
    ev.cloud_size = after->size();
    ev.leader_was_deleted = leader_deleted;
    ev.rebuilt = after->rebuild_count > rebuilds_before;
    if (ev.rebuilt) ++report.rebuilds;
    return survivor;
}

void XhealHealer::insert_member_logged(Graph& g, ColorId c, NodeId w,
                                       RepairReport& report) {
    registry_.insert_member(g, c, w, rng_, &report.edges_added, &report.edges_removed);
    ++report.clouds_touched;
    HealEvent& ev = push_event(HealEvent::Kind::insert_member, c);
    ev.members.push_back(w);
    ev.cloud_size = registry_.find(c)->size();
}

void XhealHealer::live_assocs_of(const Cloud& f, std::vector<ColorId>& out) const {
    out.clear();
    for (const auto& [bridge, assoc] : f.bridge_assoc) {
        (void)bridge;
        if (assoc != graph::invalid_color && registry_.exists(assoc)) out.push_back(assoc);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

HealEvent& XhealHealer::push_event(HealEvent::Kind kind, ColorId color) {
    HealEvent ev;
    ev.kind = kind;
    ev.color = color;
    ev.members = take_members();
    events_.push_back(std::move(ev));
    return events_.back();
}

void XhealHealer::recycle_events() {
    for (HealEvent& ev : events_) {
        ev.members.clear();
        member_pool_.push_back(std::move(ev.members));
    }
    events_.clear();
}

std::vector<NodeId> XhealHealer::take_members() {
    if (member_pool_.empty()) return {};
    std::vector<NodeId> out = std::move(member_pool_.back());
    member_pool_.pop_back();
    return out;
}

}  // namespace xheal::core
