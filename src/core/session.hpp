// HealingSession drives the insert/delete/repair loop of the paper's model
// (Fig. 1): it owns the healed graph G_t, maintains the insert-only
// reference graph G'_t (original nodes + adversarial insertions, deletions
// ignored), applies adversary events and invokes the healer, accumulating
// repair accounting and the A(p) statistic of Lemma 5.
#pragma once

#include <memory>
#include <vector>

#include "core/healer.hpp"
#include "graph/graph.hpp"
#include "util/stats.hpp"

namespace xheal::core {

class HealingSession {
public:
    /// Takes ownership of the healer. `initial` becomes both G_0 and G'_0.
    HealingSession(graph::Graph initial, std::unique_ptr<Healer> healer);

    /// The healed graph G_t.
    const graph::Graph& current() const { return g_; }
    /// The insert-only reference graph G'_t (deleted nodes remain).
    const graph::Graph& reference() const { return ref_; }

    Healer& healer() { return *healer_; }
    const Healer& healer() const { return *healer_; }

    /// Adversary inserts a node attached (with black edges) to `neighbors`,
    /// which must all be alive. Returns the new node's id (identical in G
    /// and G').
    graph::NodeId insert_node(const std::vector<graph::NodeId>& neighbors);

    /// Adversary deletes alive node v; the healer repairs. Returns the
    /// repair accounting.
    RepairReport delete_node(graph::NodeId v);

    /// Batched variant: delete v but let the healer defer its global
    /// reconnection work until flush_staged() (Healer::on_delete_staged).
    /// Every staged run must be terminated by a flush before the graph is
    /// observed.
    RepairReport stage_delete(graph::NodeId v);

    /// Complete the repair work deferred by stage_delete. Safe to call with
    /// nothing staged (no-op report).
    RepairReport flush_staged();

    /// Turn on the structure journals of both graphs (current + reference)
    /// with the given overflow limit, for incremental probe snapshots.
    void enable_graph_journals(std::size_t limit) {
        g_.set_journal_limit(limit);
        ref_.set_journal_limit(limit);
    }

    /// Id-compaction epoch (DESIGN.md decision 12). Purges graph-deleted
    /// nodes out of the reference graph (their G' degrees were consumed by
    /// the A(p) statistic at deletion time; the reference-edge guarantee
    /// only covers edges between survivors), then remaps the live ids of
    /// both graphs densely via the shared ascending map, rebuilds the alive
    /// pool, notifies the healer (Healer::on_compact) and re-validates the
    /// claim mirror + reference-edge invariants on the renumbered graphs.
    /// Requires a fully healed graph: no staged deletions pending. Returns
    /// the applied old->new map (owned scratch, valid until the next
    /// compact) so probe engines can permute warm-start state.
    const std::vector<graph::NodeId>& compact();

    std::size_t deletions() const { return deletions_; }
    std::size_t insertions() const { return insertions_; }
    const RepairReport& totals() const { return totals_; }

    /// A(p) of Lemma 5: average black-degree (degree in G'_t at deletion
    /// time) of the deleted nodes. The best-possible amortized message cost.
    double average_deleted_black_degree() const { return deleted_black_degree_.mean(); }
    const util::RunningStats& deleted_black_degree_stats() const {
        return deleted_black_degree_;
    }

    /// Amortized messages per deletion (distributed healers; 0 otherwise).
    double amortized_messages() const;

    /// Incrementally-maintained pool of alive node ids, in arbitrary (but
    /// deterministic) order. O(1) per insert/delete to keep current; the
    /// sampling substrate for adversary strategies — no per-pick
    /// materialization. Ordered traversals should use current().nodes().
    const std::vector<graph::NodeId>& alive_pool() const { return alive_; }

    /// Deprecated materializing shim: copies the pool. Kept for tests and
    /// old examples; new code should sample alive_pool() directly.
    std::vector<graph::NodeId> alive_nodes() const { return alive_; }

private:
    graph::Graph g_;
    graph::Graph ref_;
    std::unique_ptr<Healer> healer_;
    RepairReport totals_;
    std::size_t deletions_ = 0;
    std::size_t insertions_ = 0;
    util::RunningStats deleted_black_degree_;
    // Swap-remove pool: alive_[pool_pos_[v]] == v for every alive v.
    std::vector<graph::NodeId> alive_;
    std::vector<std::size_t> pool_pos_;
    // Compaction scratch: the old->new map of the latest epoch, reused so
    // steady-state compaction allocates nothing once grown.
    std::vector<graph::NodeId> compact_map_;
};

}  // namespace xheal::core
