// Invariant checks asserted by tests and failure-injection runs. Every
// check throws util::ContractViolation with a description on failure.
#pragma once

#include "core/session.hpp"
#include "graph/graph.hpp"

namespace xheal::core {

/// Adjacency mirror symmetry, claim mirror equality, edge-count agreement,
/// no self-loops, every edge has at least one claim.
void check_graph_consistency(const graph::Graph& g);

/// Every G' edge whose endpoints are both alive in g is present in g
/// (multi-claim design guarantee; DESIGN.md decision 1).
void check_reference_edges_present(const graph::Graph& g, const graph::Graph& ref);

/// The healed graph is connected.
void check_connected(const graph::Graph& g);

/// Lemma 3 bound: degree_G(v) <= kappa * degree_G'(v) + 2*kappa for every
/// alive node with positive reference degree.
void check_degree_bound(const graph::Graph& g, const graph::Graph& ref, std::size_t kappa);

/// All of the above plus the healer's internal consistency check.
void check_session(const HealingSession& session, std::size_t kappa);

}  // namespace xheal::core
