// Invariant checks asserted by tests and failure-injection runs. Every
// check throws util::ContractViolation with a description on failure.
// InvariantSuite bundles the same checks into a non-throwing oracle set for
// the trace-forensics layer (trace_tools), which must keep executing after
// a violation to record *where* a candidate event stream went wrong.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "graph/graph.hpp"

namespace xheal::core {

/// Adjacency mirror symmetry, claim mirror equality, edge-count agreement,
/// no self-loops, every edge has at least one claim.
void check_graph_consistency(const graph::Graph& g);

/// Every G' edge whose endpoints are both alive in g is present in g
/// (multi-claim design guarantee; DESIGN.md decision 1).
void check_reference_edges_present(const graph::Graph& g, const graph::Graph& ref);

/// The healed graph is connected.
void check_connected(const graph::Graph& g);

/// Lemma 3 bound: degree_G(v) <= kappa * degree_G'(v) + 2*kappa for every
/// alive node with positive reference degree.
void check_degree_bound(const graph::Graph& g, const graph::Graph& ref, std::size_t kappa);

/// All of the above plus the healer's internal consistency check.
void check_session(const HealingSession& session, std::size_t kappa);

/// One oracle failure observed by InvariantSuite: which oracle fired and
/// the contract message it produced.
struct InvariantFinding {
    std::string oracle;
    std::string message;
};

/// The reusable, non-throwing oracle bundle behind trace-driven fuzzing and
/// shrinking (and any other caller that wants "did anything break?" instead
/// of an exception). Each enabled oracle converts a ContractViolation into
/// an InvariantFinding; callers decide what a finding means.
///
/// Oracles are split by cost so callers can run the structural set after
/// every event and the spectral set only at a coarser cadence:
///   structural — claim-mirror/graph consistency, reference-edge presence,
///                connectivity, the Lemma 3 degree bound (xheal-family
///                healers; disable for baselines, whose degree is unbounded
///                by design), the healer's own deep self-check, plus any
///                registered hooks (e.g. allocation-soak counters).
///   spectral   — lambda2 floor through a caller-supplied probe (the PR 3
///                sparse ProbeEngine in trace_tools), enabled by
///                set_lambda2_floor.
class InvariantSuite {
public:
    explicit InvariantSuite(std::size_t kappa = 1) : kappa_(kappa) {}

    std::size_t kappa() const { return kappa_; }

    /// The degree-bound oracle asserts Lemma 3, which only the xheal family
    /// guarantees; leave it off when executing against baseline healers.
    void enable_degree_bound(bool on) { degree_bound_ = on; }

    /// Enable the lambda2-floor oracle: `probe` computes lambda2 of the
    /// healed graph (trace_tools wires in spectral::ProbeEngine); a reading
    /// below `floor` is a finding. NaN floor disables.
    void set_lambda2_floor(double floor, std::function<double(const graph::Graph&)> probe) {
        lambda2_floor_ = floor;
        lambda2_probe_ = std::move(probe);
    }

    /// Register an extra per-check hook (soak counters, custom oracles).
    /// The hook returns an empty string to pass, or a failure description.
    void add_hook(std::string oracle,
                  std::function<std::string(const HealingSession&)> hook) {
        hooks_.push_back({std::move(oracle), std::move(hook)});
    }

    /// Run the cheap structural oracles, appending findings to `out`.
    void check_structural(const HealingSession& session,
                          std::vector<InvariantFinding>& out) const;

    /// Run the lambda2-floor oracle if configured (expensive at scale).
    void check_spectral(const HealingSession& session,
                        std::vector<InvariantFinding>& out) const;

    bool spectral_enabled() const {
        return lambda2_probe_ != nullptr && !std::isnan(lambda2_floor_);
    }

private:
    struct Hook {
        std::string oracle;
        std::function<std::string(const HealingSession&)> check;
    };

    std::size_t kappa_;
    bool degree_bound_ = true;
    double lambda2_floor_ = std::nan("");
    std::function<double(const graph::Graph&)> lambda2_probe_;
    std::vector<Hook> hooks_;
};

}  // namespace xheal::core
