// Distributed implementation of Xheal (paper Section 5).
//
// Repair decisions are computed by the embedded XhealHealer — in the paper,
// too, a cloud's randomly elected leader *locally* constructs the H-graph
// and informs members directly (NoN addressing) — while every communication
// phase of the protocol is replayed through a synchronous LOCAL-model
// network with real messages and rounds:
//
//   1. deletion notices to the deleted node's neighbors;
//   2. per affected cloud, H-graph DELETE splice repairs (O(kappa) msgs,
//      O(1) rounds), leader handover broadcasts when the leader died, and
//      full topology re-installs after half-loss rebuilds;
//   3. per new cloud, an O(log k)-round tournament leader election followed
//      by the leader installing the topology (O(kappa * k) messages);
//   4. per H-graph INSERT (sharing / bridge replacement), the O(1)
//      leader-query protocol;
//   5. per combine, a handler-driven BFS flood + convergecast over the
//      combined cloud's expander edges (O(log n) rounds, O(kappa * total)
//      messages) — the costly amortized operation.
//
// The network's message and round counters feed the Theorem 5 benches.
#pragma once

#include "core/xheal_healer.hpp"
#include "sim/network.hpp"

namespace xheal::core {

class DistributedXheal : public Healer {
public:
    explicit DistributedXheal(XhealConfig config = {});

    std::string_view name() const override { return "xheal-dist"; }
    void on_insert(graph::Graph& g, graph::NodeId v) override;
    RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
    void check_consistency(const graph::Graph& g) const override;

    const XhealHealer& inner() const { return inner_; }
    const CloudRegistry& registry() const { return inner_.registry(); }
    std::size_t kappa() const { return inner_.kappa(); }
    const sim::Network& network() const { return net_; }

    /// Rounds consumed by the most recent repair.
    std::size_t last_rounds() const { return last_rounds_; }
    /// Messages consumed by the most recent repair.
    std::uint64_t last_messages() const { return last_messages_; }

private:
    void ensure_attached(const graph::Graph& g);

    // Protocol phases; each posts real messages and steps the network.
    void phase_deletion_notice(graph::NodeId v, const std::vector<graph::NodeId>& nbrs);
    void phase_fix_cloud(const HealEvent& event);
    void phase_create_cloud(const HealEvent& event);
    void phase_insert_member(const HealEvent& event);
    void phase_dissolve(const HealEvent& event);
    void phase_combine(const HealEvent& event);

    /// Tournament election over `candidates`: ceil(log2 k) rounds, k-1
    /// messages. Returns the winner (lowest surviving index).
    graph::NodeId run_tournament(const std::vector<graph::NodeId>& candidates);

    /// Leader installs the cloud's current topology: two messages per edge
    /// (one to each endpoint), one round — the paper's O(kappa*k) install.
    void install_topology(graph::ColorId color);

    XhealHealer inner_;
    sim::Network net_;
    bool attached_ = false;
    std::size_t last_rounds_ = 0;
    std::uint64_t last_messages_ = 0;
};

}  // namespace xheal::core
