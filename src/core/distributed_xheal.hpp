// Distributed implementation of Xheal (paper Section 5).
//
// Repair decisions are computed by the embedded XhealHealer — in the paper,
// too, a cloud's randomly elected leader *locally* constructs the H-graph
// and informs members directly (NoN addressing) — while every communication
// phase of the protocol is replayed through a synchronous LOCAL-model
// network with real messages and rounds:
//
//   1. deletion notices to the deleted node's neighbors;
//   2. per affected cloud, H-graph DELETE splice repairs (O(kappa) msgs,
//      O(1) rounds), leader handover broadcasts when the leader died, and
//      full topology re-installs after half-loss rebuilds;
//   3. per new cloud, an O(log k)-round tournament leader election followed
//      by the leader installing the topology (O(kappa * k) messages);
//   4. per H-graph INSERT (sharing / bridge replacement), the O(1)
//      leader-query protocol;
//   5. per combine, a handler-driven BFS flood + convergecast over the
//      combined cloud's expander edges (O(log n) rounds, O(kappa * total)
//      messages) — the costly amortized operation.
//
// Lossy networks: the backend accepts a fault model (per-message drop
// probability + integer latency, see sim::FaultModel) and hardens every
// phase with an ack + timeout + bounded-retry protocol: batch sends carry
// sequence numbers, receivers acknowledge, and the driver re-posts unacked
// messages once the network drains, up to `retries` attempts per message.
// Because repair *decisions* are leader-local (the embedded XhealHealer),
// loss and latency change only the message/round/retry bill — a lossy run
// converges to the byte-identical repaired graph of its lossless twin. The
// lossless path stays on the historical fast path (no acks, no extra
// messages), so perfect-delivery counts are unchanged.
//
// The network's message and round counters feed the Theorem 5 benches.
#pragma once

#include <unordered_set>

#include "core/xheal_healer.hpp"
#include "sim/network.hpp"

namespace xheal::core {

/// Base fault configuration for the distributed backend (spec healer params
/// `drop=` / `latency=` / `retries=`); per-phase `drop=`/`latency=` keys
/// override the first two via set_network_faults.
struct DistFaultConfig {
    double drop = 0.0;        ///< per-message loss probability in [0, 1]
    std::size_t latency = 0;  ///< extra delivery delay in rounds
    std::size_t retries = 8;  ///< max re-sends per message before giving up
};

class DistributedXheal : public Healer {
public:
    explicit DistributedXheal(XhealConfig config = {}, DistFaultConfig faults = {});

    std::string_view name() const override { return "xheal-dist"; }
    void on_insert(graph::Graph& g, graph::NodeId v) override;
    RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
    void on_compact(graph::Graph& g,
                    const std::vector<graph::NodeId>& old_to_new) override;
    void check_consistency(const graph::Graph& g) const override;
    void set_network_faults(const NetFaults& faults) override;

    const XhealHealer& inner() const { return inner_; }
    const CloudRegistry& registry() const { return inner_.registry(); }
    std::size_t kappa() const { return inner_.kappa(); }
    const sim::Network& network() const { return net_; }

    /// Rounds consumed by the most recent repair.
    std::size_t last_rounds() const { return last_rounds_; }
    /// Messages consumed by the most recent repair.
    std::uint64_t last_messages() const { return last_messages_; }
    /// Loss-forced re-sends during the most recent repair.
    std::size_t last_retries() const { return last_retries_; }

private:
    void ensure_attached(const graph::Graph& g);
    bool lossy() const { return net_.fault_model().drop > 0.0; }

    /// The default per-node handler: collects acks into acked_ and answers
    /// ack-requesting messages. A no-op on every lossless-path message, so
    /// perfect-delivery counts match the historical sink behavior.
    sim::Handler protocol_handler();

    /// Post `batch` and drain the network. Lossless: plain post + run (one
    /// delivery round per latency hop, exactly the historical cost). Lossy:
    /// each message carries a fresh ack_seq; unacked messages are re-posted
    /// (billed as retries) up to the retry budget.
    void deliver_reliably(const std::vector<sim::Message>& batch);

    // Protocol phases; each posts real messages and steps the network.
    void phase_deletion_notice(graph::NodeId v, const std::vector<graph::NodeId>& nbrs);
    void phase_fix_cloud(const HealEvent& event);
    void phase_create_cloud(const HealEvent& event);
    void phase_insert_member(const HealEvent& event);
    void phase_dissolve(const HealEvent& event);
    void phase_combine(const HealEvent& event);

    /// Tournament election over `candidates`: ceil(log2 k) rounds, k-1
    /// messages. Returns the winner (lowest surviving index).
    graph::NodeId run_tournament(const std::vector<graph::NodeId>& candidates);

    /// Leader installs the cloud's current topology: two messages per edge
    /// (one to each endpoint), one round — the paper's O(kappa*k) install.
    void install_topology(graph::ColorId color);

    XhealHealer inner_;
    sim::Network net_;
    DistFaultConfig base_faults_;
    std::size_t max_retries_ = 8;
    bool attached_ = false;
    std::size_t last_rounds_ = 0;
    std::uint64_t last_messages_ = 0;
    std::size_t last_retries_ = 0;
    // Reliable-delivery state, reset per repair.
    std::uint64_t next_seq_ = 1;
    std::unordered_set<std::uint64_t> acked_;
    std::size_t retries_accum_ = 0;
};

}  // namespace xheal::core
