#include "core/cloud_registry.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace xheal::core {

using graph::ColorId;
using graph::Graph;
using graph::NodeId;

CloudRegistry::CloudRegistry(std::size_t d, bool rebuild_on_half_loss)
    : d_(d), rebuild_on_half_loss_(rebuild_on_half_loss) {
    XHEAL_EXPECTS(d >= 1);
}

ColorId CloudRegistry::create_cloud(Graph& g, CloudKind kind,
                                    const std::vector<NodeId>& members, util::Rng& rng,
                                    std::size_t* claims_added) {
    XHEAL_EXPECTS(members.size() >= 2);
    for (NodeId v : members) XHEAL_EXPECTS(g.has_node(v));
    if (kind == CloudKind::secondary) {
        for (NodeId v : members) XHEAL_EXPECTS(is_free(v));
    }

    ColorId color = next_color_++;
    auto cloud = std::make_unique<Cloud>(
        color, kind, expander::CloudTopology(members, d_, rng));
    for (NodeId v : cloud->members_sorted()) register_membership(v, color);
    Cloud& ref = *cloud;
    clouds_.emplace(color, std::move(cloud));
    sync_claims(g, ref, claims_added, nullptr);
    fix_leadership(ref, rng);
    return color;
}

void CloudRegistry::destroy_cloud(Graph& g, ColorId color, std::size_t* claims_removed) {
    Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    for (const auto& [u, v] : cloud->claimed) {
        if (g.has_node(u) && g.has_node(v)) {
            g.remove_color_claim(u, v, color);
            if (claims_removed != nullptr) ++*claims_removed;
        }
    }
    for (NodeId v : cloud->members_sorted()) unregister_membership(v, color);
    clouds_.erase(color);
}

NodeId CloudRegistry::remove_member(Graph& g, ColorId color, NodeId v, util::Rng& rng,
                                    bool deleted_from_graph, std::size_t* claims_added,
                                    std::size_t* claims_removed) {
    Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    XHEAL_EXPECTS(cloud->has_member(v));

    // Purge claims that touch v. If v is still in the graph the claims must
    // be physically released; if the adversary already deleted v the edges
    // are gone and only the mirror set needs cleaning.
    for (auto it = cloud->claimed.begin(); it != cloud->claimed.end();) {
        if (it->first == v || it->second == v) {
            if (!deleted_from_graph) {
                g.remove_color_claim(it->first, it->second, color);
                if (claims_removed != nullptr) ++*claims_removed;
            }
            it = cloud->claimed.erase(it);
        } else {
            ++it;
        }
    }
    unregister_membership(v, color);
    cloud->bridge_assoc.erase(v);

    if (cloud->size() <= 2) {
        // Dissolve: fewer than 2 members remain after v leaves.
        auto members = cloud->members_sorted();
        NodeId survivor = graph::invalid_node;
        for (NodeId m : members) {
            if (m != v) survivor = m;
        }
        // All remaining claims involve v only (a 2-member cloud has one
        // edge); release anything left for safety.
        for (const auto& [a, b] : cloud->claimed) {
            if (g.has_node(a) && g.has_node(b)) {
                g.remove_color_claim(a, b, color);
                if (claims_removed != nullptr) ++*claims_removed;
            }
        }
        if (survivor != graph::invalid_node) unregister_membership(survivor, color);
        clouds_.erase(color);
        return survivor;
    }

    cloud->topology.remove(v, rng);
    if (rebuild_on_half_loss_ && cloud->topology.needs_rebuild()) {
        cloud->topology.rebuild(rng);
        ++cloud->rebuild_count;
    }
    sync_claims(g, *cloud, claims_added, claims_removed);
    if (cloud->leader == v || cloud->vice_leader == v) fix_leadership(*cloud, rng);
    return graph::invalid_node;
}

void CloudRegistry::insert_member(Graph& g, ColorId color, NodeId v, util::Rng& rng,
                                  std::size_t* claims_added, std::size_t* claims_removed) {
    Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    XHEAL_EXPECTS(g.has_node(v));
    XHEAL_EXPECTS(!cloud->has_member(v));
    cloud->topology.insert(v, rng);
    register_membership(v, color);
    sync_claims(g, *cloud, claims_added, claims_removed);
}

Cloud* CloudRegistry::find(ColorId color) {
    auto it = clouds_.find(color);
    return it == clouds_.end() ? nullptr : it->second.get();
}

const Cloud* CloudRegistry::find(ColorId color) const {
    auto it = clouds_.find(color);
    return it == clouds_.end() ? nullptr : it->second.get();
}

std::vector<ColorId> CloudRegistry::primary_clouds_of(NodeId v) const {
    std::vector<ColorId> out;
    auto it = memberships_.find(v);
    if (it == memberships_.end()) return out;
    for (ColorId c : it->second) {
        const Cloud* cloud = find(c);
        if (cloud != nullptr && cloud->kind == CloudKind::primary) out.push_back(c);
    }
    return out;  // std::set iteration is already ascending
}

std::optional<ColorId> CloudRegistry::secondary_cloud_of(NodeId v) const {
    auto it = memberships_.find(v);
    if (it == memberships_.end()) return std::nullopt;
    for (ColorId c : it->second) {
        const Cloud* cloud = find(c);
        if (cloud != nullptr && cloud->kind == CloudKind::secondary) return c;
    }
    return std::nullopt;
}

std::vector<NodeId> CloudRegistry::free_members_of(ColorId color) const {
    const Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    std::vector<NodeId> out;
    for (NodeId v : cloud->members_sorted()) {
        if (is_free(v)) out.push_back(v);
    }
    return out;
}

std::vector<ColorId> CloudRegistry::colors() const {
    std::vector<ColorId> out;
    out.reserve(clouds_.size());
    for (const auto& [c, _] : clouds_) out.push_back(c);
    std::sort(out.begin(), out.end());
    return out;
}

bool CloudRegistry::in_any_cloud(NodeId v) const {
    auto it = memberships_.find(v);
    return it != memberships_.end() && !it->second.empty();
}

void CloudRegistry::sync_claims(Graph& g, Cloud& cloud, std::size_t* added,
                                std::size_t* removed) {
    auto edges = cloud.topology.edges();
    std::set<std::pair<NodeId, NodeId>> desired(edges.begin(), edges.end());

    for (auto it = cloud.claimed.begin(); it != cloud.claimed.end();) {
        if (!desired.contains(*it)) {
            g.remove_color_claim(it->first, it->second, cloud.color);
            if (removed != nullptr) ++*removed;
            it = cloud.claimed.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& [u, v] : desired) {
        if (cloud.claimed.contains({u, v})) continue;
        g.add_color_claim(u, v, cloud.color);
        cloud.claimed.emplace(u, v);
        if (added != nullptr) ++*added;
    }
}

void CloudRegistry::fix_leadership(Cloud& cloud, util::Rng& rng) {
    auto members = cloud.members_sorted();
    XHEAL_ASSERT(!members.empty());
    bool leader_alive = cloud.leader != graph::invalid_node &&
                        cloud.has_member(cloud.leader);
    if (!leader_alive) {
        // If the vice-leader survived it takes over (paper invariant d);
        // otherwise elect a fresh random leader.
        if (cloud.vice_leader != graph::invalid_node && cloud.has_member(cloud.vice_leader)) {
            cloud.leader = cloud.vice_leader;
            cloud.vice_leader = graph::invalid_node;
        } else {
            cloud.leader = members[rng.index(members.size())];
        }
    }
    bool vice_ok = cloud.vice_leader != graph::invalid_node &&
                   cloud.has_member(cloud.vice_leader) && cloud.vice_leader != cloud.leader;
    if (!vice_ok) {
        cloud.vice_leader = graph::invalid_node;
        if (members.size() >= 2) {
            do {
                cloud.vice_leader = members[rng.index(members.size())];
            } while (cloud.vice_leader == cloud.leader);
        }
    }
}

void CloudRegistry::register_membership(NodeId v, ColorId color) {
    memberships_[v].insert(color);
}

void CloudRegistry::unregister_membership(NodeId v, ColorId color) {
    auto it = memberships_.find(v);
    if (it == memberships_.end()) return;
    it->second.erase(color);
    if (it->second.empty()) memberships_.erase(it);
}

void CloudRegistry::verify(const Graph& g) const {
    for (const auto& [color, cloud] : clouds_) {
        XHEAL_ASSERT(cloud->color == color);
        XHEAL_ASSERT(cloud->size() >= 2);
        auto members = cloud->members_sorted();
        for (NodeId v : members) {
            XHEAL_ASSERT(g.has_node(v));
            auto it = memberships_.find(v);
            XHEAL_ASSERT(it != memberships_.end() && it->second.contains(color));
        }
        // Claims mirror the graph exactly and stay within the membership.
        auto edges = cloud->topology.edges();
        std::set<std::pair<NodeId, NodeId>> desired(edges.begin(), edges.end());
        XHEAL_ASSERT(desired == cloud->claimed);
        for (const auto& [u, v] : cloud->claimed) {
            XHEAL_ASSERT(cloud->has_member(u) && cloud->has_member(v));
            XHEAL_ASSERT(g.has_color_claim(u, v, color));
        }
        // Leadership invariant.
        XHEAL_ASSERT(cloud->leader != graph::invalid_node);
        XHEAL_ASSERT(cloud->has_member(cloud->leader));
        if (cloud->size() >= 2) {
            XHEAL_ASSERT(cloud->vice_leader != graph::invalid_node);
            XHEAL_ASSERT(cloud->has_member(cloud->vice_leader));
            XHEAL_ASSERT(cloud->vice_leader != cloud->leader);
        }
        if (cloud->kind == CloudKind::secondary) {
            for (const auto& [v, assoc] : cloud->bridge_assoc) {
                XHEAL_ASSERT(cloud->has_member(v));
                if (assoc != graph::invalid_color) {
                    const Cloud* prim = find(assoc);
                    // The associated primary may have been dissolved since;
                    // if alive it must be primary and contain the bridge.
                    if (prim != nullptr) {
                        XHEAL_ASSERT(prim->kind == CloudKind::primary);
                        XHEAL_ASSERT(prim->has_member(v));
                    }
                }
            }
        }
    }
    // Membership map has no dangling colors, and the "at most one secondary
    // cloud per node" invariant holds.
    for (const auto& [v, colors] : memberships_) {
        std::size_t secondary_count = 0;
        for (ColorId c : colors) {
            const Cloud* cloud = find(c);
            XHEAL_ASSERT(cloud != nullptr);
            XHEAL_ASSERT(cloud->has_member(v));
            if (cloud->kind == CloudKind::secondary) ++secondary_count;
        }
        XHEAL_ASSERT(secondary_count <= 1);
    }
    // Every color claim in the graph belongs to a live cloud that mirrors it.
    g.for_each_edge([&](NodeId u, NodeId v, const graph::EdgeClaims& claims) {
        for (ColorId c : claims.colors) {
            const Cloud* cloud = find(c);
            XHEAL_ASSERT(cloud != nullptr);
            XHEAL_ASSERT(cloud->claimed.contains({std::min(u, v), std::max(u, v)}));
        }
    });
}

}  // namespace xheal::core
