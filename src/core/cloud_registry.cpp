#include "core/cloud_registry.hpp"

#include <algorithm>

#include "util/expects.hpp"
#include "util/sorted_vec.hpp"

namespace xheal::core {

using graph::ColorId;
using graph::Graph;
using graph::NodeId;

CloudRegistry::CloudRegistry(std::size_t d, bool rebuild_on_half_loss)
    : d_(d), rebuild_on_half_loss_(rebuild_on_half_loss) {
    XHEAL_EXPECTS(d >= 1);
}

ColorId CloudRegistry::create_cloud(Graph& g, CloudKind kind,
                                    const std::vector<NodeId>& members, util::Rng& rng,
                                    std::size_t* claims_added) {
    XHEAL_EXPECTS(members.size() >= 2);
    for (NodeId v : members) XHEAL_EXPECTS(g.has_node(v));
    if (kind == CloudKind::secondary) {
        for (NodeId v : members) XHEAL_EXPECTS(is_free(v));
    }

    ColorId color = next_color_++;
    Cloud* cloud;
    if (!free_slots_.empty()) {
        // Arena path: revive a destroyed cloud in place. reset() clears the
        // bookkeeping and topology.reset consumes exactly the rng draws a
        // fresh construction would, so pooled and fresh clouds behave
        // identically.
        std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        cloud = pool_[slot].get();
        cloud->reset(color, kind);
        cloud->topology.reset(members, d_, rng);
        index_.push_back({color, slot});  // colors are monotone: stays sorted
    } else {
        std::uint32_t slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(std::make_unique<Cloud>(
            color, kind, expander::CloudTopology(members, d_, rng)));
        cloud = pool_[slot].get();
        index_.push_back({color, slot});
    }
    for (NodeId v : cloud->topology.members()) register_membership(v, color);
    sync_claims(g, *cloud, claims_added, nullptr);
    fix_leadership(*cloud, rng);
    return color;
}

std::size_t CloudRegistry::index_lower_bound(ColorId color) const {
    auto it = std::lower_bound(
        index_.begin(), index_.end(), color,
        [](const std::pair<ColorId, std::uint32_t>& e, ColorId c) { return e.first < c; });
    return static_cast<std::size_t>(it - index_.begin());
}

void CloudRegistry::release_cloud(ColorId color) {
    std::size_t at = index_lower_bound(color);
    XHEAL_ASSERT(at < index_.size() && index_[at].first == color);
    free_slots_.push_back(index_[at].second);
    index_.erase(index_.begin() + static_cast<std::ptrdiff_t>(at));
}

void CloudRegistry::destroy_cloud(Graph& g, ColorId color, std::size_t* claims_removed) {
    Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    for (const auto& [u, v] : cloud->claimed) {
        if (g.has_node(u) && g.has_node(v)) {
            g.remove_color_claim(u, v, color);
            if (claims_removed != nullptr) ++*claims_removed;
        }
    }
    for (NodeId v : cloud->topology.members()) unregister_membership(v, color);
    release_cloud(color);
}

NodeId CloudRegistry::remove_member(Graph& g, ColorId color, NodeId v, util::Rng& rng,
                                    bool deleted_from_graph, std::size_t* claims_added,
                                    std::size_t* claims_removed) {
    Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    XHEAL_EXPECTS(cloud->has_member(v));

    // Purge claims that touch v. If v is still in the graph the claims must
    // be physically released; if the adversary already deleted v the edges
    // are gone and only the mirror set needs cleaning. In-place compaction:
    // no allocation.
    auto keep = cloud->claimed.begin();
    for (auto it = cloud->claimed.begin(); it != cloud->claimed.end(); ++it) {
        if (it->first == v || it->second == v) {
            if (!deleted_from_graph) {
                g.remove_color_claim(it->first, it->second, color);
                if (claims_removed != nullptr) ++*claims_removed;
            }
        } else {
            *keep++ = *it;
        }
    }
    cloud->claimed.erase(keep, cloud->claimed.end());
    unregister_membership(v, color);
    if (deleted_from_graph) retire_membership_row(v);
    cloud->erase_bridge_assoc(v);

    if (cloud->size() <= 2) {
        // Dissolve: fewer than 2 members remain after v leaves.
        NodeId survivor = graph::invalid_node;
        for (NodeId m : cloud->topology.members()) {
            if (m != v) survivor = m;
        }
        // All remaining claims involve v only (a 2-member cloud has one
        // edge); release anything left for safety.
        for (const auto& [a, b] : cloud->claimed) {
            if (g.has_node(a) && g.has_node(b)) {
                g.remove_color_claim(a, b, color);
                if (claims_removed != nullptr) ++*claims_removed;
            }
        }
        if (survivor != graph::invalid_node) unregister_membership(survivor, color);
        release_cloud(color);
        return survivor;
    }

    delta_.clear();
    cloud->topology.remove(v, rng, &delta_);
    bool resync = delta_.full_resync;
    if (rebuild_on_half_loss_ && cloud->topology.needs_rebuild()) {
        cloud->topology.rebuild(rng);
        ++cloud->rebuild_count;
        resync = true;
    }
    if (resync) {
        sync_claims(g, *cloud, claims_added, claims_removed);
    } else {
        apply_splice(g, *cloud, claims_added, claims_removed);
    }
    if (cloud->leader == v || cloud->vice_leader == v) fix_leadership(*cloud, rng);
    return graph::invalid_node;
}

void CloudRegistry::insert_member(Graph& g, ColorId color, NodeId v, util::Rng& rng,
                                  std::size_t* claims_added, std::size_t* claims_removed) {
    Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    XHEAL_EXPECTS(g.has_node(v));
    XHEAL_EXPECTS(!cloud->has_member(v));
    delta_.clear();
    cloud->topology.insert(v, rng, &delta_);
    register_membership(v, color);
    if (delta_.full_resync) {
        sync_claims(g, *cloud, claims_added, claims_removed);
    } else {
        apply_splice(g, *cloud, claims_added, claims_removed);
    }
}

Cloud* CloudRegistry::find(ColorId color) {
    std::size_t at = index_lower_bound(color);
    return at < index_.size() && index_[at].first == color ? pool_[index_[at].second].get()
                                                           : nullptr;
}

const Cloud* CloudRegistry::find(ColorId color) const {
    std::size_t at = index_lower_bound(color);
    return at < index_.size() && index_[at].first == color ? pool_[index_[at].second].get()
                                                           : nullptr;
}

void CloudRegistry::primary_clouds_of(NodeId v, std::vector<ColorId>& out) const {
    out.clear();
    if (v >= memberships_.size()) return;
    for (ColorId c : memberships_[v]) {
        const Cloud* cloud = find(c);
        if (cloud != nullptr && cloud->kind == CloudKind::primary) out.push_back(c);
    }  // memberships_[v] is sorted, so out is ascending
}

std::vector<ColorId> CloudRegistry::primary_clouds_of(NodeId v) const {
    std::vector<ColorId> out;
    primary_clouds_of(v, out);
    return out;
}

std::optional<ColorId> CloudRegistry::secondary_cloud_of(NodeId v) const {
    if (v >= memberships_.size()) return std::nullopt;
    for (ColorId c : memberships_[v]) {
        const Cloud* cloud = find(c);
        if (cloud != nullptr && cloud->kind == CloudKind::secondary) return c;
    }
    return std::nullopt;
}

void CloudRegistry::free_members_of(ColorId color, std::vector<NodeId>& out) const {
    const Cloud* cloud = find(color);
    XHEAL_EXPECTS(cloud != nullptr);
    out.clear();
    for (NodeId v : cloud->topology.members()) {
        if (is_free(v)) out.push_back(v);
    }  // members() is sorted, so out is ascending
}

std::vector<NodeId> CloudRegistry::free_members_of(ColorId color) const {
    std::vector<NodeId> out;
    free_members_of(color, out);
    return out;
}

std::vector<ColorId> CloudRegistry::colors() const {
    std::vector<ColorId> out;
    out.reserve(index_.size());
    for (const auto& [c, _] : index_) out.push_back(c);  // index_ is sorted
    return out;
}

bool CloudRegistry::in_any_cloud(NodeId v) const {
    return v < memberships_.size() && !memberships_[v].empty();
}

void CloudRegistry::sync_claims(Graph& g, Cloud& cloud, std::size_t* added,
                                std::size_t* removed) {
    cloud.topology.collect_edges(desired_);  // sorted ascending, into scratch

    for (const auto& pair : cloud.claimed) {
        if (!std::binary_search(desired_.begin(), desired_.end(), pair)) {
            g.remove_color_claim(pair.first, pair.second, cloud.color);
            if (removed != nullptr) ++*removed;
        }
    }
    for (const auto& pair : desired_) {
        if (!std::binary_search(cloud.claimed.begin(), cloud.claimed.end(), pair)) {
            g.add_color_claim(pair.first, pair.second, cloud.color);
            if (added != nullptr) ++*added;
        }
    }
    cloud.claimed.assign(desired_.begin(), desired_.end());
}

void CloudRegistry::apply_splice(Graph& g, Cloud& cloud, std::size_t* added,
                                 std::size_t* removed) {
    // A removed candidate only loses its claim if no other cycle still
    // realizes the pair; candidates touching an already-purged member are
    // skipped by the mirror check.
    for (const auto& [a, b] : delta_.splice.removed) {
        if (cloud.topology.has_edge(a, b)) continue;
        if (!cloud.drop_claim(a, b)) continue;
        if (g.has_node(a) && g.has_node(b)) g.remove_color_claim(a, b, cloud.color);
        if (removed != nullptr) ++*removed;
    }
    for (const auto& [a, b] : delta_.splice.added) {
        if (!cloud.add_claim(a, b)) continue;
        g.add_color_claim(a, b, cloud.color);
        if (added != nullptr) ++*added;
    }
}

void CloudRegistry::fix_leadership(Cloud& cloud, util::Rng& rng) {
    const std::vector<NodeId>& members = cloud.topology.members();
    XHEAL_ASSERT(!members.empty());
    bool leader_alive = cloud.leader != graph::invalid_node &&
                        cloud.has_member(cloud.leader);
    if (!leader_alive) {
        // If the vice-leader survived it takes over (paper invariant d);
        // otherwise elect a fresh random leader.
        if (cloud.vice_leader != graph::invalid_node && cloud.has_member(cloud.vice_leader)) {
            cloud.leader = cloud.vice_leader;
            cloud.vice_leader = graph::invalid_node;
        } else {
            cloud.leader = members[rng.index(members.size())];
        }
    }
    bool vice_ok = cloud.vice_leader != graph::invalid_node &&
                   cloud.has_member(cloud.vice_leader) && cloud.vice_leader != cloud.leader;
    if (!vice_ok) {
        cloud.vice_leader = graph::invalid_node;
        if (members.size() >= 2) {
            do {
                cloud.vice_leader = members[rng.index(members.size())];
            } while (cloud.vice_leader == cloud.leader);
        }
    }
}

void CloudRegistry::register_membership(NodeId v, ColorId color) {
    if (memberships_.size() <= v) memberships_.resize(v + 1);
    std::vector<ColorId>& row = memberships_[v];
    if (row.capacity() == 0 && !membership_pool_.empty()) {
        row = std::move(membership_pool_.back());
        membership_pool_.pop_back();
        row.clear();
    }
    util::sorted_insert(row, color);
}

void CloudRegistry::unregister_membership(NodeId v, ColorId color) {
    if (v >= memberships_.size()) return;
    util::sorted_erase(memberships_[v], color);
}

void CloudRegistry::retire_membership_row(NodeId v) {
    if (v >= memberships_.size()) return;
    std::vector<ColorId>& row = memberships_[v];
    if (row.empty() && row.capacity() != 0 &&
        membership_pool_.size() < membership_pool_cap) {
        // One-time full reserve: the pool's own growth must not allocate
        // mid-run either (the steady-state soaks pin repair at zero).
        if (membership_pool_.capacity() == 0)
            membership_pool_.reserve(membership_pool_cap);
        membership_pool_.push_back(std::move(row));
    }
}

void CloudRegistry::remap_ids(const std::vector<NodeId>& old_to_new,
                              std::size_t live_count) {
    // Live clouds carry renumbered-graph ids everywhere: topology, claim
    // mirror, bridge associations, leadership. Pooled clouds are skipped —
    // create_cloud fully re-initializes them on revival.
    for (const auto& [color, slot] : index_) pool_[slot]->remap_ids(old_to_new);

    // Slide membership rows down to their new ids. The map is ascending
    // (new <= old), so a forward pass never overwrites a row that hasn't
    // moved yet. Dead ids must carry no memberships (their rows were emptied
    // when they left their last cloud); their storage is retired into the
    // pool just like retire_membership_row does, so the next epoch's fresh
    // ids register without allocating.
    std::size_t upper = std::min(memberships_.size(), old_to_new.size());
    for (NodeId v = 0; v < upper; ++v) {
        std::vector<ColorId>& row = memberships_[v];
        NodeId to = old_to_new[v];
        if (to == graph::invalid_node) {
            XHEAL_ASSERT(row.empty());
            if (row.capacity() != 0 && membership_pool_.size() < membership_pool_cap) {
                if (membership_pool_.capacity() == 0)
                    membership_pool_.reserve(membership_pool_cap);
                membership_pool_.push_back(std::move(row));
            }
            std::vector<ColorId>().swap(row);
            continue;
        }
        if (to != v) row.swap(memberships_[to]);
    }
    // Rows past the map (ids that never joined a cloud) don't exist, and the
    // tail beyond the live range holds only moved-from/empty rows.
    for (NodeId v = static_cast<NodeId>(std::min<std::size_t>(live_count, upper));
         v < upper; ++v) {
        XHEAL_ASSERT(memberships_[v].empty());
    }
    if (memberships_.size() > live_count) memberships_.resize(live_count);
}

void CloudRegistry::verify(const Graph& g) const {
    for (const auto& [color, slot] : index_) {
        const Cloud* cloud = pool_[slot].get();
        XHEAL_ASSERT(cloud->color == color);
        XHEAL_ASSERT(cloud->size() >= 2);
        const std::vector<NodeId>& members = cloud->topology.members();
        for (NodeId v : members) {
            XHEAL_ASSERT(g.has_node(v));
            XHEAL_ASSERT(v < memberships_.size());
            XHEAL_ASSERT(std::binary_search(memberships_[v].begin(),
                                            memberships_[v].end(), color));
        }
        // Claims mirror the graph exactly and stay within the membership.
        XHEAL_ASSERT(cloud->topology.edges() == cloud->claimed);
        for (const auto& [u, v] : cloud->claimed) {
            XHEAL_ASSERT(cloud->has_member(u) && cloud->has_member(v));
            XHEAL_ASSERT(g.has_color_claim(u, v, color));
        }
        // Leadership invariant.
        XHEAL_ASSERT(cloud->leader != graph::invalid_node);
        XHEAL_ASSERT(cloud->has_member(cloud->leader));
        if (cloud->size() >= 2) {
            XHEAL_ASSERT(cloud->vice_leader != graph::invalid_node);
            XHEAL_ASSERT(cloud->has_member(cloud->vice_leader));
            XHEAL_ASSERT(cloud->vice_leader != cloud->leader);
        }
        if (cloud->kind == CloudKind::secondary) {
            for (const auto& [v, assoc] : cloud->bridge_assoc) {
                XHEAL_ASSERT(cloud->has_member(v));
                if (assoc != graph::invalid_color) {
                    const Cloud* prim = find(assoc);
                    // The associated primary may have been dissolved since;
                    // if alive it must be primary and contain the bridge.
                    if (prim != nullptr) {
                        XHEAL_ASSERT(prim->kind == CloudKind::primary);
                        XHEAL_ASSERT(prim->has_member(v));
                    }
                }
            }
        }
    }
    // Membership map has no dangling colors, and the "at most one secondary
    // cloud per node" invariant holds.
    for (NodeId v = 0; v < memberships_.size(); ++v) {
        std::size_t secondary_count = 0;
        for (ColorId c : memberships_[v]) {
            const Cloud* cloud = find(c);
            XHEAL_ASSERT(cloud != nullptr);
            XHEAL_ASSERT(cloud->has_member(v));
            if (cloud->kind == CloudKind::secondary) ++secondary_count;
        }
        XHEAL_ASSERT(secondary_count <= 1);
    }
    // Every color claim in the graph belongs to a live cloud that mirrors it.
    g.for_each_edge([&](NodeId u, NodeId v, const graph::EdgeClaims& claims) {
        for (ColorId c : claims.colors) {
            const Cloud* cloud = find(c);
            XHEAL_ASSERT(cloud != nullptr);
            XHEAL_ASSERT(cloud->has_claim(u, v));
        }
    });
}

}  // namespace xheal::core
