#include "core/invariants.hpp"

#include "graph/algorithms.hpp"
#include "util/expects.hpp"

namespace xheal::core {

using graph::Graph;
using graph::NodeId;

void check_graph_consistency(const Graph& g) {
    std::size_t directed_edges = 0;
    for (NodeId u : g.nodes()) {
        for (const auto& [v, claims] : g.row(u)) {
            XHEAL_ASSERT(u != v);
            XHEAL_ASSERT(g.has_node(v));
            XHEAL_ASSERT(!claims.empty());
            // The mirror entry must carry identical claims.
            const auto& mirror = g.claims(v, u);
            XHEAL_ASSERT(mirror.black == claims.black);
            XHEAL_ASSERT(mirror.colors == claims.colors);
            ++directed_edges;
        }
    }
    XHEAL_ASSERT(directed_edges == 2 * g.edge_count());
}

void check_reference_edges_present(const Graph& g, const Graph& ref) {
    ref.for_each_edge([&](NodeId u, NodeId v, const graph::EdgeClaims&) {
        if (g.has_node(u) && g.has_node(v)) {
            XHEAL_ASSERT(g.has_edge(u, v));
            XHEAL_ASSERT(g.claims(u, v).black);
        }
    });
}

void check_connected(const Graph& g) { XHEAL_ASSERT(graph::is_connected(g)); }

void check_degree_bound(const Graph& g, const Graph& ref, std::size_t kappa) {
    for (NodeId v : g.nodes()) {
        XHEAL_ASSERT(ref.has_node(v));
        std::size_t ref_degree = ref.degree(v);
        std::size_t bound = kappa * ref_degree + 2 * kappa;
        XHEAL_ASSERT(g.degree(v) <= bound);
    }
}

void check_session(const HealingSession& session, std::size_t kappa) {
    check_graph_consistency(session.current());
    check_reference_edges_present(session.current(), session.reference());
    check_connected(session.current());
    check_degree_bound(session.current(), session.reference(), kappa);
    session.healer().check_consistency(session.current());
}

namespace {

/// Run one throwing check, converting a contract violation (or any other
/// exception the check surfaces) into a finding under `oracle`.
template <typename F>
void run_oracle(const char* oracle, std::vector<InvariantFinding>& out, F&& check) {
    try {
        check();
    } catch (const std::exception& e) {
        out.push_back({oracle, e.what()});
    }
}

}  // namespace

void InvariantSuite::check_structural(const HealingSession& session,
                                      std::vector<InvariantFinding>& out) const {
    const graph::Graph& g = session.current();
    run_oracle("graph-consistency", out, [&] { check_graph_consistency(g); });
    run_oracle("reference-edges", out,
               [&] { check_reference_edges_present(g, session.reference()); });
    run_oracle("connectivity", out, [&] { check_connected(g); });
    if (degree_bound_)
        run_oracle("degree-bound", out,
                   [&] { check_degree_bound(g, session.reference(), kappa_); });
    run_oracle("healer-consistency", out,
               [&] { session.healer().check_consistency(g); });
    for (const Hook& hook : hooks_)
        run_oracle(hook.oracle.c_str(), out, [&] {
            std::string failure = hook.check(session);
            if (!failure.empty()) throw util::ContractViolation(failure);
        });
}

void InvariantSuite::check_spectral(const HealingSession& session,
                                    std::vector<InvariantFinding>& out) const {
    if (!spectral_enabled()) return;
    run_oracle("lambda2-floor", out, [&] {
        double lambda2 = lambda2_probe_(session.current());
        if (!(lambda2 >= lambda2_floor_))
            throw util::ContractViolation("lambda2 " + std::to_string(lambda2) +
                                          " below floor " +
                                          std::to_string(lambda2_floor_));
    });
}

}  // namespace xheal::core
