#include "core/invariants.hpp"

#include "graph/algorithms.hpp"
#include "util/expects.hpp"

namespace xheal::core {

using graph::Graph;
using graph::NodeId;

void check_graph_consistency(const Graph& g) {
    std::size_t directed_edges = 0;
    for (NodeId u : g.nodes()) {
        for (const auto& [v, claims] : g.row(u)) {
            XHEAL_ASSERT(u != v);
            XHEAL_ASSERT(g.has_node(v));
            XHEAL_ASSERT(!claims.empty());
            // The mirror entry must carry identical claims.
            const auto& mirror = g.claims(v, u);
            XHEAL_ASSERT(mirror.black == claims.black);
            XHEAL_ASSERT(mirror.colors == claims.colors);
            ++directed_edges;
        }
    }
    XHEAL_ASSERT(directed_edges == 2 * g.edge_count());
}

void check_reference_edges_present(const Graph& g, const Graph& ref) {
    ref.for_each_edge([&](NodeId u, NodeId v, const graph::EdgeClaims&) {
        if (g.has_node(u) && g.has_node(v)) {
            XHEAL_ASSERT(g.has_edge(u, v));
            XHEAL_ASSERT(g.claims(u, v).black);
        }
    });
}

void check_connected(const Graph& g) { XHEAL_ASSERT(graph::is_connected(g)); }

void check_degree_bound(const Graph& g, const Graph& ref, std::size_t kappa) {
    for (NodeId v : g.nodes()) {
        XHEAL_ASSERT(ref.has_node(v));
        std::size_t ref_degree = ref.degree(v);
        std::size_t bound = kappa * ref_degree + 2 * kappa;
        XHEAL_ASSERT(g.degree(v) <= bound);
    }
}

void check_session(const HealingSession& session, std::size_t kappa) {
    check_graph_consistency(session.current());
    check_reference_edges_present(session.current(), session.reference());
    check_connected(session.current());
    check_degree_bound(session.current(), session.reference(), kappa);
    session.healer().check_consistency(session.current());
}

}  // namespace xheal::core
