// Compressed-sparse-row snapshot of the slot graph for the sparse probe
// layer. The slot-indexed Graph is optimized for mutation under churn; the
// probes (Lanczos matvecs, BFS sweeps) want a frozen, densely renumbered
// adjacency in two flat arrays so every traversal is a contiguous scan with
// no per-node indirection. A CsrGraph is rebuilt from the live graph per
// probe via build(), which only reuses and never shrinks its buffers —
// repeated probes over a scenario run perform no steady-state allocations
// once the population peak has been seen.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::spectral {

class CsrGraph {
public:
    /// Dense index marking "id is not a live node of the snapshot".
    static constexpr std::uint32_t npos = static_cast<std::uint32_t>(-1);

    /// Snapshot g's live nodes and edges. Buffers are reused across calls.
    void build(const graph::Graph& g);

    /// Patch the snapshot in place to match g, given the sorted, unique list
    /// of node ids whose adjacency or liveness changed since the snapshot
    /// was last built or patched (the Graph structure journal, deduped).
    /// Clean rows are renumbered by copy, dirty rows are rebuilt from g;
    /// the resulting arrays are byte-identical to a fresh build(g). Returns
    /// false — snapshot untouched — when the delta violates the append-only
    /// id assumption (an id materialized inside the snapshot's id range via
    /// add_node_with_id) and the caller must build() from scratch.
    bool patch(const graph::Graph& g, const std::vector<graph::NodeId>& dirty);

    std::size_t size() const { return nodes_.size(); }
    std::size_t edge_count() const { return targets_.size() / 2; }

    /// Live node ids in ascending order; the i-th entry is dense index i.
    const std::vector<graph::NodeId>& nodes() const { return nodes_; }

    /// Dense index of a node id, or npos if the id is not a live node of
    /// the snapshot (dead, gap, or beyond the snapshot's id range).
    std::uint32_t index_of(graph::NodeId v) const {
        return v < position_.size() ? position_[v] : npos;
    }

    std::size_t degree(std::uint32_t i) const { return offsets_[i + 1] - offsets_[i]; }

    /// Neighbors of dense index i, as dense indices.
    std::span<const std::uint32_t> row(std::uint32_t i) const {
        return {targets_.data() + offsets_[i], targets_.data() + offsets_[i + 1]};
    }

    /// 1/sqrt(deg(i)), or 0 for isolated vertices (the normalized-Laplacian
    /// convention: isolated vertices contribute a zero row).
    double inv_sqrt_deg(std::uint32_t i) const { return inv_sqrt_deg_[i]; }

    /// y = L_norm * x where L_norm = I - D^{-1/2} A D^{-1/2} is the
    /// normalized Laplacian of the snapshot. x and y must have size() entries.
    ///
    /// Blocked kernel: the apply first forms z = D^{-1/2} x into `scaled`
    /// (one contiguous, trivially vectorizable pass), then accumulates z
    /// over each adjacency row through four independent accumulators, so
    /// the gather loop carries no serial dependency chain and the edge pass
    /// touches one array instead of two. The summation order is fixed by
    /// the snapshot layout — never by thread count — so probe values are
    /// identical inline and off-thread. `scaled` is caller-owned scratch
    /// (resized here, reused across applies by the probe engine).
    void apply_normalized_laplacian(const std::vector<double>& x, std::vector<double>& y,
                                    std::vector<double>& scaled) const;

    /// Scratchless convenience overload (tests, one-shot callers): uses an
    /// internal scratch buffer, so it is NOT safe to call concurrently on
    /// one snapshot. The hot paths pass their own scratch above.
    void apply_normalized_laplacian(const std::vector<double>& x,
                                    std::vector<double>& y) const;

    /// The unit-norm kernel vector D^{1/2} 1 of the normalized Laplacian,
    /// written into `out` (resized). Empty when the total degree is zero.
    void normalized_kernel(std::vector<double>& out) const;

    // Raw array views for the patch-vs-rebuild property tests.
    const std::vector<std::uint32_t>& offsets() const { return offsets_; }
    const std::vector<std::uint32_t>& targets() const { return targets_; }
    const std::vector<double>& inv_sqrt_degrees() const { return inv_sqrt_deg_; }

private:
    std::vector<graph::NodeId> nodes_;
    std::vector<std::uint32_t> position_;  // id -> dense index or npos
    std::vector<std::uint32_t> offsets_;   // size() + 1
    std::vector<std::uint32_t> targets_;   // 2 * edge_count(), dense indices
    std::vector<double> inv_sqrt_deg_;
    // patch() scratch: double buffers and the old->new renumbering. Reused
    // across patches so steady-state patching allocates nothing at capacity.
    std::vector<graph::NodeId> nodes_scratch_;
    std::vector<std::uint32_t> targets_scratch_;
    std::vector<std::uint32_t> offsets_old_;
    std::vector<std::uint32_t> old_to_new_;
    std::vector<std::uint8_t> row_state_;
    std::vector<graph::NodeId> added_;
    /// Scratch of the scratchless apply overload only (see above).
    mutable std::vector<double> scaled_;
};

}  // namespace xheal::spectral
