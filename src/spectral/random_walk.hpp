// Random-walk machinery: stationary distributions and mixing-time
// estimates. The paper motivates the Cheeger constant / lambda2 through
// mixing time (Preliminaries): an expander mixes in O(log n) steps, while
// two cliques joined by one edge — same *edge expansion* — mix polynomially
// slowly. bench_mixing reproduces that example quantitatively.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::spectral {

/// Stationary distribution of the lazy random walk: pi(v) = deg(v) / 2m,
/// aligned with nodes() order (ascending id). Requires at least one edge.
std::vector<double> stationary_distribution(const graph::Graph& g);

/// One step of the lazy random walk (stay with probability 1/2, otherwise
/// move to a uniform neighbor) applied to distribution `p` (aligned with
/// nodes() order).
std::vector<double> lazy_walk_step(const graph::Graph& g, const std::vector<double>& p);

/// Total variation distance between two distributions of equal length.
double total_variation(const std::vector<double>& a, const std::vector<double>& b);

/// Number of lazy-walk steps until the distribution started at `source`
/// is within `epsilon` total-variation distance of stationary. Returns
/// nullopt if not mixed within max_steps (e.g. disconnected graphs).
std::optional<std::size_t> mixing_time(const graph::Graph& g, graph::NodeId source,
                                       double epsilon = 0.25,
                                       std::size_t max_steps = 100000);

/// Worst mixing time over all start vertices (exact; O(n * T * m)).
std::optional<std::size_t> mixing_time_worst(const graph::Graph& g,
                                             double epsilon = 0.25,
                                             std::size_t max_steps = 100000);

/// The spectral mixing-time prediction for the lazy walk: ~ (2 / lambda2) *
/// ln(n / epsilon) with lambda2 of the normalized Laplacian. Used as the
/// reference curve in bench_mixing.
double spectral_mixing_bound(const graph::Graph& g, double epsilon = 0.25);

}  // namespace xheal::spectral
