#include "spectral/expansion.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/node_index.hpp"

namespace xheal::spectral {

using graph::Graph;
using graph::NodeId;

namespace {

/// Shared exact enumeration over all nontrivial vertex subsets using a Gray
/// code walk so each step flips exactly one vertex and the cut size updates
/// incrementally. Calls visit(cut, size_s, vol_s) for every subset.
template <typename Visitor>
void enumerate_cuts(const Graph& g, Visitor&& visit) {
    std::size_t n = g.node_count();
    XHEAL_EXPECTS(n <= exact_expansion_limit);
    NodeIndex index(g);
    const auto& nodes = index.nodes;

    std::vector<std::uint32_t> adj_mask(n, 0);
    std::vector<std::size_t> deg(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (NodeId v : g.neighbors(nodes[i]))
            adj_mask[i] |= (std::uint32_t{1} << index.position[v]);
        deg[i] = g.degree(nodes[i]);
    }

    std::uint32_t gray = 0;
    std::size_t cut = 0, size_s = 0, vol_s = 0;
    std::uint64_t total = std::uint64_t{1} << n;
    for (std::uint64_t k = 1; k < total; ++k) {
        std::uint32_t next = static_cast<std::uint32_t>(k ^ (k >> 1));
        std::uint32_t flipped = gray ^ next;
        std::size_t v = static_cast<std::size_t>(std::countr_zero(flipped));
        std::size_t inside = static_cast<std::size_t>(std::popcount(adj_mask[v] & gray));
        if (next & flipped) {
            // v joined S: its edges into S stop crossing, the rest start.
            cut += deg[v] - 2 * inside;
            ++size_s;
            vol_s += deg[v];
        } else {
            cut -= deg[v] - 2 * inside;
            --size_s;
            vol_s -= deg[v];
        }
        gray = next;
        if (size_s == 0 || size_s == n) continue;
        visit(cut, size_s, vol_s);
    }
}

}  // namespace

double edge_expansion_exact(const Graph& g) {
    std::size_t n = g.node_count();
    if (n < 2) return 0.0;
    if (!graph::is_connected(g)) return 0.0;
    double best = std::numeric_limits<double>::infinity();
    enumerate_cuts(g, [&](std::size_t cut, std::size_t size_s, std::size_t) {
        std::size_t denom = std::min(size_s, n - size_s);
        best = std::min(best, static_cast<double>(cut) / static_cast<double>(denom));
    });
    return best;
}

double cheeger_exact(const Graph& g) {
    std::size_t n = g.node_count();
    if (n < 2) return 0.0;
    if (!graph::is_connected(g)) return 0.0;
    std::size_t total_vol = 2 * g.edge_count();
    if (total_vol == 0) return 0.0;
    double best = std::numeric_limits<double>::infinity();
    enumerate_cuts(g, [&](std::size_t cut, std::size_t, std::size_t vol_s) {
        std::size_t denom = std::min(vol_s, total_vol - vol_s);
        if (denom == 0) return;
        best = std::min(best, static_cast<double>(cut) / static_cast<double>(denom));
    });
    return best;
}

SweepResult sweep_cut(const Graph& g, std::uint64_t seed) {
    SweepResult out;
    std::size_t n = g.node_count();
    if (n < 2 || !graph::is_connected(g)) return out;

    auto fr = fiedler(g, LaplacianKind::normalized, seed);
    // Rescale y -> D^{-1/2} y: the sweep ordering the Cheeger proof uses.
    std::vector<double> score(fr.nodes.size());
    for (std::size_t i = 0; i < fr.nodes.size(); ++i) {
        double d = static_cast<double>(g.degree(fr.nodes[i]));
        score[i] = d > 0.0 ? fr.vector[i] / std::sqrt(d) : fr.vector[i];
    }
    std::vector<std::size_t> order(fr.nodes.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });

    std::unordered_map<NodeId, std::size_t> position;
    for (std::size_t r = 0; r < order.size(); ++r) position.emplace(fr.nodes[order[r]], r);

    std::size_t total_vol = 2 * g.edge_count();
    std::size_t cut = 0, vol_s = 0;
    double best_h = std::numeric_limits<double>::infinity();
    double best_phi = std::numeric_limits<double>::infinity();
    std::size_t best_phi_prefix = 0;

    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
        NodeId v = fr.nodes[order[k]];
        std::size_t inside = 0;
        for (NodeId u : g.neighbors(v)) {
            if (position.at(u) < k) ++inside;
        }
        cut += g.degree(v) - 2 * inside;
        vol_s += g.degree(v);
        std::size_t size_s = k + 1;
        double h = static_cast<double>(cut) /
                   static_cast<double>(std::min(size_s, n - size_s));
        best_h = std::min(best_h, h);
        std::size_t vol_denom = std::min(vol_s, total_vol - vol_s);
        if (vol_denom > 0) {
            double phi = static_cast<double>(cut) / static_cast<double>(vol_denom);
            if (phi < best_phi) {
                best_phi = phi;
                best_phi_prefix = size_s;
            }
        }
    }

    out.expansion = best_h;
    out.conductance = best_phi;
    out.best_side.reserve(best_phi_prefix);
    for (std::size_t r = 0; r < best_phi_prefix; ++r) out.best_side.push_back(fr.nodes[order[r]]);
    return out;
}

double edge_expansion_estimate(const Graph& g, std::size_t exact_limit) {
    if (g.node_count() < 2) return 0.0;
    if (g.node_count() <= std::min(exact_limit, exact_expansion_limit))
        return edge_expansion_exact(g);
    return sweep_cut(g).expansion;
}

double cheeger_estimate(const Graph& g, std::size_t exact_limit) {
    if (g.node_count() < 2) return 0.0;
    if (g.node_count() <= std::min(exact_limit, exact_expansion_limit))
        return cheeger_exact(g);
    return sweep_cut(g).conductance;
}

double expansion_spectral_lower_bound(const Graph& g, std::uint64_t seed) {
    if (g.node_count() < 2) return 0.0;
    double l2 = lambda2(g, LaplacianKind::normalized, seed);
    return 0.5 * l2 * static_cast<double>(g.min_degree());
}

}  // namespace xheal::spectral
