#include "spectral/laplacian.hpp"

#include <cmath>

#include "graph/algorithms.hpp"
#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/node_index.hpp"

namespace xheal::spectral {

using graph::Graph;
using graph::NodeId;

DenseMatrix laplacian_dense(const Graph& g, LaplacianKind kind) {
    NodeIndex index(g);
    const auto& nodes = index.nodes;

    DenseMatrix m(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        std::size_t deg_i = g.degree(nodes[i]);
        if (deg_i == 0) continue;  // isolated vertex: zero row
        if (kind == LaplacianKind::combinatorial) {
            m.at(i, i) = static_cast<double>(deg_i);
            for (NodeId v : g.neighbors(nodes[i])) m.at(i, index.position[v]) = -1.0;
        } else {
            m.at(i, i) = 1.0;
            double di = std::sqrt(static_cast<double>(deg_i));
            for (NodeId v : g.neighbors(nodes[i])) {
                double dj = std::sqrt(static_cast<double>(g.degree(v)));
                m.at(i, index.position[v]) = -1.0 / (di * dj);
            }
        }
    }
    return m;
}

std::vector<double> laplacian_spectrum(const Graph& g, LaplacianKind kind) {
    return jacobi_eigenvalues(laplacian_dense(g, kind));
}

namespace {

/// Kernel (eigenvalue-0 eigenvector) of the Laplacian of a connected graph:
/// all-ones for the combinatorial kind, D^{1/2} 1 for the normalized kind.
/// Unit norm. Empty if the total degree is zero.
std::vector<double> kernel_vector(const Graph& g, const std::vector<NodeId>& nodes,
                                  LaplacianKind kind) {
    std::vector<double> k(nodes.size(), 0.0);
    double sq = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        double entry = kind == LaplacianKind::combinatorial
                           ? 1.0
                           : std::sqrt(static_cast<double>(g.degree(nodes[i])));
        k[i] = entry;
        sq += entry * entry;
    }
    if (sq <= 0.0) return {};
    double inv = 1.0 / std::sqrt(sq);
    for (double& x : k) x *= inv;
    return k;
}

FiedlerResult fiedler_dense(const Graph& g, LaplacianKind kind,
                            const std::vector<NodeId>& nodes) {
    auto eig = jacobi_eigen(laplacian_dense(g, kind));
    FiedlerResult out;
    out.nodes = nodes;
    if (eig.values.size() < 2) {
        out.lambda2 = 0.0;
        out.vector.assign(nodes.size(), 0.0);
        return out;
    }
    out.lambda2 = eig.values[1];
    out.vector.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) out.vector[i] = eig.vectors.at(i, 1);
    return out;
}

FiedlerResult fiedler_lanczos(const Graph& g, LaplacianKind kind,
                              const std::vector<NodeId>& nodes, std::uint64_t seed) {
    NodeIndex index(g);
    const std::vector<std::size_t>& position = index.position;

    // Pre-resolve the sparse structure once: neighbor index lists.
    std::vector<std::vector<std::size_t>> nbrs(nodes.size());
    std::vector<double> inv_sqrt_deg(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        auto row = g.neighbors(nodes[i]);
        nbrs[i].reserve(row.size());
        for (NodeId v : row) nbrs[i].push_back(position[v]);
        if (!row.empty()) inv_sqrt_deg[i] = 1.0 / std::sqrt(static_cast<double>(row.size()));
    }

    LinearOperator apply;
    if (kind == LaplacianKind::combinatorial) {
        apply = [&nbrs](const std::vector<double>& x, std::vector<double>& y) {
            for (std::size_t i = 0; i < x.size(); ++i) {
                double acc = static_cast<double>(nbrs[i].size()) * x[i];
                for (std::size_t j : nbrs[i]) acc -= x[j];
                y[i] = acc;
            }
        };
    } else {
        apply = [&nbrs, &inv_sqrt_deg](const std::vector<double>& x, std::vector<double>& y) {
            for (std::size_t i = 0; i < x.size(); ++i) {
                if (nbrs[i].empty()) {
                    y[i] = 0.0;
                    continue;
                }
                double acc = x[i];
                double scale_i = inv_sqrt_deg[i];
                for (std::size_t j : nbrs[i]) acc -= scale_i * inv_sqrt_deg[j] * x[j];
                y[i] = acc;
            }
        };
    }

    util::Rng rng(seed);
    auto kernel = kernel_vector(g, nodes, kind);
    auto res = lanczos_smallest(apply, nodes.size(), kernel, rng);

    FiedlerResult out;
    out.nodes = nodes;
    out.lambda2 = std::max(0.0, res.value);  // clamp tiny negative round-off
    out.vector = std::move(res.vector);
    return out;
}

}  // namespace

FiedlerResult fiedler(const Graph& g, LaplacianKind kind, std::uint64_t seed) {
    auto view = g.nodes();
    std::vector<NodeId> nodes(view.begin(), view.end());
    if (nodes.size() < 2) {
        FiedlerResult out;
        out.nodes = nodes;
        out.vector.assign(nodes.size(), 0.0);
        return out;
    }
    if (!graph::is_connected(g)) {
        FiedlerResult out;
        out.nodes = nodes;
        out.lambda2 = 0.0;
        out.vector.assign(nodes.size(), 0.0);
        return out;
    }
    if (nodes.size() <= dense_spectral_limit) return fiedler_dense(g, kind, nodes);
    return fiedler_lanczos(g, kind, nodes, seed);
}

double lambda2(const Graph& g, LaplacianKind kind, std::uint64_t seed) {
    return fiedler(g, kind, seed).lambda2;
}

}  // namespace xheal::spectral
