// Dense renumbering of the live nodes for vector/matrix-aligned spectral
// code: the i-th entry of any spectral vector corresponds to nodes[i], and
// position[] maps a NodeId back to i. Node ids index slots directly, so the
// reverse map is a flat vector rather than a hash table.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::spectral {

struct NodeIndex {
    std::vector<graph::NodeId> nodes;       // live ids, ascending
    std::vector<std::size_t> position;      // indexed by NodeId; size g.next_id()

    explicit NodeIndex(const graph::Graph& g) {
        nodes.reserve(g.node_count());
        position.assign(g.next_id(), 0);
        for (graph::NodeId v : g.nodes()) {
            position[v] = nodes.size();
            nodes.push_back(v);
        }
    }
};

}  // namespace xheal::spectral
