// Lanczos iteration with full reorthogonalization for the smallest
// eigenpair of a symmetric PSD operator restricted to the complement of a
// known kernel vector. This is exactly the lambda2 computation for graph
// Laplacians: the kernel is the all-ones vector (combinatorial) or D^{1/2} 1
// (normalized), and the smallest eigenvalue orthogonal to it is the
// algebraic connectivity.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace xheal::spectral {

/// apply(x, y): y = A * x, with x.size() == y.size() == n.
using LinearOperator =
    std::function<void(const std::vector<double>&, std::vector<double>&)>;

struct LanczosResult {
    double value = 0.0;            ///< smallest Ritz value found
    std::vector<double> vector;    ///< corresponding Ritz vector (unit norm)
    std::size_t iterations = 0;    ///< Lanczos steps performed
    bool converged = false;        ///< Ritz value stabilized below tolerance
};

/// Smallest eigenpair of A restricted to the orthogonal complement of
/// `kernel` (must be unit norm, or empty to disable deflation).
/// Deterministic given the rng state.
///
/// `warm_start`, when non-null and of size n, seeds the iteration with that
/// vector (re-orthogonalized against the kernel) instead of a random draw,
/// and probes convergence more eagerly — when the seed is the previous
/// sample's Ritz vector and the spectrum moved little, convergence drops
/// from tens of iterations to a handful. A degenerate warm vector (lies in
/// the kernel, wrong size) silently falls back to the cold random start.
LanczosResult lanczos_smallest(const LinearOperator& apply, std::size_t n,
                               const std::vector<double>& kernel, util::Rng& rng,
                               std::size_t max_iterations = 160,
                               double tolerance = 1e-9,
                               const std::vector<double>* warm_start = nullptr);

}  // namespace xheal::spectral
