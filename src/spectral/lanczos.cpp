#include "spectral/lanczos.hpp"

#include <cmath>

#include "spectral/tridiag.hpp"
#include "util/expects.hpp"

namespace xheal::spectral {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(std::vector<double>& y, double alpha, const std::vector<double>& x) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::vector<double>& y, double alpha) {
    for (double& v : y) v *= alpha;
}

/// Remove the components of v along every vector in basis plus the kernel.
/// Applied twice by callers for numerical robustness (classic
/// "twice is enough" Gram-Schmidt).
void orthogonalize(std::vector<double>& v, const std::vector<std::vector<double>>& basis,
                   const std::vector<double>& kernel) {
    if (!kernel.empty()) axpy(v, -dot(v, kernel), kernel);
    for (const auto& b : basis) axpy(v, -dot(v, b), b);
}

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& apply, std::size_t n,
                               const std::vector<double>& kernel, util::Rng& rng,
                               std::size_t max_iterations, double tolerance,
                               const std::vector<double>* warm_start) {
    XHEAL_EXPECTS(n >= 1);
    XHEAL_EXPECTS(kernel.empty() || kernel.size() == n);

    LanczosResult result;
    if (n == 1) {
        // Only the kernel direction exists; nothing orthogonal to deflate.
        result.vector.assign(1, 1.0);
        std::vector<double> y(1, 0.0);
        apply(result.vector, y);
        result.value = y[0];
        result.converged = true;
        return result;
    }

    std::size_t m = std::min(max_iterations, n - (kernel.empty() ? 0 : 1));
    if (m == 0) m = 1;

    std::vector<std::vector<double>> basis;
    std::vector<double> alphas, betas;
    basis.reserve(m);

    // Start vector orthogonal to the kernel: the caller's warm vector when
    // it survives deflation, else a random draw.
    std::vector<double> v(n);
    bool warm = false;
    if (warm_start != nullptr && warm_start->size() == n) {
        v = *warm_start;
        orthogonalize(v, basis, kernel);
        warm = norm(v) > 1e-8;
    }
    if (!warm) {
        for (double& x : v) x = rng.uniform01() - 0.5;
        orthogonalize(v, basis, kernel);
    }
    double vn = norm(v);
    if (vn < 1e-14) {
        // Degenerate draw; retry deterministically with a basis vector mix.
        for (std::size_t i = 0; i < n; ++i) v[i] = (i % 2 == 0) ? 1.0 : -1.0;
        orthogonalize(v, basis, kernel);
        vn = norm(v);
    }
    XHEAL_ASSERT(vn > 1e-14);
    scale(v, 1.0 / vn);

    std::vector<double> w(n);
    double previous_theta = 0.0;
    bool have_previous = false;

    for (std::size_t j = 0; j < m; ++j) {
        basis.push_back(v);
        apply(v, w);
        double alpha = dot(w, v);
        alphas.push_back(alpha);
        axpy(w, -alpha, v);
        if (j > 0) axpy(w, -betas.back(), basis[j - 1]);
        // Full reorthogonalization, twice.
        orthogonalize(w, basis, kernel);
        orthogonalize(w, basis, kernel);
        double beta = norm(w);
        result.iterations = j + 1;

        // Convergence probe on the smallest Ritz value every few steps.
        // A warm-started run is expected to converge almost immediately, so
        // it probes eagerly; the cold cadence is unchanged.
        bool probe = warm ? (j >= 2 && j % 2 == 0) : (j >= 8 && j % 4 == 0);
        if (beta < 1e-12 || j + 1 == m || probe) {
            auto eig = tridiag_eigen(alphas, betas);
            double theta = eig.values.front();
            // Two exits. (a) Kaniel-Paige residual bound: |lambda - theta| <=
            // beta * |s_k| (last component of the tridiagonal Ritz vector) —
            // a rigorous certificate, decisive on gapped spectra and for warm
            // starts already near the eigenvector. (b) Ritz stagnation
            // between probes — the practical exit on clustered spectra
            // (large random regular graphs), where the residual decays like
            // the inverse cluster width and (a) may never fire within the
            // budget even though theta has long stopped moving at the
            // accuracy anyone can use.
            double residual = beta * std::abs(eig.vectors.front().back());
            if (residual <= tolerance * std::max(1.0, std::abs(theta))) {
                result.converged = true;
            }
            // The stagnation exit needs a minimum amount of real work first:
            // a warm start lands near a (probe-accurate, not exact) vector,
            // so theta barely moves in the first couple of steps even when
            // the run has plenty left to gain. Exiting there compounds the
            // start vector's error sample over sample. Eight iterations is
            // enough Krylov depth that a flat theta means flat for real.
            if (have_previous && j >= 8 &&
                std::abs(theta - previous_theta) <=
                    tolerance * std::max(1.0, std::abs(theta))) {
                result.converged = true;
            }
            previous_theta = theta;
            have_previous = true;
            if (beta < 1e-12) {
                result.converged = true;  // Krylov space exhausted: exact in span
                break;
            }
            if (result.converged && j + 1 < m) break;
        }
        if (j + 1 == m) break;
        betas.push_back(beta);
        v = w;
        scale(v, 1.0 / beta);
    }

    auto eig = tridiag_eigen(alphas, betas);
    result.value = eig.values.front();
    result.vector.assign(n, 0.0);
    const auto& s = eig.vectors.front();
    for (std::size_t j = 0; j < basis.size(); ++j) axpy(result.vector, s[j], basis[j]);
    double rn = norm(result.vector);
    if (rn > 1e-14) scale(result.vector, 1.0 / rn);
    return result;
}

}  // namespace xheal::spectral
