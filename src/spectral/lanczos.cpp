#include "spectral/lanczos.hpp"

#include <cmath>

#include "spectral/tridiag.hpp"
#include "util/expects.hpp"

namespace xheal::spectral {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(std::vector<double>& y, double alpha, const std::vector<double>& x) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::vector<double>& y, double alpha) {
    for (double& v : y) v *= alpha;
}

/// Remove the components of v along every vector in basis plus the kernel.
/// Applied twice by callers for numerical robustness (classic
/// "twice is enough" Gram-Schmidt).
void orthogonalize(std::vector<double>& v, const std::vector<std::vector<double>>& basis,
                   const std::vector<double>& kernel) {
    if (!kernel.empty()) axpy(v, -dot(v, kernel), kernel);
    for (const auto& b : basis) axpy(v, -dot(v, b), b);
}

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& apply, std::size_t n,
                               const std::vector<double>& kernel, util::Rng& rng,
                               std::size_t max_iterations, double tolerance) {
    XHEAL_EXPECTS(n >= 1);
    XHEAL_EXPECTS(kernel.empty() || kernel.size() == n);

    LanczosResult result;
    if (n == 1) {
        // Only the kernel direction exists; nothing orthogonal to deflate.
        result.vector.assign(1, 1.0);
        std::vector<double> y(1, 0.0);
        apply(result.vector, y);
        result.value = y[0];
        result.converged = true;
        return result;
    }

    std::size_t m = std::min(max_iterations, n - (kernel.empty() ? 0 : 1));
    if (m == 0) m = 1;

    std::vector<std::vector<double>> basis;
    std::vector<double> alphas, betas;
    basis.reserve(m);

    // Random unit start vector orthogonal to the kernel.
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform01() - 0.5;
    orthogonalize(v, basis, kernel);
    double vn = norm(v);
    if (vn < 1e-14) {
        // Degenerate draw; retry deterministically with a basis vector mix.
        for (std::size_t i = 0; i < n; ++i) v[i] = (i % 2 == 0) ? 1.0 : -1.0;
        orthogonalize(v, basis, kernel);
        vn = norm(v);
    }
    XHEAL_ASSERT(vn > 1e-14);
    scale(v, 1.0 / vn);

    std::vector<double> w(n);
    double previous_theta = 0.0;
    bool have_previous = false;

    for (std::size_t j = 0; j < m; ++j) {
        basis.push_back(v);
        apply(v, w);
        double alpha = dot(w, v);
        alphas.push_back(alpha);
        axpy(w, -alpha, v);
        if (j > 0) axpy(w, -betas.back(), basis[j - 1]);
        // Full reorthogonalization, twice.
        orthogonalize(w, basis, kernel);
        orthogonalize(w, basis, kernel);
        double beta = norm(w);
        result.iterations = j + 1;

        // Convergence probe on the smallest Ritz value every few steps.
        if (beta < 1e-12 || j + 1 == m || (j >= 8 && j % 4 == 0)) {
            auto values = tridiag_eigenvalues(alphas, betas);
            double theta = values.front();
            if (have_previous && std::abs(theta - previous_theta) <=
                                     tolerance * std::max(1.0, std::abs(theta))) {
                result.converged = true;
            }
            previous_theta = theta;
            have_previous = true;
            if (beta < 1e-12) {
                result.converged = true;  // Krylov space exhausted: exact in span
                break;
            }
            if (result.converged && j + 1 < m) break;
        }
        if (j + 1 == m) break;
        betas.push_back(beta);
        v = w;
        scale(v, 1.0 / beta);
    }

    auto eig = tridiag_eigen(alphas, betas);
    result.value = eig.values.front();
    result.vector.assign(n, 0.0);
    const auto& s = eig.vectors.front();
    for (std::size_t j = 0; j < basis.size(); ++j) axpy(result.vector, s[j], basis[j]);
    double rn = norm(result.vector);
    if (rn > 1e-14) scale(result.vector, 1.0 / rn);
    return result;
}

}  // namespace xheal::spectral
