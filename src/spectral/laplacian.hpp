// Graph Laplacians and the algebraic-connectivity front-end.
//
// The paper's lambda(G) (Theorem 1, Theorem 2(4)) is the second-smallest
// eigenvalue of the *normalized* Laplacian L = I - D^{-1/2} A D^{-1/2}
// (Chung's convention, which the Cheeger inequality 2*phi >= lambda >
// phi^2/2 requires). The combinatorial Laplacian D - A is also provided for
// tests against closed-form spectra.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "spectral/dense_matrix.hpp"
#include "util/rng.hpp"

namespace xheal::spectral {

enum class LaplacianKind {
    combinatorial,  ///< D - A
    normalized,     ///< I - D^{-1/2} A D^{-1/2}
};

/// Dense Laplacian with rows/columns in graph.nodes() order (ascending id).
/// Isolated vertices contribute an all-zero row in both conventions.
DenseMatrix laplacian_dense(const graph::Graph& g, LaplacianKind kind);

/// All Laplacian eigenvalues (ascending) via Jacobi; n <= ~400 advised.
std::vector<double> laplacian_spectrum(const graph::Graph& g, LaplacianKind kind);

struct FiedlerResult {
    double lambda2 = 0.0;
    /// Eigenvector entries aligned with `nodes`; for the normalized
    /// kind this is the raw eigenvector y (sweep callers rescale by
    /// D^{-1/2} themselves).
    std::vector<double> vector;
    std::vector<graph::NodeId> nodes;
};

/// Second-smallest Laplacian eigenvalue. Dense Jacobi for small graphs,
/// sparse Lanczos (never materializing the matrix) for large ones.
/// Returns 0 for graphs with < 2 nodes and (numerically) for disconnected
/// graphs. Deterministic given the seed.
double lambda2(const graph::Graph& g, LaplacianKind kind = LaplacianKind::normalized,
               std::uint64_t seed = 12345);

/// lambda2 together with the Fiedler vector (for sweep cuts).
FiedlerResult fiedler(const graph::Graph& g,
                      LaplacianKind kind = LaplacianKind::normalized,
                      std::uint64_t seed = 12345);

/// Threshold (node count) below which the dense path is used.
inline constexpr std::size_t dense_spectral_limit = 160;

}  // namespace xheal::spectral
