#include "spectral/dense_matrix.hpp"

#include <cmath>

namespace xheal::spectral {

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
    XHEAL_EXPECTS(x.size() == n_);
    std::vector<double> y(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = 0.0;
        const double* row = &data_[i * n_];
        for (std::size_t j = 0; j < n_; ++j) acc += row[j] * x[j];
        y[i] = acc;
    }
    return y;
}

double DenseMatrix::symmetry_error() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = i + 1; j < n_; ++j)
            worst = std::max(worst, std::abs(at(i, j) - at(j, i)));
    return worst;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
    DenseMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
}

}  // namespace xheal::spectral
