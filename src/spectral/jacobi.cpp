#include "spectral/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xheal::spectral {

namespace {

double off_diagonal_norm(const DenseMatrix& m) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i)
        for (std::size_t j = i + 1; j < m.size(); ++j) sum += m.at(i, j) * m.at(i, j);
    return std::sqrt(2.0 * sum);
}

/// One cyclic sweep of Jacobi rotations over all (p, q) pairs, updating the
/// accumulated eigenvector matrix if provided.
void sweep(DenseMatrix& m, DenseMatrix* vectors) {
    std::size_t n = m.size();
    for (std::size_t p = 0; p + 1 < n; ++p) {
        for (std::size_t q = p + 1; q < n; ++q) {
            double apq = m.at(p, q);
            if (apq == 0.0) continue;
            double app = m.at(p, p);
            double aqq = m.at(q, q);
            double theta = (aqq - app) / (2.0 * apq);
            double t = (theta >= 0.0 ? 1.0 : -1.0) /
                       (std::abs(theta) + std::sqrt(theta * theta + 1.0));
            double c = 1.0 / std::sqrt(t * t + 1.0);
            double s = t * c;

            for (std::size_t k = 0; k < n; ++k) {
                double mkp = m.at(k, p);
                double mkq = m.at(k, q);
                m.at(k, p) = c * mkp - s * mkq;
                m.at(k, q) = s * mkp + c * mkq;
            }
            for (std::size_t k = 0; k < n; ++k) {
                double mpk = m.at(p, k);
                double mqk = m.at(q, k);
                m.at(p, k) = c * mpk - s * mqk;
                m.at(q, k) = s * mpk + c * mqk;
            }
            if (vectors != nullptr) {
                for (std::size_t k = 0; k < n; ++k) {
                    double vkp = vectors->at(k, p);
                    double vkq = vectors->at(k, q);
                    vectors->at(k, p) = c * vkp - s * vkq;
                    vectors->at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }
}

void run_jacobi(DenseMatrix& m, DenseMatrix* vectors, double tolerance, int max_sweeps) {
    XHEAL_EXPECTS(m.symmetry_error() < 1e-9);
    double scale = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) scale = std::max(scale, std::abs(m.at(i, i)));
    scale = std::max(scale, 1.0);
    for (int iter = 0; iter < max_sweeps; ++iter) {
        if (off_diagonal_norm(m) <= tolerance * scale) break;
        sweep(m, vectors);
    }
}

}  // namespace

std::vector<double> jacobi_eigenvalues(DenseMatrix m, double tolerance, int max_sweeps) {
    std::vector<double> values;
    jacobi_eigenvalues_inplace(m, values, tolerance, max_sweeps);
    return values;
}

void jacobi_eigenvalues_inplace(DenseMatrix& m, std::vector<double>& values,
                                double tolerance, int max_sweeps) {
    run_jacobi(m, nullptr, tolerance, max_sweeps);
    values.resize(m.size());
    for (std::size_t i = 0; i < m.size(); ++i) values[i] = m.at(i, i);
    std::sort(values.begin(), values.end());
}

EigenDecomposition jacobi_eigen(DenseMatrix m, double tolerance, int max_sweeps) {
    DenseMatrix vectors = DenseMatrix::identity(m.size());
    run_jacobi(m, &vectors, tolerance, max_sweeps);

    std::vector<std::size_t> order(m.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return m.at(a, a) < m.at(b, b); });

    EigenDecomposition out;
    out.values.resize(m.size());
    out.vectors = DenseMatrix(m.size());
    for (std::size_t k = 0; k < m.size(); ++k) {
        out.values[k] = m.at(order[k], order[k]);
        for (std::size_t i = 0; i < m.size(); ++i) out.vectors.at(i, k) = vectors.at(i, order[k]);
    }
    return out;
}

}  // namespace xheal::spectral
