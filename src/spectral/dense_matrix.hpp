// Minimal dense symmetric matrix used by the eigensolvers. The library
// implements its own numerics (no external eigen dependency); matrices stay
// small (n <= a few hundred) because large-n paths use the sparse Lanczos
// solver that never materializes the operator.
#pragma once

#include <cstddef>
#include <vector>

#include "util/expects.hpp"

namespace xheal::spectral {

class DenseMatrix {
public:
    DenseMatrix() = default;
    explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

    std::size_t size() const { return n_; }

    /// Re-shape to an n x n zero matrix, reusing the existing allocation
    /// when capacity suffices (scratch-matrix reuse across probe samples).
    void reset(std::size_t n) {
        n_ = n;
        data_.assign(n * n, 0.0);
    }

    double& at(std::size_t i, std::size_t j) {
        XHEAL_EXPECTS(i < n_ && j < n_);
        return data_[i * n_ + j];
    }
    double at(std::size_t i, std::size_t j) const {
        XHEAL_EXPECTS(i < n_ && j < n_);
        return data_[i * n_ + j];
    }

    /// y = M * x. Requires x.size() == n.
    std::vector<double> multiply(const std::vector<double>& x) const;

    /// max |M(i,j) - M(j,i)|, for symmetry checks in tests.
    double symmetry_error() const;

    /// Identity matrix of size n.
    static DenseMatrix identity(std::size_t n);

private:
    std::size_t n_ = 0;
    std::vector<double> data_;
};

}  // namespace xheal::spectral
