// ProbeEngine — the sparse, scratch-reusing metric probe layer that lets
// scenario runs sample spectral and stretch metrics at n = 1e5+.
//
// The engine owns incremental CSR snapshots (csr.hpp) plus flat BFS/Lanczos
// scratch. A snapshot is either rebuilt per probe (the legacy path: callers
// that mutate the graph arbitrarily between probes) or patched forward from
// the graph's structure journal (the incremental path: the ScenarioRunner
// hands begin_sample the delta accumulated since the previous sample, and
// only the touched rows are rewritten). Buffers only grow, so steady-state
// probing allocates nothing once the population peak has been seen.
//
//   * lambda2()        — algebraic connectivity of the normalized Laplacian.
//                        Dense Jacobi below `dense_limit` nodes (small
//                        graphs, exact), matrix-free Lanczos on the implicit
//                        CSR operator above it, with the D^{1/2} 1 kernel
//                        deflated. The auto path warm-starts each solve from
//                        the previous sample's Ritz vector when at least
//                        half its support is still alive. Selection is
//                        automatic; the _dense/_sparse entry points force
//                        one path cold (property tests compare them to 1e-6).
//   * component_count() — connected components via CSR BFS (flat arrays, no
//                        hashing), the probe behind `connected`.
//   * sampled_stretch() — the paper's network-stretch metric over a fixed
//                        budget of sampled BFS sources: max over pairs
//                        (s, t), s sampled, of dist_G(s,t) / dist_G'(s,t).
//                        A max over a subset of sources, so the sampled
//                        value never exceeds the exact stretch and reaches
//                        it once the budget covers every live node. Sources
//                        are drawn from the caller's rng (the runner's
//                        independent probe stream), so probe cadence never
//                        perturbs the adversary trace.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/csr.hpp"
#include "spectral/dense_matrix.hpp"
#include "util/rng.hpp"

namespace xheal::spectral {

/// A CsrGraph that tracks its own staleness. Callers note() the journal of
/// node ids touched since the last sync; sync() then patches the snapshot
/// forward, falling back to a full rebuild when the snapshot was never
/// built, the journal overflowed, the churn exceeds a quarter of the rows,
/// or the delta violates the patcher's append-only id assumption. Either
/// way the synced arrays are byte-identical to a fresh build.
class IncrementalSnapshot {
public:
    /// Record that `dirty` (a graph journal: unsorted, may repeat, may name
    /// dead ids) happened since the last sync. An overflowed journal is an
    /// unknown delta and forces the next sync to rebuild.
    void note(const graph::Graph& g, const std::vector<graph::NodeId>& dirty,
              bool overflowed) {
        if (&g != graph_ || overflowed) {
            invalidate();
            graph_ = &g;
            return;
        }
        if (!force_rebuild_)
            pending_.insert(pending_.end(), dirty.begin(), dirty.end());
    }

    /// Forget the snapshot; the next sync rebuilds from scratch.
    void invalidate() {
        force_rebuild_ = true;
        pending_.clear();
    }

    /// Bring the snapshot up to date with g.
    void sync(const graph::Graph& g);

    const CsrGraph& csr() const { return csr_; }

    std::uint64_t rebuilds() const { return rebuilds_; }
    std::uint64_t patched_events() const { return patched_events_; }

private:
    CsrGraph csr_;
    const graph::Graph* graph_ = nullptr;
    std::vector<graph::NodeId> pending_;
    bool force_rebuild_ = true;
    std::uint64_t rebuilds_ = 0;
    std::uint64_t patched_events_ = 0;
};

class ProbeEngine {
public:
    /// Node count at or below which lambda2() uses the dense Jacobi path.
    static constexpr std::size_t default_dense_limit = 160;

    /// Lanczos step budget of the auto lambda2() probe. lambda2 of an
    /// expander sits at the edge of the spectral bulk (no eigengap), so the
    /// iteration converges only polynomially there; 64 steps land within
    /// ~0.5% of the exhaustive answer at n = 1e5 for ~1/6 of the cost, which
    /// is probe-grade accuracy. The Ritz value approaches lambda2 from
    /// above, so probe readings are a slight over-estimate.
    static constexpr std::size_t probe_lanczos_steps = 64;

    /// Convergence tolerance of the auto lambda2() probe. At probe scale the
    /// bottom of the spectrum is a cluster (edge of the bulk), so the
    /// intrinsic bias of the step budget above is already ~1e-3; asking
    /// Lanczos for more digits than that burns the full budget every sample
    /// for accuracy the probe cannot deliver anyway. 2e-3 stops the cold
    /// solve once the Ritz value stalls at probe-grade accuracy and lets a
    /// warm-started solve exit after a handful of iterations. Threshold
    /// expectations (`expect lambda2 >= x`) sit orders of magnitude away.
    static constexpr double probe_lambda2_tol = 2e-3;

    /// Exhaustive budget used by lambda2_sparse(): below this many nodes the
    /// Krylov space is exhausted and the value is exact to round-off, which
    /// is what the sparse-vs-dense property tests compare at 1e-6.
    static constexpr std::size_t exact_lanczos_steps = 160;

    explicit ProbeEngine(std::size_t dense_limit = default_dense_limit)
        : dense_limit_(dense_limit) {}

    /// lambda2 of the normalized Laplacian; 0 for < 2 nodes or disconnected
    /// graphs. Deterministic given the seed. Auto-selects dense Jacobi below
    /// dense_limit() nodes and budgeted Lanczos (probe_lanczos_steps) above,
    /// warm-started from the previous auto solve when possible.
    double lambda2(const graph::Graph& g, std::uint64_t seed = 12345);

    /// Force the dense Jacobi path (any size; O(n^3), small graphs only).
    double lambda2_dense(const graph::Graph& g);

    /// Force the matrix-free CSR Lanczos path (any size >= 2) with an
    /// explicit step budget (exhaustive by default). Always cold-starts.
    double lambda2_sparse(const graph::Graph& g, std::uint64_t seed = 12345,
                          std::size_t max_iterations = exact_lanczos_steps,
                          double tolerance = 1e-9);

    /// Connected-component count via CSR BFS (0 for the empty graph).
    std::size_t component_count(const graph::Graph& g);

    /// Sampled network stretch of g against the insert-only reference ref:
    /// max over sampled sources s (budget many; all live nodes when budget
    /// >= |V|) and all targets t of dist_g(s,t) / dist_ref(s,t), counting
    /// pairs alive in both graphs and connected in ref. +infinity when such
    /// a pair is disconnected in g; never below 1.
    double sampled_stretch(const graph::Graph& g, const graph::Graph& ref,
                           std::size_t budget, util::Rng& rng);

    // ----- CSR-level probe entry points -----
    //
    // The same probes over caller-held snapshots: the async probe pipeline
    // (scenario/probe_pipeline.hpp) double-buffers IncrementalSnapshots
    // outside the engine and hands the frozen CSR arrays here, while the
    // engine contributes its scratch buffers and the lambda2 warm-start
    // chain. The graph-level probes above are thin wrappers that sync the
    // engine's own snapshot first and then call these — both paths run the
    // identical code on byte-identical arrays (csr_patch_test's patch ==
    // build guarantee), which is what makes inline and off-thread probing
    // produce identical MetricSample values.

    /// lambda2 of a frozen snapshot; auto-selects the dense scratch-reusing
    /// Jacobi path at or below dense_limit() rows and warm-started budgeted
    /// Lanczos above it.
    double lambda2_csr(const CsrGraph& csr, std::uint64_t seed = 12345);

    /// Connected-component count of a frozen snapshot.
    std::size_t component_count_csr(const CsrGraph& csr);

    /// Sampled stretch over frozen snapshots of g and the reference.
    double sampled_stretch_csr(const CsrGraph& csr, const CsrGraph& ref_csr,
                               std::size_t budget, util::Rng& rng);

    /// The stretch probe's source-sampling half: min(budget, n) distinct
    /// sources by partial Fisher-Yates over the snapshot's live pool (no
    /// draws when budget >= n — the exact all-sources sweep — or n < 2).
    /// Factored out so the async pipeline can draw sources on the stepping
    /// thread — keeping the probe stream's draw order identical to inline
    /// sampling — while the BFS sweeps run off-thread.
    static void sample_stretch_sources(const CsrGraph& csr, std::size_t budget,
                                       util::Rng& rng,
                                       std::vector<graph::NodeId>& out);

    /// The BFS half of the stretch probe over a pre-sampled source list.
    double stretch_over_sources(const CsrGraph& csr, const CsrGraph& ref_csr,
                                const std::vector<graph::NodeId>& sources);

    /// Batch scope: between begin_sample(g) and end_sample(), the CSR
    /// snapshot of g is synced lazily on first use and then shared by every
    /// probe in the batch (the caller vouches that g does not mutate).
    /// Outside a batch each probe rebuilds the snapshot itself.
    ///
    /// The journal-free overload discards any incremental state (the delta
    /// since the last sample is unknown) and rebuilds. The journal overload
    /// is the incremental path: `dirty` is g's structure journal since the
    /// previous begin_sample, and the sync patches instead of rebuilding.
    void begin_sample(const graph::Graph& g) {
        batch_graph_ = &g;
        snapshot_valid_ = false;
        incremental_ = false;
        snap_.invalidate();
    }
    void begin_sample(const graph::Graph& g, const std::vector<graph::NodeId>& dirty,
                      bool journal_overflowed) {
        batch_graph_ = &g;
        snapshot_valid_ = false;
        incremental_ = true;
        snap_.note(g, dirty, journal_overflowed);
    }
    /// Incremental-path companion for the stretch probe's reference graph.
    void note_reference(const graph::Graph& ref, const std::vector<graph::NodeId>& dirty,
                        bool journal_overflowed) {
        ref_snap_.note(ref, dirty, journal_overflowed);
    }
    void end_sample() {
        batch_graph_ = nullptr;
        snapshot_valid_ = false;
    }

    /// Id-compaction support: both snapshots hold renumbered rows now, so
    /// they are invalidated (the graphs' cleared-overflowed journals force
    /// the same on the next note() anyway), and the warm-start Ritz vector
    /// is permuted through the old->new map so the next lambda2 solve still
    /// warm-starts — compaction must not cost a cold solve. Entries of
    /// retired ids (dead since the last sample) are dropped; values are
    /// untouched, so the permuted vector scatters exactly as the old one
    /// would onto surviving rows.
    void on_compact(const std::vector<graph::NodeId>& old_to_new) {
        snap_.invalidate();
        ref_snap_.invalidate();
        if (!has_warm_) return;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < warm_ids_.size(); ++i) {
            graph::NodeId id = warm_ids_[i];
            graph::NodeId to =
                id < old_to_new.size() ? old_to_new[id] : graph::invalid_node;
            if (to == graph::invalid_node) continue;
            warm_ids_[keep] = to;
            warm_vec_[keep] = warm_vec_[i];
            ++keep;
        }
        warm_ids_.resize(keep);
        warm_vec_.resize(keep);
        has_warm_ = keep != 0;
    }

    /// Full CSR rebuilds / rows-patched-in-place performed so far, summed
    /// over the main and reference snapshots. Surfaced per run as the
    /// `probe_rebuilds` / `probe_patched_events` counters.
    std::uint64_t probe_rebuilds() const {
        return snap_.rebuilds() + ref_snap_.rebuilds();
    }
    std::uint64_t probe_patched_events() const {
        return snap_.patched_events() + ref_snap_.patched_events();
    }

    std::size_t dense_limit() const { return dense_limit_; }

private:
    /// Sync the snapshot of g, or reuse it within a begin_sample batch.
    void ensure_snapshot(const graph::Graph& g);

    /// lambda2 via CSR Lanczos, optionally warm-started from (and feeding)
    /// the previous auto solve's Ritz vector.
    double lambda2_sparse_csr(const CsrGraph& csr, std::uint64_t seed,
                              std::size_t max_iterations, double tolerance,
                              bool warm);

    /// Dense Jacobi over the snapshot's normalized Laplacian, materialized
    /// into the reused scratch matrix (no per-call allocation at capacity).
    double lambda2_dense_csr(const CsrGraph& csr);

    /// Scatter the stored Ritz vector onto csr's dense indexing (zeros for
    /// rows with no stored entry). Returns null when absent or fewer than
    /// half of csr's rows carry a stored value — too stale to help.
    const std::vector<double>* build_warm_start(const CsrGraph& csr);

    /// BFS over `csr` from dense index `src` into `dist` (npos = unreached).
    /// `dist` is resized and re-initialized; `queue` is the work list.
    void bfs(const CsrGraph& csr, std::uint32_t src, std::vector<std::uint32_t>& dist);

    std::size_t dense_limit_;
    const graph::Graph* batch_graph_ = nullptr;
    bool snapshot_valid_ = false;
    bool incremental_ = false;
    IncrementalSnapshot snap_;
    IncrementalSnapshot ref_snap_;
    std::vector<double> kernel_;
    std::vector<std::uint32_t> dist_;
    std::vector<std::uint32_t> ref_dist_;
    std::vector<std::uint32_t> queue_;
    std::vector<graph::NodeId> sources_;
    // Warm-start state: the previous auto-path Ritz vector keyed by node id.
    std::vector<graph::NodeId> warm_ids_;
    std::vector<double> warm_vec_;
    std::vector<double> start_;
    bool has_warm_ = false;
    // Dense-path scratch: work matrix + eigenvalue buffer, reused across
    // samples so the small-graph fallback stops re-allocating O(n^2) per
    // probe. `scaled_` is the spmv's D^{-1/2}x pass, owned here so two
    // engines can probe two snapshots concurrently.
    DenseMatrix dense_scratch_;
    std::vector<double> dense_values_;
    std::vector<double> scaled_;
};

}  // namespace xheal::spectral
