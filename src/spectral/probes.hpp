// ProbeEngine — the sparse, scratch-reusing metric probe layer that lets
// scenario runs sample spectral and stretch metrics at n = 1e5+.
//
// The engine owns a CSR snapshot (csr.hpp) plus flat BFS/Lanczos scratch and
// rebuilds the snapshot per probe; buffers only grow, so steady-state
// probing allocates nothing once the population peak has been seen.
//
//   * lambda2()        — algebraic connectivity of the normalized Laplacian.
//                        Dense Jacobi below `dense_limit` nodes (small
//                        graphs, exact), matrix-free Lanczos on the implicit
//                        CSR operator above it, with the D^{1/2} 1 kernel
//                        deflated. Selection is automatic; the _dense/_sparse
//                        entry points force one path (property tests compare
//                        them to 1e-6).
//   * component_count() — connected components via CSR BFS (flat arrays, no
//                        hashing), the probe behind `connected`.
//   * sampled_stretch() — the paper's network-stretch metric over a fixed
//                        budget of sampled BFS sources: max over pairs
//                        (s, t), s sampled, of dist_G(s,t) / dist_G'(s,t).
//                        A max over a subset of sources, so the sampled
//                        value never exceeds the exact stretch and reaches
//                        it once the budget covers every live node. Sources
//                        are drawn from the caller's rng (the runner's
//                        independent probe stream), so probe cadence never
//                        perturbs the adversary trace.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/csr.hpp"
#include "util/rng.hpp"

namespace xheal::spectral {

class ProbeEngine {
public:
    /// Node count at or below which lambda2() uses the dense Jacobi path.
    static constexpr std::size_t default_dense_limit = 160;

    /// Lanczos step budget of the auto lambda2() probe. lambda2 of an
    /// expander sits at the edge of the spectral bulk (no eigengap), so the
    /// iteration converges only polynomially there; 64 steps land within
    /// ~0.5% of the exhaustive answer at n = 1e5 for ~1/6 of the cost, which
    /// is probe-grade accuracy. The Ritz value approaches lambda2 from
    /// above, so probe readings are a slight over-estimate.
    static constexpr std::size_t probe_lanczos_steps = 64;

    /// Exhaustive budget used by lambda2_sparse(): below this many nodes the
    /// Krylov space is exhausted and the value is exact to round-off, which
    /// is what the sparse-vs-dense property tests compare at 1e-6.
    static constexpr std::size_t exact_lanczos_steps = 160;

    explicit ProbeEngine(std::size_t dense_limit = default_dense_limit)
        : dense_limit_(dense_limit) {}

    /// lambda2 of the normalized Laplacian; 0 for < 2 nodes or disconnected
    /// graphs. Deterministic given the seed. Auto-selects dense Jacobi below
    /// dense_limit() nodes and budgeted Lanczos (probe_lanczos_steps) above.
    double lambda2(const graph::Graph& g, std::uint64_t seed = 12345);

    /// Force the dense Jacobi path (any size; O(n^3), small graphs only).
    double lambda2_dense(const graph::Graph& g);

    /// Force the matrix-free CSR Lanczos path (any size >= 2) with an
    /// explicit step budget (exhaustive by default).
    double lambda2_sparse(const graph::Graph& g, std::uint64_t seed = 12345,
                          std::size_t max_iterations = exact_lanczos_steps,
                          double tolerance = 1e-9);

    /// Connected-component count via CSR BFS (0 for the empty graph).
    std::size_t component_count(const graph::Graph& g);

    /// Sampled network stretch of g against the insert-only reference ref:
    /// max over sampled sources s (budget many; all live nodes when budget
    /// >= |V|) and all targets t of dist_g(s,t) / dist_ref(s,t), counting
    /// pairs alive in both graphs and connected in ref. +infinity when such
    /// a pair is disconnected in g; never below 1.
    double sampled_stretch(const graph::Graph& g, const graph::Graph& ref,
                           std::size_t budget, util::Rng& rng);

    /// Batch scope: between begin_sample(g) and end_sample(), the CSR
    /// snapshot of g is built lazily on first use and then shared by every
    /// probe in the batch (the caller vouches that g does not mutate).
    /// Outside a batch each probe rebuilds the snapshot itself.
    void begin_sample(const graph::Graph& g) {
        batch_graph_ = &g;
        snapshot_valid_ = false;
    }
    void end_sample() {
        batch_graph_ = nullptr;
        snapshot_valid_ = false;
    }

    std::size_t dense_limit() const { return dense_limit_; }

private:
    /// Build the snapshot of g, or reuse it within a begin_sample batch.
    void ensure_snapshot(const graph::Graph& g);

    /// BFS over `csr` from dense index `src` into `dist` (npos = unreached).
    /// `dist` is resized and re-initialized; `queue` is the work list.
    void bfs(const CsrGraph& csr, std::uint32_t src, std::vector<std::uint32_t>& dist);

    std::size_t dense_limit_;
    const graph::Graph* batch_graph_ = nullptr;
    bool snapshot_valid_ = false;
    CsrGraph csr_;
    CsrGraph ref_csr_;
    std::vector<double> kernel_;
    std::vector<std::uint32_t> dist_;
    std::vector<std::uint32_t> ref_dist_;
    std::vector<std::uint32_t> queue_;
    std::vector<graph::NodeId> sources_;
};

}  // namespace xheal::spectral
