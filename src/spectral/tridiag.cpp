#include "spectral/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/expects.hpp"

namespace xheal::spectral {

namespace {

double sign_of(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

/// Implicit-shift QL on (d, e); accumulates rotations into z (m x m,
/// row-major, initialized to identity) when z != nullptr. 0-based
/// translation of the classic tql2 routine.
void ql_implicit(std::vector<double>& d, std::vector<double>& e, std::vector<double>* z) {
    std::size_t n = d.size();
    if (n <= 1) return;
    // e[i] couples d[i] and d[i+1]; pad to length n with trailing zero.
    e.push_back(0.0);

    for (std::size_t l = 0; l < n; ++l) {
        int iterations = 0;
        std::size_t m;
        do {
            for (m = l; m + 1 < n; ++m) {
                double dd = std::abs(d[m]) + std::abs(d[m + 1]);
                if (std::abs(e[m]) <= 1e-15 * dd) break;
            }
            if (m != l) {
                if (iterations++ == 60) throw std::runtime_error("tridiag QL did not converge");
                double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
                double r = std::hypot(g, 1.0);
                g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
                double s = 1.0, c = 1.0, p = 0.0;
                bool underflow = false;
                for (std::size_t ip1 = m; ip1 > l; --ip1) {
                    std::size_t i = ip1 - 1;
                    double f = s * e[i];
                    double b = c * e[i];
                    r = std::hypot(f, g);
                    e[i + 1] = r;
                    if (r == 0.0) {
                        d[i + 1] -= p;
                        e[m] = 0.0;
                        underflow = true;
                        break;
                    }
                    s = f / r;
                    c = g / r;
                    g = d[i + 1] - p;
                    r = (d[i] - g) * s + 2.0 * c * b;
                    p = s * r;
                    d[i + 1] = g + p;
                    g = c * r - b;
                    if (z != nullptr) {
                        for (std::size_t k = 0; k < n; ++k) {
                            double zk = (*z)[k * n + i + 1];
                            (*z)[k * n + i + 1] = s * (*z)[k * n + i] + c * zk;
                            (*z)[k * n + i] = c * (*z)[k * n + i] - s * zk;
                        }
                    }
                }
                if (underflow) continue;
                d[l] -= p;
                e[l] = g;
                e[m] = 0.0;
            }
        } while (m != l);
    }
}

}  // namespace

TridiagEigen tridiag_eigen(std::vector<double> diag, std::vector<double> off) {
    XHEAL_EXPECTS(!diag.empty());
    XHEAL_EXPECTS(off.size() + 1 == diag.size());
    std::size_t n = diag.size();
    std::vector<double> z(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) z[i * n + i] = 1.0;
    ql_implicit(diag, off, &z);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return diag[a] < diag[b]; });

    TridiagEigen out;
    out.values.resize(n);
    out.vectors.assign(n, std::vector<double>(n, 0.0));
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = diag[order[k]];
        for (std::size_t i = 0; i < n; ++i) out.vectors[k][i] = z[i * n + order[k]];
    }
    return out;
}

std::vector<double> tridiag_eigenvalues(std::vector<double> diag, std::vector<double> off) {
    XHEAL_EXPECTS(!diag.empty());
    XHEAL_EXPECTS(off.size() + 1 == diag.size());
    ql_implicit(diag, off, nullptr);
    std::sort(diag.begin(), diag.end());
    return diag;
}

}  // namespace xheal::spectral
