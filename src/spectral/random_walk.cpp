#include "spectral/random_walk.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "spectral/laplacian.hpp"
#include "util/expects.hpp"

namespace xheal::spectral {

using graph::Graph;
using graph::NodeId;

std::vector<double> stationary_distribution(const Graph& g) {
    XHEAL_EXPECTS(g.edge_count() > 0);
    auto nodes = g.nodes_sorted();
    std::vector<double> pi(nodes.size());
    double total = 2.0 * static_cast<double>(g.edge_count());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        pi[i] = static_cast<double>(g.degree(nodes[i])) / total;
    return pi;
}

std::vector<double> lazy_walk_step(const Graph& g, const std::vector<double>& p) {
    auto nodes = g.nodes_sorted();
    XHEAL_EXPECTS(p.size() == nodes.size());
    std::unordered_map<NodeId, std::size_t> index;
    index.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);

    std::vector<double> next(p.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        double mass = p[i];
        if (mass == 0.0) continue;
        std::size_t deg = g.degree(nodes[i]);
        if (deg == 0) {
            next[i] += mass;  // isolated vertex holds its mass
            continue;
        }
        next[i] += 0.5 * mass;
        double share = 0.5 * mass / static_cast<double>(deg);
        for (const auto& [u, _] : g.adjacency(nodes[i])) next[index.at(u)] += share;
    }
    return next;
}

double total_variation(const std::vector<double>& a, const std::vector<double>& b) {
    XHEAL_EXPECTS(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
    return 0.5 * sum;
}

std::optional<std::size_t> mixing_time(const Graph& g, NodeId source, double epsilon,
                                       std::size_t max_steps) {
    XHEAL_EXPECTS(g.has_node(source));
    XHEAL_EXPECTS(epsilon > 0.0);
    if (g.edge_count() == 0) return std::nullopt;
    auto nodes = g.nodes_sorted();
    auto pi = stationary_distribution(g);
    std::vector<double> p(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i] == source) p[i] = 1.0;
    }
    for (std::size_t t = 0; t <= max_steps; ++t) {
        if (total_variation(p, pi) <= epsilon) return t;
        p = lazy_walk_step(g, p);
    }
    return std::nullopt;
}

std::optional<std::size_t> mixing_time_worst(const Graph& g, double epsilon,
                                             std::size_t max_steps) {
    std::size_t worst = 0;
    for (NodeId v : g.nodes_sorted()) {
        auto t = mixing_time(g, v, epsilon, max_steps);
        if (!t.has_value()) return std::nullopt;
        worst = std::max(worst, *t);
    }
    return worst;
}

double spectral_mixing_bound(const Graph& g, double epsilon) {
    double l2 = lambda2(g, LaplacianKind::normalized);
    if (l2 <= 0.0) return std::numeric_limits<double>::infinity();
    double n = static_cast<double>(g.node_count());
    return (2.0 / l2) * std::log(n / epsilon);
}

}  // namespace xheal::spectral
