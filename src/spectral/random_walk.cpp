#include "spectral/random_walk.hpp"

#include <cmath>
#include <limits>

#include "spectral/laplacian.hpp"
#include "spectral/node_index.hpp"
#include "util/expects.hpp"

namespace xheal::spectral {

using graph::Graph;
using graph::NodeId;

namespace {

/// One lazy-walk step with the dense index prebuilt, so mixing-time loops
/// don't rebuild it every step.
std::vector<double> lazy_walk_step_indexed(const Graph& g, const std::vector<double>& p,
                                           const NodeIndex& index) {
    const auto& nodes = index.nodes;
    std::vector<double> next(p.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        double mass = p[i];
        if (mass == 0.0) continue;
        std::size_t deg = g.degree(nodes[i]);
        if (deg == 0) {
            next[i] += mass;  // isolated vertex holds its mass
            continue;
        }
        next[i] += 0.5 * mass;
        double share = 0.5 * mass / static_cast<double>(deg);
        for (NodeId u : g.neighbors(nodes[i])) next[index.position[u]] += share;
    }
    return next;
}

}  // namespace

std::vector<double> stationary_distribution(const Graph& g) {
    XHEAL_EXPECTS(g.edge_count() > 0);
    std::vector<double> pi;
    pi.reserve(g.node_count());
    double total = 2.0 * static_cast<double>(g.edge_count());
    for (NodeId v : g.nodes()) pi.push_back(static_cast<double>(g.degree(v)) / total);
    return pi;
}

std::vector<double> lazy_walk_step(const Graph& g, const std::vector<double>& p) {
    XHEAL_EXPECTS(p.size() == g.node_count());
    return lazy_walk_step_indexed(g, p, NodeIndex(g));
}

double total_variation(const std::vector<double>& a, const std::vector<double>& b) {
    XHEAL_EXPECTS(a.size() == b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
    return 0.5 * sum;
}

std::optional<std::size_t> mixing_time(const Graph& g, NodeId source, double epsilon,
                                       std::size_t max_steps) {
    XHEAL_EXPECTS(g.has_node(source));
    XHEAL_EXPECTS(epsilon > 0.0);
    if (g.edge_count() == 0) return std::nullopt;
    auto pi = stationary_distribution(g);
    NodeIndex index(g);
    std::vector<double> p(g.node_count(), 0.0);
    p[index.position[source]] = 1.0;
    for (std::size_t t = 0; t <= max_steps; ++t) {
        if (total_variation(p, pi) <= epsilon) return t;
        p = lazy_walk_step_indexed(g, p, index);
    }
    return std::nullopt;
}

std::optional<std::size_t> mixing_time_worst(const Graph& g, double epsilon,
                                             std::size_t max_steps) {
    std::size_t worst = 0;
    for (NodeId v : g.nodes()) {
        auto t = mixing_time(g, v, epsilon, max_steps);
        if (!t.has_value()) return std::nullopt;
        worst = std::max(worst, *t);
    }
    return worst;
}

double spectral_mixing_bound(const Graph& g, double epsilon) {
    double l2 = lambda2(g, LaplacianKind::normalized);
    if (l2 <= 0.0) return std::numeric_limits<double>::infinity();
    double n = static_cast<double>(g.node_count());
    return (2.0 / l2) * std::log(n / epsilon);
}

}  // namespace xheal::spectral
