// Edge expansion h(G) and Cheeger constant (conductance) phi(G).
//
//   h(G)   = min_{0 < |S| <= n/2}  |E(S, S~)| / |S|
//   phi(G) = min_S |E(S, S~)| / min(vol(S), vol(S~))
//
// Both are NP-hard to compute in general; we provide
//   * exact values by Gray-code subset enumeration for n <= exact limit, and
//   * Fiedler sweep-cut upper bounds plus the Cheeger spectral lower bound
//     for larger graphs.
// Benches report which estimator produced each number.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::spectral {

/// Hard cap for the exact enumerators (2^n states are visited).
inline constexpr std::size_t exact_expansion_limit = 24;

/// Exact edge expansion. 0 for disconnected or trivial (< 2 node) graphs.
/// Requires node_count() <= exact_expansion_limit.
double edge_expansion_exact(const graph::Graph& g);

/// Exact Cheeger constant (conductance). Same preconditions.
double cheeger_exact(const graph::Graph& g);

struct SweepResult {
    double expansion = 0.0;    ///< best h over sweep prefixes (upper bound on h)
    double conductance = 0.0;  ///< best phi over sweep prefixes (upper bound on phi)
    /// The vertex side achieving the best conductance cut (smaller volume side).
    std::vector<graph::NodeId> best_side;
};

/// Fiedler sweep cut: order vertices by D^{-1/2}-scaled Fiedler vector and
/// take the best prefix cut. Upper bounds on h and phi. Returns zeros for
/// disconnected graphs.
SweepResult sweep_cut(const graph::Graph& g, std::uint64_t seed = 12345);

/// h estimate: exact when n <= exact_limit, else sweep upper bound.
double edge_expansion_estimate(const graph::Graph& g, std::size_t exact_limit = 18);

/// phi estimate: exact when n <= exact_limit, else sweep upper bound.
double cheeger_estimate(const graph::Graph& g, std::size_t exact_limit = 18);

/// Cheeger-based lower bound on h: h >= phi * dmin >= (lambda2 / 2) * dmin.
double expansion_spectral_lower_bound(const graph::Graph& g, std::uint64_t seed = 12345);

}  // namespace xheal::spectral
