#include "spectral/probes.hpp"

#include <algorithm>
#include <limits>

#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"

namespace xheal::spectral {

using graph::Graph;
using graph::NodeId;

namespace {

/// Flood-fill component count over a built snapshot, reusing the caller's
/// visited/work buffers.
std::size_t count_components(const CsrGraph& csr, std::vector<std::uint32_t>& visited,
                             std::vector<std::uint32_t>& queue) {
    std::size_t n = csr.size();
    visited.assign(n, 0);
    std::size_t comps = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (visited[i] != 0) continue;
        ++comps;
        visited[i] = 1;
        queue.clear();
        queue.push_back(i);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            for (std::uint32_t v : csr.row(queue[head])) {
                if (visited[v] == 0) {
                    visited[v] = 1;
                    queue.push_back(v);
                }
            }
        }
    }
    return comps;
}

}  // namespace

void IncrementalSnapshot::sync(const Graph& g) {
    if (force_rebuild_ || graph_ != &g) {
        csr_.build(g);
        graph_ = &g;
        force_rebuild_ = false;
        pending_.clear();
        ++rebuilds_;
        return;
    }
    if (pending_.empty()) return;  // snapshot already current
    std::sort(pending_.begin(), pending_.end());
    pending_.erase(std::unique(pending_.begin(), pending_.end()), pending_.end());
    // Patching rewrites only the touched rows but still scans every clean
    // row once to renumber; past a quarter of the rows dirty, the fresh
    // build is no slower and simpler, so rebuild there (and when the delta
    // breaks the patcher's append-only id assumption).
    if (pending_.size() * 4 > csr_.size() || !csr_.patch(g, pending_)) {
        csr_.build(g);
        ++rebuilds_;
    } else {
        patched_events_ += pending_.size();
    }
    pending_.clear();
}

void ProbeEngine::ensure_snapshot(const Graph& g) {
    if (batch_graph_ == &g && snapshot_valid_) return;
    if (batch_graph_ != &g) snap_.invalidate();  // un-batched probe: rebuild
    snap_.sync(g);
    snapshot_valid_ = batch_graph_ == &g;
}

// ----- lambda2 -----

double ProbeEngine::lambda2(const Graph& g, std::uint64_t seed) {
    if (g.node_count() < 2) return 0.0;
    ensure_snapshot(g);
    return lambda2_csr(snap_.csr(), seed);
}

double ProbeEngine::lambda2_csr(const CsrGraph& csr, std::uint64_t seed) {
    if (csr.size() < 2) return 0.0;
    if (csr.size() <= dense_limit_) return lambda2_dense_csr(csr);
    return lambda2_sparse_csr(csr, seed, probe_lanczos_steps, probe_lambda2_tol,
                              /*warm=*/true);
}

double ProbeEngine::lambda2_dense(const Graph& g) {
    if (g.node_count() < 2) return 0.0;
    ensure_snapshot(g);
    return lambda2_dense_csr(snap_.csr());
}

double ProbeEngine::lambda2_dense_csr(const CsrGraph& csr) {
    std::size_t n = csr.size();
    if (n < 2) return 0.0;
    // Materialize I - D^{-1/2} A D^{-1/2} straight from the snapshot into
    // the reused scratch matrix (isolated vertices contribute zero rows,
    // matching laplacian_dense's convention). The product isd_i * isd_j is
    // commutative, so the matrix is exactly symmetric by construction.
    dense_scratch_.reset(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        double isd_i = csr.inv_sqrt_deg(i);
        if (isd_i == 0.0) continue;  // isolated vertex: zero row
        dense_scratch_.at(i, i) = 1.0;
        for (std::uint32_t j : csr.row(i))
            dense_scratch_.at(i, j) = -isd_i * csr.inv_sqrt_deg(j);
    }
    jacobi_eigenvalues_inplace(dense_scratch_, dense_values_);
    return std::max(0.0, dense_values_[1]);
}

double ProbeEngine::lambda2_sparse_csr(const CsrGraph& csr, std::uint64_t seed,
                                       std::size_t max_iterations, double tolerance,
                                       bool warm) {
    if (csr.size() < 2) return 0.0;
    if (count_components(csr, dist_, queue_) > 1) return 0.0;

    csr.normalized_kernel(kernel_);
    util::Rng rng(seed);
    LinearOperator apply = [this, &csr](const std::vector<double>& x,
                                        std::vector<double>& y) {
        csr.apply_normalized_laplacian(x, y, scaled_);
    };
    const std::vector<double>* warm_start = warm ? build_warm_start(csr) : nullptr;
    auto result = lanczos_smallest(apply, csr.size(), kernel_, rng, max_iterations,
                                   tolerance, warm_start);
    if (warm) {
        warm_ids_.assign(csr.nodes().begin(), csr.nodes().end());
        warm_vec_ = std::move(result.vector);
        has_warm_ = true;
    }
    return std::max(0.0, result.value);
}

double ProbeEngine::lambda2_sparse(const Graph& g, std::uint64_t seed,
                                   std::size_t max_iterations, double tolerance) {
    if (g.node_count() < 2) return 0.0;
    ensure_snapshot(g);
    return lambda2_sparse_csr(snap_.csr(), seed, max_iterations, tolerance,
                              /*warm=*/false);
}

const std::vector<double>* ProbeEngine::build_warm_start(const CsrGraph& csr) {
    if (!has_warm_) return nullptr;
    std::size_t n = csr.size();
    start_.assign(n, 0.0);
    // Both id lists are ascending; merge the stored vector onto the current
    // dense numbering, zero-filling rows born since the previous solve.
    const auto& ids = csr.nodes();
    std::size_t matched = 0, w = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (w < warm_ids_.size() && warm_ids_[w] < ids[i]) ++w;
        if (w == warm_ids_.size()) break;
        if (warm_ids_[w] == ids[i]) {
            start_[i] = warm_vec_[w];
            ++matched;
        }
    }
    return matched * 2 >= n ? &start_ : nullptr;
}

// ----- components -----

std::size_t ProbeEngine::component_count(const Graph& g) {
    ensure_snapshot(g);
    return component_count_csr(snap_.csr());
}

std::size_t ProbeEngine::component_count_csr(const CsrGraph& csr) {
    return count_components(csr, dist_, queue_);
}

// ----- stretch -----

void ProbeEngine::bfs(const CsrGraph& csr, std::uint32_t src,
                      std::vector<std::uint32_t>& dist) {
    dist.assign(csr.size(), CsrGraph::npos);
    queue_.clear();
    queue_.push_back(src);
    dist[src] = 0;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        std::uint32_t u = queue_[head];
        std::uint32_t du = dist[u];
        for (std::uint32_t v : csr.row(u)) {
            if (dist[v] == CsrGraph::npos) {
                dist[v] = du + 1;
                queue_.push_back(v);
            }
        }
    }
}

double ProbeEngine::sampled_stretch(const Graph& g, const Graph& ref,
                                    std::size_t budget, util::Rng& rng) {
    ensure_snapshot(g);
    // The reference only follows the incremental protocol when the caller
    // feeds note_reference(); otherwise fall back to rebuild-per-call.
    if (!incremental_) ref_snap_.invalidate();
    ref_snap_.sync(ref);
    return sampled_stretch_csr(snap_.csr(), ref_snap_.csr(), budget, rng);
}

double ProbeEngine::sampled_stretch_csr(const CsrGraph& csr, const CsrGraph& ref_csr,
                                        std::size_t budget, util::Rng& rng) {
    sample_stretch_sources(csr, budget, rng, sources_);
    return stretch_over_sources(csr, ref_csr, sources_);
}

void ProbeEngine::sample_stretch_sources(const CsrGraph& csr, std::size_t budget,
                                         util::Rng& rng, std::vector<NodeId>& out) {
    std::size_t n = csr.size();
    out.clear();
    if (n < 2) return;  // stretch degenerates to 1.0; draw nothing
    // Sample `budget` distinct sources by partial Fisher-Yates over the live
    // pool; budget >= n degenerates to the exact all-sources sweep.
    out.assign(csr.nodes().begin(), csr.nodes().end());
    std::size_t k = std::min(budget, n);
    if (k < n) {
        for (std::size_t i = 0; i < k; ++i) {
            std::size_t j = i + rng.index(n - i);
            std::swap(out[i], out[j]);
        }
        out.resize(k);
    }
}

double ProbeEngine::stretch_over_sources(const CsrGraph& csr, const CsrGraph& ref_csr,
                                         const std::vector<NodeId>& sources) {
    if (csr.size() < 2) return 1.0;

    double worst = 0.0;
    for (NodeId s : sources) {
        std::uint32_t gi = csr.index_of(s);
        std::uint32_t ri = ref_csr.index_of(s);
        if (ri == CsrGraph::npos) continue;  // source unknown to the reference
        bfs(csr, gi, dist_);
        bfs(ref_csr, ri, ref_dist_);
        const auto& ref_nodes = ref_csr.nodes();
        for (std::size_t j = 0; j < ref_nodes.size(); ++j) {
            std::uint32_t rd = ref_dist_[j];
            if (rd == CsrGraph::npos || rd == 0) continue;  // unreachable or s itself
            std::uint32_t ti = csr.index_of(ref_nodes[j]);
            if (ti == CsrGraph::npos) continue;  // deleted nodes don't count
            std::uint32_t gd = dist_[ti];
            if (gd == CsrGraph::npos) return std::numeric_limits<double>::infinity();
            worst = std::max(worst,
                             static_cast<double>(gd) / static_cast<double>(rd));
        }
    }
    return std::max(worst, 1.0);
}

}  // namespace xheal::spectral
