#include "spectral/probes.hpp"

#include <algorithm>
#include <limits>

#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/laplacian.hpp"

namespace xheal::spectral {

using graph::Graph;
using graph::NodeId;

namespace {

/// Flood-fill component count over a built snapshot, reusing the caller's
/// visited/work buffers.
std::size_t count_components(const CsrGraph& csr, std::vector<std::uint32_t>& visited,
                             std::vector<std::uint32_t>& queue) {
    std::size_t n = csr.size();
    visited.assign(n, 0);
    std::size_t comps = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (visited[i] != 0) continue;
        ++comps;
        visited[i] = 1;
        queue.clear();
        queue.push_back(i);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            for (std::uint32_t v : csr.row(queue[head])) {
                if (visited[v] == 0) {
                    visited[v] = 1;
                    queue.push_back(v);
                }
            }
        }
    }
    return comps;
}

}  // namespace

double ProbeEngine::lambda2(const Graph& g, std::uint64_t seed) {
    if (g.node_count() < 2) return 0.0;
    if (g.node_count() <= dense_limit_) return lambda2_dense(g);
    return lambda2_sparse(g, seed, probe_lanczos_steps, 1e-7);
}

double ProbeEngine::lambda2_dense(const Graph& g) {
    if (g.node_count() < 2) return 0.0;
    auto values = jacobi_eigenvalues(laplacian_dense(g, LaplacianKind::normalized));
    return std::max(0.0, values[1]);
}

void ProbeEngine::ensure_snapshot(const Graph& g) {
    if (batch_graph_ == &g && snapshot_valid_) return;
    csr_.build(g);
    snapshot_valid_ = batch_graph_ == &g;
}

double ProbeEngine::lambda2_sparse(const Graph& g, std::uint64_t seed,
                                   std::size_t max_iterations, double tolerance) {
    if (g.node_count() < 2) return 0.0;
    ensure_snapshot(g);
    if (count_components(csr_, dist_, queue_) > 1) return 0.0;

    csr_.normalized_kernel(kernel_);
    util::Rng rng(seed);
    const CsrGraph& csr = csr_;
    LinearOperator apply = [&csr](const std::vector<double>& x, std::vector<double>& y) {
        csr.apply_normalized_laplacian(x, y);
    };
    auto result = lanczos_smallest(apply, csr_.size(), kernel_, rng, max_iterations,
                                   tolerance);
    return std::max(0.0, result.value);
}

std::size_t ProbeEngine::component_count(const Graph& g) {
    ensure_snapshot(g);
    return count_components(csr_, dist_, queue_);
}

void ProbeEngine::bfs(const CsrGraph& csr, std::uint32_t src,
                      std::vector<std::uint32_t>& dist) {
    dist.assign(csr.size(), CsrGraph::npos);
    queue_.clear();
    queue_.push_back(src);
    dist[src] = 0;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
        std::uint32_t u = queue_[head];
        std::uint32_t du = dist[u];
        for (std::uint32_t v : csr.row(u)) {
            if (dist[v] == CsrGraph::npos) {
                dist[v] = du + 1;
                queue_.push_back(v);
            }
        }
    }
}

double ProbeEngine::sampled_stretch(const Graph& g, const Graph& ref,
                                    std::size_t budget, util::Rng& rng) {
    ensure_snapshot(g);
    std::size_t n = csr_.size();
    if (n < 2) return 1.0;
    ref_csr_.build(ref);

    // Sample `budget` distinct sources by partial Fisher-Yates over the live
    // pool; budget >= n degenerates to the exact all-sources sweep.
    sources_.assign(csr_.nodes().begin(), csr_.nodes().end());
    std::size_t k = std::min(budget, n);
    if (k < n) {
        for (std::size_t i = 0; i < k; ++i) {
            std::size_t j = i + rng.index(n - i);
            std::swap(sources_[i], sources_[j]);
        }
        sources_.resize(k);
    }

    double worst = 0.0;
    for (NodeId s : sources_) {
        std::uint32_t gi = csr_.index_of(s);
        std::uint32_t ri = ref_csr_.index_of(s);
        if (ri == CsrGraph::npos) continue;  // source unknown to the reference
        bfs(csr_, gi, dist_);
        bfs(ref_csr_, ri, ref_dist_);
        const auto& ref_nodes = ref_csr_.nodes();
        for (std::size_t j = 0; j < ref_nodes.size(); ++j) {
            std::uint32_t rd = ref_dist_[j];
            if (rd == CsrGraph::npos || rd == 0) continue;  // unreachable or s itself
            std::uint32_t ti = csr_.index_of(ref_nodes[j]);
            if (ti == CsrGraph::npos) continue;  // deleted nodes don't count
            std::uint32_t gd = dist_[ti];
            if (gd == CsrGraph::npos) return std::numeric_limits<double>::infinity();
            worst = std::max(worst,
                             static_cast<double>(gd) / static_cast<double>(rd));
        }
    }
    return std::max(worst, 1.0);
}

}  // namespace xheal::spectral
