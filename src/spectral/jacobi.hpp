// Cyclic Jacobi eigensolver for dense symmetric matrices.
//
// Robust and simple: repeatedly rotates away the largest off-diagonal
// entries until the off-diagonal norm falls below tolerance. O(n^3) per
// sweep; intended for n up to a few hundred (larger graphs go through the
// Lanczos path).
#pragma once

#include <vector>

#include "spectral/dense_matrix.hpp"

namespace xheal::spectral {

struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    std::vector<double> values;
    /// Column k of `vectors` (i.e. vectors.at(i, k) over i) is the
    /// eigenvector for values[k].
    DenseMatrix vectors;
};

/// All eigenvalues of a symmetric matrix, ascending. Requires symmetry
/// (checked to 1e-9).
std::vector<double> jacobi_eigenvalues(DenseMatrix m, double tolerance = 1e-12,
                                       int max_sweeps = 100);

/// In-place variant for scratch-reusing callers (the probe engine's dense
/// fallback): `m` is destroyed — rotated to its diagonal — and the
/// ascending eigenvalues land in `values` (resized; allocation-free once
/// at capacity). Same requirements and results as jacobi_eigenvalues.
void jacobi_eigenvalues_inplace(DenseMatrix& m, std::vector<double>& values,
                                double tolerance = 1e-12, int max_sweeps = 100);

/// Eigenvalues and eigenvectors. Same requirements as jacobi_eigenvalues.
EigenDecomposition jacobi_eigen(DenseMatrix m, double tolerance = 1e-12,
                                int max_sweeps = 100);

}  // namespace xheal::spectral
