// Symmetric tridiagonal eigensolver (implicit-shift QL, EISPACK tql2
// lineage). Used to diagonalize the Lanczos T matrix.
#pragma once

#include <vector>

namespace xheal::spectral {

struct TridiagEigen {
    /// Eigenvalues ascending.
    std::vector<double> values;
    /// vectors[k] is the (m-dimensional) eigenvector for values[k], expressed
    /// in the basis the tridiagonal matrix was given in.
    std::vector<std::vector<double>> vectors;
};

/// Eigen-decomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` (size m) and off-diagonal `off` (size m-1; off[i] couples i,i+1).
/// Requires m >= 1.
TridiagEigen tridiag_eigen(std::vector<double> diag, std::vector<double> off);

/// Eigenvalues only (ascending).
std::vector<double> tridiag_eigenvalues(std::vector<double> diag, std::vector<double> off);

}  // namespace xheal::spectral
