#include "spectral/csr.hpp"

#include <cmath>

namespace xheal::spectral {

using graph::NodeId;

void CsrGraph::build(const graph::Graph& g) {
    nodes_.clear();
    nodes_.reserve(g.node_count());
    position_.assign(g.next_id(), npos);
    for (NodeId v : g.nodes()) {
        position_[v] = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(v);
    }

    std::size_t n = nodes_.size();
    offsets_.resize(n + 1);
    inv_sqrt_deg_.resize(n);
    offsets_[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t deg = g.degree(nodes_[i]);
        offsets_[i + 1] = offsets_[i] + static_cast<std::uint32_t>(deg);
        inv_sqrt_deg_[i] = deg > 0 ? 1.0 / std::sqrt(static_cast<double>(deg)) : 0.0;
    }

    targets_.resize(offsets_[n]);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t* out = targets_.data() + offsets_[i];
        for (NodeId u : g.neighbors(nodes_[i])) *out++ = position_[u];
    }
}

bool CsrGraph::patch(const graph::Graph& g, const std::vector<NodeId>& dirty) {
    std::size_t old_n = nodes_.size();

    // Classify the dirty ids against the snapshot: rows to rebuild (alive),
    // rows to drop (removed), and ids born since the snapshot. Ids that were
    // born and deleted inside the window are skipped entirely.
    added_.clear();
    row_state_.assign(old_n, 0);  // 0 = clean, 1 = dirty, 2 = removed
    for (NodeId v : dirty) {
        std::uint32_t at = index_of(v);
        bool alive = g.has_node(v);
        if (at == npos) {
            if (alive) added_.push_back(v);
        } else {
            row_state_[at] = alive ? 1 : 2;
        }
    }
    // Ids are allocated monotonically and never reused, so additions must
    // append past the snapshot's id range; a gap-filling add_node_with_id
    // would break the ascending node order — fall back to a full rebuild.
    if (!added_.empty() && old_n > 0 && added_.front() <= nodes_.back()) return false;

    // New node list plus the old-dense -> new-dense renumbering. Surviving
    // rows keep their relative order; additions append, so ascending order
    // (and therefore equality with a fresh build) is preserved.
    old_to_new_.resize(old_n);
    nodes_scratch_.clear();
    nodes_scratch_.reserve(old_n + added_.size());
    for (std::size_t i = 0; i < old_n; ++i) {
        if (row_state_[i] == 2) {
            old_to_new_[i] = npos;
            continue;
        }
        old_to_new_[i] = static_cast<std::uint32_t>(nodes_scratch_.size());
        nodes_scratch_.push_back(nodes_[i]);
    }
    for (NodeId v : added_) nodes_scratch_.push_back(v);
    std::size_t n = nodes_scratch_.size();

    position_.assign(g.next_id(), npos);
    for (std::size_t i = 0; i < n; ++i)
        position_[nodes_scratch_[i]] = static_cast<std::uint32_t>(i);

    // Prefix sums and degree weights under the new numbering. Clean rows
    // read their degree from the old offsets (saved aside — offsets_ is
    // rewritten in this pass); dirty and added rows consult g.
    offsets_old_.assign(offsets_.begin(), offsets_.end());
    offsets_.resize(n + 1);
    inv_sqrt_deg_.resize(n);
    offsets_[0] = 0;
    std::size_t out = 0;
    for (std::size_t i = 0; i < old_n; ++i) {
        if (row_state_[i] == 2) continue;
        std::size_t deg = row_state_[i] == 0
                              ? offsets_old_[i + 1] - offsets_old_[i]
                              : g.degree(nodes_[i]);
        offsets_[out + 1] = offsets_[out] + static_cast<std::uint32_t>(deg);
        inv_sqrt_deg_[out] = deg > 0 ? 1.0 / std::sqrt(static_cast<double>(deg)) : 0.0;
        ++out;
    }
    for (NodeId v : added_) {
        std::size_t deg = g.degree(v);
        offsets_[out + 1] = offsets_[out] + static_cast<std::uint32_t>(deg);
        inv_sqrt_deg_[out] = deg > 0 ? 1.0 / std::sqrt(static_cast<double>(deg)) : 0.0;
        ++out;
    }

    // Targets into the double buffer: clean rows renumber their old entries
    // (every neighbor of a clean row survived — otherwise the row would be
    // dirty — and the renumbering is monotone, so the ascending order is
    // exactly the fresh build's); dirty and added rows rebuild from g.
    targets_scratch_.resize(offsets_[n]);
    std::uint32_t* write = targets_scratch_.data();
    for (std::size_t i = 0; i < old_n; ++i) {
        if (row_state_[i] == 2) continue;
        if (row_state_[i] == 0) {
            for (std::uint32_t k = offsets_old_[i]; k < offsets_old_[i + 1]; ++k)
                *write++ = old_to_new_[targets_[k]];
        } else {
            for (NodeId u : g.neighbors(nodes_[i])) *write++ = position_[u];
        }
    }
    for (NodeId v : added_) {
        for (NodeId u : g.neighbors(v)) *write++ = position_[u];
    }

    nodes_.swap(nodes_scratch_);
    targets_.swap(targets_scratch_);
    return true;
}

void CsrGraph::apply_normalized_laplacian(const std::vector<double>& x,
                                          std::vector<double>& y,
                                          std::vector<double>& scaled) const {
    std::size_t n = nodes_.size();
    scaled.resize(n);
    const double* isd = inv_sqrt_deg_.data();
    for (std::size_t i = 0; i < n; ++i) scaled[i] = isd[i] * x[i];

    const std::uint32_t* tg = targets_.data();
    const double* z = scaled.data();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t begin = offsets_[i], end = offsets_[i + 1];
        if (begin == end) {
            y[i] = 0.0;  // isolated vertex: zero row
            continue;
        }
        // Four independent accumulators over a 4-wide block of the row:
        // the gathers of one block have no dependency on each other, which
        // is what lets the autovectorizer (or just the OoO core) overlap
        // them. Portable scalar code — no intrinsics, no pragmas.
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        std::uint32_t k = begin;
        for (; k + 4 <= end; k += 4) {
            a0 += z[tg[k]];
            a1 += z[tg[k + 1]];
            a2 += z[tg[k + 2]];
            a3 += z[tg[k + 3]];
        }
        for (; k < end; ++k) a0 += z[tg[k]];
        y[i] = x[i] - isd[i] * ((a0 + a1) + (a2 + a3));
    }
}

void CsrGraph::apply_normalized_laplacian(const std::vector<double>& x,
                                          std::vector<double>& y) const {
    apply_normalized_laplacian(x, y, scaled_);
}

void CsrGraph::normalized_kernel(std::vector<double>& out) const {
    std::size_t n = nodes_.size();
    out.resize(n);
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double entry = inv_sqrt_deg_[i] > 0.0 ? 1.0 / inv_sqrt_deg_[i] : 0.0;
        out[i] = entry;
        sq += entry * entry;
    }
    if (sq <= 0.0) {
        out.clear();
        return;
    }
    double inv = 1.0 / std::sqrt(sq);
    for (double& x : out) x *= inv;
}

}  // namespace xheal::spectral
