#include "spectral/csr.hpp"

#include <cmath>

namespace xheal::spectral {

using graph::NodeId;

void CsrGraph::build(const graph::Graph& g) {
    nodes_.clear();
    nodes_.reserve(g.node_count());
    position_.assign(g.next_id(), npos);
    for (NodeId v : g.nodes()) {
        position_[v] = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(v);
    }

    std::size_t n = nodes_.size();
    offsets_.resize(n + 1);
    inv_sqrt_deg_.resize(n);
    offsets_[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t deg = g.degree(nodes_[i]);
        offsets_[i + 1] = offsets_[i] + static_cast<std::uint32_t>(deg);
        inv_sqrt_deg_[i] = deg > 0 ? 1.0 / std::sqrt(static_cast<double>(deg)) : 0.0;
    }

    targets_.resize(offsets_[n]);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t* out = targets_.data() + offsets_[i];
        for (NodeId u : g.neighbors(nodes_[i])) *out++ = position_[u];
    }
}

void CsrGraph::apply_normalized_laplacian(const std::vector<double>& x,
                                          std::vector<double>& y) const {
    std::size_t n = nodes_.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t begin = offsets_[i], end = offsets_[i + 1];
        if (begin == end) {
            y[i] = 0.0;  // isolated vertex: zero row
            continue;
        }
        double acc = 0.0;
        for (std::uint32_t k = begin; k < end; ++k) {
            std::uint32_t j = targets_[k];
            acc += inv_sqrt_deg_[j] * x[j];
        }
        y[i] = x[i] - inv_sqrt_deg_[i] * acc;
    }
}

void CsrGraph::normalized_kernel(std::vector<double>& out) const {
    std::size_t n = nodes_.size();
    out.resize(n);
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double entry = inv_sqrt_deg_[i] > 0.0 ? 1.0 / inv_sqrt_deg_[i] : 0.0;
        out[i] = entry;
        sq += entry * entry;
    }
    if (sq <= 0.0) {
        out.clear();
        return;
    }
    double inv = 1.0 / std::sqrt(sq);
    for (double& x : out) x *= inv;
}

}  // namespace xheal::spectral
