// Deterministic, splittable random number generator.
//
// All randomness in the library flows through Rng so that every experiment,
// test and bench is reproducible bit-for-bit given the same seed. Rng wraps
// std::mt19937_64 and adds the common draws the healing code needs (ranged
// integers, shuffles, subset sampling) plus split(), which derives an
// independent child stream so components can be seeded without coupling
// their consumption order.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/expects.hpp"

namespace xheal::util {

/// splitmix64 finalizer: the stateless seed-derivation mix used wherever a
/// decorrelated stream must be derived from a master seed plus a salt
/// (per-shard rng streams, DESIGN.md decision 13). Unlike Rng::split()
/// this consumes nothing from any engine, so derived seeds are a pure
/// function of (seed, salt) and never perturb the master draw sequence.
inline std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed), seed_(seed) {}

    /// Seed this generator was constructed with (for reporting).
    std::uint64_t seed() const { return seed_; }

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

    /// Uniform size_t index in [0, n). Requires n > 0.
    std::size_t index(std::size_t n);

    /// Uniform real in [0, 1).
    double uniform01();

    /// Bernoulli trial with success probability p in [0, 1].
    bool chance(double p);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        if (v.size() < 2) return;
        for (std::size_t i = v.size() - 1; i > 0; --i) {
            std::size_t j = index(i + 1);
            using std::swap;
            swap(v[i], v[j]);
        }
    }

    /// k distinct elements sampled uniformly from v (order randomized).
    /// Requires k <= v.size().
    template <typename T>
    std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
        XHEAL_EXPECTS(k <= v.size());
        std::vector<T> pool = v;
        shuffle(pool);
        pool.resize(k);
        return pool;
    }

    /// One element drawn uniformly from v. Requires v non-empty.
    template <typename T>
    const T& pick(const std::vector<T>& v) {
        XHEAL_EXPECTS(!v.empty());
        return v[index(v.size())];
    }

    /// Derive an independent child generator. Deterministic: the n-th split
    /// of a given Rng always yields the same child stream.
    Rng split();

    /// Access to the raw engine for std distributions.
    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

}  // namespace xheal::util
