// Least-squares fits used to check asymptotic shapes (e.g. "stretch grows
// like O(log n)", "rounds per repair grow like O(log n)").
#pragma once

#include <vector>

namespace xheal::util {

/// y ~= intercept + slope * x with the coefficient of determination r2.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
};

/// Ordinary least squares on (x, y). Requires xs.size() == ys.size() >= 2.
LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fit y against log2(x): detects logarithmic growth. Requires x > 0.
LinearFit fit_vs_log2(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fit log2(y) against log2(x): the slope is the polynomial exponent
/// (slope ~ 1 for linear growth, ~0 for constant). Requires x, y > 0.
LinearFit fit_loglog(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace xheal::util
