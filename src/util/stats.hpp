// Running statistics and percentile summaries used by the bench harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace xheal::util {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return count_ == 0 ? 0.0 : mean_; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    double sum() const { return sum_; }

    /// Merge another accumulator into this one (parallel-friendly).
    void merge(const RunningStats& other);

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set by linear interpolation; q in [0, 1].
/// Sorts a copy; intended for end-of-run summaries, not hot paths.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& values);

/// Sample standard deviation of a vector (0 for fewer than two values).
double stddev_of(const std::vector<double>& values);

}  // namespace xheal::util
