// Fixed-width table printing for the bench harness ("paper-style" rows)
// plus a minimal CSV writer for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xheal::util {

/// Collects rows of string cells and prints them as an aligned ASCII table
/// with a header rule. Numeric helpers format with fixed precision so bench
/// output lines up column by column.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Start a new row. Cells are appended with add(); missing cells print
    /// empty, extra cells are a contract violation.
    Table& row();

    Table& add(const std::string& cell);
    Table& add(const char* cell);
    Table& add(double value, int precision = 3);
    Table& add(std::size_t value);
    Table& add(long long value);
    Table& add(int value);
    Table& add(bool value);

    /// Render the table to `out` with 2-space column gaps.
    void print(std::ostream& out) const;

    /// Render as CSV (no alignment padding).
    void write_csv(std::ostream& out) const;

    std::size_t row_count() const { return rows_.size(); }
    std::size_t column_count() const { return headers_.size(); }
    /// Cell accessor for tests; row/col must be in range.
    const std::string& cell(std::size_t row, std::size_t col) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
std::string format_double(double value, int precision = 3);

/// Section banner used by bench binaries: "== title ==".
void print_banner(std::ostream& out, const std::string& title);

}  // namespace xheal::util
