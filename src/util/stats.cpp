#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace xheal::util {

void RunningStats::add(double x) {
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double RunningStats::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double n1 = static_cast<double>(count_);
    double n2 = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
    XHEAL_EXPECTS(q >= 0.0 && q <= 1.0);
    XHEAL_EXPECTS(!values.empty());
    std::sort(values.begin(), values.end());
    if (values.size() == 1) return values.front();
    double pos = q * static_cast<double>(values.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= values.size()) return values.back();
    double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean_of(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double s = 0.0;
    for (double v : values) s += v;
    return s / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
    if (values.size() < 2) return 0.0;
    double m = mean_of(values);
    double s = 0.0;
    for (double v : values) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values.size() - 1));
}

}  // namespace xheal::util
