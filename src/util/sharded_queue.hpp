// Fenced single-producer/single-consumer ring — the per-shard work queue of
// the intra-session shard engine (DESIGN.md decision 13).
//
// One producer (the stepping thread) pushes commands, one consumer (a shard
// worker) pops them. head_/tail_ are monotonically increasing counters; the
// slot index is the counter masked by the power-of-two capacity, so
// full/empty are distinguishable without a wasted slot. Synchronization is
// the classic SPSC pairing: the producer's release store of tail_ publishes
// the written slot to the consumer's acquire load, and the consumer's
// release store of head_ publishes the freed slot back. Blocking waits park
// on the C++20 atomic wait/notify words directly — no mutex, no condvar —
// matching the "explicit queues and fences, not mutex soup" shape the
// ROADMAP specifies for sharded execution.
//
// T must be copy-assignable; slots are reused in place, so steady-state
// traffic allocates nothing after construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/expects.hpp"

namespace xheal::util {

template <typename T>
class SpscRing {
public:
    /// `capacity` must be a power of two >= 2.
    explicit SpscRing(std::size_t capacity = 256) : buffer_(capacity), mask_(capacity - 1) {
        XHEAL_EXPECTS(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    std::size_t capacity() const { return buffer_.size(); }

    /// Producer side. Returns false when the ring is full.
    bool try_push(const T& item) {
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head == buffer_.size()) return false;
        buffer_[tail & mask_] = item;
        tail_.store(tail + 1, std::memory_order_release);
        tail_.notify_one();
        return true;
    }

    /// Producer side, blocking: parks on the head counter until the
    /// consumer frees a slot.
    void push(const T& item) {
        while (!try_push(item)) {
            std::size_t head = head_.load(std::memory_order_acquire);
            if (tail_.load(std::memory_order_relaxed) - head < buffer_.size()) continue;
            head_.wait(head, std::memory_order_acquire);
        }
    }

    /// Consumer side. Returns false when the ring is empty.
    bool try_pop(T& out) {
        std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail) return false;
        out = buffer_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        head_.notify_one();
        return true;
    }

    /// Consumer side, blocking: parks on the tail counter until the
    /// producer publishes a command.
    void pop(T& out) {
        while (!try_pop(out)) {
            std::size_t tail = tail_.load(std::memory_order_acquire);
            if (head_.load(std::memory_order_relaxed) != tail) continue;
            tail_.wait(tail, std::memory_order_acquire);
        }
    }

private:
    std::vector<T> buffer_;
    std::size_t mask_;
    // Monotone counters (not wrapped indices): empty iff head == tail, full
    // iff tail - head == capacity. Padded apart so the producer's tail
    // stores and the consumer's head stores do not false-share.
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace xheal::util
