#include "util/fit.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace xheal::util {

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
    XHEAL_EXPECTS(xs.size() == ys.size());
    XHEAL_EXPECTS(xs.size() >= 2);
    double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
    } else {
        fit.slope = (n * sxy - sx * sy) / denom;
        fit.intercept = (sy - fit.slope * sx) / n;
    }
    double mean_y = sy / n;
    double ss_tot = 0.0, ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double pred = fit.intercept + fit.slope * xs[i];
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
    }
    fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

LinearFit fit_vs_log2(const std::vector<double>& xs, const std::vector<double>& ys) {
    std::vector<double> lx;
    lx.reserve(xs.size());
    for (double x : xs) {
        XHEAL_EXPECTS(x > 0.0);
        lx.push_back(std::log2(x));
    }
    return fit_linear(lx, ys);
}

LinearFit fit_loglog(const std::vector<double>& xs, const std::vector<double>& ys) {
    std::vector<double> lx, ly;
    lx.reserve(xs.size());
    ly.reserve(ys.size());
    for (double x : xs) {
        XHEAL_EXPECTS(x > 0.0);
        lx.push_back(std::log2(x));
    }
    for (double y : ys) {
        XHEAL_EXPECTS(y > 0.0);
        ly.push_back(std::log2(y));
    }
    return fit_linear(lx, ly);
}

}  // namespace xheal::util
