#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expects.hpp"

namespace xheal::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    XHEAL_EXPECTS(!headers_.empty());
}

Table& Table::row() {
    rows_.emplace_back();
    return *this;
}

Table& Table::add(const std::string& cell) {
    XHEAL_EXPECTS(!rows_.empty());
    XHEAL_EXPECTS(rows_.back().size() < headers_.size());
    rows_.back().push_back(cell);
    return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) { return add(format_double(value, precision)); }

Table& Table::add(std::size_t value) { return add(std::to_string(value)); }

Table& Table::add(long long value) { return add(std::to_string(value)); }

Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(bool value) { return add(std::string(value ? "yes" : "no")); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
    XHEAL_EXPECTS(row < rows_.size());
    XHEAL_EXPECTS(col < rows_[row].size());
    return rows_[row][col];
}

void Table::print(std::ostream& out) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : std::string();
            out << std::left << std::setw(static_cast<int>(widths[c])) << text;
            if (c + 1 < headers_.size()) out << "  ";
        }
        out << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
}

void Table::write_csv(std::ostream& out) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) out << ',';
            out << cells[c];
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

void print_banner(std::ostream& out, const std::string& title) {
    out << "\n== " << title << " ==\n";
}

}  // namespace xheal::util
