#include "util/rng.hpp"

namespace xheal::util {

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    XHEAL_EXPECTS(lo <= hi);
    std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
    return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
    XHEAL_EXPECTS(n > 0);
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform01() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

bool Rng::chance(double p) {
    XHEAL_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
}

Rng Rng::split() {
    // Mix a fresh draw with a golden-ratio constant so child streams do not
    // overlap the parent stream prefix.
    std::uint64_t child_seed = engine_() * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
    return Rng(child_seed);
}

}  // namespace xheal::util
