// Lightweight contract checks (I.5/I.7 style pre/postconditions).
//
// Violations indicate programmer error, not recoverable runtime conditions,
// so they throw xheal::util::ContractViolation carrying the failing
// expression and location. Tests rely on the throw to probe preconditions.
#pragma once

#include <stdexcept>
#include <string>

namespace xheal::util {

/// Thrown when an XHEAL_EXPECTS / XHEAL_ENSURES condition fails.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                            file + ":" + std::to_string(line));
}

}  // namespace xheal::util

#define XHEAL_EXPECTS(cond)                                                      \
    do {                                                                         \
        if (!(cond)) ::xheal::util::contract_fail("precondition", #cond, __FILE__, __LINE__); \
    } while (false)

#define XHEAL_ENSURES(cond)                                                      \
    do {                                                                         \
        if (!(cond)) ::xheal::util::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
    } while (false)

#define XHEAL_ASSERT(cond)                                                       \
    do {                                                                         \
        if (!(cond)) ::xheal::util::contract_fail("invariant", #cond, __FILE__, __LINE__); \
    } while (false)
