// Sorted-vector-as-set primitives shared by the repair path's flat
// mirrors (claim sets, cloud memberships, unit dedupe). One audited
// implementation of the lower_bound + compare + insert/erase pattern; all
// operations reuse the vector's capacity, which is what makes steady-state
// repair allocation-free (DESIGN.md decision 6).
#pragma once

#include <algorithm>
#include <vector>

namespace xheal::util {

/// Insert keeping ascending order; returns false if already present.
template <typename T>
bool sorted_insert(std::vector<T>& v, const T& x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it != v.end() && *it == x) return false;
    v.insert(it, x);
    return true;
}

/// Erase if present; returns false if absent.
template <typename T>
bool sorted_erase(std::vector<T>& v, const T& x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) return false;
    v.erase(it);
    return true;
}

/// Membership test on a sorted vector.
template <typename T>
bool sorted_contains(const std::vector<T>& v, const T& x) {
    return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace xheal::util
