#include "expander/deterministic.hpp"

#include <set>

#include "util/expects.hpp"

namespace xheal::expander {

using graph::Graph;
using graph::NodeId;

Graph make_margulis_expander(std::size_t m) {
    XHEAL_EXPECTS(m >= 2);
    Graph g;
    for (std::size_t i = 0; i < m * m; ++i) g.add_node();
    auto id = [m](std::size_t x, std::size_t y) {
        return static_cast<NodeId>(x * m + y);
    };
    // Gabber-Galil generator set: (x, y) -> (x, x+y), (x, x+y+1),
    // (x+y, y), (x+y+1, y); the inverses are covered by undirectedness.
    for (std::size_t x = 0; x < m; ++x) {
        for (std::size_t y = 0; y < m; ++y) {
            NodeId u = id(x, y);
            std::size_t targets[4][2] = {
                {x, (x + y) % m},
                {x, (x + y + 1) % m},
                {(x + y) % m, y},
                {(x + y + 1) % m, y},
            };
            for (const auto& t : targets) {
                NodeId v = id(t[0], t[1]);
                if (u != v) g.add_black_edge(u, v);
            }
        }
    }
    return g;
}

std::vector<std::pair<NodeId, NodeId>> debruijn_edges_over(
    const std::vector<NodeId>& members) {
    XHEAL_EXPECTS(members.size() >= 2);
    std::size_t z = members.size();
    std::set<std::pair<NodeId, NodeId>> pairs;
    auto link = [&](std::size_t i, std::size_t j) {
        if (i == j) return;
        NodeId a = members[i];
        NodeId b = members[j];
        pairs.emplace(std::min(a, b), std::max(a, b));
    };
    for (std::size_t i = 0; i < z; ++i) {
        link(i, (2 * i) % z);
        link(i, (2 * i + 1) % z);
        link(i, (i + 1) % z);
    }
    return {pairs.begin(), pairs.end()};
}

Graph make_debruijn_graph(std::size_t n) {
    XHEAL_EXPECTS(n >= 2);
    std::vector<NodeId> members;
    members.reserve(n);
    Graph g;
    for (std::size_t i = 0; i < n; ++i) members.push_back(g.add_node());
    for (const auto& [u, v] : debruijn_edges_over(members)) g.add_black_edge(u, v);
    return g;
}

}  // namespace xheal::expander
