#include "expander/hgraph.hpp"

#include <algorithm>
#include <set>

#include "util/expects.hpp"

namespace xheal::expander {

using graph::NodeId;

HGraph::HGraph(std::vector<NodeId> members, std::size_t d, util::Rng& rng) {
    XHEAL_EXPECTS(d >= 1);
    XHEAL_EXPECTS(!members.empty());
    std::sort(members.begin(), members.end());
    XHEAL_EXPECTS(std::adjacent_find(members.begin(), members.end()) == members.end());

    cycles_.resize(d);
    for (auto& cycle : cycles_) {
        std::vector<NodeId> perm = members;
        rng.shuffle(perm);
        for (std::size_t i = 0; i < perm.size(); ++i) {
            NodeId u = perm[i];
            NodeId v = perm[(i + 1) % perm.size()];
            cycle.succ[u] = v;
            cycle.pred[v] = u;
        }
    }
}

bool HGraph::contains(NodeId u) const {
    return !cycles_.empty() && cycles_.front().succ.contains(u);
}

std::vector<NodeId> HGraph::members_sorted() const {
    std::vector<NodeId> out;
    if (cycles_.empty()) return out;
    out.reserve(cycles_.front().succ.size());
    for (const auto& [u, _] : cycles_.front().succ) out.push_back(u);
    std::sort(out.begin(), out.end());
    return out;
}

void HGraph::insert(NodeId u, util::Rng& rng) {
    XHEAL_EXPECTS(!contains(u));
    XHEAL_EXPECTS(size() >= 1);
    // Sorted member snapshot gives a deterministic random draw independent
    // of hash iteration order.
    auto members = members_sorted();
    for (auto& cycle : cycles_) {
        NodeId v = members[rng.index(members.size())];
        NodeId w = cycle.succ.at(v);
        cycle.succ[v] = u;
        cycle.succ[u] = w;
        cycle.pred[w] = u;
        cycle.pred[u] = v;
    }
}

void HGraph::remove(NodeId u) {
    XHEAL_EXPECTS(contains(u));
    XHEAL_EXPECTS(size() >= 2);
    for (auto& cycle : cycles_) {
        NodeId p = cycle.pred.at(u);
        NodeId s = cycle.succ.at(u);
        cycle.succ.erase(u);
        cycle.pred.erase(u);
        cycle.succ[p] = s;
        cycle.pred[s] = p;
    }
}

NodeId HGraph::successor(NodeId u, std::size_t cycle) const {
    XHEAL_EXPECTS(cycle < cycles_.size());
    XHEAL_EXPECTS(contains(u));
    return cycles_[cycle].succ.at(u);
}

NodeId HGraph::predecessor(NodeId u, std::size_t cycle) const {
    XHEAL_EXPECTS(cycle < cycles_.size());
    XHEAL_EXPECTS(contains(u));
    return cycles_[cycle].pred.at(u);
}

std::vector<std::pair<NodeId, NodeId>> HGraph::edges() const {
    std::set<std::pair<NodeId, NodeId>> pairs;
    for (const auto& cycle : cycles_) {
        for (const auto& [u, v] : cycle.succ) {
            if (u == v) continue;  // degenerate 1-node cycle
            pairs.emplace(std::min(u, v), std::max(u, v));
        }
    }
    return {pairs.begin(), pairs.end()};
}

void HGraph::validate() const {
    auto members = members_sorted();
    for (const auto& cycle : cycles_) {
        XHEAL_ASSERT(cycle.succ.size() == members.size());
        XHEAL_ASSERT(cycle.pred.size() == members.size());
        for (const auto& [u, v] : cycle.succ) {
            XHEAL_ASSERT(cycle.pred.at(v) == u);
        }
        // The successor map must form a single cycle covering all members.
        if (members.empty()) continue;
        NodeId start = members.front();
        NodeId cur = start;
        std::size_t steps = 0;
        do {
            cur = cycle.succ.at(cur);
            ++steps;
            XHEAL_ASSERT(steps <= members.size());
        } while (cur != start);
        XHEAL_ASSERT(steps == members.size());
    }
}

}  // namespace xheal::expander
