#include "expander/hgraph.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace xheal::expander {

using graph::NodeId;

namespace {

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return {std::min(a, b), std::max(a, b)};
}

}  // namespace

HGraph::HGraph(std::vector<NodeId> members, std::size_t d, util::Rng& rng) {
    assign(members, d, rng);
}

void HGraph::assign(const std::vector<NodeId>& members, std::size_t d,
                    util::Rng& rng) {
    XHEAL_EXPECTS(d >= 1);
    XHEAL_EXPECTS(!members.empty());
    d_ = d;
    slot_ids_.assign(members.begin(), members.end());
    std::sort(slot_ids_.begin(), slot_ids_.end());
    XHEAL_EXPECTS(std::adjacent_find(slot_ids_.begin(), slot_ids_.end()) ==
                  slot_ids_.end());

    free_slots_.clear();
    index_.clear();
    index_.reserve(slot_ids_.size());
    for (std::uint32_t s = 0; s < slot_ids_.size(); ++s) index_.push_back({slot_ids_[s], s});
    succ_.resize(d_);
    pred_.resize(d_);
    for (std::size_t c = 0; c < d_; ++c) {
        succ_[c].assign(slot_ids_.size(), 0);
        pred_[c].assign(slot_ids_.size(), 0);
    }
    for (std::size_t c = 0; c < d_; ++c) shuffle_cycle(c, rng);
}

std::size_t HGraph::index_lower_bound(NodeId u) const {
    auto it = std::lower_bound(
        index_.begin(), index_.end(), u,
        [](const std::pair<NodeId, std::uint32_t>& e, NodeId id) { return e.first < id; });
    return static_cast<std::size_t>(it - index_.begin());
}

std::uint32_t HGraph::slot_of(NodeId u) const {
    std::size_t at = index_lower_bound(u);
    return at < index_.size() && index_[at].first == u ? index_[at].second : npos;
}

std::vector<NodeId> HGraph::members_sorted() const {
    std::vector<NodeId> out;
    out.reserve(index_.size());
    for (const auto& [id, slot] : index_) out.push_back(id);
    return out;
}

void HGraph::shuffle_cycle(std::size_t cycle, util::Rng& rng) {
    // Permute the live slots in ascending-id order; shuffling slot handles
    // consumes the identical rng draws as shuffling the sorted id list, so
    // construction remains bit-compatible with the original implementation.
    perm_.clear();
    for (const auto& [id, slot] : index_) perm_.push_back(slot);
    rng.shuffle(perm_);
    std::vector<std::uint32_t>& succ = succ_[cycle];
    std::vector<std::uint32_t>& pred = pred_[cycle];
    for (std::size_t i = 0; i < perm_.size(); ++i) {
        std::uint32_t a = perm_[i];
        std::uint32_t b = perm_[(i + 1) % perm_.size()];
        succ[a] = b;
        pred[b] = a;
    }
}

void HGraph::rebuild(util::Rng& rng) {
    for (std::size_t c = 0; c < d_; ++c) shuffle_cycle(c, rng);
}

void HGraph::remap_ids(const std::vector<NodeId>& old_to_new) {
    for (NodeId& id : slot_ids_) {
        if (id == graph::invalid_node) continue;  // free slot
        XHEAL_EXPECTS(id < old_to_new.size() &&
                      old_to_new[id] != graph::invalid_node);
        id = old_to_new[id];
    }
    // The map is monotone over live ids, so the sorted directory stays
    // sorted under an in-place rewrite.
    for (auto& [id, slot] : index_) id = old_to_new[id];
}

void HGraph::insert(NodeId u, util::Rng& rng, SpliceDelta* delta) {
    XHEAL_EXPECTS(!contains(u));
    XHEAL_EXPECTS(size() >= 1);

    std::uint32_t s;
    if (!free_slots_.empty()) {
        s = free_slots_.back();
        free_slots_.pop_back();
        slot_ids_[s] = u;
    } else {
        s = static_cast<std::uint32_t>(slot_ids_.size());
        slot_ids_.push_back(u);
        for (std::size_t c = 0; c < d_; ++c) {
            succ_[c].push_back(0);
            pred_[c].push_back(0);
        }
    }

    std::size_t n = index_.size();
    for (std::size_t c = 0; c < d_; ++c) {
        // Uniform position draw over the pre-insert members in ascending-id
        // order (the draw order the hash-based implementation used).
        std::uint32_t vslot = index_[rng.index(n)].second;
        std::uint32_t wslot = succ_[c][vslot];
        succ_[c][vslot] = s;
        pred_[c][s] = vslot;
        succ_[c][s] = wslot;
        pred_[c][wslot] = s;
        if (delta != nullptr) {
            NodeId v = slot_ids_[vslot];
            NodeId w = slot_ids_[wslot];
            delta->added.push_back(ordered(v, u));
            if (vslot != wslot) {
                delta->removed.push_back(ordered(v, w));
                delta->added.push_back(ordered(u, w));
            }
        }
    }
    index_.insert(index_.begin() + static_cast<std::ptrdiff_t>(index_lower_bound(u)),
                  {u, s});
}

void HGraph::remove(NodeId u, SpliceDelta* delta) {
    XHEAL_EXPECTS(size() >= 2);
    std::size_t at = index_lower_bound(u);
    XHEAL_EXPECTS(at < index_.size() && index_[at].first == u);
    std::uint32_t s = index_[at].second;

    for (std::size_t c = 0; c < d_; ++c) {
        std::uint32_t p = pred_[c][s];
        std::uint32_t n = succ_[c][s];
        succ_[c][p] = n;  // p == n (2-cycle) degenerates to a self-loop
        pred_[c][n] = p;
        if (delta != nullptr) {
            NodeId pid = slot_ids_[p];
            NodeId nid = slot_ids_[n];
            delta->removed.push_back(ordered(pid, u));
            if (n != p) {
                delta->removed.push_back(ordered(u, nid));
                delta->added.push_back(ordered(pid, nid));
            }
        }
    }
    index_.erase(index_.begin() + static_cast<std::ptrdiff_t>(at));
    slot_ids_[s] = graph::invalid_node;
    free_slots_.push_back(s);
}

NodeId HGraph::successor(NodeId u, std::size_t cycle) const {
    XHEAL_EXPECTS(cycle < succ_.size());
    std::uint32_t s = slot_of(u);
    XHEAL_EXPECTS(s != npos);
    return slot_ids_[succ_[cycle][s]];
}

NodeId HGraph::predecessor(NodeId u, std::size_t cycle) const {
    XHEAL_EXPECTS(cycle < pred_.size());
    std::uint32_t s = slot_of(u);
    XHEAL_EXPECTS(s != npos);
    return slot_ids_[pred_[cycle][s]];
}

bool HGraph::has_adjacency(NodeId a, NodeId b) const {
    std::uint32_t sa = slot_of(a);
    std::uint32_t sb = slot_of(b);
    if (sa == npos || sb == npos || sa == sb) return false;
    for (std::size_t c = 0; c < d_; ++c) {
        if (succ_[c][sa] == sb || pred_[c][sa] == sb) return true;
    }
    return false;
}

void HGraph::collect_edges(
    std::vector<std::pair<NodeId, NodeId>>& out) const {
    out.clear();
    for (std::size_t c = 0; c < d_; ++c) {
        for (const auto& [id, slot] : index_) {
            std::uint32_t t = succ_[c][slot];
            if (t == slot) continue;  // degenerate 1-node cycle
            out.push_back(ordered(id, slot_ids_[t]));
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::vector<std::pair<NodeId, NodeId>> HGraph::edges() const {
    std::vector<std::pair<NodeId, NodeId>> out;
    collect_edges(out);
    return out;
}

void HGraph::validate() const {
    for (std::size_t c = 0; c < d_; ++c) {
        const std::vector<std::uint32_t>& succ = succ_[c];
        const std::vector<std::uint32_t>& pred = pred_[c];
        for (const auto& [id, slot] : index_) {
            XHEAL_ASSERT(slot_ids_[succ[slot]] != graph::invalid_node);
            XHEAL_ASSERT(pred[succ[slot]] == slot);
        }
        // The successor map must form a single cycle covering all members.
        if (index_.empty()) continue;
        std::uint32_t start = index_.front().second;
        std::uint32_t cur = start;
        std::size_t steps = 0;
        do {
            cur = succ[cur];
            ++steps;
            XHEAL_ASSERT(steps <= index_.size());
        } while (cur != start);
        XHEAL_ASSERT(steps == index_.size());
    }
}

}  // namespace xheal::expander
