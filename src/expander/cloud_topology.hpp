// Topology backing one expander cloud.
//
// Per the paper (Algorithm 3.2), a cloud with at most kappa+1 members is a
// clique; larger clouds are kappa-regular expanders, realized here as the
// Law-Siu random H-graph with kappa = 2d. The topology switches
// representation automatically as membership crosses the threshold, and
// tracks how much it has shrunk since the last full (re)construction so the
// owner can apply the paper's rebuild-after-half-loss rule (Section 5),
// which restores the w.h.p. expansion guarantee after many deletions.
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "expander/hgraph.hpp"

namespace xheal::expander {

class CloudTopology {
public:
    enum class Mode { clique, hgraph };

    /// Build over `members` (distinct, non-empty) with Hamilton-cycle count
    /// d >= 1 (kappa = 2d).
    CloudTopology(std::vector<graph::NodeId> members, std::size_t d, util::Rng& rng);

    Mode mode() const { return hgraph_.has_value() ? Mode::hgraph : Mode::clique; }
    std::size_t size() const { return members_.size(); }
    std::size_t kappa() const { return 2 * d_; }
    bool contains(graph::NodeId u) const { return members_.contains(u); }
    std::vector<graph::NodeId> members_sorted() const;

    /// Add a member. Incremental H-graph INSERT when in expander mode; a
    /// clique crossing the kappa+1 threshold is rebuilt as a fresh H-graph.
    void insert(graph::NodeId u, util::Rng& rng);

    /// Remove a member. Incremental H-graph DELETE; drops back to clique
    /// mode at the threshold. Requires contains(u) and size() >= 2.
    void remove(graph::NodeId u, util::Rng& rng);

    /// True once the membership has fallen below half of its size at the
    /// last full construction (the paper's amortized rebuild trigger).
    bool needs_rebuild() const;

    /// Fresh random construction over the current members; resets the
    /// rebuild trigger.
    void rebuild(util::Rng& rng);

    /// Simple-graph projection of the cloud's internal edges (sorted pairs,
    /// u < v). This is the set of color claims the cloud holds.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges() const;

private:
    void construct(util::Rng& rng);

    std::size_t d_;
    std::set<graph::NodeId> members_;
    std::optional<HGraph> hgraph_;  // engaged iff mode() == hgraph
    std::size_t size_at_construction_ = 0;
};

}  // namespace xheal::expander
