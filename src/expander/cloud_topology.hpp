// Topology backing one expander cloud.
//
// Per the paper (Algorithm 3.2), a cloud with at most kappa+1 members is a
// clique; larger clouds are kappa-regular expanders, realized here as the
// Law-Siu random H-graph with kappa = 2d. The topology switches
// representation automatically as membership crosses the threshold, and
// tracks how much it has shrunk since the last full (re)construction so the
// owner can apply the paper's rebuild-after-half-loss rule (Section 5),
// which restores the w.h.p. expansion guarantee after many deletions.
//
// Mutations can report what they did to the simple-graph projection
// (TopoDelta) so the claim layer syncs incrementally: splices in H-graph
// mode and single-node clique changes list their touched pairs; anything
// that rewires the whole cloud (fresh construction, clique<->H-graph mode
// switch, rebuild) sets `full_resync` instead. The membership is a sorted
// vector, so steady-state churn never allocates once capacities have grown
// to the cloud's peak size.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "expander/hgraph.hpp"
#include "util/expects.hpp"

namespace xheal::expander {

/// Claim-level report of one topology mutation; see HGraph::SpliceDelta for
/// the candidate semantics. When `full_resync` is set the candidate lists
/// are meaningless and the owner must re-diff the whole projection.
struct TopoDelta {
    HGraph::SpliceDelta splice;
    bool full_resync = false;

    void clear() {
        splice.clear();
        full_resync = false;
    }
};

class CloudTopology {
public:
    enum class Mode { clique, hgraph };

    /// Build over `members` (distinct, non-empty) with Hamilton-cycle count
    /// d >= 1 (kappa = 2d).
    CloudTopology(std::vector<graph::NodeId> members, std::size_t d, util::Rng& rng);

    /// Re-initialize in place over a new member set, reusing the member
    /// buffer and any retained H-graph storage (the pooled-cloud path).
    /// Consumes exactly the rng draws the constructor would.
    void reset(const std::vector<graph::NodeId>& members, std::size_t d,
               util::Rng& rng);

    Mode mode() const { return hgraph_active_ ? Mode::hgraph : Mode::clique; }
    std::size_t size() const { return members_.size(); }
    std::size_t kappa() const { return 2 * d_; }
    bool contains(graph::NodeId u) const {
        return std::binary_search(members_.begin(), members_.end(), u);
    }
    /// Members ascending; a reference into the topology (no copy).
    const std::vector<graph::NodeId>& members() const { return members_; }
    std::vector<graph::NodeId> members_sorted() const { return members_; }

    /// Add a member. Incremental H-graph INSERT when in expander mode; a
    /// clique crossing the kappa+1 threshold is rebuilt as a fresh H-graph.
    void insert(graph::NodeId u, util::Rng& rng, TopoDelta* delta = nullptr);

    /// Remove a member. Incremental H-graph DELETE; drops back to clique
    /// mode at the threshold. Requires contains(u) and size() >= 2.
    void remove(graph::NodeId u, util::Rng& rng, TopoDelta* delta = nullptr);

    /// True once the membership has fallen below half of its size at the
    /// last full construction (the paper's amortized rebuild trigger).
    bool needs_rebuild() const;

    /// Fresh random construction over the current members; resets the
    /// rebuild trigger. In H-graph mode the cycles are reshuffled in place
    /// (no allocation).
    void rebuild(util::Rng& rng);

    /// Id-compaction support: rewrite the membership through the ascending
    /// old->new map. The sorted member list stays sorted (monotone map); a
    /// retained-but-inactive H-graph holds stale members and is fully
    /// re-assigned on the next upshift, so only an *active* H-graph is
    /// remapped. No rng draws.
    void remap_ids(const std::vector<graph::NodeId>& old_to_new) {
        for (graph::NodeId& u : members_) {
            XHEAL_EXPECTS(u < old_to_new.size() &&
                          old_to_new[u] != graph::invalid_node);
            u = old_to_new[u];
        }
        if (hgraph_active_) hgraph_->remap_ids(old_to_new);
    }

    /// True if the simple-graph projection contains edge (a, b).
    bool has_edge(graph::NodeId a, graph::NodeId b) const {
        if (hgraph_active_) return hgraph_->has_adjacency(a, b);
        return a != b && contains(a) && contains(b);
    }

    /// Simple-graph projection of the cloud's internal edges (sorted pairs,
    /// u < v). This is the set of color claims the cloud holds.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges() const;

    /// Projection into a caller scratch buffer (cleared first), sorted
    /// ascending. No allocation at capacity.
    void collect_edges(std::vector<std::pair<graph::NodeId, graph::NodeId>>& out) const;

private:
    void construct(util::Rng& rng);

    std::size_t d_;
    std::vector<graph::NodeId> members_;  // sorted ascending
    /// Engaged once the cloud has ever been in H-graph mode; retained (for
    /// its buffers) across downshifts to clique mode and pooled reuse, so
    /// mode is tracked by hgraph_active_, not engagement.
    std::optional<HGraph> hgraph_;
    bool hgraph_active_ = false;  // true iff mode() == hgraph
    std::size_t size_at_construction_ = 0;
};

}  // namespace xheal::expander
