// Law-Siu H-graphs (INFOCOM 2003): 2d-regular multigraphs formed by the
// union of d independent uniformly random Hamilton cycles. Xheal uses them
// as its distributed expander construction (paper Section 5, Theorems 3-4):
//
//   INSERT(u): splice u into each cycle at an independently random position;
//   DELETE(u): splice u out of each cycle, joining its predecessor and
//              successor.
//
// Both operations preserve the uniform H-graph distribution (Theorem 3), and
// a uniform H-graph is an expander with edge expansion Omega(d) w.h.p.
// (Theorem 4).
//
// Storage is slot-based so the repair hot path stays allocation-free: each
// member occupies a small dense slot, cycles are flat succ/pred arrays
// indexed by slot, and the id <-> slot map is a sorted vector. Removal frees
// the slot onto a free list and insertion reuses it, so steady-state churn
// (and even the in-place rebuild()) never allocates once the cloud has seen
// its peak size. The splice operations can report the simple-graph pairs
// they touched (SpliceDelta) so the claim layer can update incrementally
// instead of re-projecting the whole cloud per event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/rng.hpp"

namespace xheal::expander {

class HGraph {
public:
    /// Candidate claim-level changes of one splice, appended by insert() /
    /// remove(). Candidates are not deduplicated and are only *candidates*:
    /// a removed pair may still be adjacent through another cycle and an
    /// added pair may already carry the claim — resolve against
    /// has_adjacency() and the claim mirror. Self-pairs are never emitted.
    struct SpliceDelta {
        std::vector<std::pair<graph::NodeId, graph::NodeId>> removed;
        std::vector<std::pair<graph::NodeId, graph::NodeId>> added;

        void clear() {
            removed.clear();
            added.clear();
        }
    };

    /// Uniform random H-graph with `d` Hamilton cycles over `members`.
    /// Requires d >= 1 and members distinct. Sizes 1 and 2 are permitted
    /// (degenerate cycles) so callers can shrink without special cases.
    HGraph(std::vector<graph::NodeId> members, std::size_t d, util::Rng& rng);

    /// Re-initialize in place over a new member set, reusing every buffer:
    /// the pooled-cloud reconstruction path. Consumes exactly the rng draws
    /// the constructor would, so pooled and fresh clouds are bit-identical.
    void assign(const std::vector<graph::NodeId>& members, std::size_t d,
                util::Rng& rng);

    std::size_t size() const { return index_.size(); }
    std::size_t cycle_count() const { return succ_.size(); }
    /// Target degree of the projected graph: kappa = 2d.
    std::size_t kappa() const { return 2 * succ_.size(); }

    bool contains(graph::NodeId u) const { return slot_of(u) != npos; }
    std::vector<graph::NodeId> members_sorted() const;

    /// Law-Siu INSERT. Requires !contains(u) and size() >= 1.
    /// Appends the splice's claim candidates to *delta when given.
    void insert(graph::NodeId u, util::Rng& rng, SpliceDelta* delta = nullptr);

    /// Law-Siu DELETE. Requires contains(u) and size() >= 2.
    void remove(graph::NodeId u, SpliceDelta* delta = nullptr);

    /// Fresh uniform cycles over the current members, in place: the paper's
    /// half-loss reconstruction. Reuses all buffers; no allocation.
    void rebuild(util::Rng& rng);

    /// Id-compaction support: rewrite every member id through the ascending
    /// old->new map (every member must map to a valid id). Cycles are
    /// slot-indexed and untouched; only the id <-> slot directory is
    /// renumbered, and the sorted index stays sorted because the map is
    /// monotone. No rng draws, no allocation.
    void remap_ids(const std::vector<graph::NodeId>& old_to_new);

    graph::NodeId successor(graph::NodeId u, std::size_t cycle) const;
    graph::NodeId predecessor(graph::NodeId u, std::size_t cycle) const;

    /// True if some cycle has a and b adjacent, i.e. the simple-graph
    /// projection contains the edge. False when either id is not a member.
    bool has_adjacency(graph::NodeId a, graph::NodeId b) const;

    /// Simple-graph projection: distinct undirected pairs over all cycles,
    /// self-loops dropped, sorted ascending. This is the edge set a cloud
    /// claims in the network.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges() const;

    /// Projection appended into a caller scratch buffer (cleared first),
    /// sorted ascending and deduplicated. No allocation at capacity.
    void collect_edges(std::vector<std::pair<graph::NodeId, graph::NodeId>>& out) const;

    /// Structural self-check (each cycle is a single permutation cycle over
    /// all members, pred/succ mirror each other). Throws on violation.
    void validate() const;

private:
    static constexpr std::uint32_t npos = static_cast<std::uint32_t>(-1);

    /// Slot of id u, or npos.
    std::uint32_t slot_of(graph::NodeId u) const;

    /// Position of u in the sorted id index (insertion point when absent).
    std::size_t index_lower_bound(graph::NodeId u) const;

    /// Relink one cycle as a fresh uniform permutation over live slots.
    void shuffle_cycle(std::size_t cycle, util::Rng& rng);

    std::size_t d_;
    std::vector<graph::NodeId> slot_ids_;  // slot -> id (invalid_node = free)
    std::vector<std::uint32_t> free_slots_;
    /// (id, slot) sorted by id: the dense member directory. Uniform member
    /// draws index it directly, matching the sorted-members draw order the
    /// hash-based implementation used.
    std::vector<std::pair<graph::NodeId, std::uint32_t>> index_;
    std::vector<std::vector<std::uint32_t>> succ_;  // [cycle][slot]
    std::vector<std::vector<std::uint32_t>> pred_;
    std::vector<std::uint32_t> perm_;  // rebuild scratch
};

}  // namespace xheal::expander
