// Law-Siu H-graphs (INFOCOM 2003): 2d-regular multigraphs formed by the
// union of d independent uniformly random Hamilton cycles. Xheal uses them
// as its distributed expander construction (paper Section 5, Theorems 3-4):
//
//   INSERT(u): splice u into each cycle at an independently random position;
//   DELETE(u): splice u out of each cycle, joining its predecessor and
//              successor.
//
// Both operations preserve the uniform H-graph distribution (Theorem 3), and
// a uniform H-graph is an expander with edge expansion Omega(d) w.h.p.
// (Theorem 4). The class keeps the d cycles explicitly; the simple-graph
// projection (distinct pairs, no self-loops) is what gets claimed in the
// network graph.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/rng.hpp"

namespace xheal::expander {

class HGraph {
public:
    /// Uniform random H-graph with `d` Hamilton cycles over `members`.
    /// Requires d >= 1 and members distinct. Sizes 1 and 2 are permitted
    /// (degenerate cycles) so callers can shrink without special cases.
    HGraph(std::vector<graph::NodeId> members, std::size_t d, util::Rng& rng);

    std::size_t size() const { return cycles_.empty() ? 0 : cycles_.front().succ.size(); }
    std::size_t cycle_count() const { return cycles_.size(); }
    /// Target degree of the projected graph: kappa = 2d.
    std::size_t kappa() const { return 2 * cycles_.size(); }

    bool contains(graph::NodeId u) const;
    std::vector<graph::NodeId> members_sorted() const;

    /// Law-Siu INSERT. Requires !contains(u) and size() >= 1.
    void insert(graph::NodeId u, util::Rng& rng);

    /// Law-Siu DELETE. Requires contains(u) and size() >= 2.
    void remove(graph::NodeId u);

    graph::NodeId successor(graph::NodeId u, std::size_t cycle) const;
    graph::NodeId predecessor(graph::NodeId u, std::size_t cycle) const;

    /// Simple-graph projection: distinct undirected pairs over all cycles,
    /// self-loops dropped, sorted ascending. This is the edge set a cloud
    /// claims in the network.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges() const;

    /// Structural self-check (each cycle is a single permutation cycle over
    /// all members, pred/succ mirror each other). Throws on violation.
    void validate() const;

private:
    struct Cycle {
        std::unordered_map<graph::NodeId, graph::NodeId> succ;
        std::unordered_map<graph::NodeId, graph::NodeId> pred;
    };
    std::vector<Cycle> cycles_;
};

}  // namespace xheal::expander
