#include "expander/cloud_topology.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace xheal::expander {

using graph::NodeId;

CloudTopology::CloudTopology(std::vector<NodeId> members, std::size_t d, util::Rng& rng)
    : d_(d), members_(std::move(members)) {
    XHEAL_EXPECTS(d >= 1);
    XHEAL_EXPECTS(!members_.empty());
    std::sort(members_.begin(), members_.end());
    XHEAL_EXPECTS(std::adjacent_find(members_.begin(), members_.end()) == members_.end());
    construct(rng);
}

void CloudTopology::reset(const std::vector<NodeId>& members, std::size_t d,
                          util::Rng& rng) {
    XHEAL_EXPECTS(d >= 1);
    XHEAL_EXPECTS(!members.empty());
    d_ = d;
    members_.assign(members.begin(), members.end());
    std::sort(members_.begin(), members_.end());
    XHEAL_EXPECTS(std::adjacent_find(members_.begin(), members_.end()) == members_.end());
    construct(rng);
}

void CloudTopology::construct(util::Rng& rng) {
    size_at_construction_ = members_.size();
    if (members_.size() <= kappa() + 1 || members_.size() < 3) {
        hgraph_active_ = false;  // clique mode; keep the H-graph's buffers
    } else {
        if (hgraph_.has_value()) hgraph_->assign(members_, d_, rng);
        else hgraph_.emplace(members_, d_, rng);
        hgraph_active_ = true;
    }
}

void CloudTopology::insert(NodeId u, util::Rng& rng, TopoDelta* delta) {
    XHEAL_EXPECTS(!contains(u));
    members_.insert(std::lower_bound(members_.begin(), members_.end(), u), u);
    if (hgraph_active_) {
        hgraph_->insert(u, rng, delta != nullptr ? &delta->splice : nullptr);
    } else if (members_.size() > kappa() + 1) {
        construct(rng);  // clique grew past the threshold: become an H-graph
        if (delta != nullptr) delta->full_resync = true;
    } else if (delta != nullptr) {
        // Clique: the newcomer connects to every existing member.
        for (NodeId m : members_) {
            if (m != u) delta->splice.added.push_back({std::min(m, u), std::max(m, u)});
        }
    }
    // Growth never triggers the half-loss rule; leave the baseline size so
    // interleaved deletions still count against the original construction.
}

void CloudTopology::remove(NodeId u, util::Rng& rng, TopoDelta* delta) {
    XHEAL_EXPECTS(contains(u));
    XHEAL_EXPECTS(members_.size() >= 2);
    members_.erase(std::lower_bound(members_.begin(), members_.end(), u));
    if (!hgraph_active_) {
        // Clique: only u's own edges disappear.
        if (delta != nullptr) {
            for (NodeId m : members_)
                delta->splice.removed.push_back({std::min(m, u), std::max(m, u)});
        }
        return;
    }
    if (members_.size() <= kappa() + 1 || members_.size() < 3) {
        construct(rng);  // shrink back to clique mode
        if (delta != nullptr) delta->full_resync = true;
        return;
    }
    hgraph_->remove(u, delta != nullptr ? &delta->splice : nullptr);
}

bool CloudTopology::needs_rebuild() const {
    return members_.size() * 2 < size_at_construction_;
}

void CloudTopology::rebuild(util::Rng& rng) {
    size_at_construction_ = members_.size();
    bool wants_hgraph = members_.size() > kappa() + 1 && members_.size() >= 3;
    if (wants_hgraph && hgraph_active_) {
        hgraph_->rebuild(rng);  // in place, allocation-free
    } else {
        construct(rng);
    }
}

std::vector<std::pair<NodeId, NodeId>> CloudTopology::edges() const {
    std::vector<std::pair<NodeId, NodeId>> out;
    collect_edges(out);
    return out;
}

void CloudTopology::collect_edges(std::vector<std::pair<NodeId, NodeId>>& out) const {
    if (hgraph_active_) {
        hgraph_->collect_edges(out);
        return;
    }
    out.clear();
    out.reserve(members_.size() * (members_.size() - 1) / 2);
    for (std::size_t i = 0; i < members_.size(); ++i)
        for (std::size_t j = i + 1; j < members_.size(); ++j)
            out.emplace_back(members_[i], members_[j]);
}

}  // namespace xheal::expander
