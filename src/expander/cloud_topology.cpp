#include "expander/cloud_topology.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace xheal::expander {

using graph::NodeId;

CloudTopology::CloudTopology(std::vector<NodeId> members, std::size_t d, util::Rng& rng)
    : d_(d), members_(members.begin(), members.end()) {
    XHEAL_EXPECTS(d >= 1);
    XHEAL_EXPECTS(!members.empty());
    XHEAL_EXPECTS(members_.size() == members.size());
    construct(rng);
}

std::vector<NodeId> CloudTopology::members_sorted() const {
    return {members_.begin(), members_.end()};
}

void CloudTopology::construct(util::Rng& rng) {
    size_at_construction_ = members_.size();
    if (members_.size() <= kappa() + 1 || members_.size() < 3) {
        hgraph_.reset();  // clique mode
    } else {
        hgraph_.emplace(members_sorted(), d_, rng);
    }
}

void CloudTopology::insert(NodeId u, util::Rng& rng) {
    XHEAL_EXPECTS(!contains(u));
    members_.insert(u);
    if (hgraph_.has_value()) {
        hgraph_->insert(u, rng);
    } else if (members_.size() > kappa() + 1) {
        construct(rng);  // clique grew past the threshold: become an H-graph
    }
    // Growth never triggers the half-loss rule; leave the baseline size so
    // interleaved deletions still count against the original construction.
}

void CloudTopology::remove(NodeId u, util::Rng& rng) {
    XHEAL_EXPECTS(contains(u));
    XHEAL_EXPECTS(members_.size() >= 2);
    members_.erase(u);
    if (!hgraph_.has_value()) return;  // clique: nothing structural to fix
    if (members_.size() <= kappa() + 1 || members_.size() < 3) {
        construct(rng);  // shrink back to clique mode
        return;
    }
    hgraph_->remove(u);
}

bool CloudTopology::needs_rebuild() const {
    return members_.size() * 2 < size_at_construction_;
}

void CloudTopology::rebuild(util::Rng& rng) { construct(rng); }

std::vector<std::pair<NodeId, NodeId>> CloudTopology::edges() const {
    if (hgraph_.has_value()) return hgraph_->edges();
    std::vector<std::pair<NodeId, NodeId>> out;
    auto members = members_sorted();
    out.reserve(members.size() * (members.size() - 1) / 2);
    for (std::size_t i = 0; i < members.size(); ++i)
        for (std::size_t j = i + 1; j < members.size(); ++j)
            out.emplace_back(members[i], members[j]);
    return out;
}

}  // namespace xheal::expander
