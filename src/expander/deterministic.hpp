// Deterministic expander constructions.
//
// The paper notes (Section 1) that Xheal's randomized H-graph construction
// "can be improved if one can design efficient distributed constructions
// that yield expanders deterministically. (To the best of our knowledge no
// such construction is known.)" — meaning no *dynamic self-maintaining*
// one. Static deterministic expanders do exist; we provide two as an
// extension/ablation substrate:
//
//   * Margulis-Gabber-Galil: the classic 8-regular expander on Z_m x Z_m,
//     with a provable constant spectral gap;
//   * de Bruijn style shuffle-exchange edges over an arbitrary member
//     list, an any-size deterministic quasi-expander.
//
// bench_ablation compares them against the random H-graph as a cloud
// topology at equal size: the trade-off is determinism vs maintainability
// (neither supports O(1) INSERT/DELETE, which is why Xheal uses H-graphs).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::expander {

/// Margulis-Gabber-Galil expander over Z_m x Z_m (node id = x*m + y).
/// 8-regular as a multigraph; the returned simple graph has degree <= 8.
/// Requires m >= 2.
graph::Graph make_margulis_expander(std::size_t m);

/// Deterministic shuffle-exchange (de Bruijn style) edge set over an
/// arbitrary member list of size z: position i connects to positions
/// (2i) mod z, (2i+1) mod z and i+1 mod z. Degree <= 7 in the simple
/// projection; connected for every z >= 2.
std::vector<std::pair<graph::NodeId, graph::NodeId>> debruijn_edges_over(
    const std::vector<graph::NodeId>& members);

/// Graph form of debruijn_edges_over for direct measurement.
graph::Graph make_debruijn_graph(std::size_t n);

}  // namespace xheal::expander
