// String-keyed factories mapping spec component references onto the
// concrete workload generators, adversary strategies and healers, so that
// scenario specs name components instead of linking them (DESIGN.md
// decision 5). Every factory throws std::runtime_error on an unknown kind
// or out-of-contract parameters; the *_names() listings feed `xheal_run
// list`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/cloud_registry.hpp"
#include "core/healer.hpp"
#include "graph/graph.hpp"
#include "scenario/spec.hpp"
#include "util/rng.hpp"

namespace xheal::scenario {

/// Build the initial topology named by `spec`. Random topologies draw from
/// `rng`. Kinds (parameters with defaults):
///   path n=16 | cycle n=16 | star leaves=16 | complete n=8
///   grid rows=4 cols=4 | torus rows=4 cols=4 | hypercube dim=4
///   binary-tree n=15 | erdos-renyi n=64 p=0.1 | random-regular n=64 d=4
///   barabasi-albert n=64 m=2 | dumbbell clique=8 | petersen
///   hgraph n=48 d=3
graph::Graph make_topology(const ComponentSpec& spec, util::Rng& rng);
std::vector<std::string> topology_names();

/// A constructed healer plus the capability handles some strategies and
/// probes need: the cloud registry (xheal family only, else nullptr) and
/// kappa (healer degree-overhead factor; 1 for baselines).
struct HealerHandle {
    std::unique_ptr<core::Healer> healer;
    const core::CloudRegistry* registry = nullptr;
    std::size_t kappa = 1;
};

/// Kinds: xheal | xheal-dist (params d=4 seed=<spec seed> rebuild=true),
/// no-heal | line | cycle | star | forgiving-tree,
/// random-match (k=3 seed=<spec seed>),
/// faulty (params inner=cycle drop_every=3 inner.*=... — test-only fault
/// injection wrapping a whitelisted stateless baseline, inner.* params
/// forwarded to it; see core/fault_injection.hpp).
/// `default_seed` seeds healers whose spec omits seed= (the scenario seed).
HealerHandle make_healer(const ComponentSpec& spec, std::uint64_t default_seed);
std::vector<std::string> healer_names();

/// Kinds: random | max-degree | min-degree | cut-point | colored-degree |
/// bridge-hunter. bridge-hunter requires a cloud registry (xheal-family
/// healer) and throws otherwise.
std::unique_ptr<adversary::DeletionStrategy> make_deleter(
    const ComponentSpec& spec, const core::CloudRegistry* registry);
std::vector<std::string> deleter_names();

/// The deleter a phase names: the single `deleter` component, or an
/// adversary::CompositeDeletion over `deleter_mix` when the phase carries a
/// mixture (grammar v2). Member kinds go through make_deleter, so unknown
/// kinds and capability requirements throw identically in both forms.
std::unique_ptr<adversary::DeletionStrategy> make_phase_deleter(
    const PhaseSpec& phase, const core::CloudRegistry* registry);

/// Kinds: random-attach | preferential-attach (param k=3).
std::unique_ptr<adversary::InsertionStrategy> make_inserter(const ComponentSpec& spec);
std::vector<std::string> inserter_names();

}  // namespace xheal::scenario
