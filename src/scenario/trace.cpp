#include "scenario/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xheal::scenario {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
    throw std::runtime_error("trace line " + std::to_string(line_no) + ": " + what);
}

/// Extract the raw value text after `"key":` in a one-line JSON object
/// (up to the next ',' or '}' for scalars; the bracketed list for arrays).
/// Only handles the flat objects this module writes.
std::string extract(const std::string& line, const std::string& key, std::size_t line_no) {
    std::string needle = "\"" + key + "\":";
    auto at = line.find(needle);
    if (at == std::string::npos) fail(line_no, "missing key '" + key + "'");
    std::size_t start = at + needle.size();
    if (start < line.size() && line[start] == '[') {
        auto close = line.find(']', start);
        if (close == std::string::npos) fail(line_no, "unterminated array for '" + key + "'");
        return line.substr(start + 1, close - start - 1);
    }
    if (start < line.size() && line[start] == '"') {
        auto close = line.find('"', start + 1);
        if (close == std::string::npos) fail(line_no, "unterminated string for '" + key + "'");
        return line.substr(start + 1, close - start - 1);
    }
    std::size_t end = start;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    return line.substr(start, end - start);
}

std::uint64_t extract_u64(const std::string& line, const std::string& key,
                          std::size_t line_no) {
    std::string text = extract(line, key, line_no);
    char* end = nullptr;
    // Hex hashes are written as quoted "0x..." strings; base 0 handles both.
    std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str()) fail(line_no, "bad number for '" + key + "': " + text);
    return v;
}

/// Optional-key variant for fields written only when non-default (the
/// compact record's `shards`); absent keys read as `fallback`.
std::uint64_t extract_u64_or(const std::string& line, const std::string& key,
                             std::size_t line_no, std::uint64_t fallback) {
    if (line.find("\"" + key + "\":") == std::string::npos) return fallback;
    return extract_u64(line, key, line_no);
}

}  // namespace

std::string hex64(std::uint64_t value) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(value));
    return buf;
}

void TraceHasher::mix(std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
        hash_ ^= (word >> (8 * byte)) & 0xffu;
        hash_ *= 0x100000001b3ull;
    }
}

void TraceHasher::add(const TraceEvent& event) {
    // event.shards is deliberately NOT mixed: the shard count is an
    // execution-engine knob, and shards=S must hash identically to
    // shards=1 (DESIGN.md decision 13).
    switch (event.kind) {
        case TraceEvent::Kind::insert: mix(1); break;
        case TraceEvent::Kind::remove: mix(2); break;
        case TraceEvent::Kind::compact: mix(3); break;
    }
    mix(event.step);
    mix(event.phase);
    mix(event.node);
    mix(event.neighbors.size());
    for (graph::NodeId u : event.neighbors) mix(u);
}

std::uint64_t graph_fingerprint(const graph::Graph& g) {
    // Nodes then edges with claims, all in ascending order (the storage's
    // natural iteration order is already sorted).
    std::uint64_t hash = 0xcbf29ce484222325ull;
    auto mix = [&hash](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (v >> (8 * byte)) & 0xffu;
            hash *= 0x100000001b3ull;
        }
    };
    mix(g.node_count());
    for (graph::NodeId v : g.nodes()) mix(v);
    mix(g.edge_count());
    g.for_each_edge([&](graph::NodeId u, graph::NodeId v, const graph::EdgeClaims& claims) {
        mix(u);
        mix(v);
        mix(claims.black ? 1 : 0);
        mix(claims.colors.size());
        for (graph::ColorId c : claims.colors) mix(c);
    });
    return hash;
}

std::string event_to_json(const TraceEvent& e) {
    std::ostringstream out;
    if (e.kind == TraceEvent::Kind::insert) {
        out << "{\"type\":\"insert\",\"step\":" << e.step << ",\"phase\":" << e.phase
            << ",\"node\":" << e.node << ",\"neighbors\":[";
        for (std::size_t i = 0; i < e.neighbors.size(); ++i)
            out << (i ? "," : "") << e.neighbors[i];
        out << "]}";
    } else if (e.kind == TraceEvent::Kind::compact) {
        out << "{\"type\":\"compact\",\"step\":" << e.step << ",\"phase\":" << e.phase
            << ",\"live\":" << e.node;
        if (e.shards != 1) out << ",\"shards\":" << e.shards;
        out << "}";
    } else {
        out << "{\"type\":\"delete\",\"step\":" << e.step << ",\"phase\":" << e.phase
            << ",\"node\":" << e.node << "}";
    }
    return out.str();
}

void write_trace(std::ostream& out, const Trace& trace) {
    out << "{\"type\":\"header\",\"scenario\":\"" << trace.scenario
        << "\",\"seed\":" << trace.seed << ",\"spec_hash\":\"" << hex64(trace.spec_hash)
        << "\"}\n";
    for (const TraceEvent& e : trace.events) out << event_to_json(e) << "\n";
    out << "{\"type\":\"end\",\"events\":" << trace.events.size() << ",\"trace_hash\":\""
        << hex64(trace.trace_hash) << "\",\"fingerprint\":\"" << hex64(trace.fingerprint)
        << "\"}\n";
}

void write_trace_file(const std::string& path, const Trace& trace) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
    write_trace(out, trace);
}

Trace read_trace(std::istream& in) {
    Trace trace;
    bool saw_header = false, saw_end = false;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        std::string type = extract(line, "type", line_no);
        if (type == "header") {
            trace.scenario = extract(line, "scenario", line_no);
            trace.seed = extract_u64(line, "seed", line_no);
            trace.spec_hash = extract_u64(line, "spec_hash", line_no);
            saw_header = true;
        } else if (type == "insert" || type == "delete") {
            if (saw_end) fail(line_no, "event after end record");
            TraceEvent e;
            e.kind = type == "insert" ? TraceEvent::Kind::insert : TraceEvent::Kind::remove;
            e.step = extract_u64(line, "step", line_no);
            e.phase = static_cast<std::uint32_t>(extract_u64(line, "phase", line_no));
            e.node = static_cast<graph::NodeId>(extract_u64(line, "node", line_no));
            if (e.kind == TraceEvent::Kind::insert) {
                std::string list = extract(line, "neighbors", line_no);
                std::istringstream items(list);
                std::string item;
                while (std::getline(items, item, ','))
                    if (!item.empty())
                        e.neighbors.push_back(
                            static_cast<graph::NodeId>(std::strtoull(item.c_str(), nullptr, 10)));
            }
            trace.events.push_back(std::move(e));
        } else if (type == "compact") {
            if (saw_end) fail(line_no, "event after end record");
            TraceEvent e;
            e.kind = TraceEvent::Kind::compact;
            e.step = extract_u64(line, "step", line_no);
            e.phase = static_cast<std::uint32_t>(extract_u64(line, "phase", line_no));
            e.node = static_cast<graph::NodeId>(extract_u64(line, "live", line_no));
            e.shards = static_cast<std::uint32_t>(extract_u64_or(line, "shards", line_no, 1));
            trace.events.push_back(std::move(e));
        } else if (type == "end") {
            std::uint64_t events = extract_u64(line, "events", line_no);
            if (events != trace.events.size())
                fail(line_no, "event count mismatch: end says " + std::to_string(events) +
                                  ", read " + std::to_string(trace.events.size()));
            trace.trace_hash = extract_u64(line, "trace_hash", line_no);
            trace.fingerprint = extract_u64(line, "fingerprint", line_no);
            saw_end = true;
        } else {
            fail(line_no, "unknown record type '" + type + "'");
        }
    }
    if (!saw_header) throw std::runtime_error("trace: missing header record");
    if (!saw_end) throw std::runtime_error("trace: missing end record");
    return trace;
}

Trace read_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open trace file: " + path);
    return read_trace(in);
}

}  // namespace xheal::scenario
