// ShardEngine — intra-session id-range sharding with a deterministic merge
// (DESIGN.md decision 13).
//
// The dense post-compaction slot space [0, next_id) is partitioned into S
// contiguous id ranges; shard i owns range [i*chunk, (i+1)*chunk) and runs
// one consumer thread fed by its own fenced SPSC ring (util/sharded_queue.hpp).
// The stepping thread (producer) routes each adversary deletion to the ring
// of the victim's shard and keeps stepping — event hashing, trace recording
// and schedule bookkeeping overlap the in-flight repair — while consumers
// apply the deletions against the shared HealingSession and stage their
// repair-delta accounting per shard.
//
// Determinism contract (the whole point): `shards=S` must be byte-identical
// to `shards=1` — trace hash AND fingerprint — for every scenario. Two
// rules deliver that by construction:
//
//   1. Ordered apply. Every submitted command carries a global sequence
//      number; a consumer applies its command only when the applied-seq
//      ticket reaches it (acquire wait on `applied_`, release publish
//      after). Session mutations — and therefore every healer rng draw —
//      happen in exactly the producer's submission order, which is the
//      shards=1 apply order. Parallelism lives in the producer/consumer
//      overlap and the shard-local staging, never in reordering rng draws.
//   2. Deterministic merge. Staged per-shard deltas, keyed (shard, seq),
//      are drained at each merge point as the ascending-seq k-way
//      interleave of the per-shard lists (each list is seq-ascending, so
//      ascending seq is a total order refining (shard, seq) within every
//      shard). Phase accounting that is order-sensitive bit-for-bit
//      (RunningStats of per-repair rounds) therefore accumulates in the
//      serial order.
//
// The producer must fence() before ANY read of session state (adversary
// picks, population-floor checks, sampling, flushes, compaction): after the
// fence all submitted deletions are applied and visible. Resharding rides
// the compaction epoch — reshard() recomputes the contiguous range
// boundaries from the freshly compacted dense id span; it is producer-side
// state only, so no consumer coordination beyond the fence is needed.
//
// Each shard derives a private rng stream (splitmix64 of the master seed
// salted by the shard index). It seeds nothing semantic — consumers use it
// only to jitter the bounded spin before parking on the ticket word, so the
// derived streams can never perturb results (and the determinism tests
// would catch it if they did).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/healer.hpp"
#include "core/session.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/sharded_queue.hpp"

namespace xheal::scenario {

/// One applied deletion's staged repair accounting, keyed by its global
/// submission sequence number (the merge key).
struct ShardDelta {
    std::uint64_t seq = 0;
    core::RepairReport report;
};

class ShardEngine {
public:
    /// Spawns `shards` consumer threads over `session`. `master_seed` (the
    /// spec seed) salts the per-shard rng derivation. Initial range
    /// boundaries cover the session's current id span.
    ShardEngine(core::HealingSession& session, std::size_t shards,
                std::uint64_t master_seed);
    ~ShardEngine();

    ShardEngine(const ShardEngine&) = delete;
    ShardEngine& operator=(const ShardEngine&) = delete;

    std::size_t shard_count() const { return shards_.size(); }

    /// Shard owning slot id v under the current range boundaries. Ids past
    /// the span resharding last saw (inserts of the running epoch) fall
    /// into the last shard — deterministic, and rebalanced at the next
    /// compaction.
    std::size_t shard_of(graph::NodeId v) const {
        return std::min<std::size_t>(static_cast<std::size_t>(v) / chunk_,
                                     shards_.size() - 1);
    }

    /// Recompute the contiguous id-range boundaries for a dense id span of
    /// `slot_span` (next_id after a compaction). Fences first; boundaries
    /// are producer-side routing state, so nothing else synchronizes.
    void reshard(std::size_t slot_span);

    /// Queue the deletion of `victim` on its shard (staged repair when
    /// `staged`, mirroring session.stage_delete vs delete_node). Returns
    /// the command's global sequence number.
    std::uint64_t submit_delete(graph::NodeId victim, bool staged);

    /// Wait until every submitted command has been applied. After this the
    /// producer may read session state. Rethrows (as std::runtime_error)
    /// the first exception any consumer caught while applying.
    void fence();

    /// Fence, then drain every staged delta in ascending global sequence
    /// order through `collect` — the single deterministic merge point.
    template <typename Collect>
    void merge(Collect&& collect) {
        fence();
        if (shards_.size() == 1) {
            for (const ShardDelta& d : shards_[0]->deltas) collect(d);
            shards_[0]->deltas.clear();
            return;
        }
        // k-way ascending-seq interleave of the per-shard lists. Seqs are
        // globally unique and each list is already ascending, so repeatedly
        // taking the smallest head realizes the serial accumulation order.
        merge_heads_.assign(shards_.size(), 0);
        for (;;) {
            std::size_t best = shards_.size();
            for (std::size_t s = 0; s < shards_.size(); ++s) {
                if (merge_heads_[s] >= shards_[s]->deltas.size()) continue;
                if (best == shards_.size() ||
                    shards_[s]->deltas[merge_heads_[s]].seq <
                        shards_[best]->deltas[merge_heads_[best]].seq)
                    best = s;
            }
            if (best == shards_.size()) break;
            collect(shards_[best]->deltas[merge_heads_[best]]);
            ++merge_heads_[best];
        }
        for (auto& sh : shards_) sh->deltas.clear();
    }

private:
    struct Command {
        graph::NodeId victim = graph::invalid_node;
        std::uint64_t seq = 0;
        bool staged = false;
        bool stop = false;
    };

    struct Shard {
        explicit Shard(std::uint64_t seed) : rng(seed) {}
        util::SpscRing<Command> ring;
        /// Written by this shard's consumer, drained by the producer at
        /// merge points (synchronized through the applied_ ticket).
        std::vector<ShardDelta> deltas;
        /// Shard-local derived stream: spin-backoff jitter only.
        util::Rng rng;
        std::thread worker;
    };

    void worker_loop(Shard& shard);
    /// Consumer-side ordered-apply gate: bounded jittered spin, then park.
    void wait_turn(std::uint64_t seq, util::Rng& rng);
    /// fence() without the error rethrow (destructor-safe).
    void wait_all() noexcept;

    core::HealingSession& session_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t chunk_ = 1;         ///< id-range width per shard (producer-only)
    std::uint64_t submitted_ = 0;   ///< producer-only command counter
    std::vector<std::size_t> merge_heads_;  ///< merge scratch (producer-only)
    /// The global apply ticket: commands [0, applied_) are fully applied.
    /// Consumers acquire-wait for their seq and release-publish seq+1; the
    /// producer's fence acquire-loads it, which transitively orders every
    /// session mutation before every post-fence producer read.
    alignas(64) std::atomic<std::uint64_t> applied_{0};
    std::atomic<bool> failed_{false};
    std::string error_;  ///< first consumer exception (written holding the turn)
};

}  // namespace xheal::scenario
