#include "scenario/runner.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "core/metrics.hpp"
#include "graph/algorithms.hpp"
#include "scenario/probe_pipeline.hpp"
#include "scenario/shard_engine.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"

namespace xheal::scenario {

namespace {

/// Independent probe stream: decorrelated from the master seed so probe
/// cadence never perturbs adversary decisions.
constexpr std::uint64_t probe_salt = 0x70726f6265735full;

}  // namespace

core::HealingSession build_session(const ScenarioSpec& spec, util::Rng& rng,
                                   graph::Graph* prebuilt, std::size_t& kappa,
                                   const core::CloudRegistry*& registry) {
    graph::Graph initial = prebuilt != nullptr ? std::move(*prebuilt)
                                               : make_topology(spec.topology, rng);
    HealerHandle handle = make_healer(spec.healer, spec.seed);
    kappa = handle.kappa;
    registry = handle.registry;
    return core::HealingSession(std::move(initial), std::move(handle.healer));
}

Trace make_trace(const ScenarioSpec& spec, std::vector<TraceEvent> events,
                 std::uint64_t trace_hash, std::uint64_t fingerprint) {
    Trace trace;
    trace.scenario = spec.name;
    trace.seed = spec.seed;
    trace.spec_hash = spec.content_hash();
    trace.events = std::move(events);
    trace.trace_hash = trace_hash;
    trace.fingerprint = fingerprint;
    return trace;
}

Trace RunResult::to_trace(const ScenarioSpec& spec) const {
    return make_trace(spec, events, trace_hash, fingerprint);
}

namespace {

/// Journal capacity for incremental probe snapshots: generous enough that
/// inter-sample churn rarely overflows (overflow just costs one rebuild).
std::size_t journal_limit_for(const core::HealingSession& session) {
    return std::max<std::size_t>(4096, session.current().node_count() * 2);
}

}  // namespace

ScenarioRunner::ScenarioRunner(const ScenarioSpec& spec)
    : spec_(spec),
      rng_(spec.seed),
      probe_rng_(spec.seed ^ probe_salt),
      session_(build_session(spec_, rng_, nullptr, kappa_, registry_)) {
    session_.enable_graph_journals(journal_limit_for(session_));
}

ScenarioRunner::ScenarioRunner(const ScenarioSpec& spec, graph::Graph initial)
    : spec_(spec),
      rng_(spec.seed),
      probe_rng_(spec.seed ^ probe_salt),
      session_(build_session(spec_, rng_, &initial, kappa_, registry_)) {
    session_.enable_graph_journals(journal_limit_for(session_));
}

ScenarioRunner::~ScenarioRunner() = default;

ScenarioRunner::Probes ScenarioRunner::parse_probes(const ScenarioSpec& spec) {
    Probes probes;
    for (const std::string& name : spec.probes) {
        if (name == "connected") probes.connected = true;
        else if (name == "degree") probes.degree = true;
        else if (name == "expansion") probes.expansion = true;
        else if (name == "lambda2") probes.lambda2 = true;
        else if (name == "stretch") probes.stretch = true;
        else throw std::runtime_error("unknown probe: '" + name + "'");
    }
    return probes;
}

ScenarioRunner::Probes ScenarioRunner::final_probes() const {
    Probes probes = parse_probes(spec_);
    for (const Expectation& e : spec_.expectations) {
        switch (e.kind) {
            case Expectation::Kind::connected: probes.connected = true; break;
            case Expectation::Kind::max_degree_ratio_le: probes.degree = true; break;
            case Expectation::Kind::expansion_ge: probes.expansion = true; break;
            case Expectation::Kind::lambda2_ge: probes.lambda2 = true; break;
            case Expectation::Kind::stretch_le: probes.stretch = true; break;
            case Expectation::Kind::nodes_ge: break;
            case Expectation::Kind::peak_slot_factor_le: break;
        }
    }
    return probes;
}

MetricSample ScenarioRunner::take_sample(std::size_t step, const std::string& phase,
                                         const Probes& probes) {
    const graph::Graph& g = session_.current();
    MetricSample sample;
    sample.step = step;
    sample.phase = phase;
    sample.nodes = g.node_count();
    sample.edges = g.edge_count();
    sample.deletions = session_.deletions();
    sample.insertions = session_.insertions();
    sample.messages = session_.totals().messages;
    sample.rounds = session_.totals().rounds;
    sample.retries = session_.totals().retries;
    auto probe_start = std::chrono::steady_clock::now();
    // One CSR snapshot serves every probe of this sample (g cannot mutate
    // inside take_sample). The graph journals carry the structural delta
    // since the previous sample, so the snapshot is patched forward instead
    // of rebuilt (drained below — each mutation is consumed exactly once).
    probe_engine_.begin_sample(g, g.journal(), g.journal_overflowed());
    probe_engine_.note_reference(session_.reference(), session_.reference().journal(),
                                 session_.reference().journal_overflowed());
    g.clear_journal();
    session_.reference().clear_journal();
    if (probes.connected) sample.components = probe_engine_.component_count(g);
    probe_cheap(sample, probes);
    if (probes.lambda2) sample.lambda2 = probe_engine_.lambda2(g);
    if (probes.stretch)
        sample.stretch = probe_engine_.sampled_stretch(g, session_.reference(),
                                                       spec_.stretch_samples, probe_rng_);
    probe_engine_.end_sample();
    auto probe_end = std::chrono::steady_clock::now();
    sample.probe_seconds = std::chrono::duration<double>(probe_end - probe_start).count();
    probe_seconds_ += sample.probe_seconds;
    return sample;
}

void ScenarioRunner::probe_cheap(MetricSample& sample, const Probes& probes) {
    const graph::Graph& g = session_.current();
    if (probes.degree) {
        sample.max_degree = g.max_degree();
        auto increase = core::degree_increase(g, session_.reference());
        sample.max_degree_ratio = increase.max_ratio;
        sample.mean_degree_ratio = increase.mean_ratio;
        // Lemma 3 witness: max over alive v of (deg_G(v) - 2k) / deg_G'(v).
        double worst = 0.0;
        double two_kappa = 2.0 * static_cast<double>(kappa_);
        for (graph::NodeId v : g.nodes()) {
            std::size_t dref = session_.reference().degree(v);
            if (dref == 0) continue;
            double slack = static_cast<double>(g.degree(v)) - two_kappa;
            worst = std::max(worst, slack / static_cast<double>(dref));
        }
        sample.worst_slack_ratio = worst;
    }
    if (probes.expansion) sample.expansion = spectral::edge_expansion_estimate(g);
}

double ScenarioRunner::sample_async(ProbePipeline& pipeline, RunResult& result,
                                    std::size_t step, const std::string& phase,
                                    const Probes& probes) {
    const graph::Graph& g = session_.current();
    MetricSample sample;
    sample.step = step;
    sample.phase = phase;
    sample.nodes = g.node_count();
    sample.edges = g.edge_count();
    sample.deletions = session_.deletions();
    sample.insertions = session_.insertions();
    sample.messages = session_.totals().messages;
    sample.rounds = session_.totals().rounds;
    sample.retries = session_.totals().retries;
    auto probe_start = std::chrono::steady_clock::now();
    probe_cheap(sample, probes);
    // Hand the structural delta since the previous cadence point to the
    // pipeline's double-buffered snapshots (each mutation consumed exactly
    // once, mirroring the inline path's journal drain).
    pipeline.note(g, g.journal(), g.journal_overflowed(), session_.reference(),
                  session_.reference().journal(),
                  session_.reference().journal_overflowed());
    g.clear_journal();
    session_.reference().clear_journal();
    std::size_t index = result.samples.size();
    result.samples.push_back(std::move(sample));
    double stalled =
        pipeline.publish(g, session_.reference(), index, probes.connected,
                         probes.lambda2, probes.stretch, spec_.stretch_samples,
                         probe_rng_);
    auto probe_end = std::chrono::steady_clock::now();
    double total = std::chrono::duration<double>(probe_end - probe_start).count();
    // Bill the stepping-thread share (cheap probes + journal drain + snapshot
    // sync) to this sample; the worker's share arrives with the collect
    // callback. Stall time is billed to neither — it is metered separately.
    double inline_share = std::max(0.0, total - stalled);
    result.samples[index].probe_seconds += inline_share;
    probe_seconds_ += inline_share;
    return total;
}

void ScenarioRunner::evaluate_expectations(RunResult& result) const {
    const MetricSample& fin = result.final_sample;
    auto fmt = [](double v) {
        std::string s = std::to_string(v);
        return s;
    };
    for (const Expectation& e : spec_.expectations) {
        switch (e.kind) {
            case Expectation::Kind::connected:
                if (!fin.connected())
                    result.failures.push_back("connected: final graph has " +
                                              std::to_string(fin.components) +
                                              " components");
                break;
            case Expectation::Kind::max_degree_ratio_le:
                if (!(fin.max_degree_ratio <= e.value))
                    result.failures.push_back("max_degree_ratio: wanted <= " + fmt(e.value) +
                                              ", got " + fmt(fin.max_degree_ratio));
                break;
            case Expectation::Kind::expansion_ge:
                if (!(fin.expansion >= e.value))
                    result.failures.push_back("expansion: wanted >= " + fmt(e.value) +
                                              ", got " + fmt(fin.expansion));
                break;
            case Expectation::Kind::lambda2_ge:
                if (!(fin.lambda2 >= e.value))
                    result.failures.push_back("lambda2: wanted >= " + fmt(e.value) +
                                              ", got " + fmt(fin.lambda2));
                break;
            case Expectation::Kind::stretch_le:
                if (!(fin.stretch <= e.value))
                    result.failures.push_back("stretch: wanted <= " + fmt(e.value) +
                                              ", got " + fmt(fin.stretch));
                break;
            case Expectation::Kind::nodes_ge:
                if (!(static_cast<double>(fin.nodes) >= e.value))
                    result.failures.push_back("nodes: wanted >= " + fmt(e.value) + ", got " +
                                              std::to_string(fin.nodes));
                break;
            case Expectation::Kind::peak_slot_factor_le: {
                double factor = result.live_high_water == 0
                                    ? 0.0
                                    : static_cast<double>(result.peak_slot_count) /
                                          static_cast<double>(result.live_high_water);
                if (!(factor <= e.value))
                    result.failures.push_back(
                        "peak_slot_factor: wanted <= " + fmt(e.value) + ", got " +
                        fmt(factor) + " (" + std::to_string(result.peak_slot_count) +
                        " slots / " + std::to_string(result.live_high_water) +
                        " live high-water)");
                break;
            }
        }
    }
}

RunResult ScenarioRunner::run() {
    if (ran_) throw std::runtime_error("ScenarioRunner::run: already executed");
    ran_ = true;

    RunResult result;
    TraceHasher hasher;
    Probes cadence_probes = parse_probes(spec_);

    // Slot accounting starts at the initial topology: a delete-heavy first
    // phase must not make the high-water marks miss the starting population.
    // replay() seeds identically (compaction_test asserts the equality).
    result.live_high_water = session_.current().node_count();
    result.peak_slot_count = session_.current().next_id();

    // Resolve the probe schedule. automatic opts into the pipeline exactly
    // when cadence sampling requests probes worth taking off-thread; a
    // final-only run (sample_every == 0) or a cheap cadence keeps the
    // simpler inline path.
    bool heavy_cadence =
        cadence_probes.connected || cadence_probes.lambda2 || cadence_probes.stretch;
    bool use_async =
        probe_mode_ == ProbeMode::async_pipeline ||
        (probe_mode_ == ProbeMode::automatic && spec_.sample_every != 0 && heavy_cadence);
    std::optional<ProbePipeline> pipeline;
    if (use_async)
        pipeline.emplace([&result, this](const ProbeJob& job) {
            MetricSample& sample = result.samples[job.sample_index];
            if (job.want_components) sample.components = job.components;
            if (job.want_lambda2) sample.lambda2 = job.lambda2;
            if (job.want_stretch) sample.stretch = job.stretch;
            sample.probe_seconds += job.worker_seconds;
            probe_seconds_ += job.worker_seconds;
        });
    // Stepping-thread time consumed by sampling inside the timed loop
    // (inline probes, publish work, stall waits) — subtracted from
    // `seconds` so steps_per_sec measures adversary+healer stepping only.
    double loop_probe_seconds = 0.0;
    auto t0 = std::chrono::steady_clock::now();

    std::size_t global_step = 0;
    for (std::size_t phase_index = 0; phase_index < spec_.phases.size(); ++phase_index) {
        const PhaseSpec& phase = spec_.phases[phase_index];
        PhaseResult stats;
        stats.name = phase.name;
        stats.steps = phase.steps;
        // Shard-engine lifecycle (DESIGN.md decision 13): the effective
        // width is CLI override > phase `shards=` > spec `shards`,
        // re-resolved at every phase entry. Width 1 tears the engine down
        // entirely — the serial path is the exact pre-sharding code, not a
        // one-shard engine.
        std::size_t eff_shards = shards_override_ != 0
                                     ? shards_override_
                                     : phase.shards.value_or(spec_.shards);
        if (eff_shards == 0) eff_shards = 1;
        result.shards = std::max(result.shards, eff_shards);
        if (eff_shards <= 1) {
            engine_.reset();
        } else if (engine_ == nullptr || engine_->shard_count() != eff_shards) {
            engine_.reset();  // join the old width before spawning the new
            engine_ = std::make_unique<ShardEngine>(session_, eff_shards, spec_.seed);
        }
        // Per-phase seed (grammar v2): reseed the master stream at phase
        // entry, making the phase's adversary decisions independent of the
        // schedule prefix (sweeps may reorder phases without perturbation).
        if (phase.seed.has_value()) rng_ = util::Rng(*phase.seed);
        // Phase-level network faults (`drop=` / `latency=`): applied (or
        // cleared back to the healer's base model) at every phase entry.
        // No-op for non-message-passing healers; never touches any rng
        // stream, so replay stays byte-identical.
        session_.healer().set_network_faults(
            core::NetFaults{phase.drop, phase.latency});
        auto deleter = make_phase_deleter(phase, registry_);
        auto inserter = make_inserter(phase.inserter);

        // Batched adversary (`batch=k`): deletions stage their reconnection
        // work; one flush per k deletions (or at a sample / successful
        // insert / phase end) runs a single connect_units for the batch.
        std::size_t staged = 0;
        // Every read of session state on the stepping thread fences the
        // shard engine first: merge() waits out all in-flight repairs, then
        // folds the staged per-delete reports into the phase accounting in
        // submission order (ascending global seq — bitwise the serial
        // accumulate order, which the order-sensitive RunningStats needs).
        auto sync_shards = [&]() {
            if (engine_ == nullptr) return;
            engine_->merge([&](const ShardDelta& d) {
                stats.totals.accumulate(d.report);
                stats.rounds.add(static_cast<double>(d.report.rounds));
            });
        };
        auto flush_batch = [&]() {
            sync_shards();
            if (staged == 0) return;
            stats.totals.accumulate(session_.flush_staged());
            staged = 0;
        };

        auto try_insert = [&](std::size_t step) {
            sync_shards();  // pick_neighbors / insert_node read and mutate
            auto neighbors = inserter->pick_neighbors(session_, rng_);
            if (neighbors.empty()) return false;
            // Inserted nodes land on a healed graph (replay mirrors this
            // flush point at every recorded insert event).
            flush_batch();
            TraceEvent event;
            event.kind = TraceEvent::Kind::insert;
            event.step = step;
            event.phase = static_cast<std::uint32_t>(phase_index);
            event.node = session_.insert_node(neighbors);
            event.neighbors = std::move(neighbors);
            ++stats.insertions;
            hasher.add(event);
            result.events.push_back(std::move(event));
            return true;
        };

        for (std::size_t step = 0; step < phase.steps; ++step) {
            // Flash-crowd modeling (grammar v2): insert_burst forced
            // arrivals lead every step, before the regular event budget.
            for (std::size_t i = 0; i < phase.insert_burst; ++i)
                if (!try_insert(global_step)) ++stats.skipped;

            double fraction = phase.delete_fraction_at(step);
            for (std::size_t b = 0; b < phase.burst; ++b) {
                bool want_delete;
                if (fraction >= 1.0) want_delete = true;
                else if (fraction <= 0.0) want_delete = false;
                else want_delete = rng_.chance(fraction);

                bool did_event = false;
                sync_shards();  // the population test and pick read session state
                if (want_delete && session_.current().node_count() > phase.min_nodes) {
                    graph::NodeId victim = deleter->pick(session_, rng_);
                    if (victim != graph::invalid_node) {
                        TraceEvent event;
                        event.kind = TraceEvent::Kind::remove;
                        event.step = global_step;
                        event.phase = static_cast<std::uint32_t>(phase_index);
                        event.node = victim;
                        stats.victim_degree.add(
                            static_cast<double>(session_.reference().degree(victim)));
                        if (engine_ != nullptr) {
                            // The repair runs on the victim's shard; the
                            // stepping thread overlaps the hash/trace
                            // bookkeeping below with it. The report lands in
                            // the shard's delta list and folds into the
                            // phase accounting at the next sync point.
                            engine_->submit_delete(victim, phase.batch > 1);
                            if (phase.batch > 1) {
                                ++staged;
                                if (staged >= phase.batch) flush_batch();
                            }
                        } else {
                            auto report = phase.batch > 1
                                              ? session_.stage_delete(victim)
                                              : session_.delete_node(victim);
                            if (phase.batch > 1) {
                                ++staged;
                                if (staged >= phase.batch) flush_batch();
                            }
                            stats.totals.accumulate(report);
                            stats.rounds.add(static_cast<double>(report.rounds));
                        }
                        ++stats.deletions;
                        hasher.add(event);
                        result.events.push_back(std::move(event));
                        did_event = true;
                    }
                }
                // Blocked or victimless deletes in a mixed phase fall
                // through to an insert; deletion-only phases just skip.
                if (!did_event && fraction < 1.0) did_event = try_insert(global_step);
                if (!did_event) ++stats.skipped;
            }
            // Slot address-space accounting, sampled before any compaction
            // so the peak reflects the waste the epoch actually reached.
            sync_shards();  // accounting and the compact test read session state
            result.live_high_water =
                std::max(result.live_high_water, session_.current().node_count());
            result.peak_slot_count = std::max<std::size_t>(
                result.peak_slot_count, session_.current().next_id());
            // Id-compaction epoch (`compact=K`, DESIGN.md decision 12):
            // close the epoch once the issued id space has outgrown the
            // live population K-fold. The canonical trace event precedes
            // the renumbering; every id in later events is new-numbering.
            if (phase.compact != 0 &&
                session_.current().next_id() > session_.current().node_count() &&
                session_.current().next_id() >=
                    phase.compact *
                        std::max<std::size_t>(session_.current().node_count(), 1)) {
                flush_batch();  // compaction requires a fully healed graph
                TraceEvent event;
                event.kind = TraceEvent::Kind::compact;
                event.step = global_step;
                event.phase = static_cast<std::uint32_t>(phase_index);
                event.node =
                    static_cast<graph::NodeId>(session_.current().node_count());
                event.shards = static_cast<std::uint32_t>(eff_shards);
                hasher.add(event);
                result.events.push_back(std::move(event));
                const std::vector<graph::NodeId>& map = session_.compact();
                if (use_async) {
                    // The worker must not touch pre-compaction snapshots or
                    // warm-start state once ids move: join, then permute.
                    loop_probe_seconds += pipeline->drain();
                    pipeline->on_compact(map);
                } else {
                    probe_engine_.on_compact(map);
                }
                // Resharding rides the epoch: the dense renumbering changed
                // the id span, so the contiguous shard ranges re-split over
                // the new next_id (workers are idle — flush_batch fenced).
                if (engine_ != nullptr)
                    engine_->reshard(session_.current().next_id());
                ++result.compactions;
            }
            ++global_step;
            // The final sample (superset probes) covers the last step.
            if (spec_.sample_every != 0 && global_step % spec_.sample_every == 0 &&
                global_step != spec_.total_steps()) {
                flush_batch();  // probes always observe a healed graph
                if (use_async) {
                    loop_probe_seconds += sample_async(*pipeline, result, global_step,
                                                       phase.name, cadence_probes);
                } else {
                    result.samples.push_back(
                        take_sample(global_step, phase.name, cadence_probes));
                    loop_probe_seconds += result.samples.back().probe_seconds;
                }
            }
        }
        flush_batch();  // batches never span phases
        // Phase boundaries are pipeline join points: every sample of the
        // phase is complete before the next phase steps.
        if (use_async) loop_probe_seconds += pipeline->drain();
        result.phases.push_back(std::move(stats));
    }
    // Join any shard workers before the final sampling reads the session
    // (phase end already merged every staged delta into the phase stats).
    engine_.reset();

    auto t1 = std::chrono::steady_clock::now();
    // Cadence samples run inside the timed loop; subtract the sampling time
    // the stepping thread itself spent (inline probes, or publish + stall
    // under the pipeline) so `seconds` (and steps_per_sec) measure
    // adversary+healer stepping only. The final sample is taken after this
    // point. Worker probe time overlaps stepping and is billed to
    // probe_seconds alone.
    result.seconds =
        std::chrono::duration<double>(t1 - t0).count() - loop_probe_seconds;
    if (result.seconds < 0.0) result.seconds = 0.0;  // clock-resolution guard
    result.steps_done = global_step;

    std::string last_phase = spec_.phases.empty() ? "" : spec_.phases.back().name;
    if (use_async) {
        // The final sample rides the pipeline too: the worker engine's
        // lambda2 warm-start chain must see the full snapshot sequence the
        // inline engine would (cadence samples then final), or the modes'
        // values could diverge at the last reading.
        sample_async(*pipeline, result, global_step, last_phase, final_probes());
        pipeline->drain();
        result.final_sample = result.samples.back();
        result.probe_stall_seconds = pipeline->stall_seconds();
        result.probe_rebuilds = pipeline->rebuilds();
        result.probe_patched_events = pipeline->patched_events();
    } else {
        result.final_sample = take_sample(global_step, last_phase, final_probes());
        result.samples.push_back(result.final_sample);
        result.probe_rebuilds = probe_engine_.probe_rebuilds();
        result.probe_patched_events = probe_engine_.probe_patched_events();
    }
    result.probe_seconds = probe_seconds_;
    result.trace_hash = hasher.value();
    result.fingerprint = graph_fingerprint(session_.current());
    evaluate_expectations(result);
    return result;
}

RunResult ScenarioRunner::replay(const Trace& trace) {
    if (ran_) throw std::runtime_error("ScenarioRunner::replay: already executed");
    ran_ = true;

    RunResult result;
    TraceHasher hasher;
    result.phases.resize(spec_.phases.size());
    for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
        result.phases[i].name = spec_.phases[i].name;
        result.phases[i].steps = spec_.phases[i].steps;
    }

    // Slot accounting mirrors run() exactly: seed from the initial topology,
    // then sample at step boundaries only (run() samples once per step, after
    // the step's events and before any compaction — per-event sampling here
    // would catch mid-step population spikes run() never observes and inflate
    // live_high_water). compaction_test asserts run/replay equality.
    result.live_high_water = session_.current().node_count();
    result.peak_slot_count = session_.current().next_id();
    auto note_accounting = [&]() {
        result.live_high_water =
            std::max(result.live_high_water, session_.current().node_count());
        result.peak_slot_count = std::max<std::size_t>(result.peak_slot_count,
                                                       session_.current().next_id());
    };

    // An explicit async probe mode reaches the pipeline here just as in
    // run(): compaction must drain the worker and permute its snapshots /
    // warm-start state — routing it to the inline engine while a pipeline
    // owns the probe state would corrupt the warm-start chain. `automatic`
    // stays inline: replay takes no cadence samples, so there is nothing to
    // overlap. Probe values are byte-identical across modes either way.
    bool use_async = probe_mode_ == ProbeMode::async_pipeline;
    std::optional<ProbePipeline> pipeline;
    if (use_async)
        pipeline.emplace([&result, this](const ProbeJob& job) {
            MetricSample& sample = result.samples[job.sample_index];
            if (job.want_components) sample.components = job.components;
            if (job.want_lambda2) sample.lambda2 = job.lambda2;
            if (job.want_stretch) sample.stretch = job.stretch;
            sample.probe_seconds += job.worker_seconds;
            probe_seconds_ += job.worker_seconds;
        });
    auto t0 = std::chrono::steady_clock::now();

    // Batched phases: replay takes no cadence samples, but the *grouping* of
    // staged deletions into flushes feeds connect_units different unit sets
    // (and hence a different healer rng trajectory), so every flush point of
    // run() is reproduced: batch-full, before each insert event, phase
    // change, any crossed sample boundary, and end-of-stream. An event
    // recorded at step s precedes the cadence sample taken after step s iff
    // s+1 is a sample multiple, so a boundary is crossed between events at
    // steps p < c iff (p/se + 1)*se <= c.
    std::size_t staged = 0;
    std::uint32_t staged_phase = 0;
    auto flush_batch = [&]() {
        if (staged == 0) return;
        core::RepairReport report = session_.flush_staged();
        if (staged_phase < result.phases.size())
            result.phases[staged_phase].totals.accumulate(report);
        staged = 0;
    };
    std::size_t prev_step = 0;
    bool have_prev = false;

    // Mirror run()'s phase-entry fault hook: the fault model switches with
    // the phase the replayed event belongs to. Applying it lazily (at the
    // first event of a phase rather than at entry of event-less phases) is
    // equivalent — the model only matters while messages are in flight.
    std::optional<std::uint32_t> faults_phase;
    auto apply_phase_faults = [&](std::uint32_t phase_index) {
        if (faults_phase.has_value() && *faults_phase == phase_index) return;
        faults_phase = phase_index;
        if (phase_index < spec_.phases.size()) {
            const PhaseSpec& phase = spec_.phases[phase_index];
            session_.healer().set_network_faults(
                core::NetFaults{phase.drop, phase.latency});
        }
    };

    for (const TraceEvent& event : trace.events) {
        // A later step begins: every event of prev_step is applied, which is
        // run()'s per-step accounting point (before any boundary flush —
        // flush order matters only if a flush could move the counts, and
        // run() samples pre-flush too).
        if (have_prev && event.step > prev_step) note_accounting();
        if (staged > 0) {
            bool crossed_sample =
                spec_.sample_every != 0 && have_prev &&
                (prev_step / spec_.sample_every + 1) * spec_.sample_every <= event.step;
            if (crossed_sample || event.phase != staged_phase) flush_batch();
        }
        // After any cross-phase flush (run() flushes at phase end under the
        // outgoing phase's fault model), switch to this event's model.
        apply_phase_faults(event.phase);
        PhaseResult* stats =
            event.phase < result.phases.size() ? &result.phases[event.phase] : nullptr;
        std::size_t batch =
            event.phase < spec_.phases.size() ? spec_.phases[event.phase].batch : 1;
        if (event.kind == TraceEvent::Kind::remove) {
            if (!session_.current().has_node(event.node))
                throw std::runtime_error(
                    "replay diverged: step " + std::to_string(event.step) + " deletes node " +
                    std::to_string(event.node) + " which is not alive");
            if (stats != nullptr)
                stats->victim_degree.add(
                    static_cast<double>(session_.reference().degree(event.node)));
            core::RepairReport report;
            if (batch > 1) {
                report = session_.stage_delete(event.node);
                staged_phase = event.phase;
                ++staged;
                if (staged >= batch) flush_batch();
            } else {
                report = session_.delete_node(event.node);
            }
            if (stats != nullptr) {
                stats->totals.accumulate(report);
                stats->rounds.add(static_cast<double>(report.rounds));
                ++stats->deletions;
            }
        } else if (event.kind == TraceEvent::Kind::insert) {
            flush_batch();  // run() flushes before every successful insert
            graph::NodeId got = session_.insert_node(event.neighbors);
            if (got != event.node)
                throw std::runtime_error("replay diverged: step " + std::to_string(event.step) +
                                         " inserted node " + std::to_string(got) +
                                         ", trace recorded " + std::to_string(event.node));
            if (stats != nullptr) ++stats->insertions;
        } else {
            // Epoch boundary: replay compacts where the trace says run()
            // did — no condition re-evaluation, the recorded event is the
            // canonical decision. `live` doubles as a divergence check.
            flush_batch();  // run() flushes before compacting
            // run() samples the step's accounting before the compact fires
            // (the peak must reflect the waste the epoch actually reached);
            // at this point every pre-compact event of the step is applied.
            note_accounting();
            if (session_.current().node_count() != event.node)
                throw std::runtime_error(
                    "replay diverged: compact at step " + std::to_string(event.step) +
                    " recorded " + std::to_string(event.node) + " live nodes, have " +
                    std::to_string(session_.current().node_count()));
            const std::vector<graph::NodeId>& map = session_.compact();
            if (use_async) {
                pipeline->drain();
                pipeline->on_compact(map);
            } else {
                probe_engine_.on_compact(map);
            }
            ++result.compactions;
        }
        hasher.add(event);
        prev_step = event.step;
        have_prev = true;
        result.steps_done = event.step + 1;
    }
    note_accounting();  // run()'s accounting point for the final step
    flush_batch();

    auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.events = trace.events;

    std::string last_phase = spec_.phases.empty() ? "" : spec_.phases.back().name;
    if (use_async) {
        sample_async(*pipeline, result, result.steps_done, last_phase, final_probes());
        pipeline->drain();
        result.final_sample = result.samples.back();
        result.probe_stall_seconds = pipeline->stall_seconds();
        result.probe_rebuilds = pipeline->rebuilds();
        result.probe_patched_events = pipeline->patched_events();
    } else {
        result.final_sample = take_sample(result.steps_done, last_phase, final_probes());
        result.samples.push_back(result.final_sample);
        result.probe_rebuilds = probe_engine_.probe_rebuilds();
        result.probe_patched_events = probe_engine_.probe_patched_events();
    }
    result.probe_seconds = probe_seconds_;
    result.trace_hash = hasher.value();
    result.fingerprint = graph_fingerprint(session_.current());
    evaluate_expectations(result);
    return result;
}

}  // namespace xheal::scenario
