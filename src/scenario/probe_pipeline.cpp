#include "scenario/probe_pipeline.hpp"

#include <chrono>

namespace xheal::scenario {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

ProbePipeline::ProbePipeline(Collect collect) : collect_(std::move(collect)) {
    worker_ = std::thread([this] { worker_loop(); });
}

ProbePipeline::~ProbePipeline() {
    // Let the worker finish anything in flight (collecting the results so
    // the callback sees every published job even on early destruction),
    // then park a stop token in the slot it will look at next. Swallow a
    // propagating job error — the run is already being torn down.
    try {
        drain();
    } catch (...) {
    }
    slots_[next_publish_].state.store(kStop, std::memory_order_release);
    slots_[next_publish_].state.notify_one();
    worker_.join();
}

void ProbePipeline::note(const graph::Graph& g, const std::vector<graph::NodeId>& dirty,
                         bool overflowed, const graph::Graph& ref,
                         const std::vector<graph::NodeId>& ref_dirty,
                         bool ref_overflowed) {
    for (Slot& slot : slots_) {
        slot.snap.note(g, dirty, overflowed);
        slot.ref_snap.note(ref, ref_dirty, ref_overflowed);
    }
}

double ProbePipeline::publish(const graph::Graph& g, const graph::Graph& ref,
                              std::size_t sample_index, bool want_components,
                              bool want_lambda2, bool want_stretch,
                              std::size_t stretch_budget, util::Rng& probe_rng) {
    Slot& slot = slots_[next_publish_];
    double stalled = 0.0;
    int state = slot.state.load(std::memory_order_acquire);
    if (state == kReady) {
        // The worker is two cadence windows behind; this wait is the only
        // point the stepping thread ever blocks on an in-flight probe.
        auto w0 = std::chrono::steady_clock::now();
        while (state == kReady) {
            slot.state.wait(kReady, std::memory_order_acquire);
            state = slot.state.load(std::memory_order_acquire);
        }
        stalled = seconds_since(w0);
        stall_seconds_ += stalled;
    }
    if (state == kDone) collect_slot(slot);

    // The slot is ours: freeze the graph(s) while they are quiescent. The
    // reference snapshot is only needed (and only synced) for stretch.
    slot.snap.sync(g);
    if (want_stretch) slot.ref_snap.sync(ref);

    ProbeJob& job = slot.job;
    job.sample_index = sample_index;
    job.want_components = want_components;
    job.want_lambda2 = want_lambda2;
    job.want_stretch = want_stretch;
    job.components = 0;
    job.lambda2 = std::nan("");
    job.stretch = std::nan("");
    job.worker_seconds = 0.0;
    job.error = nullptr;
    if (want_stretch) {
        // Draw the sources here, on the probe stream, in exactly the order
        // inline sampling would — the worker only runs the BFS half.
        spectral::ProbeEngine::sample_stretch_sources(slot.snap.csr(), stretch_budget,
                                                      probe_rng, job.stretch_sources);
    } else {
        job.stretch_sources.clear();
    }

    slot.state.store(kReady, std::memory_order_release);
    slot.state.notify_one();
    next_publish_ ^= 1;
    return stalled;
}

double ProbePipeline::drain() {
    double stalled = 0.0;
    // Oldest in-flight slot first, so jobs are collected in publish order.
    for (std::size_t k = 0; k < 2; ++k) {
        Slot& slot = slots_[(next_publish_ + k) % 2];
        int state = slot.state.load(std::memory_order_acquire);
        if (state == kReady) {
            auto w0 = std::chrono::steady_clock::now();
            while (state == kReady) {
                slot.state.wait(kReady, std::memory_order_acquire);
                state = slot.state.load(std::memory_order_acquire);
            }
            double waited = seconds_since(w0);
            stalled += waited;
            stall_seconds_ += waited;
        }
        if (state == kDone) collect_slot(slot);
    }
    return stalled;
}

std::uint64_t ProbePipeline::rebuilds() const {
    return slots_[0].snap.rebuilds() + slots_[0].ref_snap.rebuilds() +
           slots_[1].snap.rebuilds() + slots_[1].ref_snap.rebuilds();
}

std::uint64_t ProbePipeline::patched_events() const {
    return slots_[0].snap.patched_events() + slots_[0].ref_snap.patched_events() +
           slots_[1].snap.patched_events() + slots_[1].ref_snap.patched_events();
}

void ProbePipeline::collect_slot(Slot& slot) {
    slot.state.store(kFree, std::memory_order_relaxed);
    if (slot.job.error != nullptr) {
        std::exception_ptr error = slot.job.error;
        slot.job.error = nullptr;
        std::rethrow_exception(error);
    }
    collect_(slot.job);
}

void ProbePipeline::worker_loop() {
    for (std::size_t i = 0;;) {
        Slot& slot = slots_[i];
        int state = slot.state.load(std::memory_order_acquire);
        while (state != kReady && state != kStop) {
            slot.state.wait(state, std::memory_order_acquire);
            state = slot.state.load(std::memory_order_acquire);
        }
        if (state == kStop) return;
        run_job(slot);
        slot.state.store(kDone, std::memory_order_release);
        slot.state.notify_one();
        i ^= 1;
    }
}

void ProbePipeline::run_job(Slot& slot) {
    ProbeJob& job = slot.job;
    auto t0 = std::chrono::steady_clock::now();
    try {
        const spectral::CsrGraph& csr = slot.snap.csr();
        if (job.want_components) job.components = engine_.component_count_csr(csr);
        if (job.want_lambda2) job.lambda2 = engine_.lambda2_csr(csr);
        if (job.want_stretch)
            job.stretch = engine_.stretch_over_sources(csr, slot.ref_snap.csr(),
                                                       job.stretch_sources);
    } catch (...) {
        job.error = std::current_exception();
    }
    job.worker_seconds = seconds_since(t0);
}

}  // namespace xheal::scenario
