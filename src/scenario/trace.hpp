// Deterministic JSONL event traces — the regression primitive of the
// scenario engine. A run records every adversary event (insert with its
// neighbor set, delete with its victim) plus a running FNV-1a hash and the
// final-graph fingerprint; `replay` re-applies the event stream against a
// fresh session built from the same spec and must reproduce both hashes
// byte-for-byte (the healer's randomness is fully determined by its seed).
//
// Format: one JSON object per line, written and parsed by this module only
// (a tiny purpose-built scanner, not a general JSON parser):
//
//   {"type":"header","scenario":"phased-churn","seed":42,"spec_hash":"0x..."}
//   {"type":"insert","step":3,"phase":0,"node":65,"neighbors":[2,9,41]}
//   {"type":"delete","step":4,"phase":0,"node":17}
//   {"type":"compact","step":7,"phase":1,"live":48}
//   {"type":"compact","step":9,"phase":1,"live":40,"shards":4}
//   {"type":"end","events":96,"trace_hash":"0x...","fingerprint":"0x..."}
//
// A compact record marks an id-compaction epoch boundary (DESIGN.md decision
// 12): the session renumbered the live ids densely after this step. Node ids
// in subsequent events are in the NEW numbering; `live` (stored in
// TraceEvent::node) is the live-node count — i.e. next_id after the remap —
// which replay re-derives and checks before compacting its own session.
// `shards` (DESIGN.md decision 13) records the shard-engine width that
// closed the epoch; it is omitted when 1 (so pre-sharding traces are
// unchanged byte-for-byte) and excluded from the trace hash (so shard
// counts replay interchangeably).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::scenario {

struct TraceEvent {
    enum class Kind { insert, remove, compact };
    Kind kind = Kind::remove;
    std::uint64_t step = 0;   ///< global step index (0-based)
    std::uint32_t phase = 0;  ///< index into the spec's phase list
    graph::NodeId node = graph::invalid_node;  ///< compact: live-node count
    std::vector<graph::NodeId> neighbors;  ///< insert only: attach set
    /// Compact only: shard count of the engine that closed the epoch
    /// (DESIGN.md decision 13). Serialized as `"shards":S` only when != 1,
    /// so pre-sharding goldens stay byte-identical, and deliberately
    /// EXCLUDED from TraceHasher — shards=S and shards=1 runs of one spec
    /// hash identically, which is the determinism contract itself.
    std::uint32_t shards = 1;

    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// The JSONL line of one event, exactly as write_trace emits it (no
/// trailing newline) — shared by the writer and the diff renderer.
std::string event_to_json(const TraceEvent& event);

/// "0x%016llx" rendering of a trace hash/fingerprint, as written in the
/// header/end records — shared by the writer, diff output and the CLI.
std::string hex64(std::uint64_t value);

/// Running FNV-1a 64 over a canonical byte encoding of the event stream.
class TraceHasher {
public:
    void add(const TraceEvent& event);
    std::uint64_t value() const { return hash_; }

private:
    void mix(std::uint64_t word);

    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Order-independent-of-representation fingerprint of a graph: FNV-1a over
/// the sorted node ids and the sorted edge list with full claim sets.
/// Two graphs with identical structure and claims hash identically.
std::uint64_t graph_fingerprint(const graph::Graph& g);

struct Trace {
    std::string scenario;
    std::uint64_t seed = 0;
    std::uint64_t spec_hash = 0;
    std::vector<TraceEvent> events;
    std::uint64_t trace_hash = 0;   ///< from the "end" record
    std::uint64_t fingerprint = 0;  ///< final-graph fingerprint at record time
};

/// Serialize a complete trace as JSONL.
void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

/// Parse a trace produced by write_trace. Throws std::runtime_error with a
/// line number on malformed input; the header and end records are required.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace xheal::scenario
