// Scenario specs: the declarative description of one experiment run
// (DESIGN.md decision 5 — scenarios are data).
//
// A ScenarioSpec names an initial topology, a healer, and an adversary
// *schedule* of phases — each phase an (insertion strategy, deletion
// strategy, step count, delete fraction, burst size) tuple — plus the seed
// and the metric probes to sample. Components are referenced by registry
// key (registry.hpp), so a spec carries no code. Specs are constructible in
// code and parseable from a small line-oriented `key value k=v...` text
// format:
//
//   # phased churn against xheal
//   name phased-churn
//   seed 42
//   topology random-regular n=64 d=4
//   healer xheal d=2
//   probes degree expansion
//   sample_every 20
//   phase warmup steps=60 delete_fraction=0.3 deleter=random k=3 min_nodes=8
//   phase assault steps=30 delete_fraction=1 deleter=max-degree
//   expect connected
//   expect max_degree_ratio <= 12
//
// Grammar v2 (DESIGN.md decision 8) adds four phase keys:
//
//   phase ramp  steps=100 seed=9 delete_fraction=0.1..0.9
//   phase mixed steps=50  deleter=random:0.7,max-degree:0.3
//   phase flash steps=20  insert_burst=4 delete_fraction=0
//
//   seed=S            — reseed the master rng at phase entry, making the
//                       phase's adversary stream independent of everything
//                       before it (sweeps can permute phases freely).
//   delete_fraction=a..b — linear ramp from a to b across the phase's
//                       steps (a <= b; both ends evaluated).
//   deleter=k1:w1,k2:w2 — composite deleter: each delete event first draws
//                       which member strategy acts, proportionally to the
//                       (positive, non-normalized) weights.
//   insert_burst=I    — I forced insert events at the start of every step,
//                       before the regular burst (flash-crowd modeling).
//
// Batched adversary:
//
//   phase surge steps=40 delete_fraction=1 batch=16
//
//   batch=k           — stage k deletions per repair flush: the healer runs
//                       per-victim teardown immediately but builds the new
//                       secondary once per batch (see PhaseSpec::batch).
//
// Lossy-network keys (this PR; meaningful for message-passing healers):
//
//   phase storm steps=30 delete_fraction=1 drop=0.1 latency=2
//
//   drop=p            — per-message loss probability for this phase,
//                       overriding the healer's base model (healer param
//                       `drop=`); p in [0, 1].
//   latency=L         — extra delivery delay in rounds for this phase
//                       (messages arrive after 1 + L rounds).
//
// Id-compaction key (DESIGN.md decision 12; long-churn runs):
//
//   phase churn steps=100000 delete_fraction=0.5 compact=4
//
//   compact=K         — after any step of this phase where the issued id
//                       space has outgrown the live population K-fold, the
//                       session compacts the id space (dense renumbering)
//                       and records a `compact` trace event. 0/absent = off.
//
// Sharded stepping (DESIGN.md decision 13):
//
//   shards 4
//   phase churn steps=1000 delete_fraction=1 shards=8 compact=3
//
//   shards S          — top-level: run the stepping loop on the id-range
//                       shard engine with S consumer shards. Results are
//                       byte-identical at any S (trace hash, fingerprint,
//                       metrics); only throughput characteristics change.
//                       1/absent = serial (the exact pre-sharding path).
//   shards=S          — per-phase override of the top-level value. The CLI
//                       `--shards N` overrides both.
//
// `to_text()` emits the same grammar, and parse(to_text()) round-trips.
// Default-valued keys (shards included) are omitted, so specs predating a
// key keep their content_hash.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xheal::scenario {

/// One registry-keyed component reference: a kind plus string parameters.
/// Typed accessors parse on demand and throw std::runtime_error on
/// malformed values, naming the offending key.
struct ComponentSpec {
    std::string kind;
    std::map<std::string, std::string> params;

    bool has(const std::string& key) const { return params.count(key) != 0; }
    std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
    double get_double(const std::string& key, double fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;

    /// `kind k1=v1 k2=v2` with params in key order.
    std::string to_text() const;
};

/// One weighted member of a composite deleter mixture. Weights are kept
/// as parsed (positive, not normalized) so the canonical printer
/// round-trips them; consumers normalize at build time.
struct WeightedDeleter {
    ComponentSpec component{"random", {}};
    double weight = 1.0;
};

/// One phase of the adversary schedule. delete_fraction semantics (applied
/// to the *effective* fraction of the step — see delete_fraction_at):
///   >= 1  — deletion-only (no coin flipped, matching the classic
///           "p deletions" benches);
///   <= 0  — insertion-only (no coin flipped);
///   else  — per event, flip chance(fraction); a delete that is
///           blocked by min_nodes (or yields no victim) becomes an insert.
struct PhaseSpec {
    std::string name = "phase";
    std::size_t steps = 0;
    /// Reseed the master rng at phase entry (grammar v2 `seed=`); absent =
    /// continue the running master stream as before.
    std::optional<std::uint64_t> seed;
    std::size_t burst = 1;         ///< adversary events per step
    std::size_t insert_burst = 0;  ///< forced inserts per step, before `burst`
    /// Deletions staged per repair flush (`batch=k`). 1 = classic Xheal: every
    /// deletion is repaired immediately. k > 1 = the healer performs per-victim
    /// teardown at once but defers new-secondary construction until k deletions
    /// accumulated (or the phase/run ends, or a metric sample / insert event
    /// forces a flush so probes and inserters always see a healed graph).
    std::size_t batch = 1;
    double delete_fraction = 0.5;
    /// Ramp end (grammar v2 `delete_fraction=a..b`); absent = constant.
    std::optional<double> delete_fraction_end;
    /// Per-phase network fault overrides (`drop=` / `latency=`); absent =
    /// the healer's base fault model. No-ops for non-distributed healers.
    std::optional<double> drop;
    std::optional<std::size_t> latency;
    /// Id-compaction waste factor (`compact=K`, DESIGN.md decision 12):
    /// after each step of this phase, if the issued id space exceeds K times
    /// the live population (next_id >= K * max(live, 1) and at least one id
    /// is retired), the session compacts and a `compact` event is traced.
    /// 0 = off (the default — legacy specs never compact, so their traces
    /// and fingerprints are byte-identical to pre-compaction builds).
    std::size_t compact = 0;
    /// Shard-engine width for this phase (`shards=S`, DESIGN.md decision
    /// 13); absent = the spec-level value. Byte-identical results at any S.
    std::optional<std::size_t> shards;
    std::size_t min_nodes = 4;  ///< never delete at or below this population
    ComponentSpec deleter{"random", {}};
    /// Non-empty = composite deleter (grammar v2 `deleter=k1:w1,k2:w2`);
    /// `deleter` is ignored in that case.
    std::vector<WeightedDeleter> deleter_mix;
    ComponentSpec inserter{"random-attach", {{"k", "3"}}};

    /// Effective delete fraction at `step` (0-based, < steps): the constant
    /// `delete_fraction`, or the linear ramp hitting both endpoints —
    /// a + (b-a) * step/(steps-1) (a single-step ramp evaluates to a).
    double delete_fraction_at(std::size_t step) const;
};

/// Terminal assertion on the final metric sample; `xheal_run` turns these
/// into the PASS/FAIL verdict.
struct Expectation {
    enum class Kind {
        connected,            ///< final graph is one component
        max_degree_ratio_le,  ///< max_v deg_G/deg_G' <= value
        expansion_ge,         ///< edge-expansion estimate >= value
        lambda2_ge,           ///< algebraic connectivity >= value
        stretch_le,           ///< sampled stretch <= value
        nodes_ge,             ///< final population >= value
        peak_slot_factor_le,  ///< peak slot count <= value * live high-water
    };
    Kind kind = Kind::connected;
    double value = 0.0;

    std::string to_text() const;
};

struct ScenarioSpec {
    std::string name = "unnamed";
    std::uint64_t seed = 1;
    ComponentSpec topology{"random-regular", {{"n", "64"}, {"d", "4"}}};
    ComponentSpec healer{"xheal", {}};
    /// Extra metric probes sampled every `sample_every` steps (and always at
    /// the end): subset of {"connected", "degree", "expansion", "lambda2",
    /// "stretch"}. Population/edge counts are always recorded.
    std::vector<std::string> probes;
    /// 0 = only the final sample.
    std::size_t sample_every = 0;
    /// Stretch probe sample count (paper metric is sampled-source BFS).
    std::size_t stretch_samples = 8;
    /// Shard-engine width (`shards S`, DESIGN.md decision 13): number of
    /// id-range shard consumers the stepping loop runs on. 1 = serial (the
    /// exact pre-sharding code path). Per-phase `shards=` overrides this;
    /// the CLI `--shards` overrides both. Results are byte-identical at
    /// any value — the knob trades threads for stepping overlap only.
    std::size_t shards = 1;
    std::vector<PhaseSpec> phases;
    std::vector<Expectation> expectations;

    /// Sum of phase step counts.
    std::size_t total_steps() const;

    /// Canonical text form (parse round-trips it).
    std::string to_text() const;
    /// FNV-1a 64 over the canonical text — names a spec in traces/reports.
    std::uint64_t content_hash() const;

    /// Parse the grammar above. Throws std::runtime_error with a
    /// line-numbered message on malformed input.
    static ScenarioSpec parse(const std::string& text);
    static ScenarioSpec parse_file(const std::string& path);
};

/// FNV-1a 64-bit over a byte string (shared by spec/trace hashing).
std::uint64_t fnv1a64(const std::string& bytes);

}  // namespace xheal::scenario
