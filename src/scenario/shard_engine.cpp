#include "scenario/shard_engine.hpp"

#include <exception>
#include <stdexcept>

namespace xheal::scenario {

namespace {
/// Salt mixed with the shard index before the splitmix64 finalizer so
/// shard 0's stream is not the bare master seed.
constexpr std::uint64_t shard_salt = 0x73686172645f7871ull;  // "shard_xq"
}  // namespace

ShardEngine::ShardEngine(core::HealingSession& session, std::size_t shards,
                         std::uint64_t master_seed)
    : session_(session) {
    XHEAL_EXPECTS(shards >= 1);
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shards_.push_back(std::make_unique<Shard>(
            util::splitmix64(master_seed ^ (shard_salt + s))));
    reshard(session_.current().next_id());
    for (auto& sh : shards_)
        sh->worker = std::thread([this, shard = sh.get()] { worker_loop(*shard); });
}

ShardEngine::~ShardEngine() {
    wait_all();
    for (auto& sh : shards_) sh->ring.push(Command{graph::invalid_node, 0, false, true});
    for (auto& sh : shards_)
        if (sh->worker.joinable()) sh->worker.join();
}

void ShardEngine::reshard(std::size_t slot_span) {
    fence();
    std::size_t s = shards_.size();
    chunk_ = std::max<std::size_t>(1, (slot_span + s - 1) / s);
}

std::uint64_t ShardEngine::submit_delete(graph::NodeId victim, bool staged) {
    std::uint64_t seq = submitted_++;
    shards_[shard_of(victim)]->ring.push(Command{victim, seq, staged, false});
    return seq;
}

void ShardEngine::wait_all() noexcept {
    std::uint64_t target = submitted_;
    std::uint64_t cur = applied_.load(std::memory_order_acquire);
    while (cur < target) {
        applied_.wait(cur, std::memory_order_acquire);
        cur = applied_.load(std::memory_order_acquire);
    }
}

void ShardEngine::fence() {
    wait_all();
    if (failed_.load(std::memory_order_acquire))
        throw std::runtime_error("shard engine: " + error_);
}

void ShardEngine::wait_turn(std::uint64_t seq, util::Rng& rng) {
    std::uint64_t cur = applied_.load(std::memory_order_acquire);
    if (cur == seq) return;
    // Bounded jittered spin first: the common case is a short handoff from
    // the consumer one ticket ahead, and the jitter (shard-local stream,
    // never semantic) staggers shards contending for the same cache line.
    std::size_t spins = 16 + rng.index(48);
    while (spins-- > 0) {
        cur = applied_.load(std::memory_order_acquire);
        if (cur == seq) return;
    }
    while (cur != seq) {
        applied_.wait(cur, std::memory_order_acquire);
        cur = applied_.load(std::memory_order_acquire);
    }
}

void ShardEngine::worker_loop(Shard& shard) {
    Command cmd;
    for (;;) {
        shard.ring.pop(cmd);
        if (cmd.stop) return;
        wait_turn(cmd.seq, shard.rng);
        // Holding the turn: this thread is the unique session mutator until
        // it publishes seq+1, so the apply below is data-race-free and in
        // exactly the serial order. After a failure the stream is poisoned —
        // later commands only advance the ticket so fence() can't deadlock.
        if (!failed_.load(std::memory_order_relaxed)) {
            try {
                core::RepairReport report = cmd.staged
                                                ? session_.stage_delete(cmd.victim)
                                                : session_.delete_node(cmd.victim);
                shard.deltas.push_back(ShardDelta{cmd.seq, report});
            } catch (const std::exception& e) {
                error_ = e.what();
                failed_.store(true, std::memory_order_release);
            }
        }
        applied_.store(cmd.seq + 1, std::memory_order_release);
        applied_.notify_all();
    }
}

}  // namespace xheal::scenario
