#include "scenario/spec.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xheal::scenario {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
    throw std::runtime_error("spec line " + std::to_string(line_no) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok) tokens.push_back(tok);
    return tokens;
}

/// Split `k=v` (returns false when no '=' is present).
bool split_kv(const std::string& tok, std::string& key, std::string& value) {
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    key = tok.substr(0, eq);
    value = tok.substr(eq + 1);
    return true;
}

/// Component reference: `kind k1=v1 k2=v2 ...` from tokens[first...].
ComponentSpec parse_component(const std::vector<std::string>& tokens, std::size_t first,
                              std::size_t line_no) {
    if (first >= tokens.size()) fail(line_no, "missing component kind");
    ComponentSpec spec;
    spec.kind = tokens[first];
    for (std::size_t i = first + 1; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value))
            fail(line_no, "expected key=value, got '" + tokens[i] + "'");
        spec.params[key] = value;
    }
    return spec;
}

double parse_double(const std::string& text, const std::string& what) {
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        throw std::runtime_error(what + ": bad number '" + text + "'");
    return v;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
    char* end = nullptr;
    std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    // strtoull silently wraps negatives ("-3" -> 2^64-3); reject them.
    if (end == text.c_str() || *end != '\0' || text[0] == '-')
        throw std::runtime_error(what + ": bad integer '" + text + "'");
    return v;
}

double parse_double_or_fail(const std::string& text, const std::string& what,
                            std::size_t line_no) {
    try {
        return parse_double(text, what);
    } catch (const std::runtime_error& e) {
        fail(line_no, e.what());
    }
}

std::uint64_t parse_u64_or_fail(const std::string& text, const std::string& what,
                                std::size_t line_no) {
    try {
        return parse_u64(text, what);
    } catch (const std::runtime_error& e) {
        fail(line_no, e.what());
    }
}

/// `delete_fraction=a..b` ramp bounds. Ramps are validated eagerly (unlike
/// the constant form, whose out-of-range values carry schedule meaning):
/// both ends must be in [0, 1] and ascending — a reversed ramp is almost
/// always a typo, and a decay regime reads better as two phases.
void parse_ramp(const std::string& value, PhaseSpec& phase, std::size_t line_no) {
    auto dots = value.find("..");
    std::string a_text = value.substr(0, dots);
    std::string b_text = value.substr(dots + 2);
    if (a_text.empty() || b_text.empty())
        fail(line_no, "delete_fraction ramp needs both bounds, got '" + value + "'");
    double a = parse_double_or_fail(a_text, "delete_fraction ramp start", line_no);
    double b = parse_double_or_fail(b_text, "delete_fraction ramp end", line_no);
    if (a < 0.0 || b < 0.0)
        fail(line_no, "delete_fraction ramp bounds must be >= 0, got '" + value + "'");
    if (a > 1.0 || b > 1.0)
        fail(line_no, "delete_fraction ramp bounds must be <= 1, got '" + value + "'");
    if (a > b)
        fail(line_no, "delete_fraction ramp bounds reversed ('" + value +
                          "'); split a decay into phases instead");
    phase.delete_fraction = a;
    phase.delete_fraction_end = b;
}

/// `deleter=k1:w1,k2:w2` composite mixture. Every member needs an explicit
/// positive weight; a zero total cannot be normalized into a distribution.
void parse_deleter_mix(const std::string& value, PhaseSpec& phase,
                       std::size_t line_no) {
    phase.deleter_mix.clear();
    double total = 0.0;
    std::size_t begin = 0;
    while (begin <= value.size()) {
        auto comma = value.find(',', begin);
        std::string part = value.substr(
            begin, comma == std::string::npos ? std::string::npos : comma - begin);
        auto colon = part.find(':');
        if (colon == std::string::npos || colon == 0 || colon + 1 == part.size())
            fail(line_no, "composite deleter member needs kind:weight, got '" + part + "'");
        WeightedDeleter member;
        member.component.kind = part.substr(0, colon);
        member.weight = parse_double_or_fail(part.substr(colon + 1),
                                             "deleter weight for '" +
                                                 member.component.kind + "'",
                                             line_no);
        if (member.weight < 0.0)
            fail(line_no, "negative deleter weight for '" + member.component.kind + "'");
        total += member.weight;
        phase.deleter_mix.push_back(std::move(member));
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    if (!(total > 0.0))
        fail(line_no, "composite deleter weights sum to zero (not normalizable): '" +
                          value + "'");
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t ComponentSpec::get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = params.find(key);
    if (it == params.end()) return fallback;
    return parse_u64(it->second, kind + "." + key);
}

double ComponentSpec::get_double(const std::string& key, double fallback) const {
    auto it = params.find(key);
    if (it == params.end()) return fallback;
    return parse_double(it->second, kind + "." + key);
}

bool ComponentSpec::get_bool(const std::string& key, bool fallback) const {
    auto it = params.find(key);
    if (it == params.end()) return fallback;
    if (it->second == "true" || it->second == "1") return true;
    if (it->second == "false" || it->second == "0") return false;
    throw std::runtime_error(kind + "." + key + ": bad bool '" + it->second + "'");
}

std::string ComponentSpec::to_text() const {
    std::string out = kind;
    for (const auto& [k, v] : params) out += " " + k + "=" + v;
    return out;
}

std::string Expectation::to_text() const {
    switch (kind) {
        case Kind::connected: return "expect connected";
        case Kind::max_degree_ratio_le: return "expect max_degree_ratio <= " + std::to_string(value);
        case Kind::expansion_ge: return "expect expansion >= " + std::to_string(value);
        case Kind::lambda2_ge: return "expect lambda2 >= " + std::to_string(value);
        case Kind::stretch_le: return "expect stretch <= " + std::to_string(value);
        case Kind::nodes_ge: return "expect nodes >= " + std::to_string(value);
        case Kind::peak_slot_factor_le:
            return "expect peak_slot_factor <= " + std::to_string(value);
    }
    return "expect ?";
}

double PhaseSpec::delete_fraction_at(std::size_t step) const {
    if (!delete_fraction_end.has_value() || steps <= 1) return delete_fraction;
    double t = static_cast<double>(step) / static_cast<double>(steps - 1);
    return delete_fraction + (*delete_fraction_end - delete_fraction) * t;
}

std::size_t ScenarioSpec::total_steps() const {
    std::size_t total = 0;
    for (const auto& p : phases) total += p.steps;
    return total;
}

std::string ScenarioSpec::to_text() const {
    std::ostringstream out;
    out << "name " << name << "\n";
    out << "seed " << seed << "\n";
    out << "topology " << topology.to_text() << "\n";
    out << "healer " << healer.to_text() << "\n";
    if (!probes.empty()) {
        out << "probes";
        for (const auto& p : probes) out << " " << p;
        out << "\n";
    }
    if (sample_every != 0) out << "sample_every " << sample_every << "\n";
    if (stretch_samples != 8) out << "stretch_samples " << stretch_samples << "\n";
    if (shards != 1) out << "shards " << shards << "\n";
    for (const auto& p : phases) {
        out << "phase " << p.name << " steps=" << p.steps;
        if (p.seed.has_value()) out << " seed=" << *p.seed;
        if (p.burst != 1) out << " burst=" << p.burst;
        if (p.insert_burst != 0) out << " insert_burst=" << p.insert_burst;
        if (p.batch != 1) out << " batch=" << p.batch;
        if (p.drop.has_value()) out << " drop=" << *p.drop;
        if (p.latency.has_value()) out << " latency=" << *p.latency;
        if (p.compact != 0) out << " compact=" << p.compact;
        if (p.shards.has_value()) out << " shards=" << *p.shards;
        out << " delete_fraction=" << p.delete_fraction;
        if (p.delete_fraction_end.has_value()) out << ".." << *p.delete_fraction_end;
        out << " min_nodes=" << p.min_nodes;
        if (p.deleter_mix.empty()) {
            out << " deleter=" << p.deleter.kind;
            for (const auto& [k, v] : p.deleter.params)
                out << " deleter." << k << "=" << v;
        } else {
            out << " deleter=";
            for (std::size_t i = 0; i < p.deleter_mix.size(); ++i)
                out << (i == 0 ? "" : ",") << p.deleter_mix[i].component.kind << ":"
                    << p.deleter_mix[i].weight;
        }
        out << " inserter=" << p.inserter.kind;
        for (const auto& [k, v] : p.inserter.params) out << " inserter." << k << "=" << v;
        out << "\n";
    }
    for (const auto& e : expectations) out << e.to_text() << "\n";
    return out.str();
}

std::uint64_t ScenarioSpec::content_hash() const { return fnv1a64(to_text()); }

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
    ScenarioSpec spec;
    spec.topology = ComponentSpec{};
    spec.healer = ComponentSpec{};
    bool saw_topology = false, saw_healer = false;

    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        auto tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string& directive = tokens[0];

        if (directive == "name") {
            if (tokens.size() != 2) fail(line_no, "name takes one token");
            spec.name = tokens[1];
        } else if (directive == "seed") {
            if (tokens.size() != 2) fail(line_no, "seed takes one integer");
            spec.seed = parse_u64_or_fail(tokens[1], "seed", line_no);
        } else if (directive == "topology") {
            spec.topology = parse_component(tokens, 1, line_no);
            saw_topology = true;
        } else if (directive == "healer") {
            spec.healer = parse_component(tokens, 1, line_no);
            saw_healer = true;
        } else if (directive == "probes") {
            for (std::size_t i = 1; i < tokens.size(); ++i) spec.probes.push_back(tokens[i]);
        } else if (directive == "sample_every") {
            if (tokens.size() != 2) fail(line_no, "sample_every takes one integer");
            spec.sample_every = parse_u64_or_fail(tokens[1], "sample_every", line_no);
        } else if (directive == "stretch_samples") {
            if (tokens.size() != 2) fail(line_no, "stretch_samples takes one integer");
            spec.stretch_samples = parse_u64_or_fail(tokens[1], "stretch_samples", line_no);
        } else if (directive == "shards") {
            if (tokens.size() != 2) fail(line_no, "shards takes one integer");
            spec.shards = parse_u64_or_fail(tokens[1], "shards", line_no);
            if (spec.shards < 1 || spec.shards > 256)
                fail(line_no, "shards must be in [1, 256]");
        } else if (directive == "phase") {
            if (tokens.size() < 2) fail(line_no, "phase needs a name");
            PhaseSpec phase;
            phase.name = tokens[1];
            phase.deleter = ComponentSpec{"random", {}};
            phase.inserter = ComponentSpec{"random-attach", {}};
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                std::string key, value;
                if (!split_kv(tokens[i], key, value))
                    fail(line_no, "expected key=value, got '" + tokens[i] + "'");
                if (key == "steps") {
                    phase.steps = parse_u64_or_fail(value, "steps", line_no);
                } else if (key == "seed") {
                    phase.seed = parse_u64_or_fail(value, "phase seed", line_no);
                } else if (key == "burst") {
                    phase.burst = parse_u64_or_fail(value, "burst", line_no);
                    if (phase.burst == 0) fail(line_no, "burst must be >= 1");
                } else if (key == "insert_burst") {
                    phase.insert_burst =
                        parse_u64_or_fail(value, "insert_burst", line_no);
                } else if (key == "batch") {
                    phase.batch = parse_u64_or_fail(value, "batch", line_no);
                    if (phase.batch == 0) fail(line_no, "batch must be >= 1");
                } else if (key == "drop") {
                    double p = parse_double_or_fail(value, "drop", line_no);
                    if (p < 0.0 || p > 1.0)
                        fail(line_no, "drop must be in [0, 1], got '" + value + "'");
                    phase.drop = p;
                } else if (key == "latency") {
                    phase.latency = parse_u64_or_fail(value, "latency", line_no);
                } else if (key == "compact") {
                    phase.compact = parse_u64_or_fail(value, "compact", line_no);
                    if (phase.compact == 1)
                        fail(line_no, "compact factor must be 0 (off) or >= 2");
                } else if (key == "shards") {
                    std::size_t s = parse_u64_or_fail(value, "shards", line_no);
                    if (s < 1 || s > 256)
                        fail(line_no, "shards must be in [1, 256]");
                    phase.shards = s;
                } else if (key == "delete_fraction") {
                    if (value.find("..") != std::string::npos)
                        parse_ramp(value, phase, line_no);
                    else
                        phase.delete_fraction = parse_double_or_fail(value, "delete_fraction", line_no);
                } else if (key == "min_nodes") {
                    phase.min_nodes = parse_u64_or_fail(value, "min_nodes", line_no);
                } else if (key == "deleter") {
                    if (value.find(':') != std::string::npos ||
                        value.find(',') != std::string::npos) {
                        parse_deleter_mix(value, phase, line_no);
                    } else {
                        // Last deleter= wins in either direction: a plain
                        // kind replaces an earlier mixture too.
                        phase.deleter_mix.clear();
                        phase.deleter.kind = value;
                    }
                } else if (key == "inserter") {
                    phase.inserter.kind = value;
                } else if (key.rfind("deleter.", 0) == 0) {
                    phase.deleter.params[key.substr(8)] = value;
                } else if (key.rfind("inserter.", 0) == 0) {
                    phase.inserter.params[key.substr(9)] = value;
                } else if (key == "k") {
                    // Sugar: bare k applies to the inserter's attach count.
                    phase.inserter.params["k"] = value;
                } else {
                    fail(line_no, "unknown phase key '" + key + "'");
                }
            }
            if (phase.steps == 0) fail(line_no, "phase needs steps=N (N >= 1)");
            // Mixture members are kind-only; dotted params have no way to
            // name which member they configure.
            if (!phase.deleter_mix.empty() && !phase.deleter.params.empty())
                fail(line_no, "composite deleter takes no deleter.* params");
            spec.phases.push_back(std::move(phase));
        } else if (directive == "expect") {
            if (tokens.size() < 2) fail(line_no, "expect needs a metric");
            Expectation e;
            const std::string& metric = tokens[1];
            if (metric == "connected") {
                if (tokens.size() != 2) fail(line_no, "expect connected takes no value");
                e.kind = Expectation::Kind::connected;
            } else {
                // `expect metric <= value` / `expect metric >= value`.
                if (tokens.size() != 4) fail(line_no, "expect " + metric + " needs <op> <value>");
                const std::string& op = tokens[2];
                e.value = parse_double_or_fail(tokens[3], "expect " + metric, line_no);
                if (metric == "max_degree_ratio" && op == "<=") {
                    e.kind = Expectation::Kind::max_degree_ratio_le;
                } else if (metric == "expansion" && op == ">=") {
                    e.kind = Expectation::Kind::expansion_ge;
                } else if (metric == "lambda2" && op == ">=") {
                    e.kind = Expectation::Kind::lambda2_ge;
                } else if (metric == "stretch" && op == "<=") {
                    e.kind = Expectation::Kind::stretch_le;
                } else if (metric == "nodes" && op == ">=") {
                    e.kind = Expectation::Kind::nodes_ge;
                } else if (metric == "peak_slot_factor" && op == "<=") {
                    e.kind = Expectation::Kind::peak_slot_factor_le;
                } else {
                    fail(line_no, "unsupported expectation '" + metric + " " + op + "'");
                }
            }
            spec.expectations.push_back(e);
        } else {
            fail(line_no, "unknown directive '" + directive + "'");
        }
    }

    if (!saw_topology) throw std::runtime_error("spec: missing 'topology' line");
    if (!saw_healer) throw std::runtime_error("spec: missing 'healer' line");
    if (spec.phases.empty()) throw std::runtime_error("spec: needs at least one 'phase'");
    return spec;
}

ScenarioSpec ScenarioSpec::parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open spec file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

}  // namespace xheal::scenario
