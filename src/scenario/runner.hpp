// ScenarioRunner — the engine layer of the scenario subsystem. Owns the
// HealingSession, executes a spec's phased adversary schedule with
// per-step metric sampling, records the deterministic event trace, and can
// replay a recorded trace byte-for-byte from the same spec (trace.hpp).
//
// Randomness contract: one master Rng seeded with spec.seed drives topology
// construction (spec-built constructor) and every adversary decision, in
// schedule order; a phase carrying its own `seed=` reseeds the master
// stream at phase entry (grammar v2 — its decisions become independent of
// the schedule prefix); the healer's private randomness comes from its own
// seed (defaulting to spec.seed); metric probes draw from an independent
// stream so changing the sampling cadence never perturbs the event trace.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"
#include "spectral/probes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace xheal::scenario {

/// Build the session a spec describes: topology drawn from `rng` (which
/// must sit at the position construction expects — the master stream's
/// start), healer seeded by the spec. `prebuilt` (optional) replaces the
/// spec topology; `kappa`/`registry` receive the healer capability
/// handles. Shared by ScenarioRunner and trace_tools::TraceExecutor — the
/// byte-for-byte replay guarantee of recorded traces and shrunk
/// reproducers rests on every consumer building sessions identically.
core::HealingSession build_session(const ScenarioSpec& spec, util::Rng& rng,
                                   graph::Graph* prebuilt, std::size_t& kappa,
                                   const core::CloudRegistry*& registry);

/// Assemble a serializable trace from a spec plus a recorded event stream
/// and its hashes (shared by RunResult::to_trace and ExecResult::to_trace).
Trace make_trace(const ScenarioSpec& spec, std::vector<TraceEvent> events,
                 std::uint64_t trace_hash, std::uint64_t fingerprint);

class ProbePipeline;
class ShardEngine;

/// How run() schedules the metric probes of cadence samples.
///
/// Probe values are byte-identical across modes: both paths run the same
/// CSR-level probe code on byte-identical snapshot arrays, the lambda2
/// warm-start chain sees the same snapshot sequence, and the stretch rng
/// draws happen on the stepping thread in the same order either way (see
/// probe_pipeline.hpp for the full argument). Only the timing fields and
/// the rebuild/patch accounting differ.
enum class ProbeMode {
    /// async_pipeline when cadence sampling requests heavy probes
    /// (connected / lambda2 / stretch); inline_only otherwise.
    automatic,
    /// Every probe on the stepping thread, serialized with stepping.
    inline_only,
    /// Heavy probes on a dedicated worker thread; stepping overlaps them.
    async_pipeline,
};

/// One row of the sampled metric time series. Probe-gated metrics default
/// to NaN ("not sampled"); counters are always filled.
///
/// Sampling cadence contract: a sample is taken after every
/// `spec.sample_every`-th step, plus one *final* sample after the last step
/// (with the superset of probes any `expect` clause needs). sample_every = 0
/// means final-only: RunResult::samples holds exactly one entry, equal to
/// final_sample. A cadence point that coincides with the last step is
/// folded into the final sample rather than duplicated.
struct MetricSample {
    std::size_t step = 0;  ///< global step index (1-based: after this step)
    std::string phase;
    std::size_t nodes = 0;
    std::size_t edges = 0;
    std::size_t deletions = 0;   ///< cumulative
    std::size_t insertions = 0;  ///< cumulative
    /// Cumulative distributed-protocol billing (Theorem 5 accounting):
    /// messages sent, synchronous rounds, and loss-forced re-sends across
    /// all repairs so far. Always 0 for non-message-passing healers.
    std::size_t messages = 0;
    std::size_t rounds = 0;
    std::size_t retries = 0;
    std::size_t components = 0;  ///< probe: connected (0 = not sampled)
    std::size_t max_degree = 0;  ///< probe: degree
    double max_degree_ratio = std::nan("");   ///< probe: degree
    double mean_degree_ratio = std::nan("");  ///< probe: degree
    double worst_slack_ratio = std::nan("");  ///< probe: degree (Lemma 3 LHS)
    double expansion = std::nan("");          ///< probe: expansion
    double lambda2 = std::nan("");            ///< probe: lambda2
    double stretch = std::nan("");            ///< probe: stretch
    double probe_seconds = 0.0;               ///< wall time spent probing

    bool connected() const { return components == 1; }
};

/// Accounting for one schedule phase.
struct PhaseResult {
    std::string name;
    std::size_t steps = 0;
    std::size_t deletions = 0;
    std::size_t insertions = 0;
    std::size_t skipped = 0;  ///< events dropped (population floor / no pick)
    core::RepairReport totals;
    util::RunningStats rounds;          ///< per-deletion protocol rounds
    util::RunningStats victim_degree;   ///< black degree of victims at deletion
};

struct RunResult {
    std::vector<MetricSample> samples;  ///< cadence samples + final
    MetricSample final_sample;          ///< always present (last of samples)
    std::vector<PhaseResult> phases;
    std::vector<TraceEvent> events;
    std::uint64_t trace_hash = 0;
    std::uint64_t fingerprint = 0;  ///< final healed graph
    std::size_t steps_done = 0;
    /// Adversary+healer stepping wall time, metric probes excluded.
    double seconds = 0.0;
    /// Wall time spent in metric probes across all samples (cadence +
    /// final). Disjoint from `seconds`. Under ProbeMode::async_pipeline
    /// this is stepping-thread share plus worker share; the worker share
    /// overlaps stepping, so probe_seconds may exceed the sampling
    /// interval's wall time.
    double probe_seconds = 0.0;
    /// Stepping-thread seconds spent blocked waiting on the async probe
    /// worker (both pipeline slots in flight, or a phase/run-end drain).
    /// Always 0 when probing inline. Disjoint from both `seconds` and
    /// `probe_seconds`.
    double probe_stall_seconds = 0.0;
    /// Incremental probe accounting: full CSR snapshot rebuilds vs journal
    /// rows patched in place, summed over current + reference snapshots.
    std::uint64_t probe_rebuilds = 0;
    std::uint64_t probe_patched_events = 0;
    /// Id-compaction accounting (DESIGN.md decision 12): epochs closed, the
    /// largest slot address space ever held (max next_id, sampled per step
    /// before any compaction fires) and the largest live population. Their
    /// ratio is the `expect peak_slot_factor <=` bound — the O(live) memory
    /// guarantee of compacting runs.
    std::size_t compactions = 0;
    std::size_t peak_slot_count = 0;
    std::size_t live_high_water = 0;
    /// Largest effective shard-engine width any phase ran on (DESIGN.md
    /// decision 13). 1 = the serial path end to end; results are
    /// byte-identical at any value, so this is reporting metadata only.
    std::size_t shards = 1;
    /// Expectation failures ("metric: wanted X, got Y"); empty = PASS.
    std::vector<std::string> failures;

    bool passed() const { return failures.empty(); }
    double steps_per_sec() const {
        return seconds > 0.0 ? static_cast<double>(steps_done) / seconds : 0.0;
    }
    /// The run as a serializable trace (header + events + hashes).
    Trace to_trace(const ScenarioSpec& spec) const;
};

class ScenarioRunner {
public:
    /// Build everything from the spec: topology (drawn from the master
    /// Rng), healer, session.
    explicit ScenarioRunner(const ScenarioSpec& spec);

    /// Ported benches construct workloads with bespoke shared generators;
    /// this overload adopts a prebuilt initial graph and ignores
    /// spec.topology. The master Rng starts fresh at spec.seed.
    ScenarioRunner(const ScenarioSpec& spec, graph::Graph initial);

    /// Out-of-line: ShardEngine is only forward-declared here.
    ~ScenarioRunner();

    /// Select how run() schedules metric probes (default: automatic).
    /// Call before run(); probe values do not depend on the choice.
    void set_probe_mode(ProbeMode mode) { probe_mode_ = mode; }
    ProbeMode probe_mode() const { return probe_mode_; }

    /// Override the shard-engine width for every phase (DESIGN.md decision
    /// 13): 0 (the default) follows the spec (phase `shards=`, then the
    /// top-level `shards` line); any other value wins over both. Call
    /// before run(). Results are byte-identical at any width.
    void set_shards(std::size_t shards) { shards_override_ = shards; }

    /// Execute the full phase schedule. Call once per runner.
    RunResult run();

    /// Re-apply a recorded event stream instead of consulting the
    /// adversary strategies; phase/metric accounting works as in run().
    /// Throws std::runtime_error if an insert re-issues a different node id
    /// than the trace recorded (spec/trace mismatch). The caller compares
    /// the returned trace_hash and fingerprint against the trace's.
    RunResult replay(const Trace& trace);

    const ScenarioSpec& spec() const { return spec_; }
    const core::HealingSession& session() const { return session_; }
    /// Healer degree-overhead factor (1 for baselines).
    std::size_t kappa() const { return kappa_; }
    /// Cloud registry of xheal-family healers; nullptr otherwise.
    const core::CloudRegistry* registry() const { return registry_; }

private:
    struct Probes {
        bool connected = false;
        bool degree = false;
        bool expansion = false;
        bool lambda2 = false;
        bool stretch = false;
    };

    static Probes parse_probes(const ScenarioSpec& spec);

    /// Append a sample of the probe-selected metrics (plus `extra` probes,
    /// used for the final sample where expectations may need more).
    MetricSample take_sample(std::size_t step, const std::string& phase,
                             const Probes& probes);

    /// Async-mode counterpart of take_sample: appends a sample row with the
    /// cheap fields filled inline (counters, degree, expansion), drains the
    /// graph journals into the pipeline, and publishes the heavy probes
    /// (filled in by the collect callback later). Returns the
    /// stepping-thread seconds consumed, stall included — the caller's
    /// deduction from the timed loop.
    double sample_async(ProbePipeline& pipeline, RunResult& result, std::size_t step,
                        const std::string& phase, const Probes& probes);

    /// The probes that always run on the stepping thread (degree ratios,
    /// Lemma 3 slack, expansion): they read the live graph and reference
    /// directly and are shared by the inline and async sampling paths.
    void probe_cheap(MetricSample& sample, const Probes& probes);

    /// Probes the final sample needs beyond the spec's list: one per
    /// expectation kind.
    Probes final_probes() const;

    void evaluate_expectations(RunResult& result) const;

    ScenarioSpec spec_;
    util::Rng rng_;        ///< master: topology + adversary schedule
    util::Rng probe_rng_;  ///< independent: metric sampling only
    /// Sparse probe layer (CSR snapshot + Lanczos/BFS scratch), reused
    /// across samples so steady-state probing does not allocate.
    spectral::ProbeEngine probe_engine_;
    double probe_seconds_ = 0.0;  ///< accumulated across take_sample calls
    ProbeMode probe_mode_ = ProbeMode::automatic;
    /// CLI/programmatic shard-width override (0 = follow the spec).
    std::size_t shards_override_ = 0;
    /// Live shard engine while a phase runs with an effective width > 1;
    /// null on the serial path (the engine then never exists at all).
    std::unique_ptr<ShardEngine> engine_;
    std::size_t kappa_ = 1;
    const core::CloudRegistry* registry_ = nullptr;
    core::HealingSession session_;
    bool ran_ = false;
};

}  // namespace xheal::scenario
