#include "scenario/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "baseline/baselines.hpp"
#include "core/distributed_xheal.hpp"
#include "core/fault_injection.hpp"
#include "core/xheal_healer.hpp"
#include "workload/generators.hpp"

namespace xheal::scenario {

namespace {

[[noreturn]] void unknown(const std::string& what, const std::string& kind) {
    throw std::runtime_error("unknown " + what + " kind: '" + kind + "'");
}

core::XhealConfig xheal_config(const ComponentSpec& spec, std::uint64_t default_seed) {
    core::XhealConfig config;
    config.d = spec.get_u64("d", 4);
    config.seed = spec.get_u64("seed", default_seed);
    config.rebuild_on_half_loss = spec.get_bool("rebuild", true);
    return config;
}

}  // namespace

graph::Graph make_topology(const ComponentSpec& spec, util::Rng& rng) {
    const std::string& kind = spec.kind;
    if (kind == "path") return workload::make_path(spec.get_u64("n", 16));
    if (kind == "cycle") return workload::make_cycle(spec.get_u64("n", 16));
    if (kind == "star") return workload::make_star(spec.get_u64("leaves", 16));
    if (kind == "complete") return workload::make_complete(spec.get_u64("n", 8));
    if (kind == "grid")
        return workload::make_grid(spec.get_u64("rows", 4), spec.get_u64("cols", 4));
    if (kind == "torus")
        return workload::make_torus(spec.get_u64("rows", 4), spec.get_u64("cols", 4));
    if (kind == "hypercube") return workload::make_hypercube(spec.get_u64("dim", 4));
    if (kind == "binary-tree") return workload::make_binary_tree(spec.get_u64("n", 15));
    if (kind == "erdos-renyi")
        return workload::make_erdos_renyi(spec.get_u64("n", 64), spec.get_double("p", 0.1),
                                          rng);
    if (kind == "random-regular")
        return workload::make_random_regular(spec.get_u64("n", 64), spec.get_u64("d", 4),
                                             rng);
    if (kind == "barabasi-albert")
        return workload::make_barabasi_albert(spec.get_u64("n", 64), spec.get_u64("m", 2),
                                              rng);
    if (kind == "dumbbell") return workload::make_dumbbell(spec.get_u64("clique", 8));
    if (kind == "petersen") return workload::make_petersen();
    if (kind == "hgraph")
        return workload::make_hgraph_graph(spec.get_u64("n", 48), spec.get_u64("d", 3), rng);
    unknown("topology", kind);
}

std::vector<std::string> topology_names() {
    return {"path",        "cycle",         "star",          "complete",
            "grid",        "torus",         "hypercube",     "binary-tree",
            "erdos-renyi", "random-regular", "barabasi-albert", "dumbbell",
            "petersen",    "hgraph"};
}

HealerHandle make_healer(const ComponentSpec& spec, std::uint64_t default_seed) {
    const std::string& kind = spec.kind;
    HealerHandle handle;
    if (kind == "xheal") {
        auto healer = std::make_unique<core::XhealHealer>(xheal_config(spec, default_seed));
        handle.registry = &healer->registry();
        handle.kappa = healer->kappa();
        handle.healer = std::move(healer);
    } else if (kind == "xheal-dist") {
        // Base fault model (`drop=` / `latency=` / `retries=` healer
        // params); phase-level drop=/latency= keys override per phase.
        core::DistFaultConfig faults;
        faults.drop = spec.get_double("drop", 0.0);
        faults.latency = spec.get_u64("latency", 0);
        faults.retries = spec.get_u64("retries", 8);
        if (faults.drop < 0.0 || faults.drop > 1.0)
            throw std::runtime_error("xheal-dist: drop must be in [0, 1]");
        auto healer = std::make_unique<core::DistributedXheal>(
            xheal_config(spec, default_seed), faults);
        handle.registry = &healer->registry();
        handle.kappa = healer->kappa();
        handle.healer = std::move(healer);
    } else if (kind == "no-heal") {
        handle.healer = std::make_unique<baseline::NoHealHealer>();
    } else if (kind == "line") {
        handle.healer = std::make_unique<baseline::LineHealer>();
    } else if (kind == "cycle") {
        handle.healer = std::make_unique<baseline::CycleHealer>();
    } else if (kind == "star") {
        handle.healer = std::make_unique<baseline::StarHealer>();
    } else if (kind == "forgiving-tree") {
        handle.healer = std::make_unique<baseline::ForgivingTreeStyleHealer>();
    } else if (kind == "random-match") {
        handle.healer = std::make_unique<baseline::RandomMatchHealer>(
            spec.get_u64("k", 3), spec.get_u64("seed", default_seed));
    } else if (kind == "faulty") {
        // Test-only fault injection for the trace-forensics layer: wraps a
        // *stateless* baseline healer and skips its repair every
        // drop_every-th deletion. Registered so shrunk reproducers can name
        // the broken healer in a standalone .scn. Whitelist, not blacklist:
        // skipping a stateful healer's on_delete desynchronizes its
        // bookkeeping from the graph (fault_injection.hpp), so any future
        // healer kind must opt in here explicitly.
        static const std::vector<std::string> stateless = {
            "no-heal", "line", "cycle", "star", "forgiving-tree", "random-match"};
        std::string inner_kind = spec.has("inner") ? spec.params.at("inner") : "cycle";
        if (std::find(stateless.begin(), stateless.end(), inner_kind) ==
            stateless.end()) {
            std::string list;
            for (const auto& s : stateless) list += (list.empty() ? "" : " ") + s;
            throw std::runtime_error("faulty healer: inner must be a stateless baseline (" +
                                     list + "), got '" + inner_kind + "'");
        }
        // Forward inner.* params (e.g. inner.k for random-match).
        ComponentSpec inner_spec{inner_kind, {}};
        for (const auto& [key, value] : spec.params)
            if (key.rfind("inner.", 0) == 0) inner_spec.params[key.substr(6)] = value;
        HealerHandle inner = make_healer(inner_spec, default_seed);
        handle.kappa = inner.kappa;
        handle.healer = std::make_unique<core::FaultInjectingHealer>(
            std::move(inner.healer), spec.get_u64("drop_every", 3));
    } else {
        unknown("healer", kind);
    }
    return handle;
}

std::vector<std::string> healer_names() {
    return {"xheal", "xheal-dist", "no-heal",      "line",
            "cycle", "star",       "forgiving-tree", "random-match",
            "faulty"};
}

std::unique_ptr<adversary::DeletionStrategy> make_deleter(
    const ComponentSpec& spec, const core::CloudRegistry* registry) {
    const std::string& kind = spec.kind;
    if (kind == "random") return std::make_unique<adversary::RandomDeletion>();
    if (kind == "max-degree") return std::make_unique<adversary::MaxDegreeDeletion>();
    if (kind == "min-degree") return std::make_unique<adversary::MinDegreeDeletion>();
    if (kind == "cut-point") return std::make_unique<adversary::CutPointDeletion>();
    if (kind == "colored-degree") return std::make_unique<adversary::ColoredDegreeDeletion>();
    if (kind == "bridge-hunter") {
        if (registry == nullptr)
            throw std::runtime_error(
                "bridge-hunter deleter requires an xheal-family healer (no cloud registry)");
        return std::make_unique<adversary::BridgeHunterDeletion>(registry);
    }
    unknown("deleter", kind);
}

std::vector<std::string> deleter_names() {
    return {"random",        "max-degree",   "min-degree",
            "cut-point",     "colored-degree", "bridge-hunter"};
}

std::unique_ptr<adversary::DeletionStrategy> make_phase_deleter(
    const PhaseSpec& phase, const core::CloudRegistry* registry) {
    if (phase.deleter_mix.empty()) return make_deleter(phase.deleter, registry);
    std::vector<adversary::CompositeDeletion::Member> members;
    for (const WeightedDeleter& w : phase.deleter_mix)
        members.push_back({make_deleter(w.component, registry), w.weight});
    return std::make_unique<adversary::CompositeDeletion>(std::move(members));
}

std::unique_ptr<adversary::InsertionStrategy> make_inserter(const ComponentSpec& spec) {
    const std::string& kind = spec.kind;
    std::size_t k = spec.get_u64("k", 3);
    if (kind == "random-attach") return std::make_unique<adversary::RandomAttach>(k);
    if (kind == "preferential-attach")
        return std::make_unique<adversary::PreferentialAttach>(k);
    unknown("inserter", kind);
}

std::vector<std::string> inserter_names() {
    return {"random-attach", "preferential-attach"};
}

}  // namespace xheal::scenario
