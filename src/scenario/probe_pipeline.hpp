// ProbePipeline — the off-thread half of scenario metric sampling.
//
// The stepping thread publishes a frozen CSR snapshot of the healed graph
// at each cadence point and keeps stepping; a dedicated probe worker runs
// the heavy probes (component BFS, lambda2 Lanczos/Jacobi, stretch BFS
// sweeps) against the snapshot and hands the values back through a collect
// callback invoked on the stepping thread. Cheap per-sample fields
// (counters, degree ratios, expansion) never enter the pipeline — the
// runner fills them inline at the quiescent cadence point.
//
// Determinism contract: off-thread probing produces byte-identical
// MetricSample values to inline probing.
//   * Snapshots are synced (patched/rebuilt) on the stepping thread before
//     publish, so the worker only ever reads frozen arrays that are
//     byte-identical to what an inline probe would have built
//     (csr_patch_test's patch == build property).
//   * The worker owns its own ProbeEngine, and jobs are consumed strictly
//     in publish order, so the lambda2 warm-start chain sees the same
//     snapshot sequence as the inline engine would.
//   * The stretch probe's rng draws happen on the stepping thread at
//     publish (ProbeEngine::sample_stretch_sources), in the same order
//     inline sampling would draw them; the worker only runs the BFS half.
//   * Probes never touch the master rng at all, so the event trace and
//     fingerprint cannot depend on probe mode by construction.
//
// Double-buffer protocol: two slots, each owning an IncrementalSnapshot
// pair (current + reference) and a ProbeJob, cycled round-robin by both
// threads. A slot's lifecycle is kFree -> kReady (published, worker may
// read) -> kDone (results written, stepping thread may collect) -> kFree.
// The state field is a std::atomic<int> used with acquire/release ordering
// and C++20 atomic wait/notify: the release store of kReady publishes the
// synced CSR arrays and job inputs to the worker; the release store of
// kDone publishes the probe outputs back. Shutdown is encoded as a state
// value (kStop) because atomic::wait only wakes on a value change.
//
// With two slots the stepping thread blocks only when the worker is a full
// two cadence windows behind; that wait is metered as stall_seconds and
// excluded from both throughput and probe billing. Probe results therefore
// lag the stepping frontier by at most one cadence window, and drain() at
// phase end / run end is the only other join point.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/probes.hpp"
#include "util/rng.hpp"

namespace xheal::scenario {

/// One off-thread probe batch: inputs written by the stepping thread before
/// publish, outputs written by the worker before completion.
struct ProbeJob {
    // Inputs (stepping thread, slot kFree).
    std::size_t sample_index = 0;  ///< row in RunResult::samples to fill
    bool want_components = false;
    bool want_lambda2 = false;
    bool want_stretch = false;
    std::vector<graph::NodeId> stretch_sources;  ///< pre-drawn on publish
    // Outputs (worker, slot kReady).
    std::size_t components = 0;
    double lambda2 = std::nan("");
    double stretch = std::nan("");
    double worker_seconds = 0.0;  ///< wall time the worker spent probing
    std::exception_ptr error;     ///< rethrown on the stepping thread
};

class ProbePipeline {
public:
    /// Invoked on the stepping thread (from publish()/drain()) once per
    /// collected job, in publish order.
    using Collect = std::function<void(const ProbeJob&)>;

    explicit ProbePipeline(Collect collect);
    ~ProbePipeline();

    ProbePipeline(const ProbePipeline&) = delete;
    ProbePipeline& operator=(const ProbePipeline&) = delete;

    /// Record the structural delta since the previous cadence point into
    /// both slots' snapshots. Call exactly once per cadence point, before
    /// publish(); the caller clears the journals afterwards. Safe while the
    /// worker reads a slot's CSR — note() only appends to the pending delta.
    void note(const graph::Graph& g, const std::vector<graph::NodeId>& dirty,
              bool overflowed, const graph::Graph& ref,
              const std::vector<graph::NodeId>& ref_dirty, bool ref_overflowed);

    /// Freeze g (and, for stretch, the reference) into the next slot, draw
    /// the stretch sources from `probe_rng`, and hand the batch to the
    /// worker. Blocks only when both slots are in flight; returns the
    /// seconds spent in that wait (also accumulated into stall_seconds()).
    /// May invoke the collect callback for a previously finished job.
    double publish(const graph::Graph& g, const graph::Graph& ref,
                   std::size_t sample_index, bool want_components,
                   bool want_lambda2, bool want_stretch,
                   std::size_t stretch_budget, util::Rng& probe_rng);

    /// Join point (phase end / run end): collect every in-flight job.
    /// Returns the seconds spent waiting on the worker (also accumulated
    /// into stall_seconds()).
    double drain();

    /// Id-compaction support. Requires a drained pipeline (no job in
    /// flight): both slots' snapshots hold retired ids and are invalidated,
    /// and the worker engine's warm-start vector is permuted so the next
    /// lambda2 solve still warm-starts. Touching engine_ from the stepping
    /// thread is safe here — drain()'s acquire of each slot's kDone
    /// synchronizes with the worker's release after its last engine use.
    void on_compact(const std::vector<graph::NodeId>& old_to_new) {
        for (Slot& slot : slots_) {
            XHEAL_EXPECTS(slot.state.load(std::memory_order_acquire) == kFree);
            slot.snap.invalidate();
            slot.ref_snap.invalidate();
        }
        engine_.on_compact(old_to_new);
    }

    /// Total stepping-thread seconds spent blocked on the worker.
    double stall_seconds() const { return stall_seconds_; }

    /// Snapshot accounting over both slots (current + reference), same
    /// meaning as ProbeEngine::probe_rebuilds/probe_patched_events.
    std::uint64_t rebuilds() const;
    std::uint64_t patched_events() const;

private:
    // Slot states; kStop is stored into the worker's next slot at shutdown.
    static constexpr int kFree = 0;
    static constexpr int kReady = 1;
    static constexpr int kDone = 2;
    static constexpr int kStop = 3;

    struct Slot {
        spectral::IncrementalSnapshot snap;
        spectral::IncrementalSnapshot ref_snap;
        ProbeJob job;
        std::atomic<int> state{kFree};
    };

    void worker_loop();
    /// Run one job against its slot's frozen snapshots (worker thread).
    void run_job(Slot& slot);
    /// Invoke the collect callback and free the slot (stepping thread;
    /// slot must be kDone). Rethrows a worker exception.
    void collect_slot(Slot& slot);

    Slot slots_[2];
    std::size_t next_publish_ = 0;  ///< oldest slot; publish + collect order
    Collect collect_;
    double stall_seconds_ = 0.0;
    /// Worker-owned probe engine: scratch buffers plus the lambda2
    /// warm-start chain, fed jobs strictly in publish order.
    spectral::ProbeEngine engine_;
    std::thread worker_;
};

}  // namespace xheal::scenario
