// Graph export helpers: Graphviz DOT (cloud edges colored) and a plain
// edge list, for inspecting healed topologies outside the library.
#pragma once

#include <iosfwd>

#include "graph/graph.hpp"

namespace xheal::graph {

/// Graphviz DOT output. Black-claim-only edges render solid black; edges
/// claimed by clouds render colored (a deterministic palette keyed by the
/// lowest claiming color id) with the color ids in the edge label.
void write_dot(std::ostream& out, const Graph& g, const char* name = "xheal");

/// One "u v [black] [c1,c2,...]" line per edge, ascending.
void write_edge_list(std::ostream& out, const Graph& g);

}  // namespace xheal::graph
