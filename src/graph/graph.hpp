// Dynamic undirected simple graph with multi-claim colored edges.
//
// Xheal recolors an existing black (adversary) edge rather than creating a
// multi-edge, and expander clouds later drop their edges when rebuilt. To
// make both safe, each edge carries a *set of claims*:
//
//   - a black claim: the edge belongs to the original/inserted graph G', and
//   - zero or more color claims: one per expander cloud using the edge.
//
// The edge physically exists while at least one claim remains. Dropping a
// cloud's claim on an edge that is also black reverts it to a black edge
// instead of deleting it, so every G' edge between two surviving nodes is
// always present in the healed graph (DESIGN.md decision 1).
//
// Node ids are allocated monotonically and never reused, so the healed graph
// G_t and the insert-only reference graph G'_t share one id space.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "util/expects.hpp"

namespace xheal::graph {

/// Claim set of one edge. `colors` is a small sorted vector used as a set.
struct EdgeClaims {
    bool black = false;
    std::vector<ColorId> colors;

    bool empty() const { return !black && colors.empty(); }
    bool has_color(ColorId c) const {
        return std::binary_search(colors.begin(), colors.end(), c);
    }
    bool colored() const { return !colors.empty(); }
};

class Graph {
public:
    Graph() = default;

    // ----- nodes -----

    /// Allocate and insert a fresh node; returns its id.
    NodeId add_node();

    /// Insert a node with a caller-chosen id (used to mirror ids between G
    /// and G'). The id must not be present.
    void add_node_with_id(NodeId v);

    /// Remove a node and all incident edges (all claims). Requires presence.
    void remove_node(NodeId v);

    bool has_node(NodeId v) const { return adjacency_.contains(v); }
    std::size_t node_count() const { return adjacency_.size(); }

    /// All node ids in ascending order (deterministic iteration).
    std::vector<NodeId> nodes_sorted() const;

    // ----- edges / claims -----

    /// Add the black claim on (u, v). Idempotent. u != v, both present.
    void add_black_edge(NodeId u, NodeId v);

    /// Add color claim c on (u, v). Idempotent. u != v, both present,
    /// c != invalid_color.
    void add_color_claim(NodeId u, NodeId v, ColorId c);

    /// Remove color claim c from (u, v) if present; removes the edge when no
    /// claims remain. Returns true if the claim existed.
    bool remove_color_claim(NodeId u, NodeId v, ColorId c);

    /// Remove the black claim from (u, v) if present; removes the edge when
    /// no claims remain. Returns true if the claim existed. (The healer never
    /// calls this; provided for tests and baselines.)
    bool remove_black_claim(NodeId u, NodeId v);

    bool has_edge(NodeId u, NodeId v) const;
    bool has_black_claim(NodeId u, NodeId v) const;
    bool has_color_claim(NodeId u, NodeId v, ColorId c) const;
    /// True if the edge exists and some cloud claims it.
    bool is_colored_edge(NodeId u, NodeId v) const;

    /// Claims of an existing edge. Requires has_edge(u, v).
    const EdgeClaims& claims(NodeId u, NodeId v) const;

    std::size_t degree(NodeId v) const;
    std::size_t edge_count() const { return edge_count_; }

    /// Neighbors of v in ascending id order (deterministic iteration).
    std::vector<NodeId> neighbors_sorted(NodeId v) const;

    /// Raw adjacency row of v (unordered). Requires presence.
    const std::unordered_map<NodeId, EdgeClaims>& adjacency(NodeId v) const;

    /// Visit every edge once as (u, v, claims) with u < v, in ascending
    /// (u, v) order.
    template <typename F>
    void for_each_edge(F&& f) const {
        for (NodeId u : nodes_sorted()) {
            for (NodeId v : neighbors_sorted(u)) {
                if (u < v) f(u, v, claims(u, v));
            }
        }
    }

    /// Sum of degrees of the given nodes (the paper's vol(S)).
    template <typename Range>
    std::size_t volume(const Range& nodes) const {
        std::size_t vol = 0;
        for (NodeId v : nodes) vol += degree(v);
        return vol;
    }

    std::size_t max_degree() const;
    std::size_t min_degree() const;

    /// Next id that add_node() would return (ids below are used or retired).
    NodeId next_id() const { return next_id_; }

private:
    EdgeClaims& mutable_claims(NodeId u, NodeId v);
    void erase_edge(NodeId u, NodeId v);

    std::unordered_map<NodeId, std::unordered_map<NodeId, EdgeClaims>> adjacency_;
    std::size_t edge_count_ = 0;
    NodeId next_id_ = 0;
};

}  // namespace xheal::graph
