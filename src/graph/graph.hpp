// Dynamic undirected simple graph with multi-claim colored edges.
//
// Xheal recolors an existing black (adversary) edge rather than creating a
// multi-edge, and expander clouds later drop their edges when rebuilt. To
// make both safe, each edge carries a *set of claims*:
//
//   - a black claim: the edge belongs to the original/inserted graph G', and
//   - zero or more color claims: one per expander cloud using the edge.
//
// The edge physically exists while at least one claim remains. Dropping a
// cloud's claim on an edge that is also black reverts it to a black edge
// instead of deleting it, so every G' edge between two surviving nodes is
// always present in the healed graph (DESIGN.md decision 1).
//
// Storage is a slot-indexed flat adjacency (DESIGN.md decision 2): node ids
// are allocated monotonically, so a dense vector of slots indexed directly
// by NodeId is append-only; deletion flips a tombstone bit. Each live slot
// holds its adjacency row as a vector sorted by neighbor id, which makes
// every traversal a linear scan over contiguous memory and makes
// deterministic (ascending) iteration free. Traversal goes through the
// allocation-free NodesView / NeighborsView ranges.
//
// Within one *epoch* ids are never reused — a tombstoned slot stays dead.
// compact() (DESIGN.md decision 12) closes an epoch: live ids are remapped
// densely onto [0, node_count()) in ascending order, tombstones and their
// slot storage are reclaimed, and the next epoch allocates from the dense
// top. Because the map is order-preserving, every sorted structure (rows,
// claim mirrors, member lists) stays sorted under an in-place rewrite.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/expects.hpp"

namespace xheal::graph {

/// Sorted set of cloud colors claiming one edge, with inline storage for
/// the common case: nearly every edge carries at most a few claims, so the
/// repair hot path's claim churn (splice out, splice in) never touches the
/// heap. Spills to a heap vector past `inline_capacity` and stays there
/// (the vector keeps its capacity), so repeated churn stays allocation-free
/// either way.
class ColorSet {
public:
    using value_type = ColorId;
    using const_iterator = const ColorId*;

    bool contains(ColorId c) const { return std::binary_search(begin(), end(), c); }

    /// Insert keeping ascending order. Returns false if already present.
    bool insert(ColorId c) {
        ColorId* d = data();
        ColorId* pos = std::lower_bound(d, d + size_, c);
        if (pos != d + size_ && *pos == c) return false;
        std::size_t at = static_cast<std::size_t>(pos - d);
        if (!heap_ && size_ == inline_capacity) {
            overflow_.assign(inline_.begin(), inline_.end());
            heap_ = true;
        }
        if (heap_) {
            overflow_.insert(overflow_.begin() + static_cast<std::ptrdiff_t>(at), c);
        } else {
            for (std::size_t i = size_; i > at; --i) inline_[i] = inline_[i - 1];
            inline_[at] = c;
        }
        ++size_;
        return true;
    }

    /// Erase if present. Returns false if absent.
    bool erase(ColorId c) {
        ColorId* d = data();
        ColorId* pos = std::lower_bound(d, d + size_, c);
        if (pos == d + size_ || *pos != c) return false;
        std::size_t at = static_cast<std::size_t>(pos - d);
        if (heap_) {
            overflow_.erase(overflow_.begin() + static_cast<std::ptrdiff_t>(at));
        } else {
            for (std::size_t i = at + 1; i < size_; ++i) inline_[i - 1] = inline_[i];
        }
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const_iterator begin() const { return data(); }
    const_iterator end() const { return data() + size_; }
    ColorId front() const { return data()[0]; }
    ColorId operator[](std::size_t i) const { return data()[i]; }

    friend bool operator==(const ColorSet& a, const ColorSet& b) {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    bool operator==(const std::vector<ColorId>& v) const {
        return std::equal(begin(), end(), v.begin(), v.end());
    }

private:
    static constexpr std::size_t inline_capacity = 3;

    const ColorId* data() const { return heap_ ? overflow_.data() : inline_.data(); }
    ColorId* data() { return heap_ ? overflow_.data() : inline_.data(); }

    std::array<ColorId, inline_capacity> inline_{};
    std::vector<ColorId> overflow_;
    std::uint32_t size_ = 0;
    bool heap_ = false;
};

/// Claim set of one edge. `colors` is a small sorted set (inline storage).
struct EdgeClaims {
    bool black = false;
    ColorSet colors;

    bool empty() const { return !black && colors.empty(); }
    bool has_color(ColorId c) const { return colors.contains(c); }
    bool colored() const { return !colors.empty(); }
};

/// One adjacency-row entry: neighbor id plus the claims of that edge.
using NeighborEntry = std::pair<NodeId, EdgeClaims>;

class Graph {
    /// empty: id not yet handed out (gap from add_node_with_id);
    /// alive: live node; dead: tombstone — the id is retired forever.
    enum class SlotState : std::uint8_t { empty, alive, dead };

    struct Slot {
        std::vector<NeighborEntry> row;  // sorted by neighbor id
        SlotState state = SlotState::empty;
    };

public:
    Graph() = default;

    // ----- allocation-free traversal views -----

    /// Forward range over the live node ids in ascending order. Iteration
    /// walks the slot vector and skips tombstones; no allocation.
    class NodesView {
    public:
        class iterator {
        public:
            using value_type = NodeId;
            using difference_type = std::ptrdiff_t;
            using iterator_category = std::forward_iterator_tag;
            using pointer = const NodeId*;
            using reference = NodeId;

            iterator() = default;
            iterator(const Slot* slots, NodeId id, NodeId end)
                : slots_(slots), id_(id), end_(end) {
                skip_dead();
            }

            NodeId operator*() const { return id_; }
            iterator& operator++() {
                ++id_;
                skip_dead();
                return *this;
            }
            iterator operator++(int) {
                iterator copy = *this;
                ++*this;
                return copy;
            }
            bool operator==(const iterator& other) const { return id_ == other.id_; }
            bool operator!=(const iterator& other) const { return id_ != other.id_; }

        private:
            void skip_dead() {
                while (id_ < end_ && slots_[id_].state != SlotState::alive) ++id_;
            }

            const Slot* slots_ = nullptr;
            NodeId id_ = 0;
            NodeId end_ = 0;
        };

        iterator begin() const { return {slots_, 0, end_}; }
        iterator end() const { return {slots_, end_, end_}; }
        std::size_t size() const { return live_; }
        bool empty() const { return live_ == 0; }
        /// Smallest live node id. Requires a non-empty graph.
        NodeId front() const {
            XHEAL_EXPECTS(live_ > 0);
            return *begin();
        }

    private:
        friend class Graph;
        NodesView(const Slot* slots, NodeId end, std::size_t live)
            : slots_(slots), end_(end), live_(live) {}

        const Slot* slots_;
        NodeId end_;
        std::size_t live_;
    };

    /// Random-access range over the neighbor ids of one node, ascending.
    /// A projection of the sorted adjacency row; no allocation.
    class NeighborsView {
    public:
        class iterator {
        public:
            using value_type = NodeId;
            using difference_type = std::ptrdiff_t;
            using iterator_category = std::random_access_iterator_tag;
            using pointer = const NodeId*;
            using reference = NodeId;

            iterator() = default;
            explicit iterator(const NeighborEntry* p) : p_(p) {}

            NodeId operator*() const { return p_->first; }
            NodeId operator[](difference_type d) const { return p_[d].first; }
            iterator& operator++() {
                ++p_;
                return *this;
            }
            iterator operator++(int) {
                iterator copy = *this;
                ++p_;
                return copy;
            }
            iterator& operator--() {
                --p_;
                return *this;
            }
            iterator operator--(int) {
                iterator copy = *this;
                --p_;
                return copy;
            }
            iterator& operator+=(difference_type d) {
                p_ += d;
                return *this;
            }
            iterator& operator-=(difference_type d) {
                p_ -= d;
                return *this;
            }
            iterator operator+(difference_type d) const { return iterator(p_ + d); }
            friend iterator operator+(difference_type d, const iterator& it) {
                return iterator(it.p_ + d);
            }
            iterator operator-(difference_type d) const { return iterator(p_ - d); }
            difference_type operator-(const iterator& other) const { return p_ - other.p_; }
            bool operator==(const iterator& other) const = default;
            auto operator<=>(const iterator& other) const = default;

        private:
            const NeighborEntry* p_ = nullptr;
        };

        iterator begin() const { return iterator(row_.data()); }
        iterator end() const { return iterator(row_.data() + row_.size()); }
        std::size_t size() const { return row_.size(); }
        bool empty() const { return row_.empty(); }
        NodeId operator[](std::size_t i) const { return row_[i].first; }
        NodeId front() const { return row_.front().first; }
        NodeId back() const { return row_.back().first; }

    private:
        friend class Graph;
        explicit NeighborsView(std::span<const NeighborEntry> row) : row_(row) {}

        std::span<const NeighborEntry> row_;
    };

    /// Live node ids, ascending. O(1), allocation-free.
    NodesView nodes() const {
        return NodesView(slots_.data(), next_id_, live_nodes_);
    }

    /// Neighbor ids of v, ascending. O(1), allocation-free. Requires
    /// presence.
    NeighborsView neighbors(NodeId v) const { return NeighborsView(row(v)); }

    /// The sorted adjacency row of v as (neighbor, claims) entries.
    /// O(1), allocation-free. Requires presence.
    std::span<const NeighborEntry> row(NodeId v) const {
        XHEAL_EXPECTS(has_node(v));
        return slots_[v].row;
    }

    // ----- nodes -----

    /// Allocate and insert a fresh node; returns its id.
    NodeId add_node();

    /// Insert a node with a caller-chosen id (used to mirror ids between G
    /// and G'). The id must not be present and must not have been retired:
    /// within an epoch ids are never reused, so a tombstoned slot stays
    /// dead until the next compact().
    void add_node_with_id(NodeId v);

    /// Remove a node and all incident edges (all claims). Requires presence.
    /// The slot becomes a tombstone; the id is not handed out again until a
    /// compaction epoch reclaims it.
    void remove_node(NodeId v);

    bool has_node(NodeId v) const {
        return v < slots_.size() && slots_[v].state == SlotState::alive;
    }
    std::size_t node_count() const { return live_nodes_; }

    // ----- id compaction (DESIGN.md decision 12) -----

    /// Dead/empty slots currently addressable, i.e. next_id() minus the
    /// live population: the id-space waste a compaction would reclaim.
    std::size_t retired_slots() const { return next_id_ - live_nodes_; }

    /// Close the current id epoch: build the ascending dense old->new map
    /// of the live ids (dense id = rank of the old id among live ids) into
    /// `old_to_new` — sized to the pre-compaction next_id(), invalid_node
    /// for dead/empty ids — and apply it via apply_id_map(). The caller's
    /// vector is reused scratch, so steady-state compaction allocates
    /// nothing once capacities have grown.
    void compact(std::vector<NodeId>& old_to_new);

    /// Apply an externally built compaction map: must be exactly the
    /// ascending dense map of THIS graph's live id set (mirrored graphs —
    /// G and a purged G' — share one map). Rewrites every row id in place
    /// (order-preserving, so rows stay sorted), slides live slots down to
    /// their dense position, reclaims tombstoned slot storage and resets
    /// next_id() to node_count(). Degrees are unchanged. An enabled
    /// structure journal is cleared and flagged overflowed: renumbering
    /// invalidates incremental snapshots, forcing consumers to rebuild.
    void apply_id_map(const std::vector<NodeId>& old_to_new);

    // ----- edges / claims -----

    /// Add the black claim on (u, v). Idempotent. u != v, both present.
    void add_black_edge(NodeId u, NodeId v);

    /// Add color claim c on (u, v). Idempotent. u != v, both present,
    /// c != invalid_color.
    void add_color_claim(NodeId u, NodeId v, ColorId c);

    /// Remove color claim c from (u, v) if present; removes the edge when no
    /// claims remain. Returns true if the claim existed.
    bool remove_color_claim(NodeId u, NodeId v, ColorId c);

    /// Remove the black claim from (u, v) if present; removes the edge when
    /// no claims remain. Returns true if the claim existed. (The healer never
    /// calls this; provided for tests and baselines.)
    bool remove_black_claim(NodeId u, NodeId v);

    bool has_edge(NodeId u, NodeId v) const;
    bool has_black_claim(NodeId u, NodeId v) const;
    bool has_color_claim(NodeId u, NodeId v, ColorId c) const;
    /// True if the edge exists and some cloud claims it.
    bool is_colored_edge(NodeId u, NodeId v) const;

    /// Claims of an existing edge. Requires has_edge(u, v).
    const EdgeClaims& claims(NodeId u, NodeId v) const;

    std::size_t degree(NodeId v) const {
        XHEAL_EXPECTS(has_node(v));
        return slots_[v].row.size();
    }
    std::size_t edge_count() const { return edge_count_; }

    /// Deprecated alias of row(v); the old hash-of-hashes accessor. The
    /// entries are (neighbor, claims) pairs, now in ascending neighbor
    /// order.
    std::span<const NeighborEntry> adjacency(NodeId v) const { return row(v); }

    /// Visit every edge once as (u, v, claims) with u < v, in ascending
    /// (u, v) order. Walks the rows directly; no allocation.
    template <typename F>
    void for_each_edge(F&& f) const {
        for (NodeId u = 0; u < next_id_; ++u) {
            if (slots_[u].state != SlotState::alive) continue;
            for (const NeighborEntry& e : slots_[u].row) {
                if (e.first > u) f(u, e.first, e.second);
            }
        }
    }

    /// Sum of degrees of the given nodes (the paper's vol(S)).
    template <typename Range>
    std::size_t volume(const Range& nodes) const {
        std::size_t vol = 0;
        for (NodeId v : nodes) vol += degree(v);
        return vol;
    }

    /// Largest / smallest degree over live nodes, maintained incrementally
    /// through a degree histogram: amortized O(1), never a full scan.
    std::size_t max_degree() const;
    std::size_t min_degree() const;

    /// Next id that add_node() would return (ids below are used or retired).
    NodeId next_id() const { return next_id_; }

    // ----- structure journal -----
    //
    // Opt-in journal of structure-touched node ids for incremental snapshot
    // consumers (the spectral CSR patch path). While enabled (limit > 0),
    // every mutation that changes a node's adjacency row or liveness appends
    // the touched ids; past `limit` entries the journal stops recording and
    // raises the overflow flag, telling consumers to fall back to a full
    // rebuild. Duplicate and since-deleted ids may appear — consumers
    // dedupe. The journal is bookkeeping about the graph, not graph state,
    // so draining it is a const operation.

    /// Enable (limit > 0) or disable (0) the journal; clears it either way.
    void set_journal_limit(std::size_t limit) {
        journal_limit_ = limit;
        clear_journal();
    }

    /// Touched node ids since the last clear, in mutation order.
    const std::vector<NodeId>& journal() const { return journal_; }

    /// True once a mutation was dropped because the journal hit its limit.
    bool journal_overflowed() const { return journal_overflow_; }

    void clear_journal() const {
        journal_.clear();
        journal_overflow_ = false;
    }

private:
    void journal_touch(NodeId v) {
        if (journal_limit_ == 0) return;
        if (journal_.size() >= journal_limit_) {
            journal_overflow_ = true;
            return;
        }
        journal_.push_back(v);
    }

    /// Grow the slot vector so ids [0, n) are addressable.
    void reserve_slots(NodeId n);

    /// Hand a recycled dead-node row (capacity, no contents) to a fresh slot.
    void adopt_pooled_row(Slot& slot);

    /// lower_bound position of v in a sorted row.
    static std::vector<NeighborEntry>::iterator row_lower_bound(
        std::vector<NeighborEntry>& row, NodeId v);
    static std::vector<NeighborEntry>::const_iterator row_lower_bound(
        const std::vector<NeighborEntry>& row, NodeId v);

    /// Entry of v in u's row, or nullptr if the edge is absent.
    const EdgeClaims* find_claims(NodeId u, NodeId v) const;

    /// Claims of an existing edge seen from both sides; {nullptr, nullptr}
    /// if absent. Never creates the edge — the removal paths rely on that.
    std::pair<EdgeClaims*, EdgeClaims*> find_edge(NodeId u, NodeId v);

    /// Claims of (u, v) seen from both sides, creating the edge if absent.
    /// The two pointers stay valid together (distinct row vectors).
    std::pair<EdgeClaims*, EdgeClaims*> ensure_edge(NodeId u, NodeId v);

    /// Erase an existing edge from both rows and the degree histogram.
    void erase_edge(NodeId u, NodeId v);

    // Degree-histogram bookkeeping. `max_hint_` is always >= the true max
    // and `min_hint_` always <= the true min; queries walk the hint to the
    // first non-empty bucket, which is amortized against the mutations that
    // moved it.
    void degree_changed(std::size_t old_degree, std::size_t new_degree);

    /// Adjacency-row storage reclaimed from tombstoned slots and re-issued
    /// by add_node (ids are never reused, so without recycling every fresh
    /// node would pay first-growth allocations even in steady-state churn).
    /// Capacity only — never contents. Capped: delete-heavy runs release
    /// rows beyond the cap instead of hoarding them.
    static constexpr std::size_t row_pool_cap = 1024;
    std::vector<std::vector<NeighborEntry>> row_pool_;

    std::vector<Slot> slots_;
    std::vector<std::size_t> degree_hist_;  // degree_hist_[d] = live nodes of degree d
    std::size_t live_nodes_ = 0;
    std::size_t edge_count_ = 0;
    NodeId next_id_ = 0;
    mutable std::size_t max_hint_ = 0;
    mutable std::size_t min_hint_ = 0;
    mutable std::vector<NodeId> journal_;
    std::size_t journal_limit_ = 0;
    mutable bool journal_overflow_ = false;
};

}  // namespace xheal::graph
