#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace xheal::graph {

std::unordered_map<NodeId, std::size_t> bfs_distances(const Graph& g, NodeId src) {
    XHEAL_EXPECTS(g.has_node(src));
    std::unordered_map<NodeId, std::size_t> dist;
    dist.reserve(g.node_count());
    std::deque<NodeId> queue;
    dist.emplace(src, 0);
    queue.push_back(src);
    while (!queue.empty()) {
        NodeId u = queue.front();
        queue.pop_front();
        std::size_t du = dist.at(u);
        for (NodeId v : g.neighbors(u)) {
            if (dist.emplace(v, du + 1).second) queue.push_back(v);
        }
    }
    return dist;
}

std::optional<std::size_t> distance(const Graph& g, NodeId u, NodeId v) {
    XHEAL_EXPECTS(g.has_node(u));
    XHEAL_EXPECTS(g.has_node(v));
    if (u == v) return 0;
    auto dist = bfs_distances(g, u);
    auto it = dist.find(v);
    if (it == dist.end()) return std::nullopt;
    return it->second;
}

bool is_connected(const Graph& g) {
    if (g.node_count() <= 1) return true;
    NodeId start = g.nodes().front();
    return bfs_distances(g, start).size() == g.node_count();
}

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
    std::vector<std::vector<NodeId>> comps;
    std::unordered_set<NodeId> seen;
    for (NodeId v : g.nodes()) {
        if (seen.contains(v)) continue;
        auto dist = bfs_distances(g, v);
        std::vector<NodeId> comp;
        comp.reserve(dist.size());
        for (const auto& [u, _] : dist) {
            comp.push_back(u);
            seen.insert(u);
        }
        std::sort(comp.begin(), comp.end());
        comps.push_back(std::move(comp));
    }
    return comps;
}

std::optional<std::size_t> diameter_exact(const Graph& g) {
    if (g.node_count() == 0) return std::nullopt;
    std::size_t diameter = 0;
    for (NodeId v : g.nodes()) {
        auto dist = bfs_distances(g, v);
        if (dist.size() != g.node_count()) return std::nullopt;
        for (const auto& [_, d] : dist) diameter = std::max(diameter, d);
    }
    return diameter;
}

namespace {

/// Iterative Tarjan lowpoint DFS (recursion would overflow on long paths).
struct ArticulationState {
    const Graph& g;
    std::unordered_map<NodeId, std::size_t> disc;
    std::unordered_map<NodeId, std::size_t> low;
    std::unordered_set<NodeId> cut;
    std::size_t timer = 0;

    explicit ArticulationState(const Graph& graph) : g(graph) {}

    void run(NodeId root) {
        struct Frame {
            NodeId node;
            NodeId parent;
            Graph::NeighborsView nbrs;  // view into the row; rows are stable here
            std::size_t next = 0;
            std::size_t child_count = 0;
        };
        std::vector<Frame> stack;
        stack.push_back({root, invalid_node, g.neighbors(root), 0, 0});
        disc[root] = low[root] = timer++;
        while (!stack.empty()) {
            Frame& f = stack.back();
            if (f.next < f.nbrs.size()) {
                NodeId w = f.nbrs[f.next++];
                if (w == f.parent) continue;
                auto it = disc.find(w);
                if (it != disc.end()) {
                    low[f.node] = std::min(low[f.node], it->second);
                    continue;
                }
                ++f.child_count;
                disc[w] = low[w] = timer++;
                stack.push_back({w, f.node, g.neighbors(w), 0, 0});
            } else {
                NodeId done = f.node;
                NodeId parent = f.parent;
                std::size_t root_children = f.child_count;
                stack.pop_back();
                if (parent == invalid_node) {
                    if (root_children >= 2) cut.insert(done);
                    continue;
                }
                Frame& pf = stack.back();
                low[pf.node] = std::min(low[pf.node], low[done]);
                // Non-root parent is a cut vertex if the finished child
                // cannot reach above the parent. The root is handled by the
                // child-count rule when its own frame pops.
                if (pf.parent != invalid_node && low[done] >= disc[pf.node]) {
                    cut.insert(pf.node);
                }
            }
        }
    }
};

}  // namespace

std::vector<NodeId> articulation_points(const Graph& g) {
    ArticulationState state(g);
    for (NodeId v : g.nodes()) {
        if (!state.disc.contains(v)) state.run(v);
    }
    std::vector<NodeId> out(state.cut.begin(), state.cut.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t cut_size(const Graph& g, const std::unordered_set<NodeId>& s) {
    std::size_t crossing = 0;
    for (NodeId u : s) {
        XHEAL_EXPECTS(g.has_node(u));
        for (NodeId v : g.neighbors(u)) {
            if (!s.contains(v)) ++crossing;
        }
    }
    return crossing;
}

double stretch_vs(const Graph& g, const Graph& ref, const std::vector<NodeId>& sources) {
    std::vector<NodeId> srcs = sources;
    if (srcs.empty()) {
        auto view = g.nodes();
        srcs.assign(view.begin(), view.end());
    }
    double worst = 0.0;
    for (NodeId s : srcs) {
        if (!g.has_node(s) || !ref.has_node(s)) continue;
        auto dg = bfs_distances(g, s);
        auto dr = bfs_distances(ref, s);
        for (const auto& [t, ref_dist] : dr) {
            if (t == s || ref_dist == 0) continue;
            if (!g.has_node(t)) continue;  // deleted nodes don't count
            auto it = dg.find(t);
            if (it == dg.end()) return std::numeric_limits<double>::infinity();
            double ratio = static_cast<double>(it->second) / static_cast<double>(ref_dist);
            worst = std::max(worst, ratio);
        }
    }
    return worst;
}

}  // namespace xheal::graph
