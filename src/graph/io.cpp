#include "graph/io.hpp"

#include <array>
#include <ostream>

namespace xheal::graph {

namespace {

/// Small fixed palette for cloud colors.
const char* palette_color(ColorId c) {
    static constexpr std::array<const char*, 8> palette = {
        "red", "orange", "blue", "green", "purple", "brown", "magenta", "cyan"};
    return palette[c % palette.size()];
}

}  // namespace

void write_dot(std::ostream& out, const Graph& g, const char* name) {
    out << "graph " << name << " {\n";
    out << "  node [shape=circle];\n";
    for (NodeId v : g.nodes()) out << "  n" << v << ";\n";
    g.for_each_edge([&](NodeId u, NodeId v, const EdgeClaims& claims) {
        out << "  n" << u << " -- n" << v;
        if (claims.colored()) {
            out << " [color=" << palette_color(claims.colors.front()) << ", label=\"";
            for (std::size_t i = 0; i < claims.colors.size(); ++i) {
                if (i > 0) out << ',';
                out << claims.colors[i];
            }
            out << "\"]";
        }
        out << ";\n";
    });
    out << "}\n";
}

void write_edge_list(std::ostream& out, const Graph& g) {
    g.for_each_edge([&](NodeId u, NodeId v, const EdgeClaims& claims) {
        out << u << ' ' << v;
        if (claims.black) out << " black";
        for (ColorId c : claims.colors) out << ' ' << c;
        out << '\n';
    });
}

}  // namespace xheal::graph
