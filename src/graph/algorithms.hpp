// Graph traversal and structural queries used by metrics, tests and benches.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"

namespace xheal::graph {

/// BFS hop distances from `src` to every reachable node (src included, 0).
std::unordered_map<NodeId, std::size_t> bfs_distances(const Graph& g, NodeId src);

/// Shortest-path length between u and v; nullopt if disconnected.
std::optional<std::size_t> distance(const Graph& g, NodeId u, NodeId v);

/// True iff the graph is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// Connected components, each sorted ascending; components sorted by their
/// smallest member.
std::vector<std::vector<NodeId>> connected_components(const Graph& g);

/// Exact diameter via BFS from every node. O(n * m); small graphs only.
/// Returns nullopt for disconnected or empty graphs.
std::optional<std::size_t> diameter_exact(const Graph& g);

/// Articulation points (cut vertices) via Tarjan lowpoint DFS.
std::vector<NodeId> articulation_points(const Graph& g);

/// Number of edges crossing the cut (S, V - S). Nodes of S must exist in g.
std::size_t cut_size(const Graph& g, const std::unordered_set<NodeId>& s);

/// Maximum over sampled node pairs of dist(u,v,g) / dist(u,v,ref), the
/// paper's network-stretch metric. Pairs are BFS'd from `sources` (every
/// node if empty); only pairs alive in *both* graphs and connected in `ref`
/// count. Pairs disconnected in g while connected in ref yield +infinity.
double stretch_vs(const Graph& g, const Graph& ref, const std::vector<NodeId>& sources = {});

}  // namespace xheal::graph
