#include "graph/graph.hpp"

namespace xheal::graph {

NodeId Graph::add_node() {
    NodeId v = next_id_++;
    adjacency_.emplace(v, std::unordered_map<NodeId, EdgeClaims>{});
    return v;
}

void Graph::add_node_with_id(NodeId v) {
    XHEAL_EXPECTS(v != invalid_node);
    XHEAL_EXPECTS(!has_node(v));
    adjacency_.emplace(v, std::unordered_map<NodeId, EdgeClaims>{});
    if (v >= next_id_) next_id_ = v + 1;
}

void Graph::remove_node(NodeId v) {
    XHEAL_EXPECTS(has_node(v));
    auto& row = adjacency_.at(v);
    std::vector<NodeId> nbrs;
    nbrs.reserve(row.size());
    for (const auto& [u, _] : row) nbrs.push_back(u);
    for (NodeId u : nbrs) {
        adjacency_.at(u).erase(v);
        --edge_count_;
    }
    adjacency_.erase(v);
}

std::vector<NodeId> Graph::nodes_sorted() const {
    std::vector<NodeId> out;
    out.reserve(adjacency_.size());
    for (const auto& [v, _] : adjacency_) out.push_back(v);
    std::sort(out.begin(), out.end());
    return out;
}

EdgeClaims& Graph::mutable_claims(NodeId u, NodeId v) {
    XHEAL_EXPECTS(u != v);
    XHEAL_EXPECTS(has_node(u));
    XHEAL_EXPECTS(has_node(v));
    auto& row = adjacency_.at(u);
    auto it = row.find(v);
    if (it == row.end()) {
        // Create the edge in both rows; they share logical state so every
        // mutation below is mirrored explicitly by callers.
        row.emplace(v, EdgeClaims{});
        adjacency_.at(v).emplace(u, EdgeClaims{});
        ++edge_count_;
        return row.at(v);
    }
    return it->second;
}

void Graph::add_black_edge(NodeId u, NodeId v) {
    EdgeClaims& c = mutable_claims(u, v);
    if (c.black) return;
    c.black = true;
    adjacency_.at(v).at(u).black = true;
}

void Graph::add_color_claim(NodeId u, NodeId v, ColorId color) {
    XHEAL_EXPECTS(color != invalid_color);
    EdgeClaims& c = mutable_claims(u, v);
    auto pos = std::lower_bound(c.colors.begin(), c.colors.end(), color);
    if (pos != c.colors.end() && *pos == color) return;
    c.colors.insert(pos, color);
    auto& mirror = adjacency_.at(v).at(u);
    auto mpos = std::lower_bound(mirror.colors.begin(), mirror.colors.end(), color);
    mirror.colors.insert(mpos, color);
}

void Graph::erase_edge(NodeId u, NodeId v) {
    adjacency_.at(u).erase(v);
    adjacency_.at(v).erase(u);
    --edge_count_;
}

bool Graph::remove_color_claim(NodeId u, NodeId v, ColorId color) {
    if (!has_edge(u, v)) return false;
    auto& c = adjacency_.at(u).at(v);
    auto pos = std::lower_bound(c.colors.begin(), c.colors.end(), color);
    if (pos == c.colors.end() || *pos != color) return false;
    c.colors.erase(pos);
    auto& mirror = adjacency_.at(v).at(u);
    auto mpos = std::lower_bound(mirror.colors.begin(), mirror.colors.end(), color);
    mirror.colors.erase(mpos);
    if (c.empty()) erase_edge(u, v);
    return true;
}

bool Graph::remove_black_claim(NodeId u, NodeId v) {
    if (!has_edge(u, v)) return false;
    auto& c = adjacency_.at(u).at(v);
    if (!c.black) return false;
    c.black = false;
    adjacency_.at(v).at(u).black = false;
    if (c.empty()) erase_edge(u, v);
    return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
    auto it = adjacency_.find(u);
    if (it == adjacency_.end()) return false;
    return it->second.contains(v);
}

bool Graph::has_black_claim(NodeId u, NodeId v) const {
    if (!has_edge(u, v)) return false;
    return adjacency_.at(u).at(v).black;
}

bool Graph::has_color_claim(NodeId u, NodeId v, ColorId c) const {
    if (!has_edge(u, v)) return false;
    return adjacency_.at(u).at(v).has_color(c);
}

bool Graph::is_colored_edge(NodeId u, NodeId v) const {
    if (!has_edge(u, v)) return false;
    return adjacency_.at(u).at(v).colored();
}

const EdgeClaims& Graph::claims(NodeId u, NodeId v) const {
    XHEAL_EXPECTS(has_edge(u, v));
    return adjacency_.at(u).at(v);
}

std::size_t Graph::degree(NodeId v) const {
    XHEAL_EXPECTS(has_node(v));
    return adjacency_.at(v).size();
}

std::vector<NodeId> Graph::neighbors_sorted(NodeId v) const {
    XHEAL_EXPECTS(has_node(v));
    std::vector<NodeId> out;
    const auto& row = adjacency_.at(v);
    out.reserve(row.size());
    for (const auto& [u, _] : row) out.push_back(u);
    std::sort(out.begin(), out.end());
    return out;
}

const std::unordered_map<NodeId, EdgeClaims>& Graph::adjacency(NodeId v) const {
    XHEAL_EXPECTS(has_node(v));
    return adjacency_.at(v);
}

std::size_t Graph::max_degree() const {
    std::size_t best = 0;
    for (const auto& [v, row] : adjacency_) best = std::max(best, row.size());
    return best;
}

std::size_t Graph::min_degree() const {
    if (adjacency_.empty()) return 0;
    std::size_t best = SIZE_MAX;
    for (const auto& [v, row] : adjacency_) best = std::min(best, row.size());
    return best;
}

}  // namespace xheal::graph
