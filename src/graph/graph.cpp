#include "graph/graph.hpp"

namespace xheal::graph {

void Graph::reserve_slots(NodeId n) {
    if (slots_.size() < n) slots_.resize(n);
}

NodeId Graph::add_node() {
    NodeId v = next_id_++;
    reserve_slots(next_id_);
    adopt_pooled_row(slots_[v]);
    slots_[v].state = SlotState::alive;
    ++live_nodes_;
    degree_changed(SIZE_MAX, 0);
    journal_touch(v);
    return v;
}

void Graph::add_node_with_id(NodeId v) {
    XHEAL_EXPECTS(v != invalid_node);
    XHEAL_EXPECTS(!has_node(v));
    // Ids are never reused: a tombstoned slot cannot come back to life.
    XHEAL_EXPECTS(v >= slots_.size() || slots_[v].state == SlotState::empty);
    if (v >= next_id_) {
        next_id_ = v + 1;
        reserve_slots(next_id_);
    }
    adopt_pooled_row(slots_[v]);
    slots_[v].state = SlotState::alive;
    ++live_nodes_;
    degree_changed(SIZE_MAX, 0);
    journal_touch(v);
}

void Graph::adopt_pooled_row(Slot& slot) {
    if (slot.row.capacity() == 0 && !row_pool_.empty()) {
        slot.row = std::move(row_pool_.back());
        row_pool_.pop_back();
        slot.row.clear();
    }
}

void Graph::remove_node(NodeId v) {
    XHEAL_EXPECTS(has_node(v));
    Slot& slot = slots_[v];
    journal_touch(v);
    for (const NeighborEntry& e : slot.row) {
        std::vector<NeighborEntry>& other = slots_[e.first].row;
        auto pos = row_lower_bound(other, v);
        XHEAL_ASSERT(pos != other.end() && pos->first == v);
        other.erase(pos);
        degree_changed(other.size() + 1, other.size());
        --edge_count_;
        journal_touch(e.first);
    }
    degree_changed(slot.row.size(), SIZE_MAX);
    --live_nodes_;
    slot.state = SlotState::dead;
    // The tombstone never hosts edges again. Its row storage is recycled
    // into future add_node slots (capped, so delete-heavy runs don't retain
    // unbounded dead-row memory): ids are never reused, so without this a
    // churning population would pay a first-growth allocation per new node
    // and the repair path could never reach allocation-free steady state.
    slot.row.clear();
    if (slot.row.capacity() != 0 && row_pool_.size() < row_pool_cap) {
        // One-time full reserve: the pool's own growth must not allocate
        // mid-run either (the steady-state soaks pin repair at zero).
        if (row_pool_.capacity() == 0) row_pool_.reserve(row_pool_cap);
        row_pool_.push_back(std::move(slot.row));
    }
    std::vector<NeighborEntry>().swap(slot.row);
}

void Graph::compact(std::vector<NodeId>& old_to_new) {
    old_to_new.assign(next_id_, invalid_node);
    NodeId dense = 0;
    for (NodeId v = 0; v < next_id_; ++v)
        if (slots_[v].state == SlotState::alive) old_to_new[v] = dense++;
    apply_id_map(old_to_new);
}

void Graph::apply_id_map(const std::vector<NodeId>& old_to_new) {
    XHEAL_EXPECTS(old_to_new.size() == next_id_);
    // Forward pass: the map is ascending-dense (new <= old), so by the time
    // slot v moves down to old_to_new[v], every lower target slot has
    // already been vacated. Row ids are rewritten in place first; the map
    // is monotone over live ids, so each row stays sorted.
    NodeId dense = 0;
    for (NodeId v = 0; v < next_id_; ++v) {
        Slot& slot = slots_[v];
        if (slot.state != SlotState::alive) {
            // Tombstones leave the epoch: the slot is reclaimed wholesale
            // (its row storage was already recycled by remove_node).
            XHEAL_EXPECTS(old_to_new[v] == invalid_node);
            slot.state = SlotState::empty;
            continue;
        }
        NodeId to = old_to_new[v];
        // The map must be exactly this graph's ascending dense map — this
        // is what lets a mirrored graph (the purged reference) apply the
        // same map safely: any live-set mismatch trips here.
        XHEAL_EXPECTS(to == dense);
        ++dense;
        for (NeighborEntry& e : slot.row) {
            XHEAL_ASSERT(e.first < old_to_new.size() &&
                         old_to_new[e.first] != invalid_node);
            e.first = old_to_new[e.first];
        }
        if (to != v) {
            slots_[to] = std::move(slot);
            slot.state = SlotState::empty;
            slot.row.clear();
        }
    }
    XHEAL_ASSERT(dense == live_nodes_);
    // Reclaim the tail: capacity is retained (the next epoch regrows into
    // it), the Slot objects beyond the live range are destroyed.
    slots_.resize(live_nodes_);
    next_id_ = static_cast<NodeId>(live_nodes_);
    if (journal_limit_ != 0) {
        // Renumbering invalidates every id a snapshot consumer holds; an
        // overflowed-empty journal is the "unknown delta, rebuild" signal.
        journal_.clear();
        journal_overflow_ = true;
    }
}

std::vector<NeighborEntry>::iterator Graph::row_lower_bound(
    std::vector<NeighborEntry>& row, NodeId v) {
    return std::lower_bound(row.begin(), row.end(), v,
                            [](const NeighborEntry& e, NodeId id) { return e.first < id; });
}

std::vector<NeighborEntry>::const_iterator Graph::row_lower_bound(
    const std::vector<NeighborEntry>& row, NodeId v) {
    return std::lower_bound(row.begin(), row.end(), v,
                            [](const NeighborEntry& e, NodeId id) { return e.first < id; });
}

const EdgeClaims* Graph::find_claims(NodeId u, NodeId v) const {
    if (!has_node(u) || !has_node(v)) return nullptr;
    const std::vector<NeighborEntry>& row = slots_[u].row;
    auto pos = row_lower_bound(row, v);
    if (pos == row.end() || pos->first != v) return nullptr;
    return &pos->second;
}

std::pair<EdgeClaims*, EdgeClaims*> Graph::find_edge(NodeId u, NodeId v) {
    if (!has_node(u) || !has_node(v)) return {nullptr, nullptr};
    std::vector<NeighborEntry>& ru = slots_[u].row;
    auto pu = row_lower_bound(ru, v);
    if (pu == ru.end() || pu->first != v) return {nullptr, nullptr};
    std::vector<NeighborEntry>& rv = slots_[v].row;
    auto pv = row_lower_bound(rv, u);
    XHEAL_ASSERT(pv != rv.end() && pv->first == u);
    return {&pu->second, &pv->second};
}

std::pair<EdgeClaims*, EdgeClaims*> Graph::ensure_edge(NodeId u, NodeId v) {
    XHEAL_EXPECTS(u != v);
    XHEAL_EXPECTS(has_node(u));
    XHEAL_EXPECTS(has_node(v));
    std::vector<NeighborEntry>& ru = slots_[u].row;
    auto pu = row_lower_bound(ru, v);
    if (pu == ru.end() || pu->first != v) {
        // Create the edge in both rows; they share logical state so every
        // mutation is mirrored explicitly by the callers.
        pu = ru.emplace(pu, v, EdgeClaims{});
        degree_changed(ru.size() - 1, ru.size());
        std::vector<NeighborEntry>& rv = slots_[v].row;
        auto pv = row_lower_bound(rv, u);
        pv = rv.emplace(pv, u, EdgeClaims{});
        degree_changed(rv.size() - 1, rv.size());
        ++edge_count_;
        journal_touch(u);
        journal_touch(v);
        return {&pu->second, &pv->second};
    }
    std::vector<NeighborEntry>& rv = slots_[v].row;
    auto pv = row_lower_bound(rv, u);
    XHEAL_ASSERT(pv != rv.end() && pv->first == u);
    return {&pu->second, &pv->second};
}

void Graph::add_black_edge(NodeId u, NodeId v) {
    auto [cu, cv] = ensure_edge(u, v);
    if (cu->black) return;
    cu->black = true;
    cv->black = true;
}

void Graph::add_color_claim(NodeId u, NodeId v, ColorId color) {
    XHEAL_EXPECTS(color != invalid_color);
    auto [cu, cv] = ensure_edge(u, v);
    if (!cu->colors.insert(color)) return;
    cv->colors.insert(color);
}

void Graph::erase_edge(NodeId u, NodeId v) {
    std::vector<NeighborEntry>& ru = slots_[u].row;
    auto pu = row_lower_bound(ru, v);
    XHEAL_ASSERT(pu != ru.end() && pu->first == v);
    ru.erase(pu);
    degree_changed(ru.size() + 1, ru.size());
    std::vector<NeighborEntry>& rv = slots_[v].row;
    auto pv = row_lower_bound(rv, u);
    XHEAL_ASSERT(pv != rv.end() && pv->first == u);
    rv.erase(pv);
    degree_changed(rv.size() + 1, rv.size());
    --edge_count_;
    journal_touch(u);
    journal_touch(v);
}

bool Graph::remove_color_claim(NodeId u, NodeId v, ColorId color) {
    auto [cu, cv] = find_edge(u, v);
    if (cu == nullptr) return false;
    if (!cu->colors.erase(color)) return false;
    cv->colors.erase(color);
    if (cu->empty()) erase_edge(u, v);
    return true;
}

bool Graph::remove_black_claim(NodeId u, NodeId v) {
    auto [cu, cv] = find_edge(u, v);
    if (cu == nullptr) return false;
    if (!cu->black) return false;
    cu->black = false;
    cv->black = false;
    if (cu->empty()) erase_edge(u, v);
    return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const { return find_claims(u, v) != nullptr; }

bool Graph::has_black_claim(NodeId u, NodeId v) const {
    const EdgeClaims* c = find_claims(u, v);
    return c != nullptr && c->black;
}

bool Graph::has_color_claim(NodeId u, NodeId v, ColorId color) const {
    const EdgeClaims* c = find_claims(u, v);
    return c != nullptr && c->has_color(color);
}

bool Graph::is_colored_edge(NodeId u, NodeId v) const {
    const EdgeClaims* c = find_claims(u, v);
    return c != nullptr && c->colored();
}

const EdgeClaims& Graph::claims(NodeId u, NodeId v) const {
    const EdgeClaims* c = find_claims(u, v);
    XHEAL_EXPECTS(c != nullptr);
    return *c;
}

void Graph::degree_changed(std::size_t old_degree, std::size_t new_degree) {
    // SIZE_MAX marks "no bucket": node birth (old) or death (new).
    if (old_degree != SIZE_MAX) {
        XHEAL_ASSERT(old_degree < degree_hist_.size() && degree_hist_[old_degree] > 0);
        --degree_hist_[old_degree];
    }
    if (new_degree != SIZE_MAX) {
        if (new_degree >= degree_hist_.size()) degree_hist_.resize(new_degree + 1, 0);
        ++degree_hist_[new_degree];
        if (new_degree > max_hint_) max_hint_ = new_degree;
        if (new_degree < min_hint_) min_hint_ = new_degree;
    }
}

std::size_t Graph::max_degree() const {
    if (live_nodes_ == 0) return 0;
    while (max_hint_ > 0 && degree_hist_[max_hint_] == 0) --max_hint_;
    return max_hint_;
}

std::size_t Graph::min_degree() const {
    if (live_nodes_ == 0) return 0;
    while (min_hint_ < degree_hist_.size() && degree_hist_[min_hint_] == 0) ++min_hint_;
    XHEAL_ASSERT(min_hint_ < degree_hist_.size());
    return min_hint_;
}

}  // namespace xheal::graph
