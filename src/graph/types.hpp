// Fundamental identifiers shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace xheal::graph {

/// Identifier of a node (processor). Ids are never reused after deletion so
/// that the insert-only reference graph G' and the healed graph G stay in
/// one id space.
using NodeId = std::uint32_t;

inline constexpr NodeId invalid_node = std::numeric_limits<NodeId>::max();

/// Identifier of an edge color, i.e. of an expander cloud. Color 0 is
/// reserved; the graph layer treats colors as opaque tags — whether a color
/// is a primary or secondary cloud is tracked by the core layer's registry.
using ColorId = std::uint32_t;

inline constexpr ColorId invalid_color = 0;

}  // namespace xheal::graph
