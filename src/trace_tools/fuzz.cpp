#include "trace_tools/fuzz.hpp"

#include <algorithm>
#include <utility>

#include "scenario/runner.hpp"
#include "util/rng.hpp"

namespace xheal::trace_tools {

using scenario::ScenarioSpec;
using scenario::TraceEvent;

namespace {

// Stream mutators: perturb a recorded event list in place.

void truncate(std::vector<TraceEvent>& events, util::Rng& rng) {
    if (events.empty()) return;
    events.resize(rng.index(events.size()) + 1);
}

/// Pick a window [begin, begin+len) over `size` elements; len in [1, 8].
std::pair<std::size_t, std::size_t> pick_window(std::size_t size, util::Rng& rng) {
    std::size_t len = 1 + rng.index(std::min<std::size_t>(8, size));
    std::size_t begin = rng.index(size - len + 1);
    return {begin, len};
}

void drop_window(std::vector<TraceEvent>& events, util::Rng& rng) {
    if (events.empty()) return;
    auto [begin, len] = pick_window(events.size(), rng);
    events.erase(events.begin() + static_cast<std::ptrdiff_t>(begin),
                 events.begin() + static_cast<std::ptrdiff_t>(begin + len));
}

void dup_window(std::vector<TraceEvent>& events, util::Rng& rng) {
    if (events.empty()) return;
    auto [begin, len] = pick_window(events.size(), rng);
    std::vector<TraceEvent> window(events.begin() + static_cast<std::ptrdiff_t>(begin),
                                   events.begin() +
                                       static_cast<std::ptrdiff_t>(begin + len));
    events.insert(events.begin() + static_cast<std::ptrdiff_t>(begin + len),
                  window.begin(), window.end());
}

void swap_events(std::vector<TraceEvent>& events, util::Rng& rng) {
    if (events.size() < 2) return;
    std::size_t i = rng.index(events.size());
    std::size_t j = rng.index(events.size());
    std::swap(events[i], events[j]);
}

// Spec mutators: perturb the phase schedule, then re-run the scenario to
// produce the candidate stream (the adversary strategies re-decide under
// the mutated schedule).

void phase_reorder(ScenarioSpec& spec, util::Rng& rng) { rng.shuffle(spec.phases); }

void burst_spike(ScenarioSpec& spec, util::Rng& rng) {
    auto& phase = spec.phases[rng.index(spec.phases.size())];
    // Always escalate: the cap bounds candidate cost for the common
    // burst=1 schedules without ever *reducing* an already-bursty phase.
    phase.burst = std::max<std::size_t>(phase.burst * 2,
                                        std::min<std::size_t>(
                                            16, phase.burst * (2 + rng.index(3))));
}

void delete_fraction_spike(ScenarioSpec& spec, util::Rng& rng) {
    auto& phase = spec.phases[rng.index(spec.phases.size())];
    phase.delete_fraction = 1.0;
    phase.delete_fraction_end.reset();  // a spiked ramp is a constant spike
    phase.min_nodes = std::max<std::size_t>(2, phase.min_nodes / 2);
}

/// One mutator: either a stream mutator (perturbs a copy of the base
/// events) or a spec mutator (perturbs the schedule; the candidate stream
/// comes from re-running the scenario). `min_phases` gates mutators that
/// need a schedule to rearrange; ineligible picks fall back to a stream
/// mutator, which never has such a requirement.
struct Mutator {
    const char* name;
    void (*stream)(std::vector<TraceEvent>&, util::Rng&);
    void (*spec)(ScenarioSpec&, util::Rng&);
    std::size_t min_phases;
};

constexpr Mutator kMutators[] = {
    {"truncate", truncate, nullptr, 0},
    {"drop-window", drop_window, nullptr, 0},
    {"dup-window", dup_window, nullptr, 0},
    {"swap-events", swap_events, nullptr, 0},
    {"phase-reorder", nullptr, phase_reorder, 2},
    {"burst-spike", nullptr, burst_spike, 1},
    {"delete-spike", nullptr, delete_fraction_spike, 1},
};

/// Stream mutators lead the table (the fallback draws from this prefix).
constexpr std::size_t kStreamMutators = 4;
static_assert(kMutators[kStreamMutators - 1].spec == nullptr &&
              kMutators[kStreamMutators].stream == nullptr);

}  // namespace

std::vector<std::string> TraceFuzzer::mutator_names() {
    std::vector<std::string> names;
    for (const Mutator& m : kMutators) names.emplace_back(m.name);
    return names;
}

TraceFuzzer::TraceFuzzer(ScenarioSpec base, FuzzOptions options)
    : base_(std::move(base)), options_(std::move(options)), executor_(options_.exec) {
    // The fuzzer only consumes event streams, and probes/expectations
    // cannot perturb them (independent probe rng, tested invariant) — but
    // every candidate run through ScenarioRunner would pay the final
    // metric-probe cost (lambda2/stretch solves at scale) for a verdict
    // the fuzzer ignores. Strip them once here: the *oracles* are the
    // invariant suite (connectivity, claim mirror, Lemma 3 degree bound,
    // plus the lambda2 floor the CLI derives from an `expect lambda2 >=`
    // clause into options.exec before construction) — terminal
    // expectations on other metrics (expansion, stretch, nodes) are
    // deliberately not fuzz oracles.
    base_.probes.clear();
    base_.expectations.clear();
    base_.sample_every = 0;
}

FuzzReport TraceFuzzer::run() {
    FuzzReport report;
    std::vector<TraceEvent> base_events = scenario::ScenarioRunner(base_).run().events;
    report.base_events = base_events.size();

    util::Rng rng(options_.seed);
    for (std::size_t candidate = 0; candidate < options_.candidates; ++candidate) {
        std::size_t which = rng.index(std::size(kMutators));
        if (base_.phases.size() < kMutators[which].min_phases)
            which = rng.index(kStreamMutators);
        const Mutator& picked = kMutators[which];

        ScenarioSpec spec = base_;
        std::vector<TraceEvent> events;
        std::string mutator = picked.name;
        if (picked.stream != nullptr) {
            events = base_events;
            picked.stream(events, rng);
        } else {
            picked.spec(spec, rng);
            try {
                events = scenario::ScenarioRunner(spec).run().events;
            } catch (const std::exception& e) {
                // A schedule the engine itself cannot survive is a finding
                // in its own right.
                FuzzFinding finding;
                finding.candidate = candidate;
                finding.mutator = std::move(mutator);
                finding.spec = std::move(spec);
                finding.exec.violations.push_back({0, "runner-exception", e.what()});
                report.findings.push_back(std::move(finding));
                ++report.candidates_run;
                if (options_.max_findings != 0 &&
                    report.findings.size() >= options_.max_findings)
                    break;
                continue;
            }
        }

        ExecResult exec = executor_.execute(spec, events);
        ++report.candidates_run;
        if (exec.failed()) {
            report.findings.push_back({candidate, std::move(mutator), std::move(spec),
                                       std::move(events), std::move(exec)});
            if (options_.max_findings != 0 &&
                report.findings.size() >= options_.max_findings)
                break;
        }
    }
    return report;
}

}  // namespace xheal::trace_tools
