// TraceDiff — structural comparison of two recorded traces, built to
// answer the debugging question "where did this re-run depart from the
// recording?". The unit of comparison is the event, not the byte: the
// result names the first divergent event index and which field moved
// (kind / step / phase / node / neighbor set), and the renderer prints the
// divergent pair with surrounding context lines in the trace's own JSONL
// form so the output can be grepped straight back into the files.
#pragma once

#include <cstddef>
#include <string>

#include "scenario/trace.hpp"

namespace xheal::trace_tools {

struct DiffResult {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Header fields (scenario / seed / spec_hash) all equal.
    bool header_equal = true;
    std::string header_note;  ///< human description of header differences

    /// Index of the first event where the streams differ; npos when the
    /// common prefix covers both (equal streams or one is a prefix).
    std::size_t divergence_index = npos;
    std::string divergence_field;  ///< "kind" / "step" / "phase" / "node" /
                                   ///< "neighbors" / "length"

    /// End-record comparison (hashes can differ even with identical event
    /// streams: the fingerprint sees the healer's work, not just events).
    bool trace_hash_equal = true;
    bool fingerprint_equal = true;

    bool events_equal() const { return divergence_index == npos; }
    bool identical() const {
        return header_equal && events_equal() && trace_hash_equal && fingerprint_equal;
    }
};

/// Compare two parsed traces structurally.
DiffResult diff_traces(const scenario::Trace& a, const scenario::Trace& b);

/// Render a diff for humans: header/end notes plus the first divergent
/// event with up to `context` preceding and following events from each
/// side, in JSONL form. Lines of the divergent pair are marked '>'.
std::string format_diff(const DiffResult& diff, const scenario::Trace& a,
                        const scenario::Trace& b, std::size_t context = 3);

}  // namespace xheal::trace_tools
