#include "trace_tools/executor.hpp"

#include <algorithm>

#include "scenario/runner.hpp"
#include "util/rng.hpp"

namespace xheal::trace_tools {

using scenario::ScenarioSpec;
using scenario::Trace;
using scenario::TraceEvent;

Trace ExecResult::to_trace(const ScenarioSpec& spec) const {
    return scenario::make_trace(spec, applied, trace_hash, fingerprint);
}

ExecResult TraceExecutor::execute(const ScenarioSpec& spec,
                                  const std::vector<TraceEvent>& events) {
    // scenario::build_session is the same constructor path ScenarioRunner
    // uses (master Rng at spec.seed draws the topology, the healer takes
    // its own seed) — sharing it is what makes canonical traces replayable
    // through ScenarioRunner byte-for-byte.
    util::Rng rng(spec.seed);
    std::size_t kappa = 1;
    const core::CloudRegistry* registry = nullptr;
    core::HealingSession session =
        scenario::build_session(spec, rng, nullptr, kappa, registry);

    core::InvariantSuite suite(kappa);
    suite.enable_degree_bound(options_.degree_bound && registry != nullptr);
    if (!std::isnan(options_.lambda2_floor))
        suite.set_lambda2_floor(options_.lambda2_floor, [this](const graph::Graph& g) {
            return probe_engine_.lambda2(g);
        });
    if (options_.configure_suite) options_.configure_suite(suite);

    ExecResult result;
    scenario::TraceHasher hasher;
    std::vector<core::InvariantFinding> findings;

    auto record_findings = [&](std::size_t event_index) {
        for (core::InvariantFinding& f : findings)
            result.violations.push_back(
                {event_index, std::move(f.oracle), std::move(f.message)});
        findings.clear();
    };

    // The healer may throw mid-event (a stateful healer driven past its
    // contract, or an injected fault gone wrong) — that is a finding, not a
    // tool crash. The throwing event is *kept* in the canonical stream
    // (re-execution reproduces the same exception at the same index), but
    // the session is unusable afterwards, so execution stops
    // unconditionally. Note such streams cannot go through the strict
    // ScenarioRunner::replay — it surfaces the same exception, which is the
    // reproduction.
    bool session_dead = false;
    auto record_exception = [&](const std::exception& e) {
        result.violations.push_back(
            {result.applied.size() - 1, "healer-exception", e.what()});
        session_dead = true;
    };

    std::size_t since_check = 0;
    for (const TraceEvent& event : events) {
        bool applied = false;
        TraceEvent canonical;
        if (event.kind == TraceEvent::Kind::remove) {
            if (session.current().has_node(event.node) &&
                session.current().node_count() > options_.min_alive) {
                canonical = event;
                // A stray neighbors field on a delete would enter the
                // stream hash but never survive the JSONL round-trip.
                canonical.neighbors.clear();
                canonical.step = result.applied.size();
                hasher.add(canonical);
                result.applied.push_back(std::move(canonical));
                applied = true;
                try {
                    session.delete_node(event.node);
                } catch (const std::exception& e) {
                    record_exception(e);
                    break;
                }
            }
        } else if (event.kind == TraceEvent::Kind::compact) {
            // Epoch boundaries stay in the canonical stream (fuzzed streams
            // may move them anywhere); the live count is rewritten to what
            // this execution actually holds, so the canonical event carries
            // the value strict replay will verify. Compacting an already
            // dense id space is a valid identity renumbering.
            canonical = event;
            canonical.neighbors.clear();
            canonical.step = result.applied.size();
            canonical.node =
                static_cast<graph::NodeId>(session.current().node_count());
            hasher.add(canonical);
            result.applied.push_back(std::move(canonical));
            applied = true;
            try {
                probe_engine_.on_compact(session.compact());
            } catch (const std::exception& e) {
                record_exception(e);
                break;
            }
        } else {
            canonical = event;
            canonical.neighbors.erase(
                std::remove_if(canonical.neighbors.begin(), canonical.neighbors.end(),
                               [&](graph::NodeId u) {
                                   return !session.current().has_node(u);
                               }),
                canonical.neighbors.end());
            std::sort(canonical.neighbors.begin(), canonical.neighbors.end());
            canonical.neighbors.erase(
                std::unique(canonical.neighbors.begin(), canonical.neighbors.end()),
                canonical.neighbors.end());
            if (!canonical.neighbors.empty()) {
                // Capture the id this insert will get *before* the call:
                // the session allocates the node (advancing next_id) before
                // the healer runs, so reading next_id in the catch would be
                // one past the assigned id.
                graph::NodeId assigned = session.current().next_id();
                try {
                    assigned = session.insert_node(canonical.neighbors);
                } catch (const std::exception& e) {
                    canonical.node = assigned;
                    canonical.step = result.applied.size();
                    hasher.add(canonical);
                    result.applied.push_back(std::move(canonical));
                    record_exception(e);
                    break;
                }
                canonical.node = assigned;
                canonical.step = result.applied.size();
                hasher.add(canonical);
                result.applied.push_back(std::move(canonical));
                applied = true;
            }
        }
        if (!applied) {
            ++result.skipped;
            continue;
        }

        ++since_check;
        bool due = options_.check_every != 0 && since_check >= options_.check_every;
        if (due) {
            since_check = 0;
            suite.check_structural(session, findings);
            record_findings(result.applied.size() - 1);
            if (options_.stop_on_violation && result.failed()) break;
        }
    }

    // Final checks: the structural set if the cadence missed the last
    // event, then the spectral oracle (violations found here are located at
    // the last applied event). A session killed by a healer exception is
    // not probed further.
    if (!session_dead && (!result.failed() || !options_.stop_on_violation)) {
        std::size_t final_index =
            result.applied.empty() ? 0 : result.applied.size() - 1;
        if (since_check != 0 || options_.check_every == 0) {
            suite.check_structural(session, findings);
            record_findings(final_index);
        }
        if (!(options_.stop_on_violation && result.failed())) {
            suite.check_spectral(session, findings);
            record_findings(final_index);
        }
    }

    result.trace_hash = hasher.value();
    result.fingerprint = scenario::graph_fingerprint(session.current());
    return result;
}

}  // namespace xheal::trace_tools
