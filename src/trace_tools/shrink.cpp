#include "trace_tools/shrink.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace xheal::trace_tools {

using scenario::ScenarioSpec;
using scenario::TraceEvent;

namespace {

/// The events of `current` minus the chunk [begin, end).
std::vector<TraceEvent> without(const std::vector<TraceEvent>& current,
                                std::size_t begin, std::size_t end) {
    std::vector<TraceEvent> out;
    out.reserve(current.size() - (end - begin));
    out.insert(out.end(), current.begin(),
               current.begin() + static_cast<std::ptrdiff_t>(begin));
    out.insert(out.end(), current.begin() + static_cast<std::ptrdiff_t>(end),
               current.end());
    return out;
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& spec, const std::vector<TraceEvent>& events,
                    const ShrinkOptions& options) {
    TraceExecutor executor(options.exec);
    ShrinkResult result;
    result.input_events = events.size();

    ExecResult exec = executor.execute(spec, events);
    ++result.tests_run;
    if (!exec.failed()) return result;
    result.input_failed = true;

    // Work on the canonical applied stream: feasible by construction,
    // already cut at the first violation, and `exec` is by definition its
    // execution result (re-applying a canonical stream reproduces the
    // identical session history).
    ExecResult best = std::move(exec);
    std::vector<TraceEvent> current = best.applied;

    std::size_t granularity = 2;
    while (current.size() >= 2 && result.tests_run < options.max_tests) {
        std::size_t chunk_count = std::min(granularity, current.size());
        std::size_t chunk_size = (current.size() + chunk_count - 1) / chunk_count;
        bool reduced = false;

        for (std::size_t begin = 0; begin < current.size() && !reduced;
             begin += chunk_size) {
            if (result.tests_run >= options.max_tests) break;
            std::size_t end = std::min(begin + chunk_size, current.size());

            // ddmin tests each chunk alone ("reduce to subset") and its
            // complement ("reduce to complement"); either way the stream
            // strictly shrinks on success.
            std::vector<TraceEvent> subset(
                current.begin() + static_cast<std::ptrdiff_t>(begin),
                current.begin() + static_cast<std::ptrdiff_t>(end));
            if (subset.size() < current.size()) {
                ExecResult attempt = executor.execute(spec, subset);
                ++result.tests_run;
                if (attempt.failed()) {
                    best = std::move(attempt);
                    current = best.applied;
                    granularity = 2;
                    reduced = true;
                    break;
                }
            }

            std::vector<TraceEvent> complement = without(current, begin, end);
            if (complement.size() < current.size()) {
                ExecResult attempt = executor.execute(spec, complement);
                ++result.tests_run;
                if (attempt.failed()) {
                    best = std::move(attempt);
                    current = best.applied;
                    granularity = std::max<std::size_t>(2, granularity - 1);
                    reduced = true;
                    break;
                }
            }
        }

        if (!reduced) {
            if (chunk_count >= current.size()) break;  // 1-minimal
            granularity = std::min(granularity * 2, current.size());
        }
    }

    result.exec = std::move(best);
    return result;
}

std::pair<std::string, std::string> write_reproducer(const std::string& base_path,
                                                     const ScenarioSpec& spec,
                                                     const ShrinkResult& result) {
    std::string scn_path = base_path + ".scn";
    std::string trace_path = base_path + ".jsonl";

    std::ofstream scn(scn_path);
    if (!scn) throw std::runtime_error("cannot write reproducer spec: " + scn_path);
    scn << spec.to_text();
    scn.close();

    scenario::write_trace_file(trace_path, result.exec.to_trace(spec));
    return {scn_path, trace_path};
}

}  // namespace xheal::trace_tools
