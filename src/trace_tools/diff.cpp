#include "trace_tools/diff.hpp"

#include <algorithm>
#include <sstream>

namespace xheal::trace_tools {

using scenario::Trace;
using scenario::TraceEvent;
using scenario::hex64;

namespace {

/// First differing field of two events, in report priority order.
std::string divergent_field(const TraceEvent& a, const TraceEvent& b) {
    if (a.kind != b.kind) return "kind";
    if (a.node != b.node) return "node";
    if (a.neighbors != b.neighbors) return "neighbors";
    if (a.step != b.step) return "step";
    if (a.phase != b.phase) return "phase";
    return "";
}

}  // namespace

DiffResult diff_traces(const Trace& a, const Trace& b) {
    DiffResult result;

    std::ostringstream header;
    if (a.scenario != b.scenario)
        header << "scenario '" << a.scenario << "' vs '" << b.scenario << "'; ";
    if (a.seed != b.seed) header << "seed " << a.seed << " vs " << b.seed << "; ";
    if (a.spec_hash != b.spec_hash)
        header << "spec_hash " << hex64(a.spec_hash) << " vs " << hex64(b.spec_hash)
               << "; ";
    result.header_note = header.str();
    if (!result.header_note.empty()) {
        result.header_note.resize(result.header_note.size() - 2);  // trim "; "
        result.header_equal = false;
    }

    std::size_t common = std::min(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (a.events[i] == b.events[i]) continue;
        result.divergence_index = i;
        result.divergence_field = divergent_field(a.events[i], b.events[i]);
        break;
    }
    if (result.divergence_index == DiffResult::npos &&
        a.events.size() != b.events.size()) {
        result.divergence_index = common;
        result.divergence_field = "length";
    }

    result.trace_hash_equal = a.trace_hash == b.trace_hash;
    result.fingerprint_equal = a.fingerprint == b.fingerprint;
    return result;
}

std::string format_diff(const DiffResult& diff, const Trace& a, const Trace& b,
                        std::size_t context) {
    std::ostringstream out;
    if (diff.identical()) {
        out << "traces identical: " << a.events.size() << " events, trace_hash "
            << hex64(a.trace_hash) << ", fingerprint " << hex64(a.fingerprint) << "\n";
        return out.str();
    }
    if (!diff.header_equal) out << "header differs: " << diff.header_note << "\n";

    if (!diff.events_equal()) {
        std::size_t at = diff.divergence_index;
        out << "first divergent event: index " << at << " (" << diff.divergence_field
            << ") — a has " << a.events.size() << " events, b has " << b.events.size()
            << "\n";
        auto print_side = [&](const char* name, const Trace& t) {
            std::size_t from = at > context ? at - context : 0;
            std::size_t to = std::min(t.events.size(), at + context + 1);
            for (std::size_t i = from; i < to; ++i)
                out << (i == at ? "> " : "  ") << name << "[" << i << "] "
                    << scenario::event_to_json(t.events[i]) << "\n";
            if (at >= t.events.size())
                out << "> " << name << "[" << at << "] <end of trace>\n";
        };
        print_side("a", a);
        print_side("b", b);
    } else {
        out << "event streams identical (" << a.events.size() << " events)\n";
    }

    if (!diff.trace_hash_equal)
        out << "trace_hash differs: " << hex64(a.trace_hash) << " vs "
            << hex64(b.trace_hash) << "\n";
    if (!diff.fingerprint_equal)
        out << "fingerprint differs: " << hex64(a.fingerprint) << " vs "
            << hex64(b.fingerprint)
            << (diff.events_equal()
                    ? " (same events, different final graph — healer-side divergence)"
                    : "")
            << "\n";
    return out.str();
}

}  // namespace xheal::trace_tools
