#include "trace_tools/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace xheal::trace_tools {

namespace {

BatchOutcome run_one(const BatchJob& job) {
    BatchOutcome out;
    out.file = job.file;
    out.scenario = job.spec.name;
    out.healer = job.spec.healer.kind;
    try {
        scenario::ScenarioRunner runner(job.spec);
        runner.set_probe_mode(job.probe_mode);
        if (job.shards != 0) runner.set_shards(job.shards);
        scenario::RunResult result = runner.run();
        out.pass = result.passed();
        out.steps = result.steps_done;
        out.events = result.events.size();
        out.trace_hash = result.trace_hash;
        out.fingerprint = result.fingerprint;
        out.seconds = result.seconds;
        out.steps_per_sec = result.steps_per_sec();
        out.probe_seconds = result.probe_seconds;
        out.probe_stall_seconds = result.probe_stall_seconds;
        out.samples = result.samples.size();
        out.deletions = result.final_sample.deletions;
        out.messages = result.final_sample.messages;
        out.rounds = result.final_sample.rounds;
        out.retries = result.final_sample.retries;
        out.shards = result.shards;
        out.failures = result.failures;
    } catch (const std::exception& e) {
        out.errored = true;
        out.error = e.what();
    }
    return out;
}

}  // namespace

std::vector<BatchOutcome> run_batch(const std::vector<BatchJob>& jobs,
                                    std::size_t workers) {
    std::vector<BatchOutcome> outcomes(jobs.size());
    if (jobs.empty()) return outcomes;
    std::size_t pool = std::min(std::max<std::size_t>(workers, 1), jobs.size());
    if (pool == 1) {
        // Degenerate pool: run on the calling thread (keeps --jobs 1 free of
        // any threading, the like-for-like baseline for determinism diffs).
        for (std::size_t i = 0; i < jobs.size(); ++i) outcomes[i] = run_one(jobs[i]);
        return outcomes;
    }

    // Dynamic distribution: workers claim the next unstarted job. Each
    // outcome lands in its own pre-sized slot, so no result locking; the
    // claim counter is the only shared mutable state.
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size()) return;
            outcomes[i] = run_one(jobs[i]);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) threads.emplace_back(drain);
    for (std::thread& t : threads) t.join();
    return outcomes;
}

}  // namespace xheal::trace_tools
