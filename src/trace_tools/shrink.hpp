// TraceShrinker — ddmin-style delta debugging over event streams: reduce
// any invariant-breaking stream to a 1-minimal reproducer and emit it as a
// standalone (.scn, .jsonl) pair that `xheal_run replay` reproduces
// byte-for-byte.
//
// The predicate is "TraceExecutor reports at least one violation for these
// events under this spec". Shrinking always starts from the *canonical*
// applied stream of the failing input (infeasible events dropped, stream
// cut at the first violation when stop_on_violation is set) — re-executing
// a canonical stream replays the identical session history, so it fails
// iff the input failed, and it is usually already much shorter. Each
// successful reduction is re-canonicalized the same way, which keeps every
// intermediate stream feasible and lets the executor's violation cut-off
// act as a free extra shrink per round.
//
// Termination: a ddmin round either strictly shrinks the stream (subset or
// complement reductions are shorter, and re-canonicalization never grows a
// stream) or doubles the granularity; granularity is capped at the current
// stream length, at which point the stream is 1-minimal and the loop ends.
// A predicate budget bounds the worst case (O(n^2) tests) regardless.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "scenario/trace.hpp"
#include "trace_tools/executor.hpp"

namespace xheal::trace_tools {

struct ShrinkOptions {
    ExecOptions exec;
    /// Hard cap on predicate evaluations (executor runs).
    std::size_t max_tests = 2000;
};

struct ShrinkResult {
    /// False when the input stream never violated anything (nothing to
    /// shrink); every other field is meaningful only when true.
    bool input_failed = false;
    std::size_t input_events = 0;    ///< size of the raw failing input
    std::size_t tests_run = 0;       ///< predicate evaluations spent
    /// Execution of the minimal stream: exec.applied is the reproducer,
    /// exec.violations pins the surviving failure.
    ExecResult exec;

    std::size_t final_events() const { return exec.applied.size(); }
};

/// Minimize `events` against the oracle suite for `spec`.
ShrinkResult shrink(const scenario::ScenarioSpec& spec,
                    const std::vector<scenario::TraceEvent>& events,
                    const ShrinkOptions& options = {});

/// Write the reproducer pair: `<base>.scn` (canonical spec text) and
/// `<base>.jsonl` (the minimal canonical trace). Returns the two paths.
/// `xheal_run replay <base>.scn <base>.jsonl` reproduces it byte-for-byte,
/// and `xheal_run shrink <base>.scn <base>.jsonl` re-confirms the
/// violation. Throws std::runtime_error when a file cannot be written.
std::pair<std::string, std::string> write_reproducer(const std::string& base_path,
                                                     const scenario::ScenarioSpec& spec,
                                                     const ShrinkResult& result);

}  // namespace xheal::trace_tools
