// TraceFuzzer — seeded adversarial-sequence search over a base scenario.
//
// Xheal's guarantees are invariant-shaped (degree bound, connectivity,
// expansion floor), and the Forgiving-Graph line of work shows they are
// broken by event *sequences*, not single events. The fuzzer therefore
// mutates whole runs: it records the base spec's event stream once, then
// per candidate either perturbs the schedule (phase reorder, burst spike,
// delete-fraction spike — re-run through ScenarioRunner to get a fresh
// stream) or perturbs the raw stream directly (truncation, window drop,
// window duplication, event swap), and executes every candidate through
// TraceExecutor with the full invariant oracle suite. Each finding carries
// the exact spec + input events that failed, ready for the shrinker.
//
// Fully deterministic: (base spec, FuzzOptions.seed) fixes every candidate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "scenario/trace.hpp"
#include "trace_tools/executor.hpp"

namespace xheal::trace_tools {

struct FuzzOptions {
    std::size_t candidates = 100;
    std::uint64_t seed = 1;
    /// Stop after this many findings (0 = never stop early).
    std::size_t max_findings = 8;
    ExecOptions exec;
};

struct FuzzFinding {
    std::size_t candidate = 0;  ///< candidate index (0-based)
    std::string mutator;
    scenario::ScenarioSpec spec;  ///< spec the candidate executed against
    std::vector<scenario::TraceEvent> events;  ///< input events that failed
    ExecResult exec;                           ///< canonical stream + violations
};

struct FuzzReport {
    std::size_t candidates_run = 0;
    std::size_t base_events = 0;
    std::vector<FuzzFinding> findings;

    bool clean() const { return findings.empty(); }
};

class TraceFuzzer {
public:
    TraceFuzzer(scenario::ScenarioSpec base, FuzzOptions options);

    /// Run the search. Call once per fuzzer.
    FuzzReport run();

    /// The mutator names run() draws from (for reporting/tests).
    static std::vector<std::string> mutator_names();

private:
    scenario::ScenarioSpec base_;
    FuzzOptions options_;
    TraceExecutor executor_;
};

}  // namespace xheal::trace_tools
