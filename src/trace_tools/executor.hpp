// TraceExecutor — the engine under the trace-forensics tools (diff replay,
// fuzzing, shrinking): apply an *arbitrary* event stream to a fresh session
// built from a spec, best-effort, with the full invariant oracle suite
// running as the stream executes.
//
// ScenarioRunner::replay is strict — it throws on any spec/trace mismatch,
// which is correct for the determinism check but useless for mutated or
// partially-deleted streams. The executor instead *skips* infeasible events
// (deleting a dead node, inserting against no live neighbor) and records
// the events it actually applied as a canonical trace: steps renumbered
// 0..k-1, insert node ids as the session assigned them, neighbors filtered
// to the live set. Because the session is built exactly the way
// ScenarioRunner builds it (master Rng at spec.seed draws the topology,
// the healer gets its own seed), a canonical trace replays byte-for-byte
// through `xheal_run replay` against the same spec — that is what makes
// shrunk reproducers standalone.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/invariants.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"
#include "spectral/probes.hpp"

namespace xheal::trace_tools {

struct ExecOptions {
    /// Run the structural oracles after every `check_every`-th applied
    /// event (and always after the last one). 0 = final check only.
    std::size_t check_every = 1;
    /// lambda2 floor for the spectral oracle; NaN disables. Checked after
    /// the final event only (it is the expensive oracle).
    double lambda2_floor = std::nan("");
    /// Check the Lemma 3 degree bound. Only meaningful for xheal-family
    /// healers — the executor drops it automatically when the spec's healer
    /// provides no cloud registry (baselines have unbounded degree).
    bool degree_bound = true;
    /// Stop applying events at the first finding (the tail of the stream
    /// cannot un-break an invariant, and shrinking wants the shortest
    /// failing prefix anyway).
    bool stop_on_violation = true;
    /// Never apply a delete at or below this population.
    std::size_t min_alive = 2;
    /// Caller hook to extend the oracle set (soak counters, extra checks)
    /// before execution starts.
    std::function<void(core::InvariantSuite&)> configure_suite;
};

/// One oracle finding, located in the canonical applied stream: the
/// violation was observed right after applying event `event_index` (the
/// last applied event for the final structural/spectral pass; 0 when the
/// stream applied nothing at all).
struct ExecViolation {
    std::size_t event_index = 0;
    std::string oracle;
    std::string message;
};

struct ExecResult {
    /// Canonical applied events (see file comment). A prefix of the input
    /// modulo skipped events when stop_on_violation hit.
    std::vector<scenario::TraceEvent> applied;
    std::uint64_t trace_hash = 0;   ///< FNV stream hash of `applied`
    std::uint64_t fingerprint = 0;  ///< final healed graph
    std::size_t skipped = 0;        ///< infeasible input events dropped
    std::vector<ExecViolation> violations;

    bool failed() const { return !violations.empty(); }
    /// The canonical stream as a serializable trace for the given spec
    /// (replays byte-for-byte through ScenarioRunner::replay).
    scenario::Trace to_trace(const scenario::ScenarioSpec& spec) const;
};

class TraceExecutor {
public:
    explicit TraceExecutor(ExecOptions options = {}) : options_(std::move(options)) {}

    const ExecOptions& options() const { return options_; }

    /// Build a fresh session from `spec` (topology/healer/seed; the phase
    /// schedule is ignored) and apply `events` best-effort under the
    /// oracles. Deterministic: same spec + events => same result.
    ExecResult execute(const scenario::ScenarioSpec& spec,
                       const std::vector<scenario::TraceEvent>& events);

private:
    ExecOptions options_;
    /// Sparse probe layer behind the lambda2 oracle, reused across
    /// candidates so fuzzing does not re-allocate probe scratch per run.
    spectral::ProbeEngine probe_engine_;
};

}  // namespace xheal::trace_tools
