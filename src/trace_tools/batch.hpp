// Parallel batch execution of scenario specs over a fixed worker pool.
//
// `xheal_run batch` (and the batch determinism tests) hand a pre-parsed job
// list to run_batch(), which executes each spec on one of `workers` pool
// threads and returns outcomes positionally: outcomes[i] always describes
// jobs[i], whatever the worker count or scheduling interleaving was.
//
// Determinism contract: a ScenarioRunner is self-contained — master rng,
// probe stream, healer, session and probe scratch are all owned by the
// runner, and each worker constructs a fresh runner per job — so a spec's
// trace hash, fingerprint, verdict and sampled metric values are identical
// at --jobs 1 and --jobs N. Only the timing fields vary. Work distribution
// is dynamic (an atomic next-job cursor), which affects throughput only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace xheal::trace_tools {

/// One spec to execute, with every ambient override (healer substitution,
/// schedule truncation) already applied by the caller.
struct BatchJob {
    std::string file;  ///< display name (filename within the batch dir)
    scenario::ScenarioSpec spec;
    scenario::ProbeMode probe_mode = scenario::ProbeMode::automatic;
    /// Shard-engine width override (`--shards`; 0 = follow the spec).
    /// Deterministic outcome fields are width-independent by contract.
    std::size_t shards = 0;
};

/// One job's outcome. Timing fields are the only non-deterministic members.
struct BatchOutcome {
    std::string file;
    std::string scenario;
    std::string healer;
    bool pass = false;
    std::size_t steps = 0;
    std::size_t events = 0;
    std::uint64_t trace_hash = 0;
    std::uint64_t fingerprint = 0;
    double seconds = 0.0;
    double steps_per_sec = 0.0;
    double probe_seconds = 0.0;
    double probe_stall_seconds = 0.0;
    std::size_t samples = 0;
    /// Distributed-protocol billing at run end (cumulative, deterministic;
    /// 0 for non-message-passing healers), plus the deletion count they
    /// amortize over — the batch JSON's Theorem 5 columns.
    std::size_t deletions = 0;
    std::size_t messages = 0;
    std::size_t rounds = 0;
    std::size_t retries = 0;
    /// Largest effective shard-engine width the run used (reporting
    /// metadata — timing floors compare like-for-like widths only).
    std::size_t shards = 1;
    std::vector<std::string> failures;
    /// The runner threw (spec names an unknown component, replay-grade
    /// invariant tripped, ...). `error` carries the message; the other
    /// result fields are defaults.
    bool errored = false;
    std::string error;
};

/// Execute every job on a pool of min(workers, jobs.size()) threads
/// (workers == 0 behaves as 1) and return positionally matching outcomes.
std::vector<BatchOutcome> run_batch(const std::vector<BatchJob>& jobs,
                                    std::size_t workers);

}  // namespace xheal::trace_tools
