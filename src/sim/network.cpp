#include "sim/network.hpp"

namespace xheal::sim {

std::size_t Context::round() const { return network_.rounds_executed(); }

void Context::send(graph::NodeId to, int type, std::vector<std::uint64_t> payload,
                   std::uint64_t ack_seq) {
    network_.enqueue(Message{self_, to, type, std::move(payload), ack_seq},
                     /*faultable=*/true);
}

void Network::add_node(graph::NodeId id, Handler handler) {
    XHEAL_EXPECTS(!has_node(id));
    handlers_.emplace(id, std::move(handler));
}

void Network::remove_node(graph::NodeId id) {
    XHEAL_EXPECTS(has_node(id));
    if (stepping_) {
        // Mid-round removal would destroy a handler the delivery loop may
        // still invoke; the node absorbs the rest of this round as a sink
        // and disappears when the round completes.
        deferred_handlers_.emplace_back(id, Handler{});
        removed_mid_step_.push_back(id);
        return;
    }
    handlers_.erase(id);
}

void Network::set_handler(graph::NodeId id, Handler handler) {
    XHEAL_EXPECTS(has_node(id));
    if (stepping_) {
        deferred_handlers_.emplace_back(id, std::move(handler));
        return;
    }
    handlers_[id] = std::move(handler);
}

void Network::remap_nodes(const std::vector<graph::NodeId>& old_to_new) {
    XHEAL_EXPECTS(idle());
    XHEAL_EXPECTS(!stepping_);
    // Rekey through scratch: extracting while iterating an unordered_map
    // with mutated keys is UB territory, and the handler std::functions must
    // move, not copy (they may own captured state).
    std::vector<std::pair<graph::NodeId, Handler>> moved;
    moved.reserve(handlers_.size());
    for (auto& [id, handler] : handlers_) {
        XHEAL_EXPECTS(id < old_to_new.size() &&
                      old_to_new[id] != graph::invalid_node);
        moved.emplace_back(old_to_new[id], std::move(handler));
    }
    handlers_.clear();
    for (auto& [id, handler] : moved) handlers_.emplace(id, std::move(handler));
}

void Network::post(Message m) { enqueue(std::move(m), /*faultable=*/true); }

void Network::post(graph::NodeId from, graph::NodeId to, int type,
                   std::vector<std::uint64_t> payload) {
    enqueue(Message{from, to, type, std::move(payload)}, /*faultable=*/true);
}

void Network::post_control(Message m) { enqueue(std::move(m), /*faultable=*/false); }

void Network::enqueue(Message m, bool faultable) {
    ++messages_sent_;
    if (faultable && model_.drop > 0.0 && drop_rng_.chance(model_.drop)) {
        ++messages_dropped_;
        return;
    }
    const std::size_t slot = faultable ? model_.latency : 0;
    if (queue_.size() <= slot) queue_.resize(slot + 1);
    queue_[slot].push_back(std::move(m));
    ++in_flight_;
}

std::size_t Network::step() {
    if (in_flight_ == 0) return 0;
    ++rounds_;
    std::vector<Message> current;
    if (!queue_.empty()) {
        current = std::move(queue_.front());
        queue_.pop_front();
    }
    in_flight_ -= current.size();

    stepping_ = true;
    std::size_t delivered = 0;
    for (const Message& m : current) {
        auto it = handlers_.find(m.to);
        if (it == handlers_.end()) continue;  // deleted node: message dropped
        ++delivered;
        if (it->second) {
            Context ctx(*this, m.to);
            it->second(m, ctx);
        }
    }
    stepping_ = false;

    // Apply swaps requested during the round, in request order, then honor
    // mid-round removals (set_handler contract; fixes the self-destruct UB
    // of assigning over the std::function currently on the call stack).
    for (auto& [id, handler] : deferred_handlers_) {
        auto it = handlers_.find(id);
        if (it != handlers_.end()) it->second = std::move(handler);
    }
    deferred_handlers_.clear();
    for (graph::NodeId id : removed_mid_step_) handlers_.erase(id);
    removed_mid_step_.clear();
    return delivered;
}

std::size_t Network::run(std::size_t max_rounds) {
    std::size_t executed = 0;
    while (!idle() && executed < max_rounds) {
        step();
        ++executed;
    }
    return executed;
}

}  // namespace xheal::sim
