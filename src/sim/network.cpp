#include "sim/network.hpp"

namespace xheal::sim {

std::size_t Context::round() const { return network_.rounds_executed(); }

void Context::send(graph::NodeId to, int type, std::vector<std::uint64_t> payload) {
    network_.enqueue(Message{self_, to, type, std::move(payload)});
}

void Network::add_node(graph::NodeId id, Handler handler) {
    XHEAL_EXPECTS(!has_node(id));
    handlers_.emplace(id, std::move(handler));
}

void Network::remove_node(graph::NodeId id) {
    XHEAL_EXPECTS(has_node(id));
    handlers_.erase(id);
}

void Network::set_handler(graph::NodeId id, Handler handler) {
    XHEAL_EXPECTS(has_node(id));
    handlers_[id] = std::move(handler);
}

void Network::post(Message m) { enqueue(std::move(m)); }

void Network::post(graph::NodeId from, graph::NodeId to, int type,
                   std::vector<std::uint64_t> payload) {
    enqueue(Message{from, to, type, std::move(payload)});
}

void Network::enqueue(Message m) {
    ++messages_sent_;
    next_.push_back(std::move(m));
}

std::size_t Network::step() {
    if (next_.empty()) return 0;
    std::vector<Message> current;
    current.swap(next_);
    ++rounds_;
    std::size_t delivered = 0;
    for (const Message& m : current) {
        auto it = handlers_.find(m.to);
        if (it == handlers_.end()) continue;  // deleted node: message dropped
        ++delivered;
        if (it->second) {
            Context ctx(*this, m.to);
            it->second(m, ctx);
        }
    }
    return delivered;
}

std::size_t Network::run(std::size_t max_rounds) {
    std::size_t executed = 0;
    while (!idle() && executed < max_rounds) {
        step();
        ++executed;
    }
    return executed;
}

}  // namespace xheal::sim
