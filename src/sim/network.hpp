// Synchronous round-based message-passing network (the LOCAL model of the
// paper's Fig. 1): messages sent in round r are delivered at the start of
// round r+1; all nodes process their inboxes in parallel; messages are
// never lost except when addressed to a deleted node. The network counts
// every message sent and every round executed — these counters are the
// measurements behind the Theorem 5 benches.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "util/expects.hpp"

namespace xheal::sim {

class Network;

/// Handed to a node's handler so it can reply; sends are delivered next
/// round.
class Context {
public:
    graph::NodeId self() const { return self_; }
    std::size_t round() const;
    void send(graph::NodeId to, int type, std::vector<std::uint64_t> payload = {});

private:
    friend class Network;
    Context(Network& net, graph::NodeId self) : network_(net), self_(self) {}
    Network& network_;
    graph::NodeId self_;
};

/// Per-node message handler. An empty handler makes the node a sink (it
/// still receives, which counts, but does not react).
using Handler = std::function<void(const Message&, Context&)>;

class Network {
public:
    /// Register a node. Ids must be unique among live nodes.
    void add_node(graph::NodeId id, Handler handler = {});

    /// Remove a node; in-flight messages to it are dropped on delivery.
    void remove_node(graph::NodeId id);

    bool has_node(graph::NodeId id) const { return handlers_.contains(id); }
    std::size_t node_count() const { return handlers_.size(); }

    void set_handler(graph::NodeId id, Handler handler);

    /// Inject a message from the environment (delivered next step()).
    void post(Message m);
    void post(graph::NodeId from, graph::NodeId to, int type,
              std::vector<std::uint64_t> payload = {});

    /// Deliver one synchronous round. Returns the number of messages
    /// delivered (0 when already quiescent, in which case no round is
    /// charged).
    std::size_t step();

    /// Step until quiescent or max_rounds elapsed; returns rounds executed.
    std::size_t run(std::size_t max_rounds = 1'000'000);

    bool idle() const { return next_.empty(); }

    // ---- counters ----
    std::uint64_t messages_sent() const { return messages_sent_; }
    std::uint64_t rounds_executed() const { return rounds_; }
    void reset_counters() {
        messages_sent_ = 0;
        rounds_ = 0;
    }

private:
    friend class Context;
    void enqueue(Message m);

    std::unordered_map<graph::NodeId, Handler> handlers_;
    std::vector<Message> next_;
    std::uint64_t messages_sent_ = 0;
    std::uint64_t rounds_ = 0;
};

}  // namespace xheal::sim
