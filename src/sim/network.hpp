// Synchronous round-based message-passing network (the LOCAL model of the
// paper's Fig. 1), with an optional seeded fault model for lossy-network
// experiments: messages sent in round r are delivered at the start of round
// r + 1 + latency; all nodes process their inboxes in parallel; a faultable
// message is lost with probability `drop` (decided deterministically from a
// dedicated seeded stream, in send order). The network counts every message
// sent, every message dropped and every round executed — these counters are
// the measurements behind the Theorem 5 benches.
//
// Round numbering convention (pinned by sim_test RoundConvention*):
//   - rounds_executed() is the number of COMPLETED rounds; the k-th call to
//     step() that delivers (or waits out a latency gap) executes round k.
//   - Context::round() inside a handler reports the round currently being
//     executed, i.e. the round the message is DELIVERED in (1-based).
//   - A message is "sent in round r" where r is the sender handler's
//     executing round, or r = rounds_executed() for environment posts made
//     between steps (posts before the first step are round-0 sends). It is
//     delivered in round r + 1 + latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace xheal::sim {

class Network;

/// Scenario-configurable fault injection. `drop` is the per-message loss
/// probability in [0, 1]; `latency` is the extra integer delay in rounds on
/// top of the model's baseline one round (delivery after r + 1 + latency).
/// Control posts (post_control) bypass both knobs.
struct FaultModel {
    double drop = 0.0;
    std::size_t latency = 0;

    bool faultless() const { return drop == 0.0 && latency == 0; }
};

/// Handed to a node's handler so it can reply; sends are delivered
/// 1 + latency rounds later.
class Context {
public:
    graph::NodeId self() const { return self_; }
    /// The round currently being executed (the delivery round of the
    /// message this handler is processing). See the numbering convention
    /// in the file header.
    std::size_t round() const;
    /// Send a message; `ack_seq != 0` requests a delivery acknowledgement
    /// from protocol handlers that honor it (see Message::ack_seq).
    void send(graph::NodeId to, int type, std::vector<std::uint64_t> payload = {},
              std::uint64_t ack_seq = 0);

private:
    friend class Network;
    Context(Network& net, graph::NodeId self) : network_(net), self_(self) {}
    Network& network_;
    graph::NodeId self_;
};

/// Per-node message handler. An empty handler makes the node a sink (it
/// still receives, which counts, but does not react).
using Handler = std::function<void(const Message&, Context&)>;

class Network {
public:
    /// Register a node. Ids must be unique among live nodes.
    void add_node(graph::NodeId id, Handler handler = {});

    /// Remove a node; in-flight messages to it are dropped on delivery.
    void remove_node(graph::NodeId id);

    bool has_node(graph::NodeId id) const { return handlers_.contains(id); }
    std::size_t node_count() const { return handlers_.size(); }

    /// Id-compaction support: rekey every registered node through the
    /// old->new map (every registered id must map to a valid new id, and the
    /// map must be injective over them). Requires a quiescent network — no
    /// messages in flight, not inside step() — since stamped messages carry
    /// old ids. Handlers move; the drop stream, counters and fault model are
    /// untouched.
    void remap_nodes(const std::vector<graph::NodeId>& old_to_new);

    /// Replace a node's handler. Safe to call from inside a handler
    /// (including node `id`'s own executing handler): the swap is deferred
    /// until the current step()'s delivery loop completes, so the live
    /// std::function is never destroyed mid-call and every message of the
    /// current round is processed by the round's original handlers.
    void set_handler(graph::NodeId id, Handler handler);

    /// Configure fault injection for subsequent sends. In-flight messages
    /// keep the delivery round they were stamped with; the drop stream
    /// (seed_drop_stream) is NOT reset, so mid-run model changes stay
    /// deterministic.
    void set_fault_model(const FaultModel& model) { model_ = model; }
    const FaultModel& fault_model() const { return model_; }

    /// Seed the deterministic drop-decision stream. One coin is drawn per
    /// faultable send while drop > 0, in send order.
    void seed_drop_stream(std::uint64_t seed) { drop_rng_ = util::Rng(seed); }

    /// Inject a message from the environment (delivered after
    /// 1 + latency step()s, unless dropped).
    void post(Message m);
    void post(graph::NodeId from, graph::NodeId to, int type,
              std::vector<std::uint64_t> payload = {});

    /// Fault-immune post: delivered next step(), never dropped. Models the
    /// failure detector / deletion-notice channel of the paper's model
    /// (Fig. 1: neighbors of a deleted node are informed as part of the
    /// model, not the protocol). Billed as a sent message like any other.
    void post_control(Message m);

    /// Deliver one synchronous round. Returns the number of messages
    /// delivered (0 when already quiescent, in which case no round is
    /// charged; a latency gap — in-flight messages none of which are due
    /// yet — charges a round and delivers 0).
    std::size_t step();

    /// Step until quiescent or max_rounds elapsed; returns rounds executed.
    std::size_t run(std::size_t max_rounds = 1'000'000);

    bool idle() const { return in_flight_ == 0; }

    // ---- counters ----
    std::uint64_t messages_sent() const { return messages_sent_; }
    std::uint64_t messages_dropped() const { return messages_dropped_; }
    std::uint64_t rounds_executed() const { return rounds_; }

    /// Start a new counting epoch. Requires an idle network: resetting with
    /// messages in flight would bill the previous epoch's deliveries into
    /// the new one (sent in the old epoch, rounds charged in the new).
    void reset_counters() {
        XHEAL_EXPECTS(idle());
        messages_sent_ = 0;
        messages_dropped_ = 0;
        rounds_ = 0;
    }

private:
    friend class Context;
    void enqueue(Message m, bool faultable);

    std::unordered_map<graph::NodeId, Handler> handlers_;
    /// queue_[i] holds the messages due i rounds after the next step()'s
    /// round: queue_[0] is delivered by the next step, queue_[latency] is
    /// where faultable sends land.
    std::deque<std::vector<Message>> queue_;
    std::size_t in_flight_ = 0;
    FaultModel model_;
    util::Rng drop_rng_{0x6c6f737379ull};  // "lossy"
    std::uint64_t messages_sent_ = 0;
    std::uint64_t messages_dropped_ = 0;
    std::uint64_t rounds_ = 0;
    /// Delivery-loop state: handler swaps requested mid-round are parked
    /// here and applied when the round completes (set_handler contract).
    bool stepping_ = false;
    std::vector<std::pair<graph::NodeId, Handler>> deferred_handlers_;
    std::vector<graph::NodeId> removed_mid_step_;
};

}  // namespace xheal::sim
