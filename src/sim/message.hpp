// Message type for the synchronous LOCAL-model simulator. The LOCAL model
// (paper Section 2) does not bound message size, so the payload is an
// arbitrary vector of words; `type` is a protocol-defined tag.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace xheal::sim {

struct Message {
    graph::NodeId from = graph::invalid_node;
    graph::NodeId to = graph::invalid_node;
    int type = 0;
    std::vector<std::uint64_t> payload;
    /// Reliable-delivery sequence number; 0 means no ack requested. When
    /// non-zero, protocol handlers reply with a tag::ack message whose
    /// payload[0] echoes this value (lossy-network retry protocol).
    std::uint64_t ack_seq = 0;
};

/// Well-known message tags used by the Xheal repair protocol. Protocols may
/// define additional tags above user_base.
namespace tag {
inline constexpr int deletion_notice = 1;   ///< neighbor informed of deletion
inline constexpr int splice = 2;            ///< H-graph cycle splice repair
inline constexpr int elect = 3;             ///< leader-election tournament
inline constexpr int inform_topology = 4;   ///< leader installs cloud edges
inline constexpr int leader_announce = 5;   ///< new leader broadcast
inline constexpr int free_query = 6;        ///< ask a cloud leader for a free node
inline constexpr int free_reply = 7;        ///< leader's reply
inline constexpr int flood = 8;             ///< BFS wave (combine operation)
inline constexpr int converge = 9;          ///< BFS convergecast of addresses
inline constexpr int ack = 10;              ///< delivery ack (payload[0] = ack_seq)
inline constexpr int user_base = 100;
}  // namespace tag

}  // namespace xheal::sim
