#include "adversary/adversary.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/expects.hpp"

namespace xheal::adversary {

using core::HealingSession;
using graph::NodeId;

NodeId RandomDeletion::pick(const HealingSession& session, util::Rng& rng) {
    const auto& alive = session.alive_pool();
    if (alive.empty()) return graph::invalid_node;
    return alive[rng.index(alive.size())];
}

NodeId MaxDegreeDeletion::pick(const HealingSession& session, util::Rng&) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_degree = 0;
    for (NodeId v : g.nodes()) {
        std::size_t d = g.degree(v);
        if (best == graph::invalid_node || d > best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

NodeId MinDegreeDeletion::pick(const HealingSession& session, util::Rng&) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_degree = 0;
    for (NodeId v : g.nodes()) {
        std::size_t d = g.degree(v);
        if (best == graph::invalid_node || d < best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

NodeId CutPointDeletion::pick(const HealingSession& session, util::Rng& rng) {
    const auto& g = session.current();
    auto cuts = graph::articulation_points(g);
    if (!cuts.empty()) return cuts[rng.index(cuts.size())];
    return MaxDegreeDeletion{}.pick(session, rng);
}

NodeId ColoredDegreeDeletion::pick(const HealingSession& session, util::Rng& rng) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_colored = 0;
    for (NodeId v : g.nodes()) {
        std::size_t colored = 0;
        for (const auto& [u, claims] : g.row(v)) {
            (void)u;
            if (claims.colored()) ++colored;
        }
        if (best == graph::invalid_node || colored > best_colored) {
            best = v;
            best_colored = colored;
        }
    }
    if (best_colored == 0) return RandomDeletion{}.pick(session, rng);
    return best;
}

NodeId BridgeHunterDeletion::pick(const HealingSession& session, util::Rng& rng) {
    XHEAL_EXPECTS(registry_ != nullptr);
    const auto& g = session.current();
    // Kill bridge nodes (members of a secondary cloud) with the most
    // primary-cloud memberships: each kill forces a FixSecondary and burns
    // a free node, steering the healer toward the combine path.
    NodeId best = graph::invalid_node;
    std::size_t best_score = 0;
    std::vector<graph::ColorId> prim;  // reused across the scan: one buffer per pick
    for (NodeId v : g.nodes()) {
        if (registry_->is_free(v)) continue;
        registry_->primary_clouds_of(v, prim);
        std::size_t score = 1 + prim.size();
        if (best == graph::invalid_node || score > best_score) {
            best = v;
            best_score = score;
        }
    }
    if (best != graph::invalid_node) return best;
    return ColoredDegreeDeletion{}.pick(session, rng);
}

CompositeDeletion::CompositeDeletion(std::vector<Member> members)
    : members_(std::move(members)), counts_(members_.size(), 0) {
    XHEAL_EXPECTS(!members_.empty());
    double total = 0.0;
    for (const Member& m : members_) {
        XHEAL_EXPECTS(m.weight >= 0.0);
        total += m.weight;
    }
    XHEAL_EXPECTS(total > 0.0);
    double running = 0.0;
    for (const Member& m : members_) {
        running += m.weight / total;
        cumulative_.push_back(running);
    }
    // Float-sum slack must never make the last member unreachable.
    cumulative_.back() = 1.0;
}

NodeId CompositeDeletion::pick(const HealingSession& session, util::Rng& rng) {
    double u = rng.uniform01();
    std::size_t which = 0;
    while (which + 1 < members_.size() && u >= cumulative_[which]) ++which;
    ++counts_[which];
    return members_[which].strategy->pick(session, rng);
}

std::vector<NodeId> RandomAttach::pick_neighbors(const HealingSession& session,
                                                 util::Rng& rng) {
    const auto& alive = session.alive_pool();
    if (alive.empty()) return {};
    std::size_t k = std::min(k_, alive.size());
    // k distinct uniform picks by rejection: k is a small constant, so this
    // is O(k^2) expected instead of the full pool copy + shuffle that
    // rng.sample() performs (which dominated stepping at n = 1e5).
    std::vector<NodeId> chosen;
    chosen.reserve(k);
    while (chosen.size() < k) {
        NodeId v = alive[rng.index(alive.size())];
        if (std::find(chosen.begin(), chosen.end(), v) == chosen.end())
            chosen.push_back(v);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::vector<NodeId> PreferentialAttach::pick_neighbors(const HealingSession& session,
                                                       util::Rng& rng) {
    const auto& g = session.current();
    const auto& alive = session.alive_pool();
    if (alive.empty()) return {};
    std::size_t k = std::min(k_, alive.size());

    // (degree + 1)-proportional sampling without replacement (the +1 keeps
    // isolated nodes reachable), by rejection against the incrementally
    // maintained degree maximum: draw v uniformly from the alive pool and a
    // uniform threshold in [0, max_degree]; accept when the threshold lands
    // inside v's degree+1 slots. Equivalent to sampling a uniform occupied
    // cell of the (alive x max_degree+1) edge-endpoint matrix of the slot
    // graph, so acceptance is exact without any O(n) weight scan — the old
    // implementation recomputed the full prefix-sum per pick. Expected
    // trials per accept are (max_degree+1)/(mean_degree+1): O(1) whenever
    // max/mean degree is bounded, which the Lemma 3 degree invariant
    // guarantees for healed graphs (a star under no-heal degrades to the
    // old O(n) — the bench row pref_attach tracks the regular case).
    std::size_t max_degree = g.max_degree();
    std::vector<NodeId> chosen;
    chosen.reserve(k);
    while (chosen.size() < k) {
        NodeId v = alive[rng.index(alive.size())];
        if (rng.uniform_u64(0, max_degree) > g.degree(v)) continue;
        if (std::find(chosen.begin(), chosen.end(), v) == chosen.end())
            chosen.push_back(v);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::size_t run_churn(HealingSession& session, DeletionStrategy& deleter,
                      InsertionStrategy& inserter, const ChurnConfig& config,
                      util::Rng& rng) {
    std::size_t deletions = 0;
    for (std::size_t step = 0; step < config.steps; ++step) {
        bool can_delete = session.current().node_count() > config.min_nodes;
        if (can_delete && rng.chance(config.delete_fraction)) {
            NodeId victim = deleter.pick(session, rng);
            if (victim != graph::invalid_node) {
                session.delete_node(victim);
                ++deletions;
                continue;
            }
        }
        auto nbrs = inserter.pick_neighbors(session, rng);
        if (!nbrs.empty()) session.insert_node(nbrs);
    }
    return deletions;
}

}  // namespace xheal::adversary
