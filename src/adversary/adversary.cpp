#include "adversary/adversary.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/expects.hpp"

namespace xheal::adversary {

using core::HealingSession;
using graph::NodeId;

NodeId RandomDeletion::pick(const HealingSession& session, util::Rng& rng) {
    const auto& alive = session.alive_pool();
    if (alive.empty()) return graph::invalid_node;
    return alive[rng.index(alive.size())];
}

NodeId MaxDegreeDeletion::pick(const HealingSession& session, util::Rng&) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_degree = 0;
    for (NodeId v : g.nodes()) {
        std::size_t d = g.degree(v);
        if (best == graph::invalid_node || d > best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

NodeId MinDegreeDeletion::pick(const HealingSession& session, util::Rng&) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_degree = 0;
    for (NodeId v : g.nodes()) {
        std::size_t d = g.degree(v);
        if (best == graph::invalid_node || d < best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

NodeId CutPointDeletion::pick(const HealingSession& session, util::Rng& rng) {
    const auto& g = session.current();
    auto cuts = graph::articulation_points(g);
    if (!cuts.empty()) return cuts[rng.index(cuts.size())];
    return MaxDegreeDeletion{}.pick(session, rng);
}

NodeId ColoredDegreeDeletion::pick(const HealingSession& session, util::Rng& rng) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_colored = 0;
    for (NodeId v : g.nodes()) {
        std::size_t colored = 0;
        for (const auto& [u, claims] : g.row(v)) {
            (void)u;
            if (claims.colored()) ++colored;
        }
        if (best == graph::invalid_node || colored > best_colored) {
            best = v;
            best_colored = colored;
        }
    }
    if (best_colored == 0) return RandomDeletion{}.pick(session, rng);
    return best;
}

NodeId BridgeHunterDeletion::pick(const HealingSession& session, util::Rng& rng) {
    XHEAL_EXPECTS(registry_ != nullptr);
    const auto& g = session.current();
    // Kill bridge nodes (members of a secondary cloud) with the most
    // primary-cloud memberships: each kill forces a FixSecondary and burns
    // a free node, steering the healer toward the combine path.
    NodeId best = graph::invalid_node;
    std::size_t best_score = 0;
    std::vector<graph::ColorId> prim;  // reused across the scan: one buffer per pick
    for (NodeId v : g.nodes()) {
        if (registry_->is_free(v)) continue;
        registry_->primary_clouds_of(v, prim);
        std::size_t score = 1 + prim.size();
        if (best == graph::invalid_node || score > best_score) {
            best = v;
            best_score = score;
        }
    }
    if (best != graph::invalid_node) return best;
    return ColoredDegreeDeletion{}.pick(session, rng);
}

std::vector<NodeId> RandomAttach::pick_neighbors(const HealingSession& session,
                                                 util::Rng& rng) {
    const auto& alive = session.alive_pool();
    if (alive.empty()) return {};
    std::size_t k = std::min(k_, alive.size());
    // k distinct uniform picks by rejection: k is a small constant, so this
    // is O(k^2) expected instead of the full pool copy + shuffle that
    // rng.sample() performs (which dominated stepping at n = 1e5).
    std::vector<NodeId> chosen;
    chosen.reserve(k);
    while (chosen.size() < k) {
        NodeId v = alive[rng.index(alive.size())];
        if (std::find(chosen.begin(), chosen.end(), v) == chosen.end())
            chosen.push_back(v);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::vector<NodeId> PreferentialAttach::pick_neighbors(const HealingSession& session,
                                                       util::Rng& rng) {
    const auto& g = session.current();
    const auto& alive = session.alive_pool();
    if (alive.empty()) return {};
    std::size_t k = std::min(k_, alive.size());

    // Degree-proportional sampling without replacement (degree + 1 so
    // isolated nodes stay reachable).
    std::vector<NodeId> pool = alive;
    std::vector<NodeId> chosen;
    chosen.reserve(k);
    for (std::size_t round = 0; round < k && !pool.empty(); ++round) {
        double total = 0.0;
        for (NodeId v : pool) total += static_cast<double>(g.degree(v) + 1);
        double target = rng.uniform01() * total;
        std::size_t pick_index = pool.size() - 1;
        double acc = 0.0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            acc += static_cast<double>(g.degree(pool[i]) + 1);
            if (acc >= target) {
                pick_index = i;
                break;
            }
        }
        chosen.push_back(pool[pick_index]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick_index));
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::size_t run_churn(HealingSession& session, DeletionStrategy& deleter,
                      InsertionStrategy& inserter, const ChurnConfig& config,
                      util::Rng& rng) {
    std::size_t deletions = 0;
    for (std::size_t step = 0; step < config.steps; ++step) {
        bool can_delete = session.current().node_count() > config.min_nodes;
        if (can_delete && rng.chance(config.delete_fraction)) {
            NodeId victim = deleter.pick(session, rng);
            if (victim != graph::invalid_node) {
                session.delete_node(victim);
                ++deletions;
                continue;
            }
        }
        auto nbrs = inserter.pick_neighbors(session, rng);
        if (!nbrs.empty()) session.insert_node(nbrs);
    }
    return deletions;
}

}  // namespace xheal::adversary
