// Adversary strategies for the node insert/delete model (paper Section 2).
// The adversary knows the topology and the algorithm but not the healer's
// private random bits. Deletion strategies pick a victim among alive nodes;
// insertion strategies pick the neighbor set for a new node.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/cloud_registry.hpp"
#include "core/session.hpp"
#include "util/rng.hpp"

namespace xheal::adversary {

class DeletionStrategy {
public:
    virtual ~DeletionStrategy() = default;
    virtual std::string_view name() const = 0;
    /// Pick a victim among the alive nodes; invalid_node to skip.
    virtual graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) = 0;
};

/// Uniform random victim.
class RandomDeletion : public DeletionStrategy {
public:
    std::string_view name() const override { return "random"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;
};

/// Always the highest-degree alive node (hub attack; ties by lowest id).
class MaxDegreeDeletion : public DeletionStrategy {
public:
    std::string_view name() const override { return "max-degree"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;
};

/// Always the lowest-degree alive node.
class MinDegreeDeletion : public DeletionStrategy {
public:
    std::string_view name() const override { return "min-degree"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;
};

/// Prefers articulation points (cut vertices) — the most damaging victim a
/// topology-aware adversary can pick; falls back to max degree.
class CutPointDeletion : public DeletionStrategy {
public:
    std::string_view name() const override { return "cut-point"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;
};

/// Targets nodes with the most colored (healer-added) incident edges:
/// stresses cloud repair paths. Pure topology knowledge.
class ColoredDegreeDeletion : public DeletionStrategy {
public:
    std::string_view name() const override { return "colored-degree"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;
};

/// White-box stress strategy: reads the Xheal registry and kills bridge
/// (non-free) nodes first, starving clouds of free nodes to force the
/// costly combine path. Used by the amortization bench and failure tests.
class BridgeHunterDeletion : public DeletionStrategy {
public:
    explicit BridgeHunterDeletion(const core::CloudRegistry* registry)
        : registry_(registry) {}
    std::string_view name() const override { return "bridge-hunter"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;

private:
    const core::CloudRegistry* registry_;
};

/// Weighted mixture of deletion strategies (scenario grammar v2
/// `deleter=k1:w1,k2:w2`): each pick first draws which member acts,
/// proportionally to the weights, then delegates. One uniform01 draw per
/// pick regardless of member count, so traces stay stable when weights
/// move. Per-member pick counts are exposed for the statistical tests
/// (chi-square of realized vs configured mixture).
class CompositeDeletion : public DeletionStrategy {
public:
    struct Member {
        std::unique_ptr<DeletionStrategy> strategy;
        double weight = 1.0;  ///< positive; normalized internally
    };

    /// Requires at least one member and a positive weight total.
    explicit CompositeDeletion(std::vector<Member> members);

    std::string_view name() const override { return "composite"; }
    graph::NodeId pick(const core::HealingSession& session, util::Rng& rng) override;

    /// How many picks each member has served, in construction order.
    const std::vector<std::size_t>& pick_counts() const { return counts_; }

private:
    std::vector<Member> members_;
    std::vector<double> cumulative_;  ///< normalized inclusive prefix sums
    std::vector<std::size_t> counts_;
};

class InsertionStrategy {
public:
    virtual ~InsertionStrategy() = default;
    virtual std::string_view name() const = 0;
    /// Pick the neighbor set (non-empty unless the graph is empty).
    virtual std::vector<graph::NodeId> pick_neighbors(const core::HealingSession& session,
                                                      util::Rng& rng) = 0;
};

/// Attach to k random alive nodes.
class RandomAttach : public InsertionStrategy {
public:
    explicit RandomAttach(std::size_t k) : k_(k) {}
    std::string_view name() const override { return "random-attach"; }
    std::vector<graph::NodeId> pick_neighbors(const core::HealingSession& session,
                                              util::Rng& rng) override;

private:
    std::size_t k_;
};

/// Attach to k nodes drawn proportionally to degree (rich-get-richer).
class PreferentialAttach : public InsertionStrategy {
public:
    explicit PreferentialAttach(std::size_t k) : k_(k) {}
    std::string_view name() const override { return "preferential-attach"; }
    std::vector<graph::NodeId> pick_neighbors(const core::HealingSession& session,
                                              util::Rng& rng) override;

private:
    std::size_t k_;
};

/// Mixed insert/delete churn driver: at each step deletes with probability
/// delete_fraction (when above min_nodes), otherwise inserts.
struct ChurnConfig {
    std::size_t steps = 100;
    double delete_fraction = 0.5;
    std::size_t min_nodes = 4;
};

/// Runs the churn; returns the number of deletions performed.
std::size_t run_churn(core::HealingSession& session, DeletionStrategy& deleter,
                      InsertionStrategy& inserter, const ChurnConfig& config,
                      util::Rng& rng);

}  // namespace xheal::adversary
