// Initial-graph generators for tests, examples and benches. All generators
// return graphs with node ids 0..n-1 and black edges only.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace xheal::workload {

/// Path P_n: 0-1-...-(n-1). Requires n >= 1.
graph::Graph make_path(std::size_t n);

/// Cycle C_n. Requires n >= 3.
graph::Graph make_cycle(std::size_t n);

/// Star with a center (id 0) and `leaves` leaves. Requires leaves >= 1.
graph::Graph make_star(std::size_t leaves);

/// Complete graph K_n. Requires n >= 1.
graph::Graph make_complete(std::size_t n);

/// rows x cols grid. Requires rows, cols >= 1.
graph::Graph make_grid(std::size_t rows, std::size_t cols);

/// rows x cols torus (wrap-around grid). Requires rows, cols >= 3.
graph::Graph make_torus(std::size_t rows, std::size_t cols);

/// Hypercube Q_dim (2^dim nodes). Requires 1 <= dim <= 20.
graph::Graph make_hypercube(std::size_t dim);

/// Complete balanced binary tree with n nodes (heap layout). n >= 1.
graph::Graph make_binary_tree(std::size_t n);

/// Connected Erdos-Renyi G(n, p): resamples until connected (up to 200
/// attempts, then throws). Requires n >= 2, 0 < p <= 1.
graph::Graph make_erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Random d-regular simple graph via the configuration model with
/// edge-switching repair. Requires n*d even, d < n.
graph::Graph make_random_regular(std::size_t n, std::size_t d, util::Rng& rng);

/// Barabasi-Albert preferential attachment: seed clique of m+1 nodes, each
/// new node attaches to m existing nodes by degree. Requires n > m >= 1.
graph::Graph make_barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng);

/// Two cliques of `clique` nodes joined by a single bridge edge — the
/// canonical low-expansion graph. Requires clique >= 2.
graph::Graph make_dumbbell(std::size_t clique);

/// The Petersen graph (10 nodes, 3-regular, well-known spectrum).
graph::Graph make_petersen();

/// Projection of a random Law-Siu H-graph with d Hamilton cycles: a random
/// 2d-regular(ish) expander. Requires n >= 3, d >= 1.
graph::Graph make_hgraph_graph(std::size_t n, std::size_t d, util::Rng& rng);

}  // namespace xheal::workload
