#include "workload/generators.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "expander/hgraph.hpp"
#include "graph/algorithms.hpp"
#include "util/expects.hpp"

namespace xheal::workload {

using graph::Graph;
using graph::NodeId;

namespace {

Graph with_nodes(std::size_t n) {
    Graph g;
    for (std::size_t i = 0; i < n; ++i) g.add_node();
    return g;
}

}  // namespace

Graph make_path(std::size_t n) {
    XHEAL_EXPECTS(n >= 1);
    Graph g = with_nodes(n);
    for (std::size_t i = 0; i + 1 < n; ++i)
        g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
    return g;
}

Graph make_cycle(std::size_t n) {
    XHEAL_EXPECTS(n >= 3);
    Graph g = make_path(n);
    g.add_black_edge(static_cast<NodeId>(n - 1), 0);
    return g;
}

Graph make_star(std::size_t leaves) {
    XHEAL_EXPECTS(leaves >= 1);
    Graph g = with_nodes(leaves + 1);
    for (std::size_t i = 1; i <= leaves; ++i) g.add_black_edge(0, static_cast<NodeId>(i));
    return g;
}

Graph make_complete(std::size_t n) {
    XHEAL_EXPECTS(n >= 1);
    Graph g = with_nodes(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
    XHEAL_EXPECTS(rows >= 1 && cols >= 1);
    Graph g = with_nodes(rows * cols);
    auto id = [cols](std::size_t r, std::size_t c) {
        return static_cast<NodeId>(r * cols + c);
    };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (c + 1 < cols) g.add_black_edge(id(r, c), id(r, c + 1));
            if (r + 1 < rows) g.add_black_edge(id(r, c), id(r + 1, c));
        }
    }
    return g;
}

Graph make_torus(std::size_t rows, std::size_t cols) {
    XHEAL_EXPECTS(rows >= 3 && cols >= 3);
    Graph g = with_nodes(rows * cols);
    auto id = [cols](std::size_t r, std::size_t c) {
        return static_cast<NodeId>(r * cols + c);
    };
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            g.add_black_edge(id(r, c), id(r, (c + 1) % cols));
            g.add_black_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    return g;
}

Graph make_hypercube(std::size_t dim) {
    XHEAL_EXPECTS(dim >= 1 && dim <= 20);
    std::size_t n = std::size_t{1} << dim;
    Graph g = with_nodes(n);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t b = 0; b < dim; ++b) {
            std::size_t u = v ^ (std::size_t{1} << b);
            if (u > v) g.add_black_edge(static_cast<NodeId>(v), static_cast<NodeId>(u));
        }
    }
    return g;
}

Graph make_binary_tree(std::size_t n) {
    XHEAL_EXPECTS(n >= 1);
    Graph g = with_nodes(n);
    for (std::size_t i = 1; i < n; ++i)
        g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>((i - 1) / 2));
    return g;
}

Graph make_erdos_renyi(std::size_t n, double p, util::Rng& rng) {
    XHEAL_EXPECTS(n >= 2);
    XHEAL_EXPECTS(p > 0.0 && p <= 1.0);
    for (int attempt = 0; attempt < 200; ++attempt) {
        Graph g = with_nodes(n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j)
                if (rng.chance(p))
                    g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
        if (graph::is_connected(g)) return g;
    }
    throw std::runtime_error("make_erdos_renyi: no connected sample in 200 attempts");
}

Graph make_random_regular(std::size_t n, std::size_t d, util::Rng& rng) {
    XHEAL_EXPECTS(d >= 1 && d < n);
    XHEAL_EXPECTS((n * d) % 2 == 0);

    // Configuration model: pair up d stubs per node, then repair conflicts
    // (self-loops / duplicate pairs) by random edge switches.
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (std::size_t v = 0; v < n; ++v)
        for (std::size_t k = 0; k < d; ++k) stubs.push_back(static_cast<NodeId>(v));

    for (int attempt = 0; attempt < 400; ++attempt) {
        rng.shuffle(stubs);
        std::vector<std::pair<NodeId, NodeId>> pairs;
        pairs.reserve(stubs.size() / 2);
        for (std::size_t i = 0; i < stubs.size(); i += 2)
            pairs.emplace_back(stubs[i], stubs[i + 1]);

        auto normalized = [](NodeId a, NodeId b) {
            return std::make_pair(std::min(a, b), std::max(a, b));
        };

        // Collect conflicts, then try to switch each against random
        // partners. Bounded effort; resample on failure.
        std::set<std::pair<NodeId, NodeId>> seen;
        std::vector<std::size_t> bad;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            if (pairs[i].first == pairs[i].second ||
                !seen.insert(normalized(pairs[i].first, pairs[i].second)).second) {
                bad.push_back(i);
            }
        }
        bool ok = true;
        for (std::size_t bi : bad) {
            bool fixed = false;
            for (int tries = 0; tries < 200 && !fixed; ++tries) {
                std::size_t j = rng.index(pairs.size());
                if (j == bi) continue;
                // Switch: (a,b),(c,e) -> (a,c),(b,e).
                auto [a, b] = pairs[bi];
                auto [c, e] = pairs[j];
                if (a == c || b == e || a == e || b == c) continue;
                auto p1 = normalized(a, c);
                auto p2 = normalized(b, e);
                auto old_j = normalized(c, e);
                if (seen.contains(p1) || seen.contains(p2) || p1 == p2) continue;
                if (!seen.contains(old_j)) continue;  // partner itself is bad; skip
                seen.erase(old_j);
                seen.insert(p1);
                seen.insert(p2);
                pairs[bi] = {a, c};
                pairs[j] = {b, e};
                fixed = true;
            }
            if (!fixed) {
                ok = false;
                break;
            }
        }
        if (!ok) continue;

        Graph g = with_nodes(n);
        for (const auto& [a, b] : pairs) g.add_black_edge(a, b);
        // Require connectivity for a usable test substrate (random regular
        // graphs with d >= 3 are connected w.h.p.).
        if (d >= 3 && !graph::is_connected(g)) continue;
        return g;
    }
    throw std::runtime_error("make_random_regular: failed to build a simple graph");
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
    XHEAL_EXPECTS(m >= 1);
    XHEAL_EXPECTS(n > m);
    Graph g = make_complete(m + 1);
    std::vector<NodeId> endpoint_pool;  // each node appears once per degree
    for (NodeId v : g.nodes())
        for (std::size_t k = 0; k < g.degree(v); ++k) endpoint_pool.push_back(v);

    for (std::size_t v = m + 1; v < n; ++v) {
        std::set<NodeId> targets;
        while (targets.size() < m) {
            targets.insert(endpoint_pool[rng.index(endpoint_pool.size())]);
        }
        NodeId id = g.add_node();
        for (NodeId t : targets) {
            g.add_black_edge(id, t);
            endpoint_pool.push_back(id);
            endpoint_pool.push_back(t);
        }
    }
    return g;
}

Graph make_dumbbell(std::size_t clique) {
    XHEAL_EXPECTS(clique >= 2);
    Graph g = with_nodes(2 * clique);
    for (std::size_t i = 0; i < clique; ++i)
        for (std::size_t j = i + 1; j < clique; ++j) {
            g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
            g.add_black_edge(static_cast<NodeId>(clique + i), static_cast<NodeId>(clique + j));
        }
    g.add_black_edge(0, static_cast<NodeId>(clique));
    return g;
}

Graph make_petersen() {
    Graph g = with_nodes(10);
    // Outer 5-cycle, inner pentagram, spokes.
    for (std::size_t i = 0; i < 5; ++i) {
        g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % 5));
        g.add_black_edge(static_cast<NodeId>(5 + i), static_cast<NodeId>(5 + (i + 2) % 5));
        g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>(5 + i));
    }
    return g;
}

Graph make_hgraph_graph(std::size_t n, std::size_t d, util::Rng& rng) {
    XHEAL_EXPECTS(n >= 3);
    std::vector<NodeId> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<NodeId>(i));
    expander::HGraph h(members, d, rng);
    Graph g = with_nodes(n);
    for (const auto& [u, v] : h.edges()) g.add_black_edge(u, v);
    return g;
}

}  // namespace xheal::workload
