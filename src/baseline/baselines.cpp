#include "baseline/baselines.hpp"

#include <vector>

#include "util/expects.hpp"

namespace xheal::baseline {

using core::RepairReport;
using graph::Graph;
using graph::NodeId;

namespace {

/// Snapshot neighbors, remove the node, return the neighbor list.
std::vector<NodeId> take_out(Graph& g, NodeId v) {
    XHEAL_EXPECTS(g.has_node(v));
    auto view = g.neighbors(v);
    std::vector<NodeId> nbrs(view.begin(), view.end());
    g.remove_node(v);
    return nbrs;
}

/// Add (u, w) as a black repair edge unless already present; counts
/// additions.
void repair_edge(Graph& g, NodeId u, NodeId w, RepairReport& report) {
    if (u == w) return;
    if (!g.has_edge(u, w)) ++report.edges_added;
    g.add_black_edge(u, w);
}

}  // namespace

RepairReport NoHealHealer::on_delete(Graph& g, NodeId v) {
    take_out(g, v);
    return {};
}

RepairReport LineHealer::on_delete(Graph& g, NodeId v) {
    RepairReport report;
    auto nbrs = take_out(g, v);
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i)
        repair_edge(g, nbrs[i], nbrs[i + 1], report);
    return report;
}

RepairReport CycleHealer::on_delete(Graph& g, NodeId v) {
    RepairReport report;
    auto nbrs = take_out(g, v);
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i)
        repair_edge(g, nbrs[i], nbrs[i + 1], report);
    if (nbrs.size() >= 3) repair_edge(g, nbrs.back(), nbrs.front(), report);
    return report;
}

RepairReport StarHealer::on_delete(Graph& g, NodeId v) {
    RepairReport report;
    auto nbrs = take_out(g, v);
    if (nbrs.size() < 2) return report;
    NodeId hub = nbrs.front();
    for (std::size_t i = 1; i < nbrs.size(); ++i) repair_edge(g, hub, nbrs[i], report);
    return report;
}

RepairReport ForgivingTreeStyleHealer::on_delete(Graph& g, NodeId v) {
    RepairReport report;
    auto nbrs = take_out(g, v);
    // Balanced binary tree over the neighbor list: node i links to its heap
    // parent (i-1)/2. Degree increase per node <= 3, diameter O(log n) —
    // the Forgiving Tree shape.
    for (std::size_t i = 1; i < nbrs.size(); ++i)
        repair_edge(g, nbrs[i], nbrs[(i - 1) / 2], report);
    return report;
}

RandomMatchHealer::RandomMatchHealer(std::size_t edges_per_node, std::uint64_t seed)
    : edges_per_node_(edges_per_node), rng_(seed) {
    XHEAL_EXPECTS(edges_per_node >= 1);
}

RepairReport RandomMatchHealer::on_delete(Graph& g, NodeId v) {
    RepairReport report;
    auto nbrs = take_out(g, v);
    if (nbrs.size() < 2) return report;
    for (NodeId u : nbrs) {
        std::size_t wanted = std::min(edges_per_node_, nbrs.size() - 1);
        for (std::size_t k = 0; k < wanted; ++k) {
            NodeId w = nbrs[rng_.index(nbrs.size())];
            repair_edge(g, u, w, report);
        }
    }
    // Random stabs can miss some neighbor entirely and (rarely) leave the
    // patch disconnected; chain as a safety net exactly like the paper's
    // model permits (nodes may add edges to any known node).
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i)
        repair_edge(g, nbrs[i], nbrs[i + 1], report);
    return report;
}

}  // namespace xheal::baseline
