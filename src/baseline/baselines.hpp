// Baseline healers the paper compares against (conceptually):
//
//   * NoHealHealer        — drop the node, add nothing (lower bound).
//   * LineHealer          — connect the deleted node's neighbors in a path
//                           (minimal degree increase, terrible stretch).
//   * CycleHealer         — path closed into a cycle.
//   * StarHealer          — one neighbor becomes a hub for the rest (good
//                           stretch, unbounded degree blowup).
//   * ForgivingTreeStyleHealer — balanced binary tree among the neighbors:
//                           the real-network effect of Forgiving Tree /
//                           Forgiving Graph [PODC'08/'09]. Keeps degree and
//                           stretch bounded but, as the paper argues, tree
//                           repairs destroy expansion (the star example:
//                           h drops to O(1/n)).
//   * RandomMatchHealer   — k random edges per neighbor with no cloud
//                           bookkeeping; ablation showing why Xheal's
//                           structure (not just randomness) matters.
//
// Baseline repair edges are added as black claims — these healers have no
// color machinery and the metrics are color-agnostic.
#pragma once

#include <cstddef>

#include "core/healer.hpp"
#include "util/rng.hpp"

namespace xheal::baseline {

class NoHealHealer : public core::Healer {
public:
    std::string_view name() const override { return "no-heal"; }
    core::RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
};

class LineHealer : public core::Healer {
public:
    std::string_view name() const override { return "line"; }
    core::RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
};

class CycleHealer : public core::Healer {
public:
    std::string_view name() const override { return "cycle"; }
    core::RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
};

class StarHealer : public core::Healer {
public:
    std::string_view name() const override { return "star"; }
    core::RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
};

class ForgivingTreeStyleHealer : public core::Healer {
public:
    std::string_view name() const override { return "forgiving-tree"; }
    core::RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;
};

class RandomMatchHealer : public core::Healer {
public:
    explicit RandomMatchHealer(std::size_t edges_per_node = 3, std::uint64_t seed = 7);
    std::string_view name() const override { return "random-match"; }
    core::RepairReport on_delete(graph::Graph& g, graph::NodeId v) override;

private:
    std::size_t edges_per_node_;
    util::Rng rng_;
};

}  // namespace xheal::baseline
