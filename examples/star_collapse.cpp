// The paper's motivating example (Section 1 / Related Work): a star of
// n+1 nodes loses its center. Tree-style repairs (Forgiving Tree/Graph)
// leave expansion O(1/n); Xheal's expander cloud keeps it constant.
//
//   ./star_collapse [leaves]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "baseline/baselines.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t leaves = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;

    util::Table table({"healer", "edges-after", "max-degree", "h(G)~", "lambda2",
                       "diameter"});
    auto measure = [&](std::string_view name, core::Healer& healer) {
        graph::Graph g = workload::make_star(leaves);
        healer.on_delete(g, 0);  // kill the center
        auto diameter = graph::diameter_exact(g);
        table.row()
            .add(std::string(name))
            .add(g.edge_count())
            .add(g.max_degree())
            .add(spectral::edge_expansion_estimate(g), 4)
            .add(spectral::lambda2(g), 4)
            .add(diameter.has_value() ? std::to_string(*diameter) : "disconnected");
    };

    core::XhealHealer xheal_healer(core::XhealConfig{3, 7});
    baseline::ForgivingTreeStyleHealer tree_healer;
    baseline::LineHealer line_healer;
    baseline::CycleHealer cycle_healer;
    baseline::StarHealer star_healer;

    measure("xheal (kappa=6)", xheal_healer);
    measure("forgiving-tree", tree_healer);
    measure("line", line_healer);
    measure("cycle", cycle_healer);
    measure("star", star_healer);

    std::cout << "star of " << leaves << " leaves, center deleted:\n\n";
    table.print(std::cout);
    std::cout << "\nXheal keeps h and lambda2 roughly constant; tree/line repairs"
                 " decay like O(1/n) (see bench_star for the sweep).\n";
    return 0;
}
