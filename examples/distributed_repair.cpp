// Distributed Xheal on the synchronous LOCAL-model simulator: every repair
// is paid for in real messages and rounds. Prints per-deletion costs and
// the Theorem 5 accounting (rounds = O(log n), amortized messages within
// O(kappa log n) of the A(p) lower bound).
//
//   ./distributed_repair [n] [deletions] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/distributed_xheal.hpp"
#include "core/session.hpp"
#include "graph/algorithms.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;
    std::size_t deletions = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

    util::Rng rng(seed);
    graph::Graph initial = workload::make_random_regular(n, 4, rng);
    auto healer = std::make_unique<core::DistributedXheal>(core::XhealConfig{2, seed});
    std::size_t kappa = healer->kappa();
    core::HealingSession session(initial, std::move(healer));

    util::Table table({"deletion", "victim-deg", "rounds", "messages", "combines"});
    for (std::size_t i = 0; i < deletions && session.current().node_count() > 8; ++i) {
        const auto& alive = session.alive_pool();
        graph::NodeId victim = alive[rng.index(alive.size())];
        std::size_t deg = session.current().degree(victim);
        auto report = session.delete_node(victim);
        table.row()
            .add(i)
            .add(deg)
            .add(report.rounds)
            .add(static_cast<std::size_t>(report.messages))
            .add(report.combines);
    }
    table.print(std::cout);

    double logn = std::log2(static_cast<double>(session.current().node_count()));
    double ap = session.average_deleted_black_degree();
    std::cout << "\nTheorem 5 accounting (n=" << session.current().node_count()
              << ", kappa=" << kappa << "):\n"
              << "  A(p) lower bound (avg deleted degree): " << ap << " msgs/deletion\n"
              << "  measured amortized messages:           " << session.amortized_messages()
              << "\n  paper bound O(kappa log n * A(p)):      "
              << static_cast<double>(kappa) * logn * ap << "\n"
              << "  network still connected: "
              << (graph::is_connected(session.current()) ? "yes" : "NO") << "\n";
    return 0;
}
