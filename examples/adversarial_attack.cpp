// Omniscient adversary: topology-aware attacks (hub kills, cut-point
// kills, colored-degree kills) against Xheal and against the tree-style
// baseline, side by side. Every cell is one declarative scenario run by
// the engine. Xheal holds expansion and spectral gap; the tree baseline
// decays.
//
//   ./adversarial_attack [n] [deletions] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "scenario/runner.hpp"
#include "util/table.hpp"

namespace {

xheal::scenario::MetricSample run(const std::string& attack, const std::string& healer,
                                  std::size_t n, std::size_t deletions,
                                  std::uint64_t seed) {
    using namespace xheal;
    scenario::ScenarioSpec spec;
    spec.name = attack + "-vs-" + healer;
    spec.seed = seed;
    spec.topology = {"random-regular", {{"n", std::to_string(n)}, {"d", "6"}}};
    spec.healer = healer == "xheal" ? scenario::ComponentSpec{"xheal", {{"d", "3"}}}
                                    : scenario::ComponentSpec{healer, {}};
    spec.probes = {"connected", "degree", "expansion", "lambda2", "stretch"};
    spec.stretch_samples = 12;
    scenario::PhaseSpec assault;
    assault.name = "assault";
    assault.steps = deletions;
    assault.delete_fraction = 1.0;
    assault.min_nodes = 8;
    assault.deleter = {attack, {}};
    spec.phases.push_back(assault);

    scenario::ScenarioRunner runner(spec);
    return runner.run().final_sample;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    std::size_t deletions = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

    util::Table table({"attack", "healer", "connected", "h(G)~", "lambda2",
                       "max-deg-ratio", "stretch"});
    for (const char* attack : {"max-degree", "cut-point", "colored-degree"}) {
        for (const char* healer : {"xheal", "forgiving-tree"}) {
            auto o = run(attack, healer, n, deletions, seed);
            table.row()
                .add(attack)
                .add(healer)
                .add(o.connected())
                .add(o.expansion, 3)
                .add(o.lambda2, 4)
                .add(o.max_degree_ratio, 2)
                .add(o.stretch, 2);
        }
    }

    std::cout << "6-regular random expander, n=" << n << ", " << deletions
              << " adversarial deletions:\n\n";
    table.print(std::cout);
    return 0;
}
