// Omniscient adversary: topology-aware attacks (hub kills, cut-point
// kills) against Xheal and against the tree-style baseline, side by side.
// Xheal holds expansion and spectral gap; the tree baseline decays.
//
//   ./adversarial_attack [n] [deletions] [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

struct Outcome {
    bool connected = true;
    double expansion = 0.0;
    double lambda2 = 0.0;
    double max_degree_ratio = 0.0;
    double stretch = 0.0;
};

Outcome run(std::unique_ptr<xheal::core::Healer> healer,
            xheal::adversary::DeletionStrategy& attacker, std::size_t n,
            std::size_t deletions, std::uint64_t seed) {
    using namespace xheal;
    util::Rng rng(seed);
    graph::Graph initial = workload::make_random_regular(n, 6, rng);
    core::HealingSession session(initial, std::move(healer));
    for (std::size_t i = 0; i < deletions && session.current().node_count() > 8; ++i) {
        session.delete_node(attacker.pick(session, rng));
    }
    Outcome out;
    const auto& g = session.current();
    out.connected = graph::is_connected(g);
    out.expansion = spectral::edge_expansion_estimate(g);
    out.lambda2 = spectral::lambda2(g);
    out.max_degree_ratio = core::degree_increase(g, session.reference()).max_ratio;
    out.stretch = core::sampled_stretch(g, session.reference(), 12, rng);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    std::size_t deletions = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

    util::Table table({"attack", "healer", "connected", "h(G)~", "lambda2",
                       "max-deg-ratio", "stretch"});
    auto row = [&](std::string_view attack, std::string_view healer, const Outcome& o) {
        table.row()
            .add(std::string(attack))
            .add(std::string(healer))
            .add(o.connected)
            .add(o.expansion, 3)
            .add(o.lambda2, 4)
            .add(o.max_degree_ratio, 2)
            .add(o.stretch, 2);
    };

    adversary::MaxDegreeDeletion hub;
    adversary::CutPointDeletion cut;
    adversary::ColoredDegreeDeletion colored;

    for (auto* attack : {static_cast<adversary::DeletionStrategy*>(&hub),
                         static_cast<adversary::DeletionStrategy*>(&cut),
                         static_cast<adversary::DeletionStrategy*>(&colored)}) {
        row(attack->name(), "xheal",
            run(std::make_unique<core::XhealHealer>(core::XhealConfig{3, seed}), *attack,
                n, deletions, seed));
        row(attack->name(), "forgiving-tree",
            run(std::make_unique<baseline::ForgivingTreeStyleHealer>(), *attack, n,
                deletions, seed));
    }

    std::cout << "6-regular random expander, n=" << n << ", " << deletions
              << " adversarial deletions:\n\n";
    table.print(std::cout);
    return 0;
}
