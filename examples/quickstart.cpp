// Quickstart: create a network, let an adversary delete nodes, and watch
// Xheal keep it connected with bounded degrees and healthy expansion.
//
//   ./quickstart [n] [deletions] [seed]
#include <cstdlib>
#include <iostream>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
    std::size_t deletions = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
    std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

    util::Rng rng(seed);
    graph::Graph initial = workload::make_erdos_renyi(n, 4.0 / static_cast<double>(n) + 0.05, rng);
    std::cout << "initial network: " << initial.node_count() << " nodes, "
              << initial.edge_count() << " edges, h~="
              << spectral::edge_expansion_estimate(initial) << "\n";

    // The healer: Xheal with kappa = 2d = 4 expander clouds.
    core::HealingSession session(
        initial, std::make_unique<core::XhealHealer>(core::XhealConfig{2, seed}));

    util::Table table({"step", "victim", "deg(victim)", "nodes", "edges", "connected",
                       "max-deg-ratio", "h(G)~", "lambda2"});
    for (std::size_t step = 0; step < deletions && session.current().node_count() > 4;
         ++step) {
        const auto& alive = session.alive_pool();
        graph::NodeId victim = alive[rng.index(alive.size())];
        std::size_t victim_degree = session.current().degree(victim);
        session.delete_node(victim);

        const auto& g = session.current();
        auto ratio = core::degree_increase(g, session.reference());
        table.row()
            .add(step)
            .add(static_cast<std::size_t>(victim))
            .add(victim_degree)
            .add(g.node_count())
            .add(g.edge_count())
            .add(graph::is_connected(g))
            .add(ratio.max_ratio, 2)
            .add(spectral::edge_expansion_estimate(g), 3)
            .add(spectral::lambda2(g), 4);
    }
    table.print(std::cout);

    std::cout << "\nrepair totals: " << session.totals().edges_added << " edges added, "
              << session.totals().clouds_touched << " cloud operations, "
              << session.totals().combines << " combines\n";
    std::cout << "stretch vs insert-only graph: "
              << core::sampled_stretch(session.current(), session.reference(), 16, rng)
              << " (paper bound: O(log n))\n";
    return 0;
}
