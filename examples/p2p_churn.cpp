// P2P overlay under churn — the paper's motivating scenario (the 2007
// Skype outage): peers continuously join and leave; the overlay must stay
// connected with good expansion so routing and gossip keep working.
//
//   ./p2p_churn [steps] [seed]
#include <cstdlib>
#include <iostream>

#include "adversary/adversary.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    util::Rng rng(seed);
    graph::Graph overlay = workload::make_hgraph_graph(48, 3, rng);

    core::HealingSession session(
        overlay, std::make_unique<core::XhealHealer>(core::XhealConfig{3, seed}));
    adversary::RandomDeletion churn_out;
    adversary::PreferentialAttach churn_in(3);  // newcomers find well-known peers

    util::Table table({"t", "peers", "edges", "h(G)~", "lambda2", "max-deg-ratio",
                       "stretch"});
    std::size_t checkpoint = steps / 10 == 0 ? 1 : steps / 10;
    for (std::size_t t = 1; t <= steps; ++t) {
        if (rng.chance(0.5) && session.current().node_count() > 8) {
            auto victim = churn_out.pick(session, rng);
            session.delete_node(victim);
        } else {
            session.insert_node(churn_in.pick_neighbors(session, rng));
        }
        if (t % checkpoint == 0) {
            const auto& g = session.current();
            table.row()
                .add(t)
                .add(g.node_count())
                .add(g.edge_count())
                .add(spectral::edge_expansion_estimate(g), 3)
                .add(spectral::lambda2(g), 4)
                .add(core::degree_increase(g, session.reference()).max_ratio, 2)
                .add(core::sampled_stretch(g, session.reference(), 8, rng), 2);
        }
    }
    std::cout << "P2P overlay, 50/50 join-leave churn, " << steps << " events:\n\n";
    table.print(std::cout);
    std::cout << "\nthe overlay never partitions: " << session.deletions()
              << " peer crashes healed, amortized "
              << static_cast<double>(session.totals().edges_added) /
                     static_cast<double>(std::max<std::size_t>(1, session.deletions()))
              << " repair edges per crash\n";
    return 0;
}
