// P2P overlay under churn — the paper's motivating scenario (the 2007
// Skype outage): peers continuously join and leave; the overlay must stay
// connected with good expansion so routing and gossip keep working.
//
// The whole experiment is one declarative scenario (scenarios/p2p_churn.scn
// is the file-based twin): an H-graph overlay, a 50/50 join-leave phase,
// and periodic expansion/stretch probes, executed by the scenario engine.
//
//   ./p2p_churn [steps] [seed]
#include <cstdlib>
#include <iostream>

#include "scenario/runner.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace xheal;

    std::size_t steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    scenario::ScenarioSpec spec;
    spec.name = "p2p-churn";
    spec.seed = seed;
    spec.topology = {"hgraph", {{"n", "48"}, {"d", "3"}}};
    spec.healer = {"xheal", {{"d", "3"}}};
    spec.probes = {"degree", "expansion", "lambda2", "stretch"};
    spec.sample_every = steps / 10 == 0 ? 1 : steps / 10;
    scenario::PhaseSpec churn;
    churn.name = "churn";
    churn.steps = steps;
    churn.delete_fraction = 0.5;
    churn.min_nodes = 8;
    churn.deleter = {"random", {}};
    churn.inserter = {"preferential-attach", {{"k", "3"}}};  // find well-known peers
    spec.phases.push_back(churn);

    scenario::ScenarioRunner runner(spec);
    auto result = runner.run();

    util::Table table({"t", "peers", "edges", "h(G)~", "lambda2", "max-deg-ratio",
                       "stretch"});
    for (const auto& s : result.samples) {
        table.row()
            .add(s.step)
            .add(s.nodes)
            .add(s.edges)
            .add(s.expansion, 3)
            .add(s.lambda2, 4)
            .add(s.max_degree_ratio, 2)
            .add(s.stretch, 2);
    }
    std::cout << "P2P overlay, 50/50 join-leave churn, " << steps << " events:\n\n";
    table.print(std::cout);

    const auto& session = runner.session();
    std::cout << "\nthe overlay never partitions: " << session.deletions()
              << " peer crashes healed, amortized "
              << static_cast<double>(session.totals().edges_added) /
                     static_cast<double>(std::max<std::size_t>(1, session.deletions()))
              << " repair edges per crash\n";
    return 0;
}
