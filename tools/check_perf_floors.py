#!/usr/bin/env python3
"""CI perf-regression guard: compare a fresh BENCH_scenarios.json (or an
xheal-batch report — both carry "results" rows keyed by scenario) against
checked-in per-scenario baselines (tools/perf_floors.json) with a generous
2x tolerance, failing loudly on any violation.

The bounds enforced for each scenario named in the floors file (every
baseline key is optional — a baseline may guard timing, billing, or both):

    steps_per_sec        >= baseline / tolerance         (throughput floor)
    probe_ms_per_sample  <= baseline * tolerance + grace (probe cost ceiling)

    messages / deletions <= max_messages_per_delete      (Theorem 5 bill)
    rounds / deletions   <= max_rounds_per_delete
    retries / deletions  <= max_retries_per_delete

plus optional hard_* acceptance criteria that tighten the derived timing
bound when stricter (dex-scale must hold >=10k steps/sec and <=150
ms/sample no matter what the baseline drifts to). The billing ceilings are
Theorem-5-shaped amortized costs: a distributed-protocol change that
inflates the per-deletion message/round/retry bill past the pinned ceiling
fails CI even when wall-clock throughput is unchanged. Scenarios present
in the bench report but absent from the floors file are listed as
unguarded; scenarios named with --only that are missing from the report
are an error (the guard must never silently pass because the run it
guards did not happen).

Parallel batch reports (xheal-batch-v2 and later) carry a report-level
"jobs" count; reports without one (run reports, v1 batch reports) count as
jobs=1. Timing baselines were pinned at a specific worker count — a
machine running N specs concurrently shows per-spec throughput jitter that
has nothing to do with code regressions — so every baseline carries its
own "jobs" key (default 1) and its TIMING bounds are only enforced
like-for-like: when the report's jobs differs from the baseline's, the
timing checks are skipped with a note. The billing counters are
deterministic (same bill at --jobs 1 and --jobs N), so billing ceilings
are enforced regardless of worker count. Naming a scenario with --only
whose every bound would be skipped is an error, same as a missing row:
the guard must not silently pass on a mismatched run.

The shard-engine width (scenario `shards` / CLI --shards) gets the same
like-for-like treatment: rows in v5 bench / v4 batch reports carry a
per-row "shards" field (missing = 1, the serial path), every baseline
carries its own "shards" key (default 1), and TIMING bounds are only
enforced when they match — a spec stepped on 4 shard consumers has a
different throughput profile than the serial baseline. Width is row-level
(not report-level like "jobs") because one batch can mix widths via
per-spec `shards` lines. The deterministic fields (hashes, verdicts,
billing) are byte-identical at any width, so billing ceilings are always
enforced.

Usage:
    check_perf_floors.py BENCH_scenarios.json [--floors perf_floors.json]
                         [--only scenario ...]

Exit status 0 when every guarded scenario is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BILLING_KEYS = {
    "max_messages_per_delete": "messages",
    "max_rounds_per_delete": "rounds",
    "max_retries_per_delete": "retries",
}


def load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"check_perf_floors: cannot read {path}: {err}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="fresh BENCH_scenarios.json to check")
    parser.add_argument(
        "--floors",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "perf_floors.json"),
        help="checked-in baseline file (default: perf_floors.json next to "
             "this script)")
    parser.add_argument(
        "--only", action="append", default=None, metavar="SCENARIO",
        help="check only these scenarios; each must be present in the "
             "bench report (repeatable)")
    args = parser.parse_args()

    bench = load_json(args.bench)
    floors = load_json(args.floors)

    tolerance = float(floors.get("tolerance", 2.0))
    grace = float(floors.get("probe_ms_grace", 0.0))
    baselines = floors.get("scenarios", {})
    report_jobs = int(bench.get("jobs", 1))

    rows = {row.get("scenario"): row for row in bench.get("results", [])}
    if not rows:
        print(f"check_perf_floors: {args.bench} has no results[] rows",
              file=sys.stderr)
        return 1

    selected = args.only if args.only else sorted(baselines)
    failures = []
    unguarded = sorted(name for name in rows if name not in baselines)

    print(f"perf floors: {args.bench} vs {args.floors} "
          f"(tolerance {tolerance:g}x, probe grace {grace:g} ms, "
          f"report jobs {report_jobs})")
    for name in selected:
        base = baselines.get(name)
        if base is None:
            failures.append(f"{name}: named with --only but has no baseline "
                            f"in {args.floors}")
            continue
        row = rows.get(name)
        if row is None:
            if args.only:
                failures.append(f"{name}: named with --only but missing from "
                                f"{args.bench} — the guarded run did not "
                                f"happen")
            else:
                print(f"  - {name:<16} not in this report (skipped)")
            continue

        base_jobs = int(base.get("jobs", 1))
        base_shards = int(base.get("shards", 1))
        row_shards = int(row.get("shards", 1))
        has_timing = "steps_per_sec" in base or "probe_ms_per_sample" in base
        has_billing = any(k in base for k in BILLING_KEYS)
        check_timing = (has_timing and base_jobs == report_jobs
                        and base_shards == row_shards)
        if has_timing and not check_timing:
            mismatch = (f"jobs={base_jobs}" if base_jobs != report_jobs
                        else f"shards={base_shards}")
            ran = (f"jobs={report_jobs}" if base_jobs != report_jobs
                   else f"shards={row_shards}")
            if args.only and not has_billing:
                failures.append(
                    f"{name}: baseline pinned at {mismatch} but the "
                    f"report ran at {ran} — not a like-for-like "
                    f"comparison, and --only demands this scenario be "
                    f"guarded")
                continue
            print(f"  - {name:<16} baseline {mismatch}, report "
                  f"{ran} (timing skipped: not like-for-like)")
        if not has_timing and not has_billing:
            failures.append(f"{name}: baseline carries no bounds at all — "
                            f"pin steps_per_sec/probe_ms_per_sample or a "
                            f"max_*_per_delete ceiling in {args.floors}")
            continue

        ok = True
        pieces = []
        if check_timing:
            sps = float(row.get("steps_per_sec", 0.0))
            sps_floor = float(base.get("steps_per_sec", 0.0)) / tolerance
            if "hard_steps_per_sec_floor" in base:
                sps_floor = max(sps_floor,
                                float(base["hard_steps_per_sec_floor"]))
            # A missing steps_per_sec reads as 0 and trips the floor (loud
            # already); a missing probe_ms_per_sample would read as 0 and
            # sail under the ceiling — call out the schema mismatch instead.
            if "probe_ms_per_sample" in base and \
                    "probe_ms_per_sample" not in row:
                ok = False
                failures.append(
                    f"{name}: probe_ms_per_sample ceiling pinned but the "
                    f"report row has no such field — schema mismatch, "
                    f"refusing to default it to 0")
            pms = float(row.get("probe_ms_per_sample", 0.0))
            pms_ceiling = (float(base.get("probe_ms_per_sample", 0.0))
                           * tolerance + grace)
            if "hard_probe_ms_ceiling" in base:
                pms_ceiling = min(pms_ceiling,
                                  float(base["hard_probe_ms_ceiling"]))
            if sps < sps_floor:
                ok = False
                failures.append(
                    f"{name}: steps_per_sec {sps:.0f} fell under the floor "
                    f"{sps_floor:.0f} (baseline {base.get('steps_per_sec')})")
            if pms > pms_ceiling:
                ok = False
                failures.append(
                    f"{name}: probe_ms_per_sample {pms:.3f} exceeds the "
                    f"ceiling {pms_ceiling:.3f} "
                    f"(baseline {base.get('probe_ms_per_sample')})")
            pieces.append(f"steps/s {sps:>9.0f} (floor {sps_floor:>9.0f})")
            pieces.append(f"probe ms/sample {pms:>8.3f} "
                          f"(ceiling {pms_ceiling:>8.3f})")

        if has_billing:
            # Deterministic counters: enforced at any worker count. The
            # ceilings are per-deletion amortized bills (Theorem 5 shape),
            # so a report with zero deletions cannot vacuously pass — and a
            # row missing a pinned counter field entirely is a schema
            # mismatch, not a zero bill: defaulting it to 0 would let a
            # renamed/dropped field silently disarm the guard.
            if "deletions" not in row:
                ok = False
                failures.append(
                    f"{name}: billing ceiling pinned but the report row has "
                    f"no 'deletions' field — schema mismatch, refusing to "
                    f"default it to 0")
                deletions = 0.0
            else:
                deletions = float(row["deletions"])
            if "deletions" in row and deletions <= 0:
                ok = False
                failures.append(
                    f"{name}: billing ceiling pinned but the report shows 0 "
                    f"deletions — the guarded protocol never ran")
            elif deletions > 0:
                for key, field in BILLING_KEYS.items():
                    if key not in base:
                        continue
                    if field not in row:
                        ok = False
                        failures.append(
                            f"{name}: {key} pinned but the report row has no "
                            f"'{field}' field — schema mismatch, refusing to "
                            f"default it to 0")
                        continue
                    per = float(row[field]) / deletions
                    ceiling = float(base[key])
                    pieces.append(f"{field}/del {per:>7.1f} "
                                  f"(ceiling {ceiling:g})")
                    if per > ceiling:
                        ok = False
                        failures.append(
                            f"{name}: {field} per deletion {per:.2f} exceeds "
                            f"the pinned ceiling {ceiling:g} "
                            f"({row[field]} {field} over "
                            f"{deletions:.0f} deletions)")

        if not row.get("pass", False):
            ok = False
            failures.append(f"{name}: scenario verdict is FAIL in {args.bench}")

        status = "ok" if ok else "FAIL"
        print(f"  - {name:<16} " + "  ".join(pieces) + f"  {status}")

    for name in unguarded:
        print(f"  - {name:<16} UNGUARDED — add a baseline to {args.floors}")

    if failures:
        print("\nPERF REGRESSION — the guard failed loudly:", file=sys.stderr)
        for f in failures:
            print(f"  * {f}", file=sys.stderr)
        print(f"\nIf the regression is intentional, re-pin the baselines in "
              f"{args.floors} in the same change and say why.",
              file=sys.stderr)
        return 1
    print("all guarded scenarios within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
