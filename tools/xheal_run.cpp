// xheal_run — the one CLI driver for declarative scenarios.
//
//   xheal_run run <spec.scn> [more specs...] [--trace FILE] [--json FILE]
//             [--max-steps N]
//       Execute each spec's phase schedule; print per-phase accounting, the
//       sampled metric series, and a greppable "VERDICT scenario-<name>
//       PASS|FAIL" line per spec (FAIL when an `expect` clause is violated).
//       --trace (single spec only) writes the deterministic JSONL event
//       trace; --json appends a BENCH_scenarios.json steps/sec + probe-cost
//       report; --max-steps truncates the schedule after N total steps (CI
//       smoke runs of large specs such as dex_scale.scn).
//   xheal_run replay <spec.scn> <trace.jsonl>
//       Re-apply a recorded trace against a fresh session from the same
//       spec and verify trace hash + final-graph fingerprint byte-for-byte.
//   xheal_run print <spec.scn>
//       Parse and echo the canonical spec text (round-trip check).
//   xheal_run list
//       Show every registry key the spec grammar can name.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "util/table.hpp"

using namespace xheal;

namespace {

int usage() {
    std::cerr << "usage:\n"
              << "  xheal_run run <spec.scn>... [--trace FILE] [--json FILE] "
                 "[--max-steps N]\n"
              << "  xheal_run replay <spec.scn> <trace.jsonl>\n"
              << "  xheal_run print <spec.scn>\n"
              << "  xheal_run list\n";
    return 2;
}

std::string fmt_or_dash(double v, int precision) {
    return std::isnan(v) ? std::string("-") : util::format_double(v, precision);
}

void print_samples(const scenario::RunResult& result) {
    util::Table table({"step", "phase", "nodes", "edges", "comps", "max-deg-ratio",
                       "h(G)~", "lambda2", "stretch", "probe-ms"});
    for (const auto& s : result.samples) {
        table.row()
            .add(s.step)
            .add(s.phase)
            .add(s.nodes)
            .add(s.edges)
            .add(s.components == 0 ? std::string("-") : std::to_string(s.components))
            .add(fmt_or_dash(s.max_degree_ratio, 2))
            .add(fmt_or_dash(s.expansion, 3))
            .add(fmt_or_dash(s.lambda2, 4))
            .add(fmt_or_dash(s.stretch, 2))
            .add(util::format_double(s.probe_seconds * 1000.0, 2));
    }
    table.print(std::cout);
}

void print_phases(const scenario::RunResult& result) {
    util::Table table({"phase", "steps", "deletions", "insertions", "skipped",
                       "edges-added", "combines", "mean rounds", "messages"});
    for (const auto& p : result.phases) {
        table.row()
            .add(p.name)
            .add(p.steps)
            .add(p.deletions)
            .add(p.insertions)
            .add(p.skipped)
            .add(p.totals.edges_added)
            .add(p.totals.combines)
            .add(p.rounds.mean(), 2)
            .add(static_cast<std::size_t>(p.totals.messages));
    }
    table.print(std::cout);
}

struct JsonRow {
    std::string scenario;
    std::size_t steps = 0;
    std::size_t events = 0;
    double seconds = 0.0;
    double steps_per_sec = 0.0;
    double probe_seconds = 0.0;
    std::size_t samples = 0;
    bool pass = false;
};

int write_json(const std::string& path, const std::vector<JsonRow>& rows) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    out << "{\n  \"schema\": \"xheal-bench-scenarios-v2\",\n"
        << "  \"note\": \"scenario engine throughput (adversary+healer steps/sec) and "
           "probe cost (seconds spent in metric probes, ms per sample) per bundled "
           "spec\",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        double probe_ms_per_sample =
            rows[i].samples > 0
                ? rows[i].probe_seconds * 1000.0 / static_cast<double>(rows[i].samples)
                : 0.0;
        out << "    {\"scenario\": \"" << rows[i].scenario << "\", \"steps\": "
            << rows[i].steps << ", \"events\": " << rows[i].events
            << ", \"seconds\": " << util::format_double(rows[i].seconds, 6)
            << ", \"steps_per_sec\": "
            << static_cast<std::uint64_t>(rows[i].steps_per_sec)
            << ", \"probe_seconds\": " << util::format_double(rows[i].probe_seconds, 6)
            << ", \"samples\": " << rows[i].samples
            << ", \"probe_ms_per_sample\": "
            << util::format_double(probe_ms_per_sample, 3)
            << ", \"pass\": " << (rows[i].pass ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
    return 0;
}

int cmd_run(const std::vector<std::string>& args) {
    std::vector<std::string> spec_paths;
    std::string trace_path, json_path;
    std::size_t max_steps = 0;  // 0 = unlimited
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--trace") {
            if (++i >= args.size()) return usage();
            trace_path = args[i];
        } else if (args[i] == "--json") {
            if (++i >= args.size()) return usage();
            json_path = args[i];
        } else if (args[i] == "--max-steps") {
            if (++i >= args.size()) return usage();
            // Strict whole-string parse: reject "abc", "200x", "-1".
            std::size_t consumed = 0;
            try {
                max_steps = static_cast<std::size_t>(std::stoull(args[i], &consumed));
            } catch (const std::exception&) {
                consumed = 0;
            }
            if (consumed != args[i].size() || args[i].empty() || args[i][0] == '-' ||
                max_steps == 0) {
                std::cerr << "--max-steps needs a positive integer, got '" << args[i]
                          << "'\n";
                return 2;
            }
        } else {
            spec_paths.push_back(args[i]);
        }
    }
    if (spec_paths.empty()) return usage();
    if (!trace_path.empty() && spec_paths.size() != 1) {
        std::cerr << "--trace requires exactly one spec\n";
        return 2;
    }

    bool all_pass = true;
    std::vector<JsonRow> json_rows;
    for (const std::string& path : spec_paths) {
        auto spec = scenario::ScenarioSpec::parse_file(path);
        if (max_steps > 0) {
            // Truncate the schedule after max_steps total steps, dropping
            // now-empty phases (reduced CI smoke runs of large specs).
            std::size_t remaining = max_steps;
            for (auto& phase : spec.phases) {
                phase.steps = std::min(phase.steps, remaining);
                remaining -= phase.steps;
            }
            std::erase_if(spec.phases,
                          [](const scenario::PhaseSpec& p) { return p.steps == 0; });
        }
        scenario::ScenarioRunner runner(spec);
        auto result = runner.run();

        std::cout << "scenario " << spec.name << " (seed " << spec.seed << ", healer "
                  << spec.healer.kind << ", " << result.steps_done << " steps, "
                  << result.events.size() << " events, "
                  << util::format_double(result.steps_per_sec(), 0) << " steps/sec)\n\n";
        print_phases(result);
        std::cout << "\n";
        print_samples(result);
        for (const auto& failure : result.failures)
            std::cout << "expectation failed — " << failure << "\n";
        std::cout << "VERDICT scenario-" << spec.name << " "
                  << (result.passed() ? "PASS" : "FAIL") << " — " << result.events.size()
                  << " events, trace 0x" << std::hex << result.trace_hash
                  << ", fingerprint 0x" << result.fingerprint << std::dec << "\n\n";
        all_pass = all_pass && result.passed();

        if (!trace_path.empty()) {
            scenario::write_trace_file(trace_path, result.to_trace(spec));
            std::cout << "wrote trace " << trace_path << "\n";
        }
        json_rows.push_back({spec.name, result.steps_done, result.events.size(),
                             result.seconds, result.steps_per_sec(),
                             result.probe_seconds, result.samples.size(),
                             result.passed()});
    }
    if (!json_path.empty() && write_json(json_path, json_rows) != 0) return 1;
    return all_pass ? 0 : 1;
}

int cmd_replay(const std::vector<std::string>& args) {
    if (args.size() != 2) return usage();
    auto spec = scenario::ScenarioSpec::parse_file(args[0]);
    auto trace = scenario::read_trace_file(args[1]);
    if (trace.spec_hash != spec.content_hash())
        std::cout << "note: spec content hash differs from the trace header "
                     "(spec edited since recording?)\n";
    scenario::ScenarioRunner runner(spec);
    auto result = runner.replay(trace);

    bool hash_ok = result.trace_hash == trace.trace_hash;
    bool fp_ok = result.fingerprint == trace.fingerprint;
    std::cout << "replayed " << trace.events.size() << " events of scenario "
              << spec.name << "\n"
              << "  trace hash:  recorded 0x" << std::hex << trace.trace_hash
              << ", replayed 0x" << result.trace_hash << (hash_ok ? " (match)" : " (MISMATCH)")
              << "\n  fingerprint: recorded 0x" << trace.fingerprint << ", replayed 0x"
              << result.fingerprint << (fp_ok ? " (match)" : " (MISMATCH)") << std::dec
              << "\n";
    std::cout << "VERDICT replay-" << spec.name << " "
              << (hash_ok && fp_ok ? "PASS" : "FAIL")
              << " — byte-for-byte deterministic replay\n";
    return hash_ok && fp_ok ? 0 : 1;
}

int cmd_print(const std::vector<std::string>& args) {
    if (args.size() != 1) return usage();
    std::cout << scenario::ScenarioSpec::parse_file(args[0]).to_text();
    return 0;
}

int cmd_list() {
    auto print_list = [](const char* title, const std::vector<std::string>& names) {
        std::cout << title << ":";
        for (const auto& n : names) std::cout << " " << n;
        std::cout << "\n";
    };
    print_list("topologies", scenario::topology_names());
    print_list("healers   ", scenario::healer_names());
    print_list("deleters  ", scenario::deleter_names());
    print_list("inserters ", scenario::inserter_names());
    print_list("probes    ", {"connected", "degree", "expansion", "lambda2", "stretch"});
    std::cout << "\nspec grammar (see DESIGN.md decision 5):\n"
              << "  name <id> | seed <n> | topology <kind> k=v... | healer <kind> k=v...\n"
              << "  probes <name>... | sample_every <n> | stretch_samples <n>\n"
              << "  phase <id> steps=N [burst=B] [delete_fraction=F] [min_nodes=M]\n"
              << "        [deleter=<kind>] [inserter=<kind>] [k=K] [deleter.x=v] "
                 "[inserter.x=v]\n"
              << "  expect connected | expect <metric> <=|>= <value>\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "run") return cmd_run(args);
        if (command == "replay") return cmd_replay(args);
        if (command == "print") return cmd_print(args);
        if (command == "list") return cmd_list();
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
