// xheal_run — the one CLI driver for declarative scenarios.
//
//   xheal_run run <spec.scn> [more specs...] [--trace FILE] [--json FILE]
//             [--max-steps N] [--probe-mode auto|inline|async] [--shards N]
//       Execute each spec's phase schedule; print per-phase accounting, the
//       sampled metric series, and a greppable "VERDICT scenario-<name>
//       PASS|FAIL" line per spec (FAIL when an `expect` clause is violated).
//       --trace (single spec only) writes the deterministic JSONL event
//       trace; --json appends a BENCH_scenarios.json steps/sec + probe-cost
//       report; --max-steps truncates the schedule after N total steps (CI
//       smoke runs of large specs such as dex_scale.scn); --probe-mode
//       forces the metric-probe schedule (auto = off-thread pipeline when
//       cadence sampling carries heavy probes; probe values are identical
//       across modes, only timing differs); --shards overrides the spec's
//       shard-engine width (DESIGN.md decision 13 — results are
//       byte-identical at any width, only throughput changes).
//   xheal_run batch <dir> [--healer KIND] [--json FILE] [--max-steps N]
//             [--jobs N] [--probe-mode auto|inline|async] [--shards N]
//       Run every *.scn in <dir> (sorted by filename, so reports are
//       deterministic) and emit one aggregated JSON report: per-spec
//       verdict, stream hash, final-graph fingerprint, stepping and probe
//       throughput. --healer overrides every spec's healer kind — the
//       tournament mode: the same schedule directory scored against
//       different healers produces comparable hash/metric rows. --jobs runs
//       the specs on a fixed pool of N worker threads; every deterministic
//       field of the report (verdicts, hashes, fingerprints, metric values)
//       is byte-identical at any --jobs value — only timing varies.
//   xheal_run replay <spec.scn> <trace.jsonl>
//       Re-apply a recorded trace against a fresh session from the same
//       spec and verify trace hash + final-graph fingerprint byte-for-byte.
//   xheal_run print <spec.scn>
//       Parse and echo the canonical spec text (round-trip check).
//   xheal_run list
//       Show every registry key the spec grammar can name.
//   xheal_run diff <a.jsonl> <b.jsonl> [--context N]
//       Structurally compare two traces and report the first divergent
//       event with surrounding context (trace_tools/diff.hpp).
//   xheal_run fuzz <spec.scn>... [--candidates N] [--seed S] [--out BASE]
//             [--max-findings M] [--lambda2-floor X] [--check-every N]
//       Mutate each spec's schedule and recorded event stream N times,
//       executing every candidate under the invariant oracle suite; the
//       first finding per spec is ddmin-shrunk and written as a
//       BASE-<name>.scn / BASE-<name>.jsonl reproducer pair.
//   xheal_run shrink <spec.scn> <trace.jsonl> [--out BASE]
//             [--lambda2-floor X] [--check-every N]
//       Reduce an invariant-breaking event stream to a minimal reproducer
//       and write the standalone BASE.scn / BASE.jsonl pair. On huge
//       streams (dex_scale-sized), coarsen the oracle cadence with
//       --check-every (0 = final-only) — the per-event structural suite is
//       O(n+m) per event.
//
// Exit-code contract (scripting consumers, incl. CI, rely on this):
//   0 — success: run PASS, replay match, diff identical, fuzz clean,
//       shrink produced a reproducer
//   1 — verdict failure: expectation FAIL, replay mismatch, diff
//       divergence, fuzz findings, shrink input that breaks no invariant
//   2 — usage, missing/unreadable file, or malformed spec/trace
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "trace_tools/batch.hpp"
#include "trace_tools/diff.hpp"
#include "trace_tools/fuzz.hpp"
#include "trace_tools/shrink.hpp"
#include "util/table.hpp"

using namespace xheal;

namespace {

int usage() {
    std::cerr << "usage:\n"
              << "  xheal_run run <spec.scn>... [--trace FILE] [--json FILE] "
                 "[--max-steps N] [--probe-mode auto|inline|async] [--shards N]\n"
              << "  xheal_run batch <dir> [--healer KIND] [--json FILE] "
                 "[--max-steps N] [--jobs N] [--probe-mode auto|inline|async] "
                 "[--shards N]\n"
              << "  xheal_run replay <spec.scn> <trace.jsonl>\n"
              << "  xheal_run print <spec.scn>\n"
              << "  xheal_run list\n"
              << "  xheal_run diff <a.jsonl> <b.jsonl> [--context N]\n"
              << "  xheal_run fuzz <spec.scn>... [--candidates N] [--seed S] "
                 "[--out BASE] [--max-findings M] [--lambda2-floor X] "
                 "[--check-every N]\n"
              << "  xheal_run shrink <spec.scn> <trace.jsonl> [--out BASE] "
                 "[--lambda2-floor X] [--check-every N]\n"
              << "  (--check-every N runs the structural oracles every Nth "
                 "event, 0 = final only — use a coarse cadence on huge "
                 "streams like dex_scale)\n"
              << "exit codes: 0 success, 1 verdict failure (FAIL/mismatch/"
                 "divergence/findings), 2 usage or file errors\n";
    return 2;
}

std::string fmt_or_dash(double v, int precision) {
    return std::isnan(v) ? std::string("-") : util::format_double(v, precision);
}

/// Strict whole-string unsigned parse for flag values; returns false on
/// "abc", "200x", "-1", "".
bool parse_count(const std::string& text, std::size_t& out) {
    std::size_t consumed = 0;
    try {
        out = static_cast<std::size_t>(std::stoull(text, &consumed));
    } catch (const std::exception&) {
        return false;
    }
    return consumed == text.size() && !text.empty() && text[0] != '-';
}

/// --probe-mode values: auto (pipeline when worthwhile), inline, async.
bool parse_probe_mode(const std::string& text, scenario::ProbeMode& out) {
    if (text == "auto") out = scenario::ProbeMode::automatic;
    else if (text == "inline") out = scenario::ProbeMode::inline_only;
    else if (text == "async") out = scenario::ProbeMode::async_pipeline;
    else return false;
    return true;
}

/// Strict whole-string finite-double parse ("0.5x" and "nan" are rejected,
/// matching parse_count's strictness for the integer flags).
bool parse_finite(const std::string& text, double& out) {
    std::size_t consumed = 0;
    try {
        out = std::stod(text, &consumed);
    } catch (const std::exception&) {
        return false;
    }
    return consumed == text.size() && std::isfinite(out);
}

void print_samples(const scenario::RunResult& result) {
    util::Table table({"step", "phase", "nodes", "edges", "comps", "max-deg-ratio",
                       "h(G)~", "lambda2", "stretch", "probe-ms"});
    for (const auto& s : result.samples) {
        table.row()
            .add(s.step)
            .add(s.phase)
            .add(s.nodes)
            .add(s.edges)
            .add(s.components == 0 ? std::string("-") : std::to_string(s.components))
            .add(fmt_or_dash(s.max_degree_ratio, 2))
            .add(fmt_or_dash(s.expansion, 3))
            .add(fmt_or_dash(s.lambda2, 4))
            .add(fmt_or_dash(s.stretch, 2))
            .add(util::format_double(s.probe_seconds * 1000.0, 2));
    }
    table.print(std::cout);
}

void print_phases(const scenario::RunResult& result) {
    util::Table table({"phase", "steps", "deletions", "insertions", "skipped",
                       "edges-added", "combines", "mean rounds", "messages",
                       "retries"});
    for (const auto& p : result.phases) {
        table.row()
            .add(p.name)
            .add(p.steps)
            .add(p.deletions)
            .add(p.insertions)
            .add(p.skipped)
            .add(p.totals.edges_added)
            .add(p.totals.combines)
            .add(p.rounds.mean(), 2)
            .add(static_cast<std::size_t>(p.totals.messages))
            .add(static_cast<std::size_t>(p.totals.retries));
    }
    table.print(std::cout);
}

struct JsonRow {
    std::string scenario;
    std::size_t steps = 0;
    std::size_t events = 0;
    double seconds = 0.0;
    double steps_per_sec = 0.0;
    double probe_seconds = 0.0;
    double probe_stall_seconds = 0.0;
    std::size_t samples = 0;
    std::uint64_t probe_rebuilds = 0;
    std::uint64_t probe_patched_events = 0;
    std::size_t deletions = 0;
    std::size_t messages = 0;
    std::size_t rounds = 0;
    std::size_t retries = 0;
    std::size_t shards = 1;
    bool pass = false;
};

/// xheal-bench-scenarios-v5: v4 plus the per-row "shards" field (effective
/// shard-engine width the row ran on — floor consumers enforce timing
/// like-for-like against same-width baselines; deterministic fields are
/// width-independent). v4 added the distributed-protocol billing columns
/// (deletions, messages, rounds, retries — cumulative, deterministic, 0 for
/// non-message-passing healers); Theorem 5 floors divide messages and
/// rounds by deletions. Readers treat a missing "shards" as 1.
int write_json(const std::string& path, const std::vector<JsonRow>& rows) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    out << "{\n  \"schema\": \"xheal-bench-scenarios-v5\",\n"
        << "  \"note\": \"scenario engine throughput (adversary+healer steps/sec), "
           "probe cost (seconds spent in metric probes, ms per sample), and "
           "distributed-protocol billing (messages/rounds/retries, cumulative; 0 "
           "for local healers) per bundled spec; probe_stall_seconds is stepping "
           "time blocked on the async probe worker (0 when probing inline); "
           "shards is the shard-engine width the run stepped on (1 = the serial "
           "path — deterministic fields are byte-identical at any width, only "
           "the timing profile moves)\",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        double probe_ms_per_sample =
            rows[i].samples > 0
                ? rows[i].probe_seconds * 1000.0 / static_cast<double>(rows[i].samples)
                : 0.0;
        out << "    {\"scenario\": \"" << rows[i].scenario << "\", \"steps\": "
            << rows[i].steps << ", \"events\": " << rows[i].events
            << ", \"seconds\": " << util::format_double(rows[i].seconds, 6)
            << ", \"steps_per_sec\": "
            << static_cast<std::uint64_t>(rows[i].steps_per_sec)
            << ", \"probe_seconds\": " << util::format_double(rows[i].probe_seconds, 6)
            << ", \"probe_stall_seconds\": "
            << util::format_double(rows[i].probe_stall_seconds, 6)
            << ", \"samples\": " << rows[i].samples
            << ", \"probe_ms_per_sample\": "
            << util::format_double(probe_ms_per_sample, 3)
            << ", \"probe_rebuilds\": " << rows[i].probe_rebuilds
            << ", \"probe_patched_events\": " << rows[i].probe_patched_events
            << ", \"deletions\": " << rows[i].deletions
            << ", \"messages\": " << rows[i].messages
            << ", \"rounds\": " << rows[i].rounds
            << ", \"retries\": " << rows[i].retries
            << ", \"shards\": " << rows[i].shards
            << ", \"pass\": " << (rows[i].pass ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
    return 0;
}

/// Truncate a schedule after `max_steps` total steps, dropping now-empty
/// phases (reduced CI smoke runs of large specs). 0 = unlimited.
void truncate_schedule(scenario::ScenarioSpec& spec, std::size_t max_steps) {
    if (max_steps == 0) return;
    std::size_t remaining = max_steps;
    for (auto& phase : spec.phases) {
        phase.steps = std::min(phase.steps, remaining);
        remaining -= phase.steps;
    }
    std::erase_if(spec.phases,
                  [](const scenario::PhaseSpec& p) { return p.steps == 0; });
}

int cmd_run(const std::vector<std::string>& args) {
    std::vector<std::string> spec_paths;
    std::string trace_path, json_path;
    std::size_t max_steps = 0;  // 0 = unlimited
    std::size_t shards = 0;     // 0 = follow the spec
    scenario::ProbeMode probe_mode = scenario::ProbeMode::automatic;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--trace") {
            if (++i >= args.size()) return usage();
            trace_path = args[i];
        } else if (args[i] == "--json") {
            if (++i >= args.size()) return usage();
            json_path = args[i];
        } else if (args[i] == "--max-steps") {
            if (++i >= args.size()) return usage();
            if (!parse_count(args[i], max_steps) || max_steps == 0) {
                std::cerr << "--max-steps needs a positive integer, got '" << args[i]
                          << "'\n";
                return 2;
            }
        } else if (args[i] == "--probe-mode") {
            if (++i >= args.size()) return usage();
            if (!parse_probe_mode(args[i], probe_mode)) {
                std::cerr << "--probe-mode needs auto, inline or async, got '"
                          << args[i] << "'\n";
                return 2;
            }
        } else if (args[i] == "--shards") {
            if (++i >= args.size()) return usage();
            if (!parse_count(args[i], shards) || shards == 0 || shards > 256) {
                std::cerr << "--shards needs an integer in [1, 256], got '"
                          << args[i] << "'\n";
                return 2;
            }
        } else {
            spec_paths.push_back(args[i]);
        }
    }
    if (spec_paths.empty()) return usage();
    if (!trace_path.empty() && spec_paths.size() != 1) {
        std::cerr << "--trace requires exactly one spec\n";
        return 2;
    }

    bool all_pass = true;
    std::vector<JsonRow> json_rows;
    for (const std::string& path : spec_paths) {
        auto spec = scenario::ScenarioSpec::parse_file(path);
        truncate_schedule(spec, max_steps);
        scenario::ScenarioRunner runner(spec);
        runner.set_probe_mode(probe_mode);
        if (shards != 0) runner.set_shards(shards);
        auto result = runner.run();

        std::cout << "scenario " << spec.name << " (seed " << spec.seed << ", healer "
                  << spec.healer.kind << ", " << result.steps_done << " steps, "
                  << result.events.size() << " events, "
                  << util::format_double(result.steps_per_sec(), 0) << " steps/sec)\n\n";
        print_phases(result);
        std::cout << "\n";
        print_samples(result);
        std::cout << "probe snapshots: " << result.probe_rebuilds << " rebuilds, "
                  << result.probe_patched_events << " rows patched in place\n";
        for (const auto& failure : result.failures)
            std::cout << "expectation failed — " << failure << "\n";
        std::cout << "VERDICT scenario-" << spec.name << " "
                  << (result.passed() ? "PASS" : "FAIL") << " — " << result.events.size()
                  << " events, trace 0x" << std::hex << result.trace_hash
                  << ", fingerprint 0x" << result.fingerprint << std::dec << "\n\n";
        all_pass = all_pass && result.passed();

        if (!trace_path.empty()) {
            scenario::write_trace_file(trace_path, result.to_trace(spec));
            std::cout << "wrote trace " << trace_path << "\n";
        }
        json_rows.push_back({spec.name, result.steps_done, result.events.size(),
                             result.seconds, result.steps_per_sec(),
                             result.probe_seconds, result.probe_stall_seconds,
                             result.samples.size(), result.probe_rebuilds,
                             result.probe_patched_events,
                             result.final_sample.deletions,
                             result.final_sample.messages,
                             result.final_sample.rounds,
                             result.final_sample.retries, result.shards,
                             result.passed()});
    }
    if (!json_path.empty() && write_json(json_path, json_rows) != 0) return 1;
    return all_pass ? 0 : 1;
}

std::string json_escape(const std::string& text) {
    std::string out;
    for (char c : text) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

/// xheal-batch-v4: v3 plus the per-row "shards" field (effective
/// shard-engine width the row ran on — row-level because a batch can mix
/// widths via per-spec `shards` lines; floor consumers enforce timing
/// like-for-like against same-width baselines, readers treat a missing
/// "shards" as 1). v3 added the per-row distributed-protocol billing
/// columns (deletions, messages, rounds, retries — deterministic,
/// byte-stable across jobs values; 0 for non-message-passing healers). v2
/// added the report-level "jobs" field (worker pool size) and per-row
/// "probe_stall_seconds"; v1 readers treat a missing "jobs" as 1.
int write_batch_json(const std::string& path, const std::string& dir,
                     const std::string& healer_override, std::size_t jobs,
                     const std::vector<trace_tools::BatchOutcome>& rows) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    out << "{\n  \"schema\": \"xheal-batch-v4\",\n"
        << "  \"note\": \"aggregated batch report: per-spec verdict, deterministic "
           "stream hash + final-graph fingerprint, and stepping/probe throughput; "
           "hashes and verdicts are reproducible bit-for-bit at any jobs count "
           "and any shards width, timing fields are not\",\n"
        << "  \"dir\": \"" << json_escape(dir) << "\",\n"
        << "  \"healer_override\": \"" << json_escape(healer_override) << "\",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const trace_tools::BatchOutcome& r = rows[i];
        double probe_ms_per_sample =
            r.samples > 0 ? r.probe_seconds * 1000.0 / static_cast<double>(r.samples)
                          : 0.0;
        out << "    {\"file\": \"" << json_escape(r.file) << "\", \"scenario\": \""
            << json_escape(r.scenario) << "\", \"healer\": \"" << json_escape(r.healer)
            << "\", \"pass\": " << (r.pass ? "true" : "false")
            << ", \"steps\": " << r.steps << ", \"events\": " << r.events
            << ", \"trace_hash\": \"" << scenario::hex64(r.trace_hash)
            << "\", \"fingerprint\": \"" << scenario::hex64(r.fingerprint)
            << "\", \"seconds\": " << util::format_double(r.seconds, 6)
            << ", \"steps_per_sec\": " << static_cast<std::uint64_t>(r.steps_per_sec)
            << ", \"probe_seconds\": " << util::format_double(r.probe_seconds, 6)
            << ", \"probe_stall_seconds\": "
            << util::format_double(r.probe_stall_seconds, 6)
            << ", \"samples\": " << r.samples
            << ", \"probe_ms_per_sample\": " << util::format_double(probe_ms_per_sample, 3)
            << ", \"deletions\": " << r.deletions
            << ", \"messages\": " << r.messages
            << ", \"rounds\": " << r.rounds
            << ", \"retries\": " << r.retries
            << ", \"shards\": " << r.shards
            << ", \"failures\": [";
        for (std::size_t f = 0; f < r.failures.size(); ++f)
            out << (f == 0 ? "" : ", ") << "\"" << json_escape(r.failures[f]) << "\"";
        out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
    return 0;
}

int cmd_batch(const std::vector<std::string>& args) {
    std::string dir, json_path, healer_override;
    std::size_t max_steps = 0;
    std::size_t jobs = 1;
    std::size_t shards = 0;  // 0 = follow each spec
    scenario::ProbeMode probe_mode = scenario::ProbeMode::automatic;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--json") {
            if (++i >= args.size()) return usage();
            json_path = args[i];
        } else if (args[i] == "--healer") {
            if (++i >= args.size()) return usage();
            healer_override = args[i];
        } else if (args[i] == "--max-steps") {
            if (++i >= args.size()) return usage();
            if (!parse_count(args[i], max_steps) || max_steps == 0) {
                std::cerr << "--max-steps needs a positive integer, got '" << args[i]
                          << "'\n";
                return 2;
            }
        } else if (args[i] == "--jobs") {
            if (++i >= args.size()) return usage();
            if (!parse_count(args[i], jobs) || jobs == 0) {
                std::cerr << "--jobs needs a positive integer, got '" << args[i]
                          << "'\n";
                return 2;
            }
        } else if (args[i] == "--probe-mode") {
            if (++i >= args.size()) return usage();
            if (!parse_probe_mode(args[i], probe_mode)) {
                std::cerr << "--probe-mode needs auto, inline or async, got '"
                          << args[i] << "'\n";
                return 2;
            }
        } else if (args[i] == "--shards") {
            if (++i >= args.size()) return usage();
            if (!parse_count(args[i], shards) || shards == 0 || shards > 256) {
                std::cerr << "--shards needs an integer in [1, 256], got '"
                          << args[i] << "'\n";
                return 2;
            }
        } else if (dir.empty()) {
            dir = args[i];
        } else {
            return usage();
        }
    }
    if (dir.empty()) return usage();

    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        std::cerr << "batch: not a directory: " << dir << "\n";
        return 2;
    }
    // Sorted filenames, not directory order: the report (and its hashes)
    // must be byte-stable across filesystems.
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() && entry.path().extension() == ".scn")
            files.push_back(entry.path().filename().string());
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::cerr << "batch: no .scn specs in " << dir << "\n";
        return 2;
    }

    // Parse every spec on this thread so malformed files keep the usual
    // exit-2 path (parse errors throw and are caught in main).
    std::vector<trace_tools::BatchJob> batch_jobs;
    batch_jobs.reserve(files.size());
    for (const std::string& file : files) {
        auto spec = scenario::ScenarioSpec::parse_file((fs::path(dir) / file).string());
        if (!healer_override.empty())
            // Kind replacement drops the spec's healer params: a tournament
            // scores healers at their registry defaults, not with one
            // contestant's tuning applied to another.
            spec.healer = scenario::ComponentSpec{healer_override, {}};
        truncate_schedule(spec, max_steps);
        batch_jobs.push_back({file, std::move(spec), probe_mode, shards});
    }

    auto rows = trace_tools::run_batch(batch_jobs, jobs);

    // A runner that threw (unknown healer kind, invariant breach at
    // construction, ...) is an environment/usage error for the whole batch,
    // same as before the worker pool existed.
    for (const auto& r : rows)
        if (r.errored) {
            std::cerr << "error: " << r.error << "\n";
            return 2;
        }

    bool all_pass = true;
    for (const auto& r : rows) {
        for (const auto& failure : r.failures)
            std::cout << "expectation failed — " << r.scenario << ": " << failure << "\n";
        std::cout << "VERDICT batch-" << r.scenario << " " << (r.pass ? "PASS" : "FAIL")
                  << " — " << r.file << ", healer " << r.healer << ", " << r.events
                  << " events, trace " << scenario::hex64(r.trace_hash)
                  << ", fingerprint " << scenario::hex64(r.fingerprint) << "\n";
        all_pass = all_pass && r.pass;
    }

    util::Table table({"file", "scenario", "healer", "verdict", "steps", "events",
                       "steps/sec", "probe-ms/sample", "trace", "fingerprint"});
    for (const trace_tools::BatchOutcome& r : rows) {
        double probe_ms = r.samples > 0
                              ? r.probe_seconds * 1000.0 / static_cast<double>(r.samples)
                              : 0.0;
        table.row()
            .add(r.file)
            .add(r.scenario)
            .add(r.healer)
            .add(r.pass ? "PASS" : "FAIL")
            .add(r.steps)
            .add(r.events)
            .add(util::format_double(r.steps_per_sec, 0))
            .add(util::format_double(probe_ms, 2))
            .add(scenario::hex64(r.trace_hash))
            .add(scenario::hex64(r.fingerprint));
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "VERDICT batch " << (all_pass ? "PASS" : "FAIL") << " — " << rows.size()
              << " specs from " << dir << "\n";

    if (!json_path.empty() &&
        write_batch_json(json_path, dir, healer_override, jobs, rows) != 0)
        return 1;
    return all_pass ? 0 : 1;
}

int cmd_replay(const std::vector<std::string>& args) {
    if (args.size() != 2) return usage();
    auto spec = scenario::ScenarioSpec::parse_file(args[0]);
    auto trace = scenario::read_trace_file(args[1]);
    if (trace.spec_hash != spec.content_hash())
        std::cout << "note: spec content hash differs from the trace header "
                     "(spec edited since recording?)\n";
    scenario::ScenarioRunner runner(spec);
    auto result = runner.replay(trace);

    bool hash_ok = result.trace_hash == trace.trace_hash;
    bool fp_ok = result.fingerprint == trace.fingerprint;
    std::cout << "replayed " << trace.events.size() << " events of scenario "
              << spec.name << "\n"
              << "  trace hash:  recorded 0x" << std::hex << trace.trace_hash
              << ", replayed 0x" << result.trace_hash << (hash_ok ? " (match)" : " (MISMATCH)")
              << "\n  fingerprint: recorded 0x" << trace.fingerprint << ", replayed 0x"
              << result.fingerprint << (fp_ok ? " (match)" : " (MISMATCH)") << std::dec
              << "\n";
    std::cout << "VERDICT replay-" << spec.name << " "
              << (hash_ok && fp_ok ? "PASS" : "FAIL")
              << " — byte-for-byte deterministic replay\n";
    return hash_ok && fp_ok ? 0 : 1;
}

int cmd_diff(const std::vector<std::string>& args) {
    std::vector<std::string> paths;
    std::size_t context = 3;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--context") {
            if (++i >= args.size() || !parse_count(args[i], context)) return usage();
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.size() != 2) return usage();
    auto a = scenario::read_trace_file(paths[0]);
    auto b = scenario::read_trace_file(paths[1]);
    auto diff = trace_tools::diff_traces(a, b);
    std::cout << trace_tools::format_diff(diff, a, b, context);
    std::cout << "VERDICT diff " << (diff.identical() ? "PASS" : "FAIL") << " — "
              << paths[0] << " vs " << paths[1] << "\n";
    return diff.identical() ? 0 : 1;
}

void print_violations(const std::vector<trace_tools::ExecViolation>& violations) {
    for (const auto& v : violations)
        std::cout << "  violation after event " << v.event_index << " [" << v.oracle
                  << "]: " << v.message << "\n";
}

/// Reproducer specs must carry the oracle context that produced the
/// finding: re-emit the *effective* lambda2 floor as an `expect lambda2 >=`
/// clause — replacing any clause the spec already had, which an explicit
/// --lambda2-floor may have overridden — so a parameterless
/// `xheal_run shrink repro.scn repro.jsonl` re-derives it and
/// re-demonstrates the violation.
scenario::ScenarioSpec reproducer_spec(scenario::ScenarioSpec spec,
                                       const trace_tools::ExecOptions& exec) {
    // Shrunk traces are replayed event-by-event by the TraceExecutor, which
    // flushes every repair immediately — batch grouping is a live-run
    // concept. Normalize `batch` to 1 so the reproducer spec's semantics
    // match the executor's, instead of promising a deferred-flush schedule
    // the shrunk event stream no longer encodes.
    for (auto& phase : spec.phases) phase.batch = 1;
    if (std::isnan(exec.lambda2_floor)) return spec;
    std::erase_if(spec.expectations, [](const scenario::Expectation& e) {
        return e.kind == scenario::Expectation::Kind::lambda2_ge;
    });
    scenario::Expectation floor;
    floor.kind = scenario::Expectation::Kind::lambda2_ge;
    floor.value = exec.lambda2_floor;
    spec.expectations.push_back(floor);
    return spec;
}

/// The spec's own `expect lambda2 >=` clause doubles as the fuzz/shrink
/// oracle floor unless one was given explicitly on the command line.
void derive_lambda2_floor(const scenario::ScenarioSpec& spec,
                          trace_tools::ExecOptions& exec) {
    if (!std::isnan(exec.lambda2_floor)) return;
    for (const auto& e : spec.expectations)
        if (e.kind == scenario::Expectation::Kind::lambda2_ge)
            exec.lambda2_floor = e.value;
}

/// Shrink a failing finding and write the reproducer pair; prints the
/// summary lines shared by fuzz and shrink.
void shrink_and_write(const scenario::ScenarioSpec& spec,
                      const std::vector<scenario::TraceEvent>& events,
                      const trace_tools::ShrinkOptions& options,
                      const std::string& out_base) {
    auto shrunk = trace_tools::shrink(spec, events, options);
    if (!shrunk.input_failed) {
        std::cout << "shrink: input no longer fails (flaky oracle?); skipping\n";
        return;
    }
    std::cout << "shrunk " << shrunk.input_events << " -> " << shrunk.final_events()
              << " events in " << shrunk.tests_run << " executor runs\n";
    print_violations(shrunk.exec.violations);
    auto [scn, trace] = trace_tools::write_reproducer(
        out_base, reproducer_spec(spec, options.exec), shrunk);
    // Exception reproducers end on the throwing event by design — strict
    // replay surfaces the exception instead of matching hashes.
    bool exception_repro = shrunk.exec.violations[0].oracle == "healer-exception";
    std::cout << "wrote reproducer " << scn << " + " << trace
              << (exception_repro
                      ? " (replay re-raises the healer exception at the final event)"
                      : " (verify: xheal_run replay " + scn + " " + trace + ")")
              << "\n";
}

int cmd_fuzz(const std::vector<std::string>& args) {
    std::vector<std::string> spec_paths;
    trace_tools::FuzzOptions options;
    std::string out_base = "fuzz-repro";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--candidates") {
            if (++i >= args.size() || !parse_count(args[i], options.candidates))
                return usage();
        } else if (args[i] == "--seed") {
            std::size_t seed = 0;
            if (++i >= args.size() || !parse_count(args[i], seed)) return usage();
            options.seed = seed;
        } else if (args[i] == "--max-findings") {
            if (++i >= args.size() || !parse_count(args[i], options.max_findings))
                return usage();
        } else if (args[i] == "--lambda2-floor") {
            if (++i >= args.size() || !parse_finite(args[i], options.exec.lambda2_floor))
                return usage();
        } else if (args[i] == "--check-every") {
            if (++i >= args.size() || !parse_count(args[i], options.exec.check_every))
                return usage();
        } else if (args[i] == "--out") {
            if (++i >= args.size()) return usage();
            out_base = args[i];
        } else {
            spec_paths.push_back(args[i]);
        }
    }
    if (spec_paths.empty()) return usage();

    bool all_clean = true;
    for (const std::string& path : spec_paths) {
        auto spec = scenario::ScenarioSpec::parse_file(path);
        // Per-spec copy: a floor derived from one spec must not leak into
        // the next one of the same invocation.
        trace_tools::FuzzOptions spec_options = options;
        derive_lambda2_floor(spec, spec_options.exec);

        trace_tools::TraceFuzzer fuzzer(spec, spec_options);
        auto report = fuzzer.run();
        std::cout << "fuzz " << spec.name << ": " << report.candidates_run
                  << " candidates over " << report.base_events << " base events, "
                  << report.findings.size() << " finding(s)\n";
        for (const auto& finding : report.findings) {
            std::cout << "finding: candidate " << finding.candidate << " ["
                      << finding.mutator << "], " << finding.events.size()
                      << " events\n";
            print_violations(finding.exec.violations);
        }
        if (!report.clean()) {
            // Shrink the first finding that carries an event stream; a
            // runner-exception finding (the engine itself threw) has none.
            const trace_tools::FuzzFinding* target = nullptr;
            for (const auto& f : report.findings)
                if (!f.events.empty()) {
                    target = &f;
                    break;
                }
            if (target != nullptr) {
                trace_tools::ShrinkOptions shrink_options;
                shrink_options.exec = spec_options.exec;
                shrink_and_write(target->spec, target->events, shrink_options,
                                 out_base + "-" + spec.name);
            } else {
                std::cout << "no event stream to shrink (engine exception); "
                             "offending spec:\n"
                          << report.findings.front().spec.to_text();
            }
        }
        std::cout << "VERDICT fuzz-" << spec.name << " "
                  << (report.clean() ? "PASS" : "FAIL") << " — "
                  << report.candidates_run << " candidates\n";
        all_clean = all_clean && report.clean();
    }
    return all_clean ? 0 : 1;
}

int cmd_shrink(const std::vector<std::string>& args) {
    std::vector<std::string> paths;
    trace_tools::ShrinkOptions options;
    std::string out_base = "repro";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--out") {
            if (++i >= args.size()) return usage();
            out_base = args[i];
        } else if (args[i] == "--lambda2-floor") {
            if (++i >= args.size() || !parse_finite(args[i], options.exec.lambda2_floor))
                return usage();
        } else if (args[i] == "--check-every") {
            if (++i >= args.size() || !parse_count(args[i], options.exec.check_every))
                return usage();
        } else {
            paths.push_back(args[i]);
        }
    }
    if (paths.size() != 2) return usage();
    auto spec = scenario::ScenarioSpec::parse_file(paths[0]);
    auto trace = scenario::read_trace_file(paths[1]);
    derive_lambda2_floor(spec, options.exec);

    auto shrunk = trace_tools::shrink(spec, trace.events, options);
    if (!shrunk.input_failed) {
        std::cout << "shrink: the " << trace.events.size()
                  << "-event stream breaks no enabled invariant — nothing to shrink\n"
                  << "VERDICT shrink-" << spec.name << " FAIL — input does not fail\n";
        return 1;
    }
    std::cout << "shrunk " << shrunk.input_events << " -> " << shrunk.final_events()
              << " events in " << shrunk.tests_run << " executor runs\n";
    print_violations(shrunk.exec.violations);
    auto [scn, trace_path] = trace_tools::write_reproducer(
        out_base, reproducer_spec(spec, options.exec), shrunk);
    std::cout << "wrote reproducer " << scn << " + " << trace_path << "\n"
              << "VERDICT shrink-" << spec.name << " PASS — " << shrunk.final_events()
              << "-event reproducer\n";
    return 0;
}

int cmd_print(const std::vector<std::string>& args) {
    if (args.size() != 1) return usage();
    std::cout << scenario::ScenarioSpec::parse_file(args[0]).to_text();
    return 0;
}

int cmd_list() {
    auto print_list = [](const char* title, const std::vector<std::string>& names) {
        std::cout << title << ":";
        for (const auto& n : names) std::cout << " " << n;
        std::cout << "\n";
    };
    print_list("topologies", scenario::topology_names());
    print_list("healers   ", scenario::healer_names());
    print_list("deleters  ", scenario::deleter_names());
    print_list("inserters ", scenario::inserter_names());
    print_list("probes    ", {"connected", "degree", "expansion", "lambda2", "stretch"});
    std::cout << "\nspec grammar (see DESIGN.md decisions 5 and 8):\n"
              << "  name <id> | seed <n> | topology <kind> k=v... | healer <kind> k=v...\n"
              << "  probes <name>... | sample_every <n> | stretch_samples <n>\n"
              << "  phase <id> steps=N [seed=S] [burst=B] [insert_burst=I]\n"
              << "        [drop=P] [latency=L]  (lossy network, message-passing "
                 "healers)\n"
              << "        [delete_fraction=F | delete_fraction=A..B] [min_nodes=M]\n"
              << "        [deleter=<kind> | deleter=<k1>:<w1>,<k2>:<w2>] "
                 "[inserter=<kind>]\n"
              << "        [k=K] [deleter.x=v] [inserter.x=v]\n"
              << "  expect connected | expect <metric> <=|>= <value>\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "run") return cmd_run(args);
        if (command == "batch") return cmd_batch(args);
        if (command == "replay") return cmd_replay(args);
        if (command == "print") return cmd_print(args);
        if (command == "list") return cmd_list();
        if (command == "diff") return cmd_diff(args);
        if (command == "fuzz") return cmd_fuzz(args);
        if (command == "shrink") return cmd_shrink(args);
    } catch (const std::exception& e) {
        // Unreadable files, malformed specs/traces: environment errors, not
        // verdicts — distinct exit code for scripting consumers.
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    return usage();
}
