#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed_xheal.hpp"
#include "core/invariants.hpp"
#include "core/session.hpp"
#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

TEST(Distributed, RepairProducesSameGraphAsCentralized) {
    // The distributed layer adds accounting only: with identical seeds the
    // healed topology must match the centralized healer's bit for bit.
    Graph g1 = wl::make_star(20);
    Graph g2 = wl::make_star(20);
    XhealHealer central(XhealConfig{3, 77});
    DistributedXheal dist(XhealConfig{3, 77});
    for (NodeId victim : {0u, 4u, 9u}) {
        central.on_delete(g1, victim);
        dist.on_delete(g2, victim);
    }
    EXPECT_EQ(g1.edge_count(), g2.edge_count());
    g1.for_each_edge([&](NodeId u, NodeId v, const xheal::graph::EdgeClaims&) {
        EXPECT_TRUE(g2.has_edge(u, v));
    });
}

TEST(Distributed, DeletionCostsMessagesAndRounds) {
    Graph g = wl::make_star(16);
    DistributedXheal healer(XhealConfig{2, 5});
    auto report = healer.on_delete(g, 0);
    // At least one notice per neighbor plus the repair traffic.
    EXPECT_GE(report.messages, 16u);
    EXPECT_GE(report.rounds, 2u);
    EXPECT_EQ(report.messages, healer.last_messages());
    EXPECT_EQ(report.rounds, healer.last_rounds());
}

TEST(Distributed, LeafDeletionIsCheap) {
    Graph g = wl::make_star(16);
    DistributedXheal healer(XhealConfig{2, 5});
    auto report = healer.on_delete(g, 3);  // leaf: single notice, no repair
    EXPECT_EQ(report.messages, 1u);
    EXPECT_LE(report.rounds, 1u);
}

TEST(Distributed, RoundsGrowLogarithmically) {
    // Case-1 repair on a star of n leaves needs the tournament election:
    // rounds ~ ceil(log2 n) + constant.
    for (std::size_t n : {8u, 32u, 128u, 512u}) {
        Graph g = wl::make_star(n);
        DistributedXheal healer(XhealConfig{2, 5});
        auto report = healer.on_delete(g, 0);
        double expected = std::ceil(std::log2(static_cast<double>(n)));
        EXPECT_LE(report.rounds, static_cast<std::size_t>(expected) + 6)
            << "n=" << n;
        EXPECT_GE(report.rounds, 2u);
    }
}

TEST(Distributed, MessagesScaleWithDegreeTimesKappa) {
    // Case-1 repair: O(kappa * deg) messages.
    for (std::size_t n : {16u, 64u, 256u}) {
        Graph g = wl::make_star(n);
        DistributedXheal healer(XhealConfig{2, 5});
        auto report = healer.on_delete(g, 0);
        std::size_t kappa = healer.kappa();
        EXPECT_LE(report.messages, 4 * kappa * n + 64) << "n=" << n;
        EXPECT_GE(report.messages, n) << "n=" << n;
    }
}

TEST(Distributed, SessionChurnMaintainsInvariants) {
    xheal::util::Rng rng(13);
    Graph initial = wl::make_erdos_renyi(24, 0.2, rng);
    auto healer = std::make_unique<DistributedXheal>(XhealConfig{2, 21});
    std::size_t kappa = healer->kappa();
    HealingSession session(std::move(initial), std::move(healer));
    for (int step = 0; step < 25; ++step) {
        if (step % 3 != 2 && session.current().node_count() > 4) {
            auto alive = session.alive_nodes();
            session.delete_node(alive[rng.index(alive.size())]);
        } else {
            auto alive = session.alive_nodes();
            auto nbrs = rng.sample(alive, std::min<std::size_t>(3, alive.size()));
            std::sort(nbrs.begin(), nbrs.end());
            session.insert_node(nbrs);
        }
        check_session(session, kappa);
    }
    EXPECT_GT(session.totals().messages, 0u);
    EXPECT_GT(session.totals().rounds, 0u);
}

TEST(Distributed, NetworkStaysQuiescentBetweenRepairs) {
    Graph g = wl::make_star(12);
    DistributedXheal healer(XhealConfig{2, 5});
    healer.on_delete(g, 0);
    EXPECT_TRUE(healer.network().idle());
    healer.on_delete(g, 1);
    EXPECT_TRUE(healer.network().idle());
}

TEST(Distributed, CombineChargesFloodTraffic) {
    // Run a bridge-targeted grind until a combine fires; its repair must
    // show the BFS flood (more messages than a plain fix).
    xheal::util::Rng rng(17);
    Graph initial = wl::make_erdos_renyi(26, 0.25, rng);
    DistributedXheal healer(XhealConfig{1, 23});  // kappa=2: free nodes scarce
    Graph g = initial;
    bool combined = false;
    for (int step = 0; step < 200 && g.node_count() > 4; ++step) {
        // Prefer bridges (non-free nodes).
        NodeId victim = xheal::graph::invalid_node;
        for (NodeId v : g.nodes()) {
            if (!healer.registry().is_free(v)) {
                victim = v;
                break;
            }
        }
        if (victim == xheal::graph::invalid_node) victim = g.nodes().front();
        auto report = healer.on_delete(g, victim);
        if (report.combines > 0) {
            combined = true;
            EXPECT_GT(report.messages, 10u);
            break;
        }
    }
    EXPECT_TRUE(combined) << "no combine triggered within the grind";
}

}  // namespace
