// Parameterized property sweep: for every (initial graph family, adversary
// strategy, kappa) combination, run a churn and assert the full invariant
// set after every step — connectivity, degree bound (Lemma 3), registry
// consistency, reference-edge preservation. This is the main property-based
// harness for the healer.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "adversary/adversary.hpp"
#include "core/invariants.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal;
using namespace xheal::core;
using graph::Graph;
using graph::NodeId;
namespace wl = workload;
namespace adv = adversary;

struct PropertyParam {
    std::string graph_name;
    std::string adversary_name;
    std::size_t d;
    std::size_t steps;
    double delete_fraction;
};

std::string param_name(const ::testing::TestParamInfo<PropertyParam>& info) {
    auto p = info.param;
    std::string s = p.graph_name + "_" + p.adversary_name + "_d" + std::to_string(p.d) +
                    "_s" + std::to_string(p.steps);
    for (char& c : s)
        if (c == '-') c = '_';
    return s;
}

Graph make_initial(const std::string& name, util::Rng& rng) {
    if (name == "cycle") return wl::make_cycle(24);
    if (name == "star") return wl::make_star(23);
    if (name == "grid") return wl::make_grid(5, 5);
    if (name == "er") return wl::make_erdos_renyi(24, 0.18, rng);
    if (name == "regular") return wl::make_random_regular(24, 4, rng);
    if (name == "tree") return wl::make_binary_tree(24);
    if (name == "dumbbell") return wl::make_dumbbell(12);
    throw std::runtime_error("unknown graph " + name);
}

std::unique_ptr<adv::DeletionStrategy> make_adversary(const std::string& name,
                                                      const CloudRegistry* registry) {
    if (name == "random") return std::make_unique<adv::RandomDeletion>();
    if (name == "maxdeg") return std::make_unique<adv::MaxDegreeDeletion>();
    if (name == "mindeg") return std::make_unique<adv::MinDegreeDeletion>();
    if (name == "cut") return std::make_unique<adv::CutPointDeletion>();
    if (name == "colored") return std::make_unique<adv::ColoredDegreeDeletion>();
    if (name == "bridge") return std::make_unique<adv::BridgeHunterDeletion>(registry);
    throw std::runtime_error("unknown adversary " + name);
}

class XhealPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(XhealPropertyTest, InvariantsHoldThroughChurn) {
    const auto& p = GetParam();
    util::Rng rng(0xfeedULL + p.d);
    Graph initial = make_initial(p.graph_name, rng);

    auto healer = std::make_unique<XhealHealer>(XhealConfig{p.d, 1000 + p.d});
    const CloudRegistry* registry = &healer->registry();
    std::size_t kappa = healer->kappa();
    HealingSession session(std::move(initial), std::move(healer));

    auto deleter = make_adversary(p.adversary_name, registry);
    adv::RandomAttach inserter(3);

    for (std::size_t step = 0; step < p.steps; ++step) {
        bool can_delete = session.current().node_count() > 4;
        if (can_delete && rng.chance(p.delete_fraction)) {
            NodeId victim = deleter->pick(session, rng);
            ASSERT_NE(victim, graph::invalid_node);
            session.delete_node(victim);
        } else {
            auto nbrs = inserter.pick_neighbors(session, rng);
            ASSERT_FALSE(nbrs.empty());
            session.insert_node(nbrs);
        }
        ASSERT_NO_THROW(check_session(session, kappa))
            << p.graph_name << "/" << p.adversary_name << " failed at step " << step;
    }
    EXPECT_GT(session.deletions(), 0u);
}

std::vector<PropertyParam> make_params() {
    std::vector<PropertyParam> params;
    for (const char* graph : {"cycle", "star", "grid", "er", "regular", "tree", "dumbbell"}) {
        for (const char* adversary : {"random", "maxdeg", "colored"}) {
            params.push_back({graph, adversary, 2, 60, 0.6});
        }
    }
    // Deeper stress on targeted strategies with scarce free nodes (d = 1).
    params.push_back({"er", "bridge", 1, 80, 0.7});
    params.push_back({"regular", "bridge", 2, 80, 0.7});
    params.push_back({"grid", "cut", 2, 60, 0.6});
    params.push_back({"star", "cut", 1, 60, 0.6});
    // Larger kappa sanity.
    params.push_back({"er", "random", 4, 50, 0.5});
    params.push_back({"cycle", "maxdeg", 4, 50, 0.5});
    // Long-haul soak on the slot-indexed storage: 500 adversarial steps of
    // targeted churn exercise tombstone accumulation, row reuse and the
    // incremental degree bookkeeping far past the short sweeps above.
    params.push_back({"regular", "bridge", 2, 500, 0.55});
    return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, XhealPropertyTest, ::testing::ValuesIn(make_params()),
                         param_name);

}  // namespace
