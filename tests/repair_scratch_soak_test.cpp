// Repair-path soak: 2k-step H-graph splice/rebuild churn through the cloud
// registry and the healer, asserting kappa-regularity of the projection,
// claim-set consistency (CloudRegistry::verify), and — via a counting
// global allocator — ZERO steady-state heap allocations in the repair path
// once the scratch buffers have warmed up to the workload's peak sizes.
//
// "Steady state" is the paper's common case: incremental splices, claim
// churn, leadership repair and even the half-loss rebuild (reshuffled in
// place). Structural events that create or dissolve clouds allocate by
// design and are excluded by construction of the workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/cloud_registry.hpp"
#include "core/xheal_healer.hpp"
#include "expander/hgraph.hpp"
#include "util/rng.hpp"

// ----- counting global allocator -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace xheal;
using graph::ColorId;
using graph::Graph;
using graph::NodeId;

std::uint64_t allocations() {
    return g_allocations.load(std::memory_order_relaxed);
}

// ----- H-graph layer ------------------------------------------------------

TEST(RepairScratchSoak, HGraphSpliceRebuildChurnIsAllocationFreeAtCapacity) {
    util::Rng rng(101);
    std::vector<NodeId> initial;
    for (NodeId v = 0; v < 64; ++v) initial.push_back(v);
    expander::HGraph h(initial, 3, rng);
    expander::HGraph::SpliceDelta delta;

    std::vector<NodeId> inside = initial;  // external member mirror
    std::vector<NodeId> outside;
    for (NodeId v = 64; v < 192; ++v) outside.push_back(v);

    auto churn_step = [&](std::size_t step) {
        delta.clear();
        bool do_remove = h.size() > 8 && (step % 2 == 0 || outside.empty());
        if (do_remove) {
            std::size_t at = rng.index(inside.size());
            NodeId v = inside[at];
            inside[at] = inside.back();
            inside.pop_back();
            h.remove(v, &delta);
            outside.push_back(v);
        } else {
            std::size_t at = rng.index(outside.size());
            NodeId v = outside[at];
            outside[at] = outside.back();
            outside.pop_back();
            h.insert(v, rng, &delta);
            inside.push_back(v);
        }
        if (step % 97 == 0) h.rebuild(rng);  // periodic in-place rebuild
    };

    // Warmup: cycle every id through the structure so the slot free list,
    // the index vector and the delta buffers reach their peaks.
    for (std::size_t step = 0; step < 1000; ++step) churn_step(step);
    h.validate();

    std::uint64_t before = allocations();
    for (std::size_t step = 0; step < 2000; ++step) churn_step(step);
    std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "H-graph splice churn allocated " << (after - before) << " times";

    h.validate();
    // kappa-regularity of the projection: every member has degree <= 2d.
    auto edges = h.edges();
    std::vector<std::size_t> degree(192, 0);
    for (const auto& [a, b] : edges) {
        ++degree[a];
        ++degree[b];
    }
    for (NodeId v : h.members_sorted()) {
        EXPECT_LE(degree[v], h.kappa());
        EXPECT_GE(degree[v], 1u);
    }
}

// ----- registry layer -----------------------------------------------------

/// Churn one H-graph-mode cloud through CloudRegistry::insert_member /
/// remove_member (the sharing / bridge-replacement path: members leave the
/// cloud but stay alive in the graph, so they can rejoin later).
TEST(RepairScratchSoak, RegistrySpliceRebuildChurnZeroSteadyStateAllocations) {
    Graph g;
    constexpr std::size_t population = 96;
    for (std::size_t i = 0; i < population; ++i) g.add_node();

    util::Rng rng(7);
    core::CloudRegistry registry(/*d=*/2, /*rebuild_on_half_loss=*/true);

    std::vector<NodeId> initial;
    for (NodeId v = 0; v < 48; ++v) initial.push_back(v);
    ColorId color = registry.create_cloud(g, core::CloudKind::primary, initial, rng);

    std::vector<NodeId> outside;  // alive nodes currently not in the cloud
    for (NodeId v = 48; v < population; ++v) outside.push_back(v);

    std::size_t kappa = registry.kappa();
    auto churn_step = [&](std::size_t step) {
        const core::Cloud* cloud = registry.find(color);
        bool can_shrink = cloud->size() > kappa + 3;  // never leave H-graph mode
        bool do_remove = can_shrink && (step % 3 != 0 || outside.empty());
        if (do_remove) {
            const auto& members = cloud->topology.members();
            NodeId v = members[rng.index(members.size())];
            registry.remove_member(g, color, v, rng, /*deleted_from_graph=*/false);
            outside.push_back(v);
        } else if (!outside.empty()) {
            std::size_t at = rng.index(outside.size());
            NodeId v = outside[at];
            outside[at] = outside.back();
            outside.pop_back();
            registry.insert_member(g, color, v, rng);
        }
    };

    // Warmup: let every node pass through the cloud at least once so the
    // membership vectors, claim mirrors, adjacency rows and delta scratch
    // all reach their peak capacities (including half-loss rebuilds).
    for (std::size_t step = 0; step < 3000; ++step) churn_step(step);
    registry.verify(g);

    // Soak: 2000 steady-state steps must not allocate at all.
    std::uint64_t before = allocations();
    for (std::size_t step = 0; step < 2000; ++step) churn_step(step + 1);
    std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "repair-path splice churn allocated " << (after - before) << " times";

    // The drain-down phase of the churn crossed the half-loss threshold
    // (rebuilds *inside* the counted window are exercised by the H-graph
    // and healer soaks: once the construction baseline shrinks to the
    // population floor, balanced churn cannot re-trigger the rule).
    EXPECT_GE(registry.find(color)->rebuild_count, 1u);

    // kappa-regularity: every member's claim degree stays within kappa in
    // H-graph mode (2d cycle edges, fewer after simple-graph projection).
    const core::Cloud* cloud = registry.find(color);
    ASSERT_EQ(cloud->topology.mode(), expander::CloudTopology::Mode::hgraph);
    std::vector<std::size_t> claim_degree(population, 0);
    for (const auto& [a, b] : cloud->claimed) {
        ++claim_degree[a];
        ++claim_degree[b];
    }
    for (NodeId v : cloud->topology.members()) {
        EXPECT_LE(claim_degree[v], kappa);
        EXPECT_GE(claim_degree[v], 1u);
    }
    // Claim-set consistency: the registry's full structural verification.
    registry.verify(g);
}

// ----- healer layer -------------------------------------------------------

/// The healer's common steady-state repair: delete a member of one big
/// primary cloud with no black edges — FixPrimary (splice or in-place
/// rebuild), nothing structural. After warmup, on_delete must not allocate.
TEST(RepairScratchSoak, HealerSteadyStateDeleteZeroAllocations) {
    Graph g;
    constexpr std::size_t population = 2400;
    for (std::size_t i = 0; i < population; ++i) g.add_node();

    core::XhealHealer healer(core::XhealConfig{/*d=*/2, /*seed=*/77});
    // One primary cloud over everyone via the healer's own Case 1: a hub
    // with black edges to all others dies and its neighbors become the
    // cloud. From then on every edge in g is cloud-colored, so deleting any
    // member is the pure FixPrimary path.
    for (NodeId v = 1; v < population; ++v) g.add_black_edge(0, v);
    healer.on_delete(g, 0);
    ASSERT_EQ(healer.registry().cloud_count(), 1u);
    ColorId color = healer.registry().colors().front();

    util::Rng pick_rng(13);
    auto victim = [&]() {
        const auto& members = healer.registry().find(color)->topology.members();
        return members[pick_rng.index(members.size())];
    };

    // Warmup: splices plus the first half-loss rebuild.
    for (int i = 0; i < 1200; ++i) healer.on_delete(g, victim());
    std::size_t rebuilds_before = healer.registry().find(color)->rebuild_count;
    EXPECT_GE(rebuilds_before, 1u);

    std::uint64_t before = allocations();
    for (int i = 0; i < 600; ++i) healer.on_delete(g, victim());
    std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "healer steady-state repair allocated " << (after - before) << " times";

    // The counted window crossed another rebuild threshold.
    EXPECT_GT(healer.registry().find(color)->rebuild_count, rebuilds_before);
    healer.check_consistency(g);
}

}  // namespace
