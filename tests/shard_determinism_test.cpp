// Shard-engine determinism (DESIGN.md decision 13): the intra-session
// id-range shard engine must be invisible in every deterministic output.
// Running any spec at shards=S must produce byte-identical trace hashes,
// fingerprints, metric samples (bitwise for doubles) and verdicts to the
// serial shards=1 path — across the bundled scenarios, the tournament
// pack's healers (in-process and message-passing), and through compaction
// epochs where the engine reshards onto the renumbered id space.
//
// This suite (with async_probe_equivalence_test and
// batch_jobs_determinism_test) is part of the CI tsan job's workload: the
// per-shard SPSC rings and the ordered-apply ticket are exercised under
// -fsanitize=thread for real.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"

namespace xheal {
namespace {

using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::Trace;
using scenario::TraceEvent;

std::string spec_path(const std::string& file) {
    return std::string(XHEAL_REPO_DIR) + "/scenarios/" + file;
}

// Bitwise double equality, NaN-tolerant (NaN means "not sampled" and must
// stay NaN at every width). Tolerance compares would paper over a shard
// consumer perturbing a probe value.
::testing::AssertionResult bit_equal(const char* a_expr, const char* b_expr,
                                     double a, double b) {
    std::uint64_t ab, bb;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::memcpy(&ab, &a, sizeof a);
    std::memcpy(&bb, &b, sizeof b);
    if (ab == bb || (std::isnan(a) && std::isnan(b)))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a_expr << " = " << a << " vs " << b_expr << " = " << b
           << " (bit patterns differ)";
}

scenario::RunResult run_with_shards(const ScenarioSpec& spec,
                                    std::size_t shards) {
    ScenarioRunner runner(spec);
    if (shards != 0) runner.set_shards(shards);
    return runner.run();
}

// Every deterministic field must match the serial run exactly; `shards`
// itself is the one reporting field allowed to differ.
void expect_identical(const scenario::RunResult& serial,
                      const scenario::RunResult& sharded) {
    EXPECT_EQ(serial.trace_hash, sharded.trace_hash);
    EXPECT_EQ(serial.fingerprint, sharded.fingerprint);
    EXPECT_EQ(serial.steps_done, sharded.steps_done);
    EXPECT_EQ(serial.events.size(), sharded.events.size());
    EXPECT_EQ(serial.compactions, sharded.compactions);
    EXPECT_EQ(serial.peak_slot_count, sharded.peak_slot_count);
    EXPECT_EQ(serial.live_high_water, sharded.live_high_water);
    EXPECT_EQ(serial.failures, sharded.failures);
    ASSERT_EQ(serial.phases.size(), sharded.phases.size());
    for (std::size_t i = 0; i < serial.phases.size(); ++i) {
        const auto& a = serial.phases[i];
        const auto& b = sharded.phases[i];
        SCOPED_TRACE("phase " + a.name);
        EXPECT_EQ(a.deletions, b.deletions);
        EXPECT_EQ(a.insertions, b.insertions);
        EXPECT_EQ(a.skipped, b.skipped);
        EXPECT_EQ(a.totals.messages, b.totals.messages);
        EXPECT_EQ(a.totals.rounds, b.totals.rounds);
        EXPECT_EQ(a.totals.retries, b.totals.retries);
        // Welford over per-deletion rounds is add-order sensitive — bitwise
        // equality here proves the merge realizes the serial apply order.
        EXPECT_PRED_FORMAT2(bit_equal, a.rounds.mean(), b.rounds.mean());
        EXPECT_PRED_FORMAT2(bit_equal, a.rounds.stddev(), b.rounds.stddev());
        EXPECT_PRED_FORMAT2(bit_equal, a.victim_degree.mean(),
                            b.victim_degree.mean());
    }
    ASSERT_EQ(serial.samples.size(), sharded.samples.size());
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
        const auto& a = serial.samples[i];
        const auto& b = sharded.samples[i];
        SCOPED_TRACE("sample " + std::to_string(i) + " @step " +
                     std::to_string(a.step));
        EXPECT_EQ(a.step, b.step);
        EXPECT_EQ(a.nodes, b.nodes);
        EXPECT_EQ(a.edges, b.edges);
        EXPECT_EQ(a.deletions, b.deletions);
        EXPECT_EQ(a.insertions, b.insertions);
        EXPECT_EQ(a.messages, b.messages);
        EXPECT_EQ(a.rounds, b.rounds);
        EXPECT_EQ(a.retries, b.retries);
        EXPECT_EQ(a.components, b.components);
        EXPECT_EQ(a.max_degree, b.max_degree);
        EXPECT_PRED_FORMAT2(bit_equal, a.max_degree_ratio, b.max_degree_ratio);
        EXPECT_PRED_FORMAT2(bit_equal, a.worst_slack_ratio, b.worst_slack_ratio);
        EXPECT_PRED_FORMAT2(bit_equal, a.expansion, b.expansion);
        EXPECT_PRED_FORMAT2(bit_equal, a.lambda2, b.lambda2);
        EXPECT_PRED_FORMAT2(bit_equal, a.stretch, b.stretch);
    }
}

// Every bundled scenario at widths 1 / 2 / 8. Width 8 over these small
// populations leaves most shards near-empty — the merge must interleave
// heavily uneven delta streams and still reproduce the serial order.
TEST(ShardDeterminism, BundledScenariosAcrossWidths) {
    const char* files[] = {"star_collapse.scn", "phased_churn.scn",
                           "bridge_hunter.scn", "p2p_churn.scn",
                           "hub_assault.scn",   "batch_failures.scn"};
    for (const char* file : files) {
        SCOPED_TRACE(file);
        auto spec = ScenarioSpec::parse_file(spec_path(file));
        auto serial = run_with_shards(spec, 1);
        auto two = run_with_shards(spec, 2);
        auto eight = run_with_shards(spec, 8);
        EXPECT_EQ(serial.shards, 1u);
        EXPECT_EQ(two.shards, 2u);
        EXPECT_EQ(eight.shards, 8u);
        expect_identical(serial, two);
        expect_identical(serial, eight);
        EXPECT_TRUE(serial.passed())
            << (serial.failures.empty() ? "" : serial.failures[0]);
    }
}

// The seam the bugfix sweep exists for: compaction renumbers the id space
// mid-phase, the engine reshards onto the new dense range, and subsequent
// victims must land on (possibly different) shards without perturbing the
// stream. compact=2 on a 40-node graph fires many epochs per run.
ScenarioSpec compact_churn_spec() {
    return ScenarioSpec::parse(R"(
name shard-compact-churn
seed 11
topology erdos-renyi n=40 p=0.15
healer xheal d=2
phase churn steps=160 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=12 compact=2
expect connected
expect peak_slot_factor <= 4
)");
}

TEST(ShardDeterminism, ReshardAtCompactionBoundaries) {
    auto spec = compact_churn_spec();
    auto serial = run_with_shards(spec, 1);
    auto sharded = run_with_shards(spec, 8);
    ASSERT_GE(serial.compactions, 1u)
        << "spec never triggered a compaction — the reshard path is untested";
    expect_identical(serial, sharded);

    // The compact events record the width that closed each epoch (reporting
    // metadata only — the streams above already hashed identically).
    for (const TraceEvent& e : serial.events)
        if (e.kind == TraceEvent::Kind::compact) EXPECT_EQ(e.shards, 1u);
    std::size_t compact_events = 0;
    for (const TraceEvent& e : sharded.events)
        if (e.kind == TraceEvent::Kind::compact) {
            EXPECT_EQ(e.shards, 8u);
            ++compact_events;
        }
    EXPECT_EQ(compact_events, sharded.compactions);
}

// A batched delete phase (batch=4): shard consumers stage deletions and
// the healer repairs at flush points; the staged/flush seam must merge in
// the same order the serial path flushes.
TEST(ShardDeterminism, BatchedDeletesAcrossWidths) {
    auto spec = ScenarioSpec::parse(R"(
name shard-batch-churn
seed 29
topology random-regular n=64 d=4
healer xheal d=2
phase churn steps=120 delete_fraction=0.7 batch=4 deleter=random inserter=random-attach k=3 min_nodes=24 compact=3
expect connected
)");
    auto serial = run_with_shards(spec, 1);
    auto sharded = run_with_shards(spec, 4);
    ASSERT_GE(serial.compactions, 1u);
    expect_identical(serial, sharded);
}

// Every tournament healer — including the message-passing xheal-dist,
// whose Theorem-5 billing counters ride the staged RepairReports through
// the merge — at width 4 vs the serial path.
TEST(ShardDeterminism, TournamentHealersAcrossWidths) {
    const char* files[] = {"cycle.scn",        "forgiving_tree.scn",
                           "no_heal.scn",      "random_match.scn",
                           "xheal.scn",        "xheal_dist.scn"};
    for (const char* file : files) {
        SCOPED_TRACE(file);
        auto spec = ScenarioSpec::parse_file(
            std::string(XHEAL_REPO_DIR) + "/scenarios/packs/tournament/" + file);
        auto serial = run_with_shards(spec, 1);
        auto sharded = run_with_shards(spec, 4);
        expect_identical(serial, sharded);
        EXPECT_EQ(serial.final_sample.messages, sharded.final_sample.messages);
        EXPECT_EQ(serial.final_sample.rounds, sharded.final_sample.rounds);
        EXPECT_EQ(serial.final_sample.retries, sharded.final_sample.retries);
    }
}

// A sharded run's trace must replay byte-for-byte on the (always-serial)
// replay path, and a serial trace must replay regardless of what width
// recorded it — shard counts are interchangeable across record/replay.
TEST(ShardDeterminism, ShardedTraceReplaysSerially) {
    auto spec = compact_churn_spec();
    auto recorded = run_with_shards(spec, 8);
    ASSERT_GE(recorded.compactions, 1u);
    auto trace = recorded.to_trace(spec);
    auto replayed = ScenarioRunner(spec).replay(trace);
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
    EXPECT_EQ(replayed.compactions, recorded.compactions);
}

// JSONL round trip preserves the compact events' `"shards"` field, and the
// hasher ignores it: two events differing only in width hash identically
// (the on-disk contract that lets sharded and serial traces diff clean).
TEST(ShardDeterminism, TraceSerializationCarriesShardsOutsideTheHash) {
    auto spec = compact_churn_spec();
    auto recorded = run_with_shards(spec, 8);
    ASSERT_GE(recorded.compactions, 1u);
    auto trace = recorded.to_trace(spec);
    std::ostringstream out;
    scenario::write_trace(out, trace);
    EXPECT_NE(out.str().find("\"shards\":8"), std::string::npos);
    std::istringstream in(out.str());
    Trace back = scenario::read_trace(in);
    ASSERT_EQ(back.events.size(), trace.events.size());
    for (std::size_t i = 0; i < trace.events.size(); ++i)
        EXPECT_EQ(back.events[i].shards, trace.events[i].shards);

    TraceEvent serial_event;
    serial_event.kind = TraceEvent::Kind::compact;
    serial_event.step = 7;
    serial_event.phase = 1;
    serial_event.node = 48;
    TraceEvent sharded_event = serial_event;
    sharded_event.shards = 8;
    scenario::TraceHasher ha, hb;
    ha.add(serial_event);
    hb.add(sharded_event);
    EXPECT_EQ(ha.value(), hb.value());
    // And the width-1 event serializes without the field at all — the
    // byte-identity guarantee for every pre-sharding golden trace.
    EXPECT_EQ(scenario::event_to_json(serial_event).find("shards"),
              std::string::npos);
    EXPECT_NE(scenario::event_to_json(sharded_event).find("\"shards\":8"),
              std::string::npos);
}

// Grammar round trip: top-level `shards` and per-phase `shards=` survive
// parse(to_text()), the default is omitted (content_hash of pre-sharding
// specs unchanged), and out-of-range widths are rejected.
TEST(ShardDeterminism, SpecGrammarRoundTripsShards) {
    auto spec = ScenarioSpec::parse(R"(
name shard-grammar
seed 5
topology cycle n=16
healer xheal d=2
shards 4
phase a steps=10 delete_fraction=0.5 deleter=random inserter=random-attach k=2 min_nodes=8
phase b steps=10 delete_fraction=0.5 shards=2 deleter=random inserter=random-attach k=2 min_nodes=8
)");
    EXPECT_EQ(spec.shards, 4u);
    ASSERT_EQ(spec.phases.size(), 2u);
    EXPECT_FALSE(spec.phases[0].shards.has_value());
    ASSERT_TRUE(spec.phases[1].shards.has_value());
    EXPECT_EQ(*spec.phases[1].shards, 2u);
    auto reparsed = ScenarioSpec::parse(spec.to_text());
    EXPECT_EQ(reparsed.shards, 4u);
    EXPECT_EQ(reparsed.content_hash(), spec.content_hash());

    auto plain = ScenarioSpec::parse(R"(
name shard-grammar-default
seed 5
topology cycle n=16
healer xheal d=2
phase a steps=10 delete_fraction=0.5 deleter=random inserter=random-attach k=2 min_nodes=8
)");
    EXPECT_EQ(plain.shards, 1u);
    EXPECT_EQ(plain.to_text().find("shards"), std::string::npos);

    EXPECT_THROW(ScenarioSpec::parse("name x\nseed 1\ntopology cycle n=8\n"
                                     "healer xheal d=2\nshards 0\n"
                                     "phase a steps=1 delete_fraction=1 "
                                     "deleter=random inserter=random-attach "
                                     "k=2 min_nodes=4\n"),
                 std::runtime_error);
    EXPECT_THROW(ScenarioSpec::parse("name x\nseed 1\ntopology cycle n=8\n"
                                     "healer xheal d=2\nshards 257\n"
                                     "phase a steps=1 delete_fraction=1 "
                                     "deleter=random inserter=random-attach "
                                     "k=2 min_nodes=4\n"),
                 std::runtime_error);
}

// The spec's own width (no CLI override): `shards 4` in the text drives
// the engine, a per-phase `shards=1` drops back to the serial path
// mid-run, and the result still matches an all-serial run byte for byte.
TEST(ShardDeterminism, SpecDrivenWidthsAndMidRunTeardown) {
    const char* body = R"(
name shard-spec-driven
seed 61
topology random-regular n=48 d=4
healer xheal d=2
{SHARDS}phase a steps=60 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=20 compact=3
phase b steps=60 delete_fraction=0.6 {PHASE}deleter=random inserter=random-attach k=3 min_nodes=20 compact=3
expect connected
)";
    auto instantiate = [&](const std::string& top, const std::string& phase) {
        std::string text = body;
        text.replace(text.find("{SHARDS}"), 8, top);
        text.replace(text.find("{PHASE}"), 7, phase);
        return ScenarioSpec::parse(text);
    };
    auto serial = ScenarioRunner(instantiate("", "")).run();
    auto sharded = ScenarioRunner(instantiate("shards 4\n", "")).run();
    auto mixed = ScenarioRunner(instantiate("shards 4\n", "shards=1 ")).run();
    EXPECT_EQ(serial.shards, 1u);
    EXPECT_EQ(sharded.shards, 4u);
    EXPECT_EQ(mixed.shards, 4u);  // max width across phases
    expect_identical(serial, sharded);
    expect_identical(serial, mixed);
}

}  // namespace
}  // namespace xheal
