#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "adversary/adversary.hpp"
#include "baseline/baselines.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal;
using namespace xheal::adversary;
using core::HealingSession;
using graph::Graph;
using graph::NodeId;
namespace wl = workload;

HealingSession make_session(Graph g) {
    return HealingSession(std::move(g),
                          std::make_unique<core::XhealHealer>(core::XhealConfig{2, 3}));
}

TEST(Adversary, RandomPicksAliveNode) {
    auto s = make_session(wl::make_cycle(8));
    util::Rng rng(1);
    RandomDeletion strat;
    for (int i = 0; i < 20; ++i) {
        NodeId v = strat.pick(s, rng);
        EXPECT_TRUE(s.current().has_node(v));
    }
}

TEST(Adversary, MaxDegreeFindsTheHub) {
    auto s = make_session(wl::make_star(7));
    util::Rng rng(2);
    EXPECT_EQ(MaxDegreeDeletion{}.pick(s, rng), 0u);
}

TEST(Adversary, MinDegreeFindsALeaf) {
    auto s = make_session(wl::make_star(7));
    util::Rng rng(3);
    NodeId v = MinDegreeDeletion{}.pick(s, rng);
    EXPECT_NE(v, 0u);
    EXPECT_EQ(s.current().degree(v), 1u);
}

TEST(Adversary, CutPointPrefersArticulation) {
    auto s = make_session(wl::make_dumbbell(4));  // cut vertices 0 and 4
    util::Rng rng(4);
    NodeId v = CutPointDeletion{}.pick(s, rng);
    EXPECT_TRUE(v == 0 || v == 4);
}

TEST(Adversary, CutPointFallsBackOnBiconnected) {
    auto s = make_session(wl::make_cycle(6));
    util::Rng rng(5);
    NodeId v = CutPointDeletion{}.pick(s, rng);
    EXPECT_TRUE(s.current().has_node(v));
}

TEST(Adversary, ColoredDegreeTargetsHealedRegions) {
    auto s = make_session(wl::make_star(6));
    util::Rng rng(6);
    s.delete_node(0);  // creates a colored cloud among the leaves
    NodeId v = ColoredDegreeDeletion{}.pick(s, rng);
    std::size_t colored = 0;
    for (const auto& [u, claims] : s.current().adjacency(v)) {
        (void)u;
        if (claims.colored()) ++colored;
    }
    EXPECT_GT(colored, 0u);
}

TEST(Adversary, ColoredDegreeFallsBackToRandomOnFreshGraph) {
    auto s = make_session(wl::make_cycle(6));
    util::Rng rng(7);
    NodeId v = ColoredDegreeDeletion{}.pick(s, rng);
    EXPECT_TRUE(s.current().has_node(v));
}

TEST(Adversary, BridgeHunterFindsBridges) {
    Graph g;
    // Two stars joined through x, then delete both centers -> secondary
    // cloud with bridges (see xheal_healer_test fixture).
    NodeId c1 = g.add_node(), c2 = g.add_node(), x = g.add_node();
    NodeId a1 = g.add_node(), a2 = g.add_node(), b1 = g.add_node(), b2 = g.add_node();
    for (NodeId v : {x, a1, a2}) g.add_black_edge(c1, v);
    for (NodeId v : {x, b1, b2}) g.add_black_edge(c2, v);
    auto healer = std::make_unique<core::XhealHealer>(core::XhealConfig{4, 7});
    const auto* registry = &healer->registry();
    HealingSession s(g, std::move(healer));
    s.delete_node(c1);
    s.delete_node(c2);
    s.delete_node(x);  // builds a secondary cloud

    util::Rng rng(8);
    BridgeHunterDeletion hunter(registry);
    NodeId v = hunter.pick(s, rng);
    ASSERT_NE(v, graph::invalid_node);
    EXPECT_FALSE(registry->is_free(v));
}

TEST(Adversary, RandomAttachPicksDistinctAlive) {
    auto s = make_session(wl::make_cycle(10));
    util::Rng rng(9);
    RandomAttach attach(4);
    auto nbrs = attach.pick_neighbors(s, rng);
    EXPECT_EQ(nbrs.size(), 4u);
    EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
    for (NodeId v : nbrs) EXPECT_TRUE(s.current().has_node(v));
}

TEST(Adversary, PreferentialAttachFavorsHubs) {
    auto s = make_session(wl::make_star(20));
    util::Rng rng(10);
    PreferentialAttach attach(1);
    int hub_hits = 0;
    for (int i = 0; i < 60; ++i) {
        auto nbrs = attach.pick_neighbors(s, rng);
        ASSERT_EQ(nbrs.size(), 1u);
        if (nbrs[0] == 0) ++hub_hits;
    }
    // Hub holds half the total degree mass; uniform would give ~3 hits.
    EXPECT_GT(hub_hits, 15);
}

TEST(Adversary, PreferentialAttachMatchesDegreePlusOneDistribution) {
    // Chi-square goodness-of-fit of the rejection sampler against the exact
    // (degree+1)-proportional target, on a graph with a wide degree spread:
    // a star core (hub degree 11) plus a path tail of low-degree nodes.
    Graph g = wl::make_star(11);
    for (NodeId v = 12; v < 16; ++v) {
        g.add_node();
        g.add_black_edge(v, v - 1);
    }
    auto s = make_session(std::move(g));
    const auto& cur = s.current();

    util::Rng rng(123);
    PreferentialAttach attach(1);
    std::map<NodeId, std::size_t> observed;
    const std::size_t trials = 40000;
    for (std::size_t t = 0; t < trials; ++t) {
        auto nbrs = attach.pick_neighbors(s, rng);
        ASSERT_EQ(nbrs.size(), 1u);
        ++observed[nbrs[0]];
    }

    double total_weight = 0.0;
    for (NodeId v : cur.nodes()) total_weight += static_cast<double>(cur.degree(v) + 1);
    double chi2 = 0.0;
    std::size_t cells = 0;
    for (NodeId v : cur.nodes()) {
        double expected =
            static_cast<double>(trials) * static_cast<double>(cur.degree(v) + 1) /
            total_weight;
        double diff = static_cast<double>(observed[v]) - expected;
        chi2 += diff * diff / expected;
        ++cells;
    }
    // 16 cells -> 15 degrees of freedom; the 0.999 quantile is 37.7. The
    // seeded rng makes this deterministic — the margin guards the sampler,
    // not the rng.
    EXPECT_EQ(cells, 16u);
    EXPECT_LT(chi2, 37.7);
}

TEST(Adversary, PreferentialAttachPicksDistinctAliveWithoutReplacement) {
    auto s = make_session(wl::make_star(9));
    util::Rng rng(7);
    PreferentialAttach attach(4);
    for (int i = 0; i < 20; ++i) {
        auto nbrs = attach.pick_neighbors(s, rng);
        ASSERT_EQ(nbrs.size(), 4u);
        EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
        EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
        for (NodeId v : nbrs) EXPECT_TRUE(s.current().has_node(v));
    }
}

TEST(Adversary, ChurnDriverRespectsMinNodes) {
    auto s = make_session(wl::make_cycle(6));
    util::Rng rng(11);
    RandomDeletion deleter;
    RandomAttach inserter(2);
    ChurnConfig config{40, 1.0, 4};  // always delete when allowed
    std::size_t deletions = run_churn(s, deleter, inserter, config, rng);
    EXPECT_GT(deletions, 0u);
    EXPECT_GE(s.current().node_count(), 4u);
    EXPECT_TRUE(graph::is_connected(s.current()));
}

TEST(Adversary, ChurnDriverGrowsWhenInsertOnly) {
    auto s = make_session(wl::make_cycle(6));
    util::Rng rng(12);
    RandomDeletion deleter;
    RandomAttach inserter(2);
    ChurnConfig config{20, 0.0, 4};
    run_churn(s, deleter, inserter, config, rng);
    EXPECT_EQ(s.current().node_count(), 26u);
    EXPECT_EQ(s.insertions(), 20u);
}

}  // namespace
