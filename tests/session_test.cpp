#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

HealingSession make_session(Graph g, std::size_t d = 2, std::uint64_t seed = 9) {
    return HealingSession(std::move(g), std::make_unique<XhealHealer>(XhealConfig{d, seed}));
}

TEST(Session, InsertMirrorsIntoReference) {
    auto s = make_session(wl::make_cycle(5));
    NodeId v = s.insert_node({0, 2});
    EXPECT_EQ(v, 5u);
    EXPECT_TRUE(s.current().has_edge(v, 0));
    EXPECT_TRUE(s.reference().has_edge(v, 0));
    EXPECT_TRUE(s.reference().has_edge(v, 2));
    EXPECT_TRUE(s.current().claims(v, 0).black);
    EXPECT_EQ(s.insertions(), 1u);
}

TEST(Session, DeleteKeepsReferenceIntact) {
    auto s = make_session(wl::make_cycle(5));
    s.delete_node(3);
    EXPECT_FALSE(s.current().has_node(3));
    EXPECT_TRUE(s.reference().has_node(3));
    EXPECT_TRUE(s.reference().has_edge(2, 3));
    EXPECT_EQ(s.deletions(), 1u);
}

TEST(Session, InsertedNodeIdsSharedAcrossGraphs) {
    auto s = make_session(wl::make_path(4));
    s.delete_node(1);
    NodeId v = s.insert_node({0});
    // Deleted ids are never reused: the new id is past every prior id.
    EXPECT_GE(v, 4u);
    EXPECT_TRUE(s.reference().has_node(1));
    EXPECT_TRUE(s.current().has_node(v));
}

TEST(Session, AverageDeletedBlackDegreeTracksReference) {
    auto s = make_session(wl::make_star(6));
    s.delete_node(0);  // center: reference degree 6
    EXPECT_DOUBLE_EQ(s.average_deleted_black_degree(), 6.0);
    s.delete_node(1);  // leaf: reference degree 1 (reference never changes)
    EXPECT_DOUBLE_EQ(s.average_deleted_black_degree(), 3.5);
}

TEST(Session, ReferenceDegreeCountsLaterInsertions) {
    auto s = make_session(wl::make_path(3));
    s.insert_node({0, 1, 2});
    s.delete_node(0);  // degree in G' is 1 (path end) + 1 (insertion) = 2
    EXPECT_DOUBLE_EQ(s.average_deleted_black_degree(), 2.0);
}

TEST(Session, TotalsAccumulate) {
    auto s = make_session(wl::make_star(8));
    auto r1 = s.delete_node(0);
    auto r2 = s.delete_node(1);
    EXPECT_EQ(s.totals().edges_added, r1.edges_added + r2.edges_added);
    EXPECT_EQ(s.totals().clouds_touched, r1.clouds_touched + r2.clouds_touched);
}

TEST(Session, ReferenceEdgesAlwaysPresentInCurrent) {
    // The multi-claim guarantee: G' restricted to alive nodes is a subgraph
    // of G, even after heavy healing.
    xheal::util::Rng rng(21);
    auto s = make_session(wl::make_erdos_renyi(30, 0.2, rng), 2, 5);
    for (int step = 0; step < 20; ++step) {
        auto alive = s.alive_nodes();
        s.delete_node(alive[rng.index(alive.size())]);
        check_reference_edges_present(s.current(), s.reference());
    }
}

TEST(Session, MixedChurnMaintainsInvariants) {
    xheal::util::Rng rng(31);
    auto s = make_session(wl::make_cycle(12), 2, 17);
    auto& healer = dynamic_cast<XhealHealer&>(s.healer());
    for (int step = 0; step < 60; ++step) {
        if (step % 3 == 0 && s.current().node_count() > 4) {
            auto alive = s.alive_nodes();
            s.delete_node(alive[rng.index(alive.size())]);
        } else {
            auto alive = s.alive_nodes();
            auto nbrs = rng.sample(alive, std::min<std::size_t>(3, alive.size()));
            std::sort(nbrs.begin(), nbrs.end());
            s.insert_node(nbrs);
        }
        check_session(s, healer.kappa());
    }
}

TEST(Session, DeletingUnknownNodeThrows) {
    auto s = make_session(wl::make_path(3));
    EXPECT_THROW(s.delete_node(99), xheal::util::ContractViolation);
    s.delete_node(0);
    EXPECT_THROW(s.delete_node(0), xheal::util::ContractViolation);
}

TEST(Session, InsertRequiresAliveNeighbors) {
    auto s = make_session(wl::make_path(3));
    s.delete_node(2);
    EXPECT_THROW(s.insert_node({2}), xheal::util::ContractViolation);
}

}  // namespace
