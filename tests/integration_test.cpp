// End-to-end integration: run full attack scenarios and verify the paper's
// Theorem 2 guarantees hold as measured properties of the healed graph.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/adversary.hpp"
#include "core/distributed_xheal.hpp"
#include "core/invariants.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal;
using namespace xheal::core;
using graph::Graph;
using graph::NodeId;
namespace wl = workload;
namespace adv = adversary;

TEST(Integration, ExpanderStaysExpanderUnderAttack) {
    // Corollary 1: bounded-degree expander in, expander out.
    util::Rng rng(3);
    Graph initial = wl::make_random_regular(64, 6, rng);
    double h0 = spectral::edge_expansion_estimate(initial);
    ASSERT_GT(h0, 1.0);

    HealingSession session(initial, std::make_unique<XhealHealer>(XhealConfig{3, 7}));
    adv::MaxDegreeDeletion attacker;
    for (int step = 0; step < 24; ++step) {
        session.delete_node(attacker.pick(session, rng));
    }
    EXPECT_TRUE(graph::is_connected(session.current()));
    double h_after = spectral::edge_expansion_estimate(session.current());
    // Shape check: expansion stays bounded away from the tree-like 2/n.
    EXPECT_GT(h_after, 0.5);
    double l2 = spectral::lambda2(session.current());
    EXPECT_GT(l2, 0.01);
}

TEST(Integration, StretchStaysLogarithmic) {
    // Theorem 2(2): stretch <= O(log n).
    util::Rng rng(11);
    Graph initial = wl::make_grid(8, 8);
    HealingSession session(initial, std::make_unique<XhealHealer>(XhealConfig{2, 5}));
    adv::RandomDeletion attacker;
    for (int step = 0; step < 20; ++step) {
        session.delete_node(attacker.pick(session, rng));
    }
    double stretch = sampled_stretch(session.current(), session.reference(), 16, rng);
    double n = static_cast<double>(session.current().node_count());
    EXPECT_TRUE(std::isfinite(stretch));
    EXPECT_LE(stretch, 3.0 * std::log2(n) + 1.0);
}

TEST(Integration, DegreeBoundHoldsOnEveryWorkload) {
    util::Rng rng(17);
    std::vector<Graph> initials;
    initials.push_back(wl::make_cycle(32));
    initials.push_back(wl::make_barabasi_albert(40, 2, rng));
    initials.push_back(wl::make_hypercube(5));
    for (auto& initial : initials) {
        auto healer = std::make_unique<XhealHealer>(XhealConfig{2, 23});
        std::size_t kappa = healer->kappa();
        HealingSession session(std::move(initial), std::move(healer));
        adv::ColoredDegreeDeletion attacker;
        for (int step = 0; step < 20 && session.current().node_count() > 4; ++step) {
            session.delete_node(attacker.pick(session, rng));
            check_degree_bound(session.current(), session.reference(), kappa);
        }
    }
}

TEST(Integration, ExpansionNeverBelowMinRuleOnSmallGraphs) {
    // Lemma 2 shape on exactly-measurable sizes: h(G_t) >= min(c, h(G'_t))
    // with a constant c >= ~1 (clique case) — tested via exact enumeration.
    util::Rng rng(29);
    Graph initial = wl::make_complete(10);
    HealingSession session(initial, std::make_unique<XhealHealer>(XhealConfig{4, 31}));
    for (int step = 0; step < 6; ++step) {
        auto alive = session.alive_nodes();
        session.delete_node(alive[rng.index(alive.size())]);
        double h_now = spectral::edge_expansion_exact(session.current());
        // Reference graph K10 has h = 5; the rule bottoms out at c >= 1.
        EXPECT_GE(h_now, 1.0) << "step " << step;
    }
}

TEST(Integration, HeavyChurnEndsHealthy) {
    util::Rng rng(37);
    auto healer = std::make_unique<XhealHealer>(XhealConfig{2, 41});
    std::size_t kappa = healer->kappa();
    HealingSession session(wl::make_erdos_renyi(40, 0.12, rng), std::move(healer));
    adv::RandomDeletion deleter;
    adv::PreferentialAttach inserter(3);
    adv::ChurnConfig config{150, 0.5, 8};
    std::size_t deletions = adv::run_churn(session, deleter, inserter, config, rng);
    EXPECT_GT(deletions, 30u);
    check_session(session, kappa);
    EXPECT_TRUE(graph::is_connected(session.current()));
    auto ratio = degree_increase(session.current(), session.reference());
    EXPECT_LE(ratio.max_ratio, static_cast<double>(kappa) * 3.0 + 2.0 * kappa);
}

TEST(Integration, DistributedMatchesTheoremFiveShape) {
    // Rounds per deletion ~ O(log n); amortized messages within
    // O(kappa log n) of the A(p) lower bound.
    util::Rng rng(43);
    Graph initial = wl::make_random_regular(128, 4, rng);
    auto healer = std::make_unique<DistributedXheal>(XhealConfig{2, 47});
    std::size_t kappa = healer->kappa();
    HealingSession session(std::move(initial), std::move(healer));
    adv::RandomDeletion attacker;
    std::size_t deletions = 40;
    std::size_t max_rounds = 0;
    for (std::size_t i = 0; i < deletions; ++i) {
        auto report = session.delete_node(attacker.pick(session, rng));
        max_rounds = std::max(max_rounds, report.rounds);
    }
    double n = static_cast<double>(session.current().node_count());
    EXPECT_LE(max_rounds, 6.0 * std::log2(n) + 10.0);

    double ap = session.average_deleted_black_degree();
    double amortized = session.amortized_messages();
    double bound = static_cast<double>(kappa) * std::log2(n) * ap * 8.0 + 64.0;
    EXPECT_LE(amortized, bound);
    EXPECT_GE(amortized, ap * 0.5);  // Lemma 5: Theta(deg) is necessary
}

TEST(Integration, MultiSeedStability) {
    // The guarantees are not seed luck: repeat a scenario across seeds.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        util::Rng rng(seed);
        Graph initial = wl::make_erdos_renyi(30, 0.2, rng);
        auto healer = std::make_unique<XhealHealer>(XhealConfig{2, seed * 100});
        std::size_t kappa = healer->kappa();
        HealingSession session(std::move(initial), std::move(healer));
        for (int step = 0; step < 15; ++step) {
            auto alive = session.alive_nodes();
            session.delete_node(alive[rng.index(alive.size())]);
        }
        EXPECT_NO_THROW(check_session(session, kappa)) << "seed " << seed;
    }
}

}  // namespace
