// Property tests for the slot-indexed flat-adjacency storage core:
// tombstone reuse rules, allocation-free view iteration against a
// sorted-container oracle, claim-set transitions under interleaved
// add/remove, and the incremental degree-histogram extremes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace {

using namespace xheal::graph;
using xheal::util::ContractViolation;
using xheal::util::Rng;

// ----- tombstone rules -----

TEST(GraphSlots, TombstonedIdIsNeverReusable) {
    Graph g;
    NodeId a = g.add_node();
    NodeId b = g.add_node();
    g.add_black_edge(a, b);
    g.remove_node(a);
    EXPECT_FALSE(g.has_node(a));
    // The id is retired: explicit re-insertion is a contract violation...
    EXPECT_THROW(g.add_node_with_id(a), ContractViolation);
    // ...and fresh allocation skips past it.
    EXPECT_EQ(g.add_node(), 2u);
    EXPECT_EQ(g.next_id(), 3u);
}

TEST(GraphSlots, GapSlotsFromMirroredIdsAreFillable) {
    Graph g;
    g.add_node_with_id(5);  // ids 0..4 become gap slots, never issued
    EXPECT_FALSE(g.has_node(3));
    g.add_node_with_id(3);  // a gap is not a tombstone
    EXPECT_TRUE(g.has_node(3));
    EXPECT_EQ(g.node_count(), 2u);
    // A gap that got filled and then removed is retired like any other id.
    g.remove_node(3);
    EXPECT_THROW(g.add_node_with_id(3), ContractViolation);
    EXPECT_EQ(g.add_node(), 6u);
}

TEST(GraphSlots, DeadSlotRejectsAllNodeAndEdgeOperations) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.remove_node(1);
    EXPECT_THROW(g.remove_node(1), ContractViolation);
    EXPECT_THROW(g.degree(1), ContractViolation);
    EXPECT_THROW(g.add_black_edge(0, 1), ContractViolation);
    EXPECT_THROW((void)g.neighbors(1), ContractViolation);
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphSlots, TombstoneScanIsSkippedByViews) {
    Graph g;
    for (int i = 0; i < 10; ++i) g.add_node();
    for (NodeId v : {2u, 3u, 4u, 7u, 9u}) g.remove_node(v);
    std::vector<NodeId> seen;
    for (NodeId v : g.nodes()) seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<NodeId>{0, 1, 5, 6, 8}));
    EXPECT_EQ(g.nodes().size(), 5u);
    EXPECT_EQ(g.nodes().front(), 0u);
    g.remove_node(0);
    EXPECT_EQ(g.nodes().front(), 1u);
}

// ----- views vs a sorted-container oracle -----

/// Reference model: ordered adjacency sets plus per-edge claim state.
struct Oracle {
    std::map<NodeId, std::set<NodeId>> adj;
    std::map<std::pair<NodeId, NodeId>, std::pair<bool, std::set<ColorId>>> claims;

    static std::pair<NodeId, NodeId> key(NodeId u, NodeId v) {
        return {std::min(u, v), std::max(u, v)};
    }
    void add_edge(NodeId u, NodeId v) {
        adj[u].insert(v);
        adj[v].insert(u);
    }
    void erase_edge_if_unclaimed(NodeId u, NodeId v) {
        auto it = claims.find(key(u, v));
        if (it != claims.end() && (it->second.first || !it->second.second.empty())) return;
        claims.erase(key(u, v));
        adj[u].erase(v);
        adj[v].erase(u);
    }
};

void expect_matches_oracle(const Graph& g, const Oracle& oracle) {
    // Node view matches the oracle's sorted key walk.
    std::vector<NodeId> got;
    for (NodeId v : g.nodes()) got.push_back(v);
    std::vector<NodeId> want;
    for (const auto& [v, _] : oracle.adj) want.push_back(v);
    ASSERT_EQ(got, want);
    ASSERT_EQ(g.node_count(), oracle.adj.size());

    std::size_t edge_total = 0;
    std::size_t max_deg = 0;
    std::size_t min_deg = oracle.adj.empty() ? 0 : SIZE_MAX;
    for (const auto& [v, nbrs] : oracle.adj) {
        // Neighbor view matches the oracle's sorted set, including random
        // access.
        std::vector<NodeId> gn;
        for (NodeId u : g.neighbors(v)) gn.push_back(u);
        std::vector<NodeId> wn(nbrs.begin(), nbrs.end());
        ASSERT_EQ(gn, wn);
        ASSERT_EQ(g.neighbors(v).size(), nbrs.size());
        ASSERT_EQ(g.degree(v), nbrs.size());
        for (std::size_t i = 0; i < wn.size(); ++i) ASSERT_EQ(g.neighbors(v)[i], wn[i]);
        edge_total += nbrs.size();
        max_deg = std::max(max_deg, nbrs.size());
        min_deg = std::min(min_deg, nbrs.size());
    }
    ASSERT_EQ(2 * g.edge_count(), edge_total);
    ASSERT_EQ(g.max_degree(), max_deg);
    ASSERT_EQ(g.min_degree(), oracle.adj.empty() ? 0 : min_deg);

    // for_each_edge visits each edge once, ascending, with live claims.
    std::pair<NodeId, NodeId> prev{0, 0};
    bool first = true;
    std::size_t visits = 0;
    g.for_each_edge([&](NodeId u, NodeId v, const EdgeClaims& c) {
        ASSERT_LT(u, v);
        if (!first) ASSERT_TRUE(prev < std::make_pair(u, v));
        prev = {u, v};
        first = false;
        ++visits;
        auto it = oracle.claims.find({u, v});
        ASSERT_NE(it, oracle.claims.end());
        ASSERT_EQ(c.black, it->second.first);
        std::vector<ColorId> wc(it->second.second.begin(), it->second.second.end());
        ASSERT_EQ(c.colors, wc);
        // The mirror entry must carry identical claims.
        ASSERT_EQ(g.claims(v, u).black, c.black);
        ASSERT_EQ(g.claims(v, u).colors, c.colors);
    });
    ASSERT_EQ(visits, g.edge_count());
}

TEST(GraphSlots, RandomChurnMatchesOracle) {
    Rng rng(0x51ee7ULL);
    Graph g;
    Oracle oracle;
    std::vector<NodeId> alive;

    for (int step = 0; step < 3000; ++step) {
        double roll = rng.uniform01();
        if (roll < 0.15 || alive.size() < 2) {
            NodeId v = g.add_node();
            oracle.adj[v];
            alive.push_back(v);
        } else if (roll < 0.25 && alive.size() > 2) {
            std::size_t i = rng.index(alive.size());
            NodeId v = alive[i];
            for (NodeId u : oracle.adj[v]) {
                oracle.adj[u].erase(v);
                oracle.claims.erase(Oracle::key(u, v));
            }
            oracle.adj.erase(v);
            g.remove_node(v);
            alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            NodeId u = alive[rng.index(alive.size())];
            NodeId v = alive[rng.index(alive.size())];
            if (u == v) continue;
            auto key = Oracle::key(u, v);
            double op = rng.uniform01();
            if (op < 0.35) {
                g.add_black_edge(u, v);
                oracle.add_edge(u, v);
                oracle.claims[key].first = true;
            } else if (op < 0.65) {
                ColorId c = 1 + static_cast<ColorId>(rng.index(6));
                g.add_color_claim(u, v, c);
                oracle.add_edge(u, v);
                oracle.claims[key].second.insert(c);
            } else if (op < 0.85) {
                ColorId c = 1 + static_cast<ColorId>(rng.index(6));
                bool had = oracle.claims.contains(key) && oracle.claims[key].second.count(c);
                EXPECT_EQ(g.remove_color_claim(u, v, c), had);
                if (had) {
                    oracle.claims[key].second.erase(c);
                    oracle.erase_edge_if_unclaimed(u, v);
                }
            } else {
                bool had = oracle.claims.contains(key) && oracle.claims[key].first;
                EXPECT_EQ(g.remove_black_claim(u, v), had);
                if (had) {
                    oracle.claims[key].first = false;
                    oracle.erase_edge_if_unclaimed(u, v);
                }
            }
        }
        if (step % 50 == 0) expect_matches_oracle(g, oracle);
    }
    expect_matches_oracle(g, oracle);
}

// ----- claim-set transitions under interleaved add/remove -----

TEST(GraphSlots, ClaimTransitionsPreserveEdgeLifecycle) {
    Graph g;
    g.add_node();
    g.add_node();
    // black -> +c1 -> +c2 -> -black -> -c1 -> -c2 kills the edge exactly
    // at the last step.
    g.add_black_edge(0, 1);
    g.add_color_claim(0, 1, 1);
    g.add_color_claim(0, 1, 2);
    EXPECT_TRUE(g.remove_black_claim(0, 1));
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.remove_color_claim(0, 1, 1));
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.remove_color_claim(0, 1, 2));
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.edge_count(), 0u);

    // Idempotence: re-adding the same claim twice keeps one edge, and the
    // claim set is a set.
    g.add_color_claim(0, 1, 7);
    g.add_color_claim(1, 0, 7);
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.claims(0, 1).colors, (std::vector<ColorId>{7}));
    // Recreating a black edge after a full teardown works (edges, unlike
    // node ids, may be recreated).
    EXPECT_TRUE(g.remove_color_claim(0, 1, 7));
    g.add_black_edge(0, 1);
    EXPECT_TRUE(g.has_black_claim(0, 1));
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphSlots, InterleavedClaimChurnKeepsMirrorsExact) {
    Rng rng(77);
    Graph g;
    for (int i = 0; i < 8; ++i) g.add_node();
    for (int step = 0; step < 2000; ++step) {
        NodeId u = static_cast<NodeId>(rng.index(8));
        NodeId v = static_cast<NodeId>(rng.index(8));
        if (u == v) continue;
        switch (rng.index(4)) {
            case 0: g.add_black_edge(u, v); break;
            case 1: g.add_color_claim(u, v, 1 + static_cast<ColorId>(rng.index(3))); break;
            case 2: g.remove_color_claim(u, v, 1 + static_cast<ColorId>(rng.index(3))); break;
            default: g.remove_black_claim(u, v); break;
        }
        // Claim-empty => edge erased, mirrors bit-for-bit equal.
        g.for_each_edge([&](NodeId a, NodeId b, const EdgeClaims& c) {
            ASSERT_FALSE(c.empty());
            ASSERT_EQ(g.claims(b, a).black, c.black);
            ASSERT_EQ(g.claims(b, a).colors, c.colors);
        });
    }
}

// ----- incremental degree extremes -----

TEST(GraphSlots, DegreeExtremesTrackChurn) {
    Graph g;
    EXPECT_EQ(g.max_degree(), 0u);
    EXPECT_EQ(g.min_degree(), 0u);
    for (int i = 0; i < 6; ++i) g.add_node();
    EXPECT_EQ(g.max_degree(), 0u);
    for (NodeId v = 1; v < 6; ++v) g.add_black_edge(0, v);  // star
    EXPECT_EQ(g.max_degree(), 5u);
    EXPECT_EQ(g.min_degree(), 1u);
    g.remove_node(0);  // hub gone: everyone isolated
    EXPECT_EQ(g.max_degree(), 0u);
    EXPECT_EQ(g.min_degree(), 0u);
    g.add_black_edge(1, 2);
    g.add_black_edge(2, 3);
    EXPECT_EQ(g.max_degree(), 2u);
    EXPECT_EQ(g.min_degree(), 0u);
    g.remove_node(4);
    g.remove_node(5);
    EXPECT_EQ(g.min_degree(), 1u);
    g.remove_node(2);
    EXPECT_EQ(g.max_degree(), 0u);
}

}  // namespace
