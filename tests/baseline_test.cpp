#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::baseline;
using xheal::core::HealingSession;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

template <typename H>
void expect_connectivity_under_random_attack(std::uint64_t seed) {
    xheal::util::Rng rng(seed);
    Graph initial = wl::make_erdos_renyi(24, 0.25, rng);
    HealingSession s(initial, std::make_unique<H>());
    for (int step = 0; step < 18; ++step) {
        auto alive = s.alive_nodes();
        s.delete_node(alive[rng.index(alive.size())]);
        EXPECT_TRUE(xheal::graph::is_connected(s.current()))
            << s.healer().name() << " lost connectivity at step " << step;
    }
}

TEST(Baselines, LineHealerKeepsConnectivity) {
    expect_connectivity_under_random_attack<LineHealer>(1);
}
TEST(Baselines, CycleHealerKeepsConnectivity) {
    expect_connectivity_under_random_attack<CycleHealer>(2);
}
TEST(Baselines, StarHealerKeepsConnectivity) {
    expect_connectivity_under_random_attack<StarHealer>(3);
}
TEST(Baselines, ForgivingTreeKeepsConnectivity) {
    expect_connectivity_under_random_attack<ForgivingTreeStyleHealer>(4);
}

TEST(Baselines, NoHealDisconnectsStars) {
    Graph g = wl::make_star(5);
    NoHealHealer healer;
    healer.on_delete(g, 0);
    EXPECT_FALSE(xheal::graph::is_connected(g));
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Baselines, LineHealerPathStructure) {
    Graph g = wl::make_star(5);
    LineHealer healer;
    auto report = healer.on_delete(g, 0);
    EXPECT_EQ(report.edges_added, 4u);
    EXPECT_EQ(g.edge_count(), 4u);
    // Endpoints have degree 1, middles degree 2.
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(3), 2u);
}

TEST(Baselines, CycleHealerClosesTheLoop) {
    Graph g = wl::make_star(5);
    CycleHealer healer;
    healer.on_delete(g, 0);
    for (NodeId v : g.nodes()) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Baselines, StarHealerConcentratesDegree) {
    Graph g = wl::make_star(9);
    StarHealer healer;
    healer.on_delete(g, 0);
    // The hub simply moved: one node has degree 8 again.
    EXPECT_EQ(g.max_degree(), 8u);
}

TEST(Baselines, ForgivingTreeDegreeBounded) {
    Graph g = wl::make_star(31);
    ForgivingTreeStyleHealer healer;
    healer.on_delete(g, 0);
    // Binary-tree repair: at most 3 new edges per node (two children + parent).
    EXPECT_LE(g.max_degree(), 3u);
    EXPECT_TRUE(xheal::graph::is_connected(g));
    // Diameter is O(log n), not O(n).
    auto diam = xheal::graph::diameter_exact(g);
    ASSERT_TRUE(diam.has_value());
    EXPECT_LE(*diam, 10u);
}

TEST(Baselines, ForgivingTreeExpansionCollapsesOnStar) {
    // The paper's argument against tree repairs: deleting the star center
    // and healing with a tree leaves expansion O(1/n), while Xheal keeps a
    // constant. (See bench_star for the full sweep.)
    Graph g = wl::make_star(16);
    ForgivingTreeStyleHealer healer;
    healer.on_delete(g, 0);
    double h_tree = xheal::spectral::edge_expansion_exact(g);
    EXPECT_LE(h_tree, 0.26);  // ~1/8 on 16 nodes; generous bound

    Graph g2 = wl::make_star(16);
    xheal::core::XhealHealer xh(xheal::core::XhealConfig{3, 5});
    xh.on_delete(g2, 0);
    double h_xheal = xheal::spectral::edge_expansion_exact(g2);
    EXPECT_GT(h_xheal, h_tree * 3.0);
}

TEST(Baselines, RandomMatchKeepsConnectivity) {
    expect_connectivity_under_random_attack<RandomMatchHealer>(5);
}

TEST(Baselines, RandomMatchDegreeGrowsUnboundedOverTime) {
    // Ablation: without cloud bookkeeping, repeated healing keeps stacking
    // edges on survivors. Compare against Xheal's bounded ratio.
    xheal::util::Rng rng(6);
    Graph initial = wl::make_erdos_renyi(30, 0.2, rng);

    HealingSession random_s(initial, std::make_unique<RandomMatchHealer>(3));
    HealingSession xheal_s(initial,
                           std::make_unique<xheal::core::XhealHealer>(
                               xheal::core::XhealConfig{2, 7}));
    xheal::util::Rng attack(9);
    for (int step = 0; step < 22; ++step) {
        auto alive = random_s.alive_nodes();
        NodeId victim = alive[attack.index(alive.size())];
        random_s.delete_node(victim);
        xheal_s.delete_node(victim);
    }
    auto ratio = [](const HealingSession& s) {
        double worst = 0.0;
        for (NodeId v : s.current().nodes()) {
            std::size_t dref = s.reference().degree(v);
            if (dref == 0) continue;
            worst = std::max(worst, static_cast<double>(s.current().degree(v)) /
                                        static_cast<double>(dref));
        }
        return worst;
    };
    // Xheal's bound is kappa * d' + 2kappa; random matching typically
    // exceeds Xheal's realized max ratio on the same attack.
    EXPECT_GE(ratio(random_s), ratio(xheal_s) * 0.8);
}

TEST(Baselines, HandleDegreeZeroAndOne) {
    for (auto make : {+[]() -> std::unique_ptr<xheal::core::Healer> {
                          return std::make_unique<LineHealer>();
                      },
                      +[]() -> std::unique_ptr<xheal::core::Healer> {
                          return std::make_unique<CycleHealer>();
                      },
                      +[]() -> std::unique_ptr<xheal::core::Healer> {
                          return std::make_unique<StarHealer>();
                      },
                      +[]() -> std::unique_ptr<xheal::core::Healer> {
                          return std::make_unique<ForgivingTreeStyleHealer>();
                      }}) {
        Graph g = wl::make_path(2);
        g.add_node();  // isolated node 2
        auto healer = make();
        healer->on_delete(g, 2);  // degree 0
        healer->on_delete(g, 0);  // degree 1
        EXPECT_EQ(g.node_count(), 1u);
        EXPECT_EQ(g.edge_count(), 0u);
    }
}

}  // namespace
