// Scripted scenario tests for the harder Xheal case paths: sharing, F
// dissolution, combine, and the Case 2.2 reconnection rule.
#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::ColorId;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

std::size_t count_kind(const CloudRegistry& reg, CloudKind kind) {
    std::size_t n = 0;
    for (ColorId c : reg.colors()) {
        if (reg.find(c)->kind == kind) ++n;
    }
    return n;
}

TEST(XhealCases, BlackNeighborJoinsSecondaryAsSingleton) {
    // hub h over {a, b, c}; y attached to a by a black edge. Deleting h
    // builds P={a,b,c}; deleting a (member of P, black neighbor y) must
    // connect P and y via a secondary cloud.
    Graph g;
    NodeId h = g.add_node(), a = g.add_node(), b = g.add_node(), c = g.add_node(),
           y = g.add_node();
    for (NodeId v : {a, b, c}) g.add_black_edge(h, v);
    g.add_black_edge(a, y);
    XhealHealer healer(XhealConfig{4, 2});
    healer.on_delete(g, h);
    healer.on_delete(g, a);
    EXPECT_TRUE(xheal::graph::is_connected(g));
    healer.check_consistency(g);
    const auto& reg = healer.registry();
    ASSERT_EQ(count_kind(reg, CloudKind::secondary), 1u);
    // y is one of the two bridges.
    EXPECT_FALSE(reg.is_free(y));
}

TEST(XhealCases, SecondaryDissolutionFreesLastBridge) {
    // Build the 3-bridge secondary (two clouds + y), then delete bridges
    // until the secondary dissolves; the survivor must be free again.
    Graph g;
    NodeId c1 = g.add_node(), c2 = g.add_node(), x = g.add_node();
    NodeId a1 = g.add_node(), a2 = g.add_node(), b1 = g.add_node(), b2 = g.add_node();
    for (NodeId v : {x, a1, a2}) g.add_black_edge(c1, v);
    for (NodeId v : {x, b1, b2}) g.add_black_edge(c2, v);
    XhealHealer healer(XhealConfig{4, 9});
    healer.on_delete(g, c1);
    healer.on_delete(g, c2);
    healer.on_delete(g, x);  // secondary over 2 clouds
    const auto& reg = healer.registry();
    ASSERT_EQ(count_kind(reg, CloudKind::secondary), 1u);

    // Delete bridges (non-free nodes) until the original secondary is gone.
    for (int guard = 0; guard < 6 && count_kind(reg, CloudKind::secondary) > 0; ++guard) {
        NodeId bridge = xheal::graph::invalid_node;
        for (NodeId v : g.nodes()) {
            if (!reg.is_free(v)) {
                bridge = v;
                break;
            }
        }
        if (bridge == xheal::graph::invalid_node) break;
        healer.on_delete(g, bridge);
        EXPECT_TRUE(xheal::graph::is_connected(g));
        healer.check_consistency(g);
    }
    // Whatever remains: everything consistent, connected.
    EXPECT_TRUE(xheal::graph::is_connected(g));
}

TEST(XhealCases, CombineTriggersWhenFreeNodesRunOut) {
    // kappa = 2 (d=1) keeps clouds tiny so bridge-targeted deletions burn
    // free nodes fast; the combine path must fire and stay consistent.
    xheal::util::Rng rng(31);
    Graph g = wl::make_erdos_renyi(28, 0.22, rng);
    XhealHealer healer(XhealConfig{1, 41});
    std::size_t combines = 0;
    for (int step = 0; step < 200 && g.node_count() > 4; ++step) {
        NodeId victim = xheal::graph::invalid_node;
        for (NodeId v : g.nodes()) {
            if (!healer.registry().is_free(v)) {
                victim = v;
                break;
            }
        }
        if (victim == xheal::graph::invalid_node) victim = g.nodes().front();
        auto report = healer.on_delete(g, victim);
        combines += report.combines;
        ASSERT_TRUE(xheal::graph::is_connected(g)) << "step " << step;
        ASSERT_NO_THROW(healer.check_consistency(g)) << "step " << step;
    }
    EXPECT_GT(combines, 0u);
}

TEST(XhealCases, CombinedCloudMembersStayInForeignSecondaries) {
    // DESIGN.md decision 4: combining clouds must not evict members from
    // *other* secondary clouds. We just grind with targeted deletions and
    // assert the registry's secondary invariants never break (verify()
    // checks bridge_assoc consistency).
    xheal::util::Rng rng(5);
    Graph g = wl::make_erdos_renyi(30, 0.2, rng);
    XhealHealer healer(XhealConfig{1, 13});
    for (int step = 0; step < 120 && g.node_count() > 4; ++step) {
        std::vector<NodeId> nodes(g.nodes().begin(), g.nodes().end());
        NodeId victim = nodes[rng.index(nodes.size())];
        healer.on_delete(g, victim);
        ASSERT_NO_THROW(healer.check_consistency(g));
        ASSERT_TRUE(xheal::graph::is_connected(g));
    }
}

TEST(XhealCases, Case22LeavesNoStrandedClouds) {
    // Chain of hubs: h1-{p,q}, h2-{q,r}, h3-{r,s}; delete all hubs to get
    // overlapping primary clouds, then grind the shared nodes. Case 2.2
    // reconnection (representative rule) must keep everything connected.
    Graph g;
    NodeId h1 = g.add_node(), h2 = g.add_node(), h3 = g.add_node();
    NodeId p = g.add_node(), q = g.add_node(), r = g.add_node(), s = g.add_node();
    NodeId t = g.add_node();
    for (NodeId v : {p, q}) g.add_black_edge(h1, v);
    for (NodeId v : {q, r}) g.add_black_edge(h2, v);
    for (NodeId v : {r, s}) g.add_black_edge(h3, v);
    g.add_black_edge(s, t);
    XhealHealer healer(XhealConfig{2, 17});
    for (NodeId hub : {h1, h2, h3}) {
        healer.on_delete(g, hub);
        ASSERT_TRUE(xheal::graph::is_connected(g));
    }
    // Now delete the shared nodes one by one.
    for (NodeId v : {q, r, s}) {
        healer.on_delete(g, v);
        ASSERT_TRUE(xheal::graph::is_connected(g));
        ASSERT_NO_THROW(healer.check_consistency(g));
    }
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_TRUE(g.has_edge(p, t) || xheal::graph::is_connected(g));
}

TEST(XhealCases, SharingCreatesPairCloudForNonFreeSingleton) {
    // A black neighbor that is itself a bridge cannot serve as its own
    // bridge; sharing must wrap it in a fresh 2-node primary cloud.
    // Construct: secondary bridge y (via the standard fixture), then give
    // y a black edge to a new hub region and delete that hub.
    Graph g;
    NodeId c1 = g.add_node(), c2 = g.add_node(), x = g.add_node();
    NodeId a1 = g.add_node(), a2 = g.add_node(), b1 = g.add_node(), b2 = g.add_node();
    NodeId y = g.add_node();
    for (NodeId v : {x, a1, a2}) g.add_black_edge(c1, v);
    for (NodeId v : {x, b1, b2}) g.add_black_edge(c2, v);
    g.add_black_edge(x, y);
    XhealHealer healer(XhealConfig{4, 7});
    healer.on_delete(g, c1);
    healer.on_delete(g, c2);
    healer.on_delete(g, x);  // y becomes a bridge (see fixture test)
    const auto& reg = healer.registry();
    ASSERT_FALSE(reg.is_free(y));

    // New hub h attached to y and fresh nodes u1, u2.
    NodeId h = g.add_node();
    NodeId u1 = g.add_node(), u2 = g.add_node();
    for (NodeId v : {y, u1, u2}) g.add_black_edge(h, v);
    healer.on_delete(g, h);  // Case 1: primary cloud {y, u1, u2}
    ASSERT_TRUE(xheal::graph::is_connected(g));
    healer.check_consistency(g);

    // Delete u1: Case 2.1 on that cloud; its free nodes are u2 (y is a
    // bridge). Everything must stay consistent and connected.
    healer.on_delete(g, u1);
    EXPECT_TRUE(xheal::graph::is_connected(g));
    healer.check_consistency(g);
}

TEST(XhealCases, EventLogCoversAllOperations) {
    // The distributed layer depends on events being recorded for every
    // structural change; grind and check events accompany every repair
    // that touches clouds.
    xheal::util::Rng rng(23);
    Graph g = wl::make_erdos_renyi(24, 0.25, rng);
    XhealHealer healer(XhealConfig{2, 29});
    for (int step = 0; step < 60 && g.node_count() > 4; ++step) {
        std::vector<NodeId> nodes(g.nodes().begin(), g.nodes().end());
        NodeId victim = nodes[rng.index(nodes.size())];
        auto report = healer.on_delete(g, victim);
        if (report.clouds_touched > 0) {
            EXPECT_FALSE(healer.last_events().empty()) << "step " << step;
        }
        std::size_t combine_events = 0;
        for (const auto& ev : healer.last_events()) {
            if (ev.kind == HealEvent::Kind::combine) ++combine_events;
        }
        EXPECT_EQ(combine_events, report.combines);
    }
}

}  // namespace
