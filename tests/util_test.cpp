#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/expects.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace xheal::util;

TEST(Expects, ThrowsContractViolationWithLocation) {
    try {
        XHEAL_EXPECTS(1 == 2);
        FAIL() << "expected throw";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
    }
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.uniform_u64(0, 1'000'000) == b.uniform_u64(0, 1'000'000)) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRangeInclusive) {
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto x = rng.uniform_u64(3, 5);
        EXPECT_GE(x, 3u);
        EXPECT_LE(x, 5u);
        saw_lo |= (x == 3);
        saw_hi |= (x == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, IndexRequiresNonEmpty) {
    Rng rng(1);
    EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SampleDistinct) {
    Rng rng(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6};
    auto s = rng.sample(v, 4);
    EXPECT_EQ(s.size(), 4u);
    std::sort(s.begin(), s.end());
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
}

TEST(Rng, SplitProducesIndependentStreams) {
    Rng parent(42);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    // Children derived at different points differ from each other.
    bool differ = false;
    for (int i = 0; i < 16 && !differ; ++i)
        differ = child1.uniform_u64(0, 1u << 30) != child2.uniform_u64(0, 1u << 30);
    EXPECT_TRUE(differ);
}

TEST(Rng, ChanceBoundaries) {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RunningStats, MatchesDirectComputation) {
    RunningStats s;
    std::vector<double> xs{1.0, 2.5, -3.0, 4.0, 10.0};
    for (double x : xs) s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_NEAR(s.mean(), mean_of(xs), 1e-12);
    EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-12);
}

TEST(RunningStats, MergeEqualsSinglePass) {
    RunningStats a, b, all;
    for (int i = 0; i < 10; ++i) {
        a.add(i * 1.5);
        all.add(i * 1.5);
    }
    for (int i = 10; i < 25; ++i) {
        b.add(i * -0.5);
        all.add(i * -0.5);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
    std::vector<double> v{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(Table, AlignsAndStoresCells) {
    Table t({"name", "value"});
    t.row().add("alpha").add(1.5, 2);
    t.row().add("b").add(std::size_t{42});
    EXPECT_EQ(t.row_count(), 2u);
    EXPECT_EQ(t.cell(0, 1), "1.50");
    EXPECT_EQ(t.cell(1, 1), "42");
    std::ostringstream out;
    t.print(out);
    EXPECT_NE(out.str().find("alpha"), std::string::npos);
    EXPECT_NE(out.str().find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
    Table t({"a", "b"});
    t.row().add(1).add(2);
    std::ostringstream out;
    t.write_csv(out);
    EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsExtraCells) {
    Table t({"only"});
    t.row().add("x");
    EXPECT_THROW(t.add("y"), ContractViolation);
}

TEST(Fit, ExactLine) {
    auto fit = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Fit, LogGrowthDetected) {
    // y = 3*log2(x) + 1 fits perfectly against log2(x).
    std::vector<double> xs{2, 4, 8, 16, 32};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(3.0 * std::log2(x) + 1.0);
    auto fit = fit_vs_log2(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Fit, LogLogExponent) {
    // y = 5*x^2 has log-log slope 2.
    std::vector<double> xs{1, 2, 4, 8};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(5.0 * x * x);
    auto fit = fit_loglog(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Fit, ConstantSeriesHasZeroLogLogSlope) {
    auto fit = fit_loglog({1, 2, 4, 8}, {7, 7, 7, 7});
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
}

}  // namespace
