// Inline vs async probe equivalence: ProbeMode must be invisible in every
// deterministic output. Both paths execute the same CSR-level probe code
// on byte-identical snapshot arrays, the lambda2 warm-start chain sees the
// same snapshot sequence (the final sample rides the pipeline too), and
// the stretch source draws happen on the stepping thread in publish order
// — so each MetricSample field must match EXACTLY (bitwise for doubles),
// not merely within tolerance. Timing fields are the only exception.
//
// These tests are also the TSan workload for the probe pipeline: the CI
// tsan job runs them under -fsanitize=thread, where the double-buffer
// handoff (acquire/release on the slot state) is exercised for real.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "spectral/probes.hpp"

namespace xheal {
namespace {

std::string spec_path(const std::string& file) {
    return std::string(XHEAL_REPO_DIR) + "/scenarios/" + file;
}

// Bitwise double equality that treats NaN ("not sampled") as equal to NaN.
// EXPECT_EQ on NaN always fails; tolerance compares would paper over a
// probe that computed a slightly different value on the worker thread.
::testing::AssertionResult bit_equal(const char* a_expr, const char* b_expr,
                                     double a, double b) {
    std::uint64_t ab, bb;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::memcpy(&ab, &a, sizeof a);
    std::memcpy(&bb, &b, sizeof b);
    if (ab == bb || (std::isnan(a) && std::isnan(b)))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a_expr << " = " << a << " vs " << b_expr << " = " << b
           << " (bit patterns differ)";
}

scenario::RunResult run_with_mode(const scenario::ScenarioSpec& spec,
                                  scenario::ProbeMode mode) {
    scenario::ScenarioRunner runner(spec);
    runner.set_probe_mode(mode);
    return runner.run();
}

void expect_identical(const scenario::RunResult& inline_r,
                      const scenario::RunResult& async_r) {
    EXPECT_EQ(inline_r.trace_hash, async_r.trace_hash);
    EXPECT_EQ(inline_r.fingerprint, async_r.fingerprint);
    EXPECT_EQ(inline_r.steps_done, async_r.steps_done);
    EXPECT_EQ(inline_r.failures, async_r.failures);
    ASSERT_EQ(inline_r.samples.size(), async_r.samples.size());
    for (std::size_t i = 0; i < inline_r.samples.size(); ++i) {
        const auto& a = inline_r.samples[i];
        const auto& b = async_r.samples[i];
        SCOPED_TRACE("sample " + std::to_string(i) + " @step " +
                     std::to_string(a.step));
        EXPECT_EQ(a.step, b.step);
        EXPECT_EQ(a.phase, b.phase);
        EXPECT_EQ(a.nodes, b.nodes);
        EXPECT_EQ(a.edges, b.edges);
        EXPECT_EQ(a.deletions, b.deletions);
        EXPECT_EQ(a.insertions, b.insertions);
        EXPECT_EQ(a.components, b.components);
        EXPECT_EQ(a.max_degree, b.max_degree);
        EXPECT_PRED_FORMAT2(bit_equal, a.max_degree_ratio, b.max_degree_ratio);
        EXPECT_PRED_FORMAT2(bit_equal, a.mean_degree_ratio, b.mean_degree_ratio);
        EXPECT_PRED_FORMAT2(bit_equal, a.worst_slack_ratio, b.worst_slack_ratio);
        EXPECT_PRED_FORMAT2(bit_equal, a.expansion, b.expansion);
        EXPECT_PRED_FORMAT2(bit_equal, a.lambda2, b.lambda2);
        EXPECT_PRED_FORMAT2(bit_equal, a.stretch, b.stretch);
    }
    // The final sample is the last cadence row in both modes (in async mode
    // it rode the pipeline, keeping the worker's warm-start chain intact).
    EXPECT_EQ(inline_r.final_sample.step, async_r.final_sample.step);
    EXPECT_PRED_FORMAT2(bit_equal, inline_r.final_sample.lambda2,
                        async_r.final_sample.lambda2);
}

// The full heavy probe set (connected + lambda2 + stretch at a 30-step
// cadence): every pipeline surface is live, including the reference
// snapshot the stretch probe patches and the worker's lambda2 warm chain.
TEST(AsyncProbeEquivalence, P2pChurnAllProbes) {
    auto spec = scenario::ScenarioSpec::parse_file(spec_path("p2p_churn.scn"));
    auto inline_r = run_with_mode(spec, scenario::ProbeMode::inline_only);
    auto async_r = run_with_mode(spec, scenario::ProbeMode::async_pipeline);
    expect_identical(inline_r, async_r);
    EXPECT_GT(async_r.samples.size(), 3u);

    // Stall accounting is async-only and disjoint from probe_seconds.
    EXPECT_EQ(inline_r.probe_stall_seconds, 0.0);
    EXPECT_GE(async_r.probe_stall_seconds, 0.0);
}

// Components-only cadence (the common cheap case): the worker runs just
// the BFS; degree ratios stay inline. automatic must resolve to the
// pipeline here, and its values must equal the forced-inline run's.
TEST(AsyncProbeEquivalence, PhasedChurnAutomaticResolvesAsync) {
    auto spec = scenario::ScenarioSpec::parse_file(spec_path("phased_churn.scn"));
    scenario::ScenarioRunner runner(spec);
    EXPECT_EQ(runner.probe_mode(), scenario::ProbeMode::automatic);
    auto auto_r = runner.run();
    auto inline_r = run_with_mode(spec, scenario::ProbeMode::inline_only);
    expect_identical(inline_r, auto_r);
}

// Replay must honor the probe mode too, including across compaction
// epochs: when the pipeline owns the probe engine, the compact remap has
// to be routed through ProbePipeline::on_compact (after a drain) rather
// than poking the inline engine the worker never reads — the regression
// this pins left the worker's CSR snapshot on the old id numbering, so
// the final lambda2 of an async replay diverged from the inline one.
TEST(AsyncProbeEquivalence, ReplayRoutesCompactionThroughPipeline) {
    auto spec = scenario::ScenarioSpec::parse(R"(
name replay-compact-async
seed 23
topology random-regular n=64 d=4
healer xheal d=2
probes connected lambda2
sample_every 0
phase churn steps=160 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=24 compact=2
expect connected
expect lambda2 >= 0.01
)");
    auto recorded = run_with_mode(spec, scenario::ProbeMode::inline_only);
    ASSERT_GE(recorded.compactions, 1u)
        << "spec never compacted — the pipeline remap path is untested";
    auto trace = recorded.to_trace(spec);

    scenario::ScenarioRunner inline_runner(spec);
    inline_runner.set_probe_mode(scenario::ProbeMode::inline_only);
    auto inline_r = inline_runner.replay(trace);

    scenario::ScenarioRunner async_runner(spec);
    async_runner.set_probe_mode(scenario::ProbeMode::async_pipeline);
    auto async_r = async_runner.replay(trace);

    expect_identical(inline_r, async_r);
    EXPECT_EQ(async_r.trace_hash, recorded.trace_hash);
    EXPECT_EQ(async_r.fingerprint, recorded.fingerprint);
    EXPECT_EQ(async_r.compactions, recorded.compactions);
    ASSERT_FALSE(std::isnan(async_r.final_sample.lambda2));
    EXPECT_PRED_FORMAT2(bit_equal, async_r.final_sample.lambda2,
                        recorded.final_sample.lambda2);
    EXPECT_EQ(async_r.failures, recorded.failures);
}

// Warm-start accuracy pin: the async worker's warm-started lambda2 on the
// final healed graph must agree with a cold fresh-engine solve to probe
// tolerance. Guards against the warm chain drifting onto a stale Ritz
// vector while still matching inline (which would share the bug).
TEST(AsyncProbeEquivalence, WarmStartAccuracyPinned) {
    auto spec = scenario::ScenarioSpec::parse_file(spec_path("p2p_churn.scn"));
    scenario::ScenarioRunner runner(spec);
    runner.set_probe_mode(scenario::ProbeMode::async_pipeline);
    auto result = runner.run();
    ASSERT_FALSE(std::isnan(result.final_sample.lambda2));

    spectral::ProbeEngine cold;
    double exact = cold.lambda2(runner.session().current());
    EXPECT_NEAR(result.final_sample.lambda2, exact, 1e-2);
}

}  // namespace
}  // namespace xheal
