// xheal_run CLI contract: scripting consumers (CI, shell pipelines) rely
// on the documented exit codes — 0 success, 1 verdict failure (expectation
// FAIL, replay mismatch, diff divergence, fuzz findings, shrink of a
// non-failing trace), 2 usage/file/parse errors. This test drives the real
// binary (XHEAL_RUN_BIN, injected by CMake) through every subcommand's
// success, missing-file and mismatch paths.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

using namespace xheal;

namespace {

/// Run the binary with `args`, discarding output; returns the exit code
/// (or -1 when the process did not exit normally).
int run_cli(const std::string& args) {
    std::string command = std::string(XHEAL_RUN_BIN) + " " + args + " > /dev/null 2>&1";
    int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string write_file(const std::string& name, const std::string& content) {
    std::string path = testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

const char* kPassingSpec = R"(name cli-pass
seed 5
topology cycle n=16
healer cycle
phase churn steps=12 delete_fraction=0.5 deleter=random inserter=random-attach k=2 min_nodes=6
expect connected
)";

const char* kFailingSpec = R"(name cli-fail
seed 5
topology cycle n=16
healer no-heal
phase drain steps=4 delete_fraction=1 deleter=random min_nodes=4
expect nodes >= 100
)";

/// A spec whose run breaks connectivity (fault-injected healer), for the
/// fuzz/shrink failure paths.
const char* kFaultySpec = R"(name cli-faulty
seed 11
topology cycle n=24
healer faulty inner=cycle drop_every=4
phase churn steps=40 delete_fraction=0.7 deleter=random inserter=random-attach k=2 min_nodes=4
)";

class CliContract : public ::testing::Test {
protected:
    void SetUp() override {
        pass_scn_ = write_file("cli_pass.scn", kPassingSpec);
        fail_scn_ = write_file("cli_fail.scn", kFailingSpec);
        faulty_scn_ = write_file("cli_faulty.scn", kFaultySpec);
        trace_path_ = testing::TempDir() + "cli_trace.jsonl";
        auto spec = scenario::ScenarioSpec::parse_file(pass_scn_);
        auto result = scenario::ScenarioRunner(spec).run();
        scenario::write_trace_file(trace_path_, result.to_trace(spec));
    }

    std::string pass_scn_, fail_scn_, faulty_scn_, trace_path_;
};

}  // namespace

TEST_F(CliContract, NoCommandAndUnknownCommandAreUsageErrors) {
    EXPECT_EQ(run_cli(""), 2);
    EXPECT_EQ(run_cli("frobnicate"), 2);
}

TEST_F(CliContract, RunExitCodes) {
    EXPECT_EQ(run_cli("run " + pass_scn_), 0);
    EXPECT_EQ(run_cli("run " + fail_scn_), 1);          // expectation FAIL
    EXPECT_EQ(run_cli("run /nonexistent.scn"), 2);      // missing file
    EXPECT_EQ(run_cli("run " + pass_scn_ + " --max-steps nope"), 2);
}

TEST_F(CliContract, PrintAndListExitCodes) {
    EXPECT_EQ(run_cli("print " + pass_scn_), 0);
    EXPECT_EQ(run_cli("print /nonexistent.scn"), 2);
    EXPECT_EQ(run_cli("list"), 0);
}

TEST_F(CliContract, ReplayExitCodes) {
    EXPECT_EQ(run_cli("replay " + pass_scn_ + " " + trace_path_), 0);
    EXPECT_EQ(run_cli("replay " + pass_scn_ + " /nonexistent.jsonl"), 2);

    // Tamper with the recorded trace hash: parse still succeeds, replay
    // must report the mismatch as a verdict failure.
    auto trace = scenario::read_trace_file(trace_path_);
    trace.trace_hash ^= 0x1;
    std::string tampered = testing::TempDir() + "cli_tampered.jsonl";
    scenario::write_trace_file(tampered, trace);
    EXPECT_EQ(run_cli("replay " + pass_scn_ + " " + tampered), 1);
}

TEST_F(CliContract, DiffExitCodes) {
    EXPECT_EQ(run_cli("diff " + trace_path_ + " " + trace_path_), 0);
    EXPECT_EQ(run_cli("diff " + trace_path_ + " /nonexistent.jsonl"), 2);
    EXPECT_EQ(run_cli("diff " + trace_path_), 2);  // usage

    // A perturbed re-run: drop one event and diff against the recording.
    auto trace = scenario::read_trace_file(trace_path_);
    trace.events.pop_back();
    std::string perturbed = testing::TempDir() + "cli_perturbed.jsonl";
    scenario::write_trace_file(perturbed, trace);
    EXPECT_EQ(run_cli("diff " + trace_path_ + " " + perturbed), 1);
}

TEST_F(CliContract, BatchExitCodes) {
    // A directory with one passing spec: success, and --json writes the
    // aggregated report. TempDir persists across runs — start clean so a
    // previous run's FAIL spec cannot leak into the passing directory.
    std::string dir = testing::TempDir() + "cli_batch_pass";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::ofstream(dir + "/only.scn") << kPassingSpec;
    std::string json = testing::TempDir() + "cli_batch.json";
    EXPECT_EQ(run_cli("batch " + dir + " --json " + json), 0);
    std::ifstream report(json);
    std::string body((std::istreambuf_iterator<char>(report)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(body.find("\"schema\": \"xheal-batch-v4\""), std::string::npos);
    EXPECT_NE(body.find("\"jobs\": 1"), std::string::npos);
    EXPECT_NE(body.find("\"trace_hash\""), std::string::npos);
    // v3 billing columns are always present (0 for local healers).
    EXPECT_NE(body.find("\"messages\""), std::string::npos);
    EXPECT_NE(body.find("\"rounds\""), std::string::npos);
    EXPECT_NE(body.find("\"retries\""), std::string::npos);

    // --jobs routes through the worker pool; results (and exit code) match.
    EXPECT_EQ(run_cli("batch " + dir + " --jobs 4"), 0);

    // One FAIL spec in the directory: verdict failure.
    std::ofstream(dir + "/bad.scn") << kFailingSpec;
    EXPECT_EQ(run_cli("batch " + dir), 1);

    // The tournament override: forcing the no-heal healer onto a spec that
    // expects connectivity is a verdict failure, not an error.
    std::string solo = testing::TempDir() + "cli_batch_solo";
    std::filesystem::remove_all(solo);
    std::filesystem::create_directories(solo);
    std::ofstream(solo + "/only.scn") << kPassingSpec;
    EXPECT_EQ(run_cli("batch " + solo + " --healer no-heal"), 1);
    EXPECT_EQ(run_cli("batch " + solo + " --healer cycle"), 0);

    // Environment errors: missing directory, empty directory, bad healer
    // kind (factory throws -> file/parse error class), usage.
    EXPECT_EQ(run_cli("batch /nonexistent-dir"), 2);
    std::string empty = testing::TempDir() + "cli_batch_empty";
    std::filesystem::remove_all(empty);
    std::filesystem::create_directories(empty);
    EXPECT_EQ(run_cli("batch " + empty), 2);
    EXPECT_EQ(run_cli("batch " + solo + " --healer bandaid"), 2);
    EXPECT_EQ(run_cli("batch"), 2);
}

TEST_F(CliContract, FuzzExitCodes) {
    std::string out = testing::TempDir() + "cli_fuzz_repro";
    EXPECT_EQ(run_cli("fuzz " + pass_scn_ + " --candidates 8 --seed 2"), 0);
    EXPECT_EQ(run_cli("fuzz " + faulty_scn_ + " --candidates 8 --seed 2 --out " + out),
              1);
    // The failing fuzz wrote a shrunk reproducer pair that replays cleanly.
    EXPECT_EQ(run_cli("replay " + out + "-cli-faulty.scn " + out +
                      "-cli-faulty.jsonl"),
              0);
    EXPECT_EQ(run_cli("fuzz /nonexistent.scn"), 2);
}

TEST_F(CliContract, ShrinkExitCodes) {
    // The passing trace breaks nothing: a verdict failure, not an error.
    EXPECT_EQ(run_cli("shrink " + pass_scn_ + " " + trace_path_), 1);
    EXPECT_EQ(run_cli("shrink " + pass_scn_ + " /nonexistent.jsonl"), 2);

    // Record the faulty run and shrink it.
    auto spec = scenario::ScenarioSpec::parse_file(faulty_scn_);
    auto result = scenario::ScenarioRunner(spec).run();
    std::string faulty_trace = testing::TempDir() + "cli_faulty.jsonl";
    scenario::write_trace_file(faulty_trace, result.to_trace(spec));
    std::string out = testing::TempDir() + "cli_shrink_repro";
    EXPECT_EQ(run_cli("shrink " + faulty_scn_ + " " + faulty_trace + " --out " + out),
              0);
    EXPECT_EQ(run_cli("replay " + out + ".scn " + out + ".jsonl"), 0);
}
