// End-to-end lossy-network tests through the scenario layer: the fault
// model rides in on phase keys (drop= / latency=) or healer params, the
// retry protocol keeps repairs converging, and the Theorem 5 billing
// (messages / rounds / retries) flows into MetricSample and RunResult.
//
// The load-bearing acceptance check lives here: a drop=0.1 latency=2 run
// must produce the byte-identical event trace AND final-graph fingerprint
// of its drop=0 latency=0 twin — loss changes the bill, never the repair.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"

using namespace xheal;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;

namespace {

/// A fixed xheal-dist schedule; `fault_keys` is appended to the storm
/// phase line ("" for the lossless twin).
ScenarioSpec dist_spec(const std::string& fault_keys) {
    std::string text =
        "name lossy-twin\n"
        "seed 77\n"
        "topology random-regular n=48 d=4\n"
        "healer xheal-dist d=2\n"
        "sample_every 8\n"
        "phase storm steps=24 delete_fraction=1 deleter=random min_nodes=12" +
        (fault_keys.empty() ? "" : " " + fault_keys) +
        "\n"
        "expect connected\n";
    return ScenarioSpec::parse(text);
}

}  // namespace

TEST(LossyNet, LossyTwinMatchesLosslessTraceAndFingerprint) {
    auto lossless = ScenarioRunner(dist_spec("")).run();
    auto lossy = ScenarioRunner(dist_spec("drop=0.1 latency=2")).run();
    ASSERT_TRUE(lossless.passed());
    ASSERT_TRUE(lossy.passed());

    // Identical adversary stream, identical repaired graph.
    EXPECT_EQ(lossy.trace_hash, lossless.trace_hash);
    EXPECT_EQ(lossy.fingerprint, lossless.fingerprint);
    EXPECT_EQ(lossy.final_sample.deletions, lossless.final_sample.deletions);

    // The bill is where the runs differ: drops force acks + re-sends, and
    // latency stretches every delivery wave.
    EXPECT_GT(lossy.final_sample.messages, lossless.final_sample.messages);
    EXPECT_GT(lossy.final_sample.rounds, lossless.final_sample.rounds);
    EXPECT_GT(lossy.final_sample.retries, 0u);
    EXPECT_EQ(lossless.final_sample.retries, 0u);
}

TEST(LossyNet, LossyRunsAreReproducible) {
    // The drop stream is seeded from the spec seed: re-running the same
    // lossy spec reproduces the billing column for column.
    auto a = ScenarioRunner(dist_spec("drop=0.15 latency=1")).run();
    auto b = ScenarioRunner(dist_spec("drop=0.15 latency=1")).run();
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.final_sample.messages, b.final_sample.messages);
    EXPECT_EQ(a.final_sample.rounds, b.final_sample.rounds);
    EXPECT_EQ(a.final_sample.retries, b.final_sample.retries);
}

TEST(LossyNet, PinnedBillingForKnownSchedule) {
    // Regression pin: the exact Theorem 5 bill of the lossless twin.
    // These are deterministic functions of (seed 77, the schedule above,
    // the protocol's message model); a change means the protocol's cost
    // accounting changed and must be re-justified, not waved through.
    auto result = ScenarioRunner(dist_spec("")).run();
    ASSERT_TRUE(result.passed());
    EXPECT_EQ(result.final_sample.deletions, 24u);
    EXPECT_EQ(result.final_sample.messages, 923u);
    EXPECT_EQ(result.final_sample.rounds, 161u);
    EXPECT_EQ(result.final_sample.retries, 0u);

    // Cadence samples carry the cumulative bill monotonically.
    ASSERT_GE(result.samples.size(), 2u);
    std::size_t prev_messages = 0, prev_rounds = 0;
    for (const auto& s : result.samples) {
        EXPECT_GE(s.messages, prev_messages);
        EXPECT_GE(s.rounds, prev_rounds);
        prev_messages = s.messages;
        prev_rounds = s.rounds;
    }
    EXPECT_EQ(result.samples.back().messages, result.final_sample.messages);
}

TEST(LossyNet, ReplayReproducesTheBill) {
    // Replaying the recorded event stream re-executes the protocol with the
    // phase fault model applied at the same boundaries: hashes AND billing
    // must match the recording run.
    auto spec = dist_spec("drop=0.1 latency=2");
    auto recorded = ScenarioRunner(spec).run();
    auto trace = recorded.to_trace(spec);
    auto replayed = ScenarioRunner(spec).replay(trace);
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
    EXPECT_EQ(replayed.final_sample.messages, recorded.final_sample.messages);
    EXPECT_EQ(replayed.final_sample.rounds, recorded.final_sample.rounds);
    EXPECT_EQ(replayed.final_sample.retries, recorded.final_sample.retries);
}

TEST(LossyNet, PhaseFaultKeysOverridePerPhase) {
    // drop= on one phase only: the lossy phase bills retries, the clean
    // phases fall back to the healer's (lossless) base model, and the whole
    // run still matches the all-lossless twin's repaired graph.
    auto make = [](const std::string& middle_keys) {
        std::string text =
            "name phase-faults\n"
            "seed 31\n"
            "topology random-regular n=40 d=4\n"
            "healer xheal-dist d=2\n"
            "sample_every 0\n"
            "phase calm1 steps=6 delete_fraction=1 deleter=random min_nodes=10\n"
            "phase storm steps=6 delete_fraction=1 deleter=random min_nodes=10" +
            (middle_keys.empty() ? "" : " " + middle_keys) +
            "\n"
            "phase calm2 steps=6 delete_fraction=1 deleter=random min_nodes=10\n";
        return ScenarioSpec::parse(text);
    };
    auto clean = ScenarioRunner(make("")).run();
    auto stormy = ScenarioRunner(make("drop=0.2")).run();
    EXPECT_EQ(stormy.trace_hash, clean.trace_hash);
    EXPECT_EQ(stormy.fingerprint, clean.fingerprint);
    EXPECT_GT(stormy.final_sample.retries, 0u);
    EXPECT_GT(stormy.final_sample.messages, clean.final_sample.messages);
}
