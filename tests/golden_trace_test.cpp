// Golden-trace corpus: three small recorded runs checked in under
// tests/data/, with their stream hashes and final-graph fingerprints
// pinned *in this file*. Any drift in the trace format (writer or parser),
// the event-hash encoding, the graph fingerprint, the engine's rng
// consumption order, or a healer's repair decisions fails here loudly
// instead of silently invalidating every previously recorded replay.
//
// To regenerate after an *intentional* semantic change:
//   build/xheal_run run tests/data/golden_<name>.scn \
//       --trace tests/data/golden_<name>.jsonl
// and update the pinned constants below in the same commit, explaining the
// drift in the commit message.
//
// Portability caveat: util::Rng draws through std::uniform_*_distribution,
// whose engine consumption is implementation-defined, so the pinned values
// (like every recorded trace and CI verdict in this repo) are tied to
// libstdc++ — the toolchain CI pins. On another standard library this
// suite failing wholesale means stream divergence, not format drift.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

using namespace xheal;

namespace {

struct Golden {
    const char* name;
    std::size_t events;
    std::uint64_t trace_hash;
    std::uint64_t fingerprint;
};

// The pinned corpus (recorded by xheal_run; see file comment).
// golden_ramp / golden_mix pin the grammar-v2 keys: delete-fraction ramps,
// per-phase seeds, composite deleter mixtures, and insert bursts.
constexpr Golden kCorpus[] = {
    {"golden_star", 1, 0x7e0eafa1d69b9187ull, 0xc9cd300ffb766e10ull},
    {"golden_churn", 35, 0x10cdc4288603deefull, 0x9e375cb2a64b9163ull},
    {"golden_cycle", 25, 0x9e92da93379b885eull, 0x730290a3a8bfadf1ull},
    {"golden_ramp", 35, 0x7535534326627f9aull, 0xc097a98ecf7dd1dfull},
    {"golden_mix", 40, 0x3b2589071355fbecull, 0xdc512b12ee4818f2ull},
};

std::string data_path(const std::string& file) {
    return std::string(XHEAL_REPO_DIR) + "/tests/data/" + file;
}

}  // namespace

class GoldenTrace : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTrace, CheckedInTraceMatchesThePinnedHashes) {
    const Golden& golden = GetParam();
    auto trace = scenario::read_trace_file(data_path(golden.name) + ".jsonl");
    EXPECT_EQ(trace.events.size(), golden.events);
    EXPECT_EQ(trace.trace_hash, golden.trace_hash);
    EXPECT_EQ(trace.fingerprint, golden.fingerprint);

    // The header must still name the checked-in spec (format drift in
    // to_text()/content_hash() shows up here).
    auto spec = scenario::ScenarioSpec::parse_file(data_path(golden.name) + ".scn");
    EXPECT_EQ(trace.scenario, spec.name);
    EXPECT_EQ(trace.seed, spec.seed);
    EXPECT_EQ(trace.spec_hash, spec.content_hash());

    // Re-hashing the parsed events must reproduce the recorded stream hash
    // (parser/writer asymmetry would break replays).
    scenario::TraceHasher hasher;
    for (const auto& e : trace.events) hasher.add(e);
    EXPECT_EQ(hasher.value(), golden.trace_hash);
}

TEST_P(GoldenTrace, RecordedRunIsStillReproducedByRunAndReplay) {
    const Golden& golden = GetParam();
    auto spec = scenario::ScenarioSpec::parse_file(data_path(golden.name) + ".scn");
    auto trace = scenario::read_trace_file(data_path(golden.name) + ".jsonl");

    // A fresh run of the spec must regenerate the identical stream…
    auto rerun = scenario::ScenarioRunner(spec).run();
    EXPECT_EQ(rerun.trace_hash, golden.trace_hash);
    EXPECT_EQ(rerun.fingerprint, golden.fingerprint);

    // …and the strict replay of the checked-in file must match end to end.
    auto replayed = scenario::ScenarioRunner(spec).replay(trace);
    EXPECT_EQ(replayed.trace_hash, golden.trace_hash);
    EXPECT_EQ(replayed.fingerprint, golden.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenTrace, ::testing::ValuesIn(kCorpus),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                             std::string name = info.param.name;
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });
