// Id-compaction epoch tests (DESIGN.md decision 12): graph-level remap
// semantics and slot-storage reclamation, the O(live) iteration bound the
// compaction exists to restore, steady-state allocation-freedom of the
// epoch close (counting allocator), and the scenario-layer contract —
// `compact=` runs are deterministic across double runs and strict replay
// reproduces the recorded stream across compaction boundaries, for both
// the in-process healer and the message-passing distributed backend.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <vector>

#include "graph/graph.hpp"
#include "scenario/runner.hpp"
#include "util/rng.hpp"

// ----- counting allocator -------------------------------------------------
// This TU overrides global operator new/delete to count heap allocations;
// each test source builds its own binary, so the override is local to this
// suite. Only allocation *counts* inside explicitly scoped regions are
// asserted — gtest's own allocations happen outside them.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace xheal;
using namespace xheal::graph;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::TraceEvent;

std::uint64_t allocations_during(const std::function<void()>& fn) {
    std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    fn();
    return g_alloc_count.load(std::memory_order_relaxed) - before;
}

// ----- graph-level semantics ----------------------------------------------

TEST(Compaction, RemapIsAscendingDenseAndPreservesAdjacency) {
    Graph g;
    for (int i = 0; i < 10; ++i) g.add_node();
    // Ring + chords, then kill the odd ids: survivors 0,2,4,6,8.
    for (NodeId v = 0; v < 10; ++v) g.add_black_edge(v, (v + 1) % 10);
    g.add_black_edge(0, 4);
    g.add_color_claim(2, 8, 5);
    for (NodeId v = 1; v < 10; v += 2) g.remove_node(v);

    // Expected survivor adjacency keyed by *old* id.
    std::map<NodeId, std::set<NodeId>> before;
    for (NodeId v : g.nodes())
        for (NodeId u : g.neighbors(v)) before[v].insert(u);

    std::vector<NodeId> map;
    g.compact(map);

    // Map shape: pre-compaction next_id entries, ascending dense ranks on
    // the live ids, invalid elsewhere.
    ASSERT_EQ(map.size(), 10u);
    EXPECT_EQ(map[0], 0u);
    EXPECT_EQ(map[2], 1u);
    EXPECT_EQ(map[4], 2u);
    EXPECT_EQ(map[6], 3u);
    EXPECT_EQ(map[8], 4u);
    for (NodeId v = 1; v < 10; v += 2) EXPECT_EQ(map[v], invalid_node);

    // The epoch closed: dense id space, zero waste, ids restart after the
    // live range.
    EXPECT_EQ(g.node_count(), 5u);
    EXPECT_EQ(g.next_id(), 5u);
    EXPECT_EQ(g.retired_slots(), 0u);

    // Adjacency (and claim kinds) survived the renumbering.
    for (const auto& [old_v, nbrs] : before) {
        NodeId v = map[old_v];
        ASSERT_EQ(g.degree(v), nbrs.size());
        for (NodeId old_u : nbrs) EXPECT_TRUE(g.has_edge(v, map[old_u]));
    }
    EXPECT_TRUE(g.has_color_claim(map[2], map[8], 5));
    EXPECT_TRUE(g.has_black_claim(map[0], map[4]));

    // Post-compaction ids continue densely.
    EXPECT_EQ(g.add_node(), 5u);
}

TEST(Compaction, IterationCostIsProportionalToLiveNotIssued) {
    // Satellite of the unbounded-leak fix: NodesView walks every slot up
    // to next_id(), so after heavy churn iteration pays O(issued). The
    // compaction epoch restores O(live): the slot address space itself —
    // the quantity iteration is proportional to — shrinks to the live
    // count. Pin the bound structurally via next_id()/retired_slots().
    Graph g;
    std::vector<NodeId> alive;
    for (int i = 0; i < 64; ++i) alive.push_back(g.add_node());
    util::Rng rng(7);
    for (int round = 0; round < 2000; ++round) {
        std::size_t at = rng.index(alive.size());
        g.remove_node(alive[at]);
        alive[at] = g.add_node();
    }
    // 2064 ids issued, 64 live: iteration now walks ~32x the live count.
    EXPECT_EQ(g.node_count(), 64u);
    EXPECT_EQ(g.next_id(), 2064u);
    EXPECT_GE(g.retired_slots(), 2000u);

    std::vector<NodeId> map;
    g.compact(map);

    // The address space — and with it the iteration cost — is live-sized
    // again, and the view yields exactly the live ids, ascending.
    EXPECT_EQ(g.next_id(), 64u);
    EXPECT_EQ(g.retired_slots(), 0u);
    std::size_t walked = 0;
    NodeId prev = 0;
    for (NodeId v : g.nodes()) {
        EXPECT_TRUE(walked == 0 || v > prev);
        prev = v;
        ++walked;
    }
    EXPECT_EQ(walked, 64u);
    EXPECT_EQ(g.nodes().size(), 64u);
}

TEST(Compaction, SlotStorageStaysBoundedAcrossUnboundedChurn) {
    // The leak this PR fixes, at graph scale: issue 100k ids with a 256-
    // node live population, compacting whenever waste crosses 4x. The slot
    // address space must never exceed a small multiple of live.
    Graph g;
    std::vector<NodeId> alive;
    for (int i = 0; i < 256; ++i) alive.push_back(g.add_node());
    util::Rng rng(99);
    std::vector<NodeId> map;
    std::size_t issued = 256, peak = 0, compactions = 0;
    while (issued < 100000) {
        std::size_t at = rng.index(alive.size());
        g.remove_node(alive[at]);
        alive[at] = g.add_node();
        ++issued;
        peak = std::max<std::size_t>(peak, g.next_id());
        if (g.next_id() >= 4 * g.node_count()) {
            g.compact(map);
            for (NodeId& v : alive) v = map[v];
            ++compactions;
            peak = std::max<std::size_t>(peak, g.next_id());
        }
    }
    EXPECT_GE(compactions, 50u);
    EXPECT_EQ(g.node_count(), 256u);
    // Peak address space bounded by the trigger factor, not by issuance.
    EXPECT_LE(peak, 4 * 256u + 1);
}

TEST(Compaction, SteadyStateEpochCloseDoesNotAllocate) {
    // graph.hpp promises compact() is allocation-free once the caller's
    // scratch map and the internal row pool have grown. Warm up with two
    // full churn+compact cycles, then count heap allocations during the
    // third epoch close: it must be zero.
    Graph g;
    std::vector<NodeId> alive;
    for (int i = 0; i < 128; ++i) alive.push_back(g.add_node());
    for (std::size_t i = 1; i < alive.size(); ++i)
        g.add_black_edge(alive[i - 1], alive[i]);
    util::Rng rng(3);
    std::vector<NodeId> map;

    auto churn = [&] {
        for (int round = 0; round < 512; ++round) {
            std::size_t at = rng.index(alive.size());
            g.remove_node(alive[at]);
            NodeId v = g.add_node();
            alive[at] = v;
            g.add_black_edge(v, alive[(at + 1) % alive.size()]);
        }
    };

    for (int warmup = 0; warmup < 2; ++warmup) {
        churn();
        g.compact(map);
        for (NodeId& v : alive) v = map[v];
    }
    churn();
    std::uint64_t allocs = allocations_during([&] { g.compact(map); });
    for (NodeId& v : alive) v = map[v];
    EXPECT_EQ(allocs, 0u)
        << "compact() allocated in steady state — pooled row storage or the "
           "caller scratch map is not being reused";
}

// ----- scenario-layer contract --------------------------------------------

ScenarioSpec compact_churn_spec() {
    return ScenarioSpec::parse(R"(
name compact-churn
seed 11
topology erdos-renyi n=40 p=0.15
healer xheal d=2
phase churn steps=160 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=12 compact=2
expect connected
expect peak_slot_factor <= 4
)");
}

ScenarioSpec compact_dist_spec() {
    return ScenarioSpec::parse(R"(
name compact-dist
seed 303
topology random-regular n=48 d=4
healer xheal-dist d=2
phase churn steps=120 delete_fraction=0.5 deleter=random inserter=random-attach k=3 min_nodes=20 compact=2
expect connected
)");
}

TEST(CompactionScenario, DoubleRunTraceHashesAreIdentical) {
    auto first = ScenarioRunner(compact_churn_spec()).run();
    auto second = ScenarioRunner(compact_churn_spec()).run();
    ASSERT_GE(first.compactions, 1u)
        << "spec never triggered a compaction — the test is vacuous";
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.compactions, second.compactions);
    EXPECT_EQ(first.events.size(), second.events.size());
    EXPECT_TRUE(first.passed()) << (first.failures.empty() ? "" : first.failures[0]);
    // The compact events are in the recorded stream (replay depends on
    // them, not on re-evaluating the trigger).
    std::size_t compact_events = 0;
    for (const TraceEvent& e : first.events)
        if (e.kind == TraceEvent::Kind::compact) ++compact_events;
    EXPECT_EQ(compact_events, first.compactions);
}

TEST(CompactionScenario, ReplayReproducesAcrossCompactionBoundaries) {
    auto s = compact_churn_spec();
    auto recorded = ScenarioRunner(s).run();
    ASSERT_GE(recorded.compactions, 1u);
    auto trace = recorded.to_trace(s);
    auto replayed = ScenarioRunner(s).replay(trace);
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
    EXPECT_EQ(replayed.compactions, recorded.compactions);
}

TEST(CompactionScenario, ReplayMatchesRunSlotAccounting) {
    // peak_slot_count / live_high_water are the numerator and denominator
    // of the `expect peak_slot_factor <=` bound — replay must keep the
    // same per-step accounting discipline as run() (seeded from the
    // initial topology, sampled at step boundaries before compaction
    // fires), or a replayed trace could pass an expectation the recorded
    // run failed.
    auto s = compact_churn_spec();
    auto recorded = ScenarioRunner(s).run();
    ASSERT_GE(recorded.compactions, 1u);
    ASSERT_GT(recorded.peak_slot_count, 0u);
    ASSERT_GT(recorded.live_high_water, 0u);
    auto replayed = ScenarioRunner(s).replay(recorded.to_trace(s));
    EXPECT_EQ(replayed.peak_slot_count, recorded.peak_slot_count);
    EXPECT_EQ(replayed.live_high_water, recorded.live_high_water);
    EXPECT_EQ(replayed.failures, recorded.failures);

    // And on a compaction-free spec, where the peak is just the issuance
    // high-water mark — the two paths must still agree exactly.
    auto plain = ScenarioSpec::parse(R"(
name no-compact-accounting
seed 17
topology erdos-renyi n=40 p=0.15
healer xheal d=2
phase churn steps=80 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=12
expect connected
)");
    auto run_r = ScenarioRunner(plain).run();
    auto rep_r = ScenarioRunner(plain).replay(run_r.to_trace(plain));
    EXPECT_EQ(rep_r.peak_slot_count, run_r.peak_slot_count);
    EXPECT_EQ(rep_r.live_high_water, run_r.live_high_water);
}

TEST(CompactionScenario, TraceJsonlRoundTripsCompactEvents) {
    auto s = compact_churn_spec();
    auto recorded = ScenarioRunner(s).run();
    ASSERT_GE(recorded.compactions, 1u);
    auto trace = recorded.to_trace(s);
    std::ostringstream out;
    scenario::write_trace(out, trace);
    std::istringstream in(out.str());
    auto back = scenario::read_trace(in);
    ASSERT_EQ(back.events.size(), trace.events.size());
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        EXPECT_EQ(back.events[i].kind, trace.events[i].kind);
        EXPECT_EQ(back.events[i].step, trace.events[i].step);
        EXPECT_EQ(back.events[i].node, trace.events[i].node);
    }
    auto replayed = ScenarioRunner(s).replay(back);
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
}

TEST(CompactionScenario, DistributedHealerCompactsDeterministically) {
    // The distributed backend remaps its simulated network addressing at
    // the epoch boundary (Network::remap_nodes); billing and stream must
    // stay deterministic.
    auto first = ScenarioRunner(compact_dist_spec()).run();
    auto second = ScenarioRunner(compact_dist_spec()).run();
    ASSERT_GE(first.compactions, 1u)
        << "spec never triggered a compaction — the test is vacuous";
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_TRUE(first.passed()) << (first.failures.empty() ? "" : first.failures[0]);
    EXPECT_EQ(first.final_sample.messages, second.final_sample.messages);
    EXPECT_EQ(first.final_sample.rounds, second.final_sample.rounds);

    auto s = compact_dist_spec();
    auto trace = first.to_trace(s);
    auto replayed = ScenarioRunner(s).replay(trace);
    EXPECT_EQ(replayed.trace_hash, first.trace_hash);
    EXPECT_EQ(replayed.fingerprint, first.fingerprint);
}

TEST(CompactionScenario, LegacySpecsNeverCompact) {
    // compact= defaults to off: a spec without the key must keep the exact
    // pre-epoch behavior (zero compactions, no compact events) — this is
    // what keeps every checked-in golden trace and fingerprint valid.
    auto spec = ScenarioSpec::parse(R"(
name no-compact
seed 11
topology erdos-renyi n=40 p=0.15
healer xheal d=2
phase churn steps=80 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=12
expect connected
)");
    auto result = ScenarioRunner(spec).run();
    EXPECT_EQ(result.compactions, 0u);
    for (const TraceEvent& e : result.events)
        EXPECT_NE(e.kind, TraceEvent::Kind::compact);
}

}  // namespace
