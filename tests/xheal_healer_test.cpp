#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::ColorId;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

std::unique_ptr<XhealHealer> make_healer(std::size_t d = 4, std::uint64_t seed = 42) {
    return std::make_unique<XhealHealer>(XhealConfig{d, seed});
}

TEST(XhealCase1, StarCenterBecomesCliqueWhenSmall) {
    // 4 neighbors <= kappa+1 = 9: the primary cloud is a clique (paper
    // Algorithm 3.2).
    Graph g = wl::make_star(4);
    XhealHealer healer;
    auto report = healer.on_delete(g, 0);
    EXPECT_FALSE(g.has_node(0));
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 6u);  // K4
    for (NodeId u = 1; u <= 4; ++u)
        for (NodeId v = u + 1; v <= 4; ++v) EXPECT_TRUE(g.is_colored_edge(u, v));
    EXPECT_EQ(report.edges_added, 6u);
    EXPECT_EQ(report.clouds_touched, 1u);
    EXPECT_EQ(report.combines, 0u);
    healer.check_consistency(g);
}

TEST(XhealCase1, StarCenterBecomesExpanderWhenLarge) {
    Graph g = wl::make_star(30);
    auto healer = make_healer(2);  // kappa = 4
    healer->on_delete(g, 0);
    EXPECT_TRUE(xheal::graph::is_connected(g));
    for (NodeId v : g.nodes()) {
        EXPECT_GE(g.degree(v), 2u);
        EXPECT_LE(g.degree(v), 4u);  // kappa-regular expander, not a clique
    }
    EXPECT_GT(xheal::spectral::edge_expansion_estimate(g), 0.5);
    healer->check_consistency(g);
}

TEST(XhealCase1, EventLogRecordsCreatePrimary) {
    Graph g = wl::make_star(5);
    XhealHealer healer;
    healer.on_delete(g, 0);
    const auto& events = healer.last_events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, HealEvent::Kind::create_primary);
    EXPECT_EQ(events[0].members.size(), 5u);
}

TEST(XhealCase1, DegreeOneDeletionJustDrops) {
    Graph g = wl::make_path(3);
    XhealHealer healer;
    auto report = healer.on_delete(g, 2);  // leaf
    EXPECT_EQ(report.edges_added, 0u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(xheal::graph::is_connected(g));
    healer.check_consistency(g);
}

TEST(XhealCase1, IsolatedNodeDeletion) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.add_node();  // isolated node 2
    XhealHealer healer;
    auto report = healer.on_delete(g, 2);
    EXPECT_EQ(report.edges_added, 0u);
    EXPECT_EQ(g.node_count(), 2u);
}

TEST(XhealCase21, SingleCloudLosesMemberNoSecondary) {
    Graph g = wl::make_star(4);
    XhealHealer healer;
    healer.on_delete(g, 0);  // cloud {1,2,3,4}
    healer.on_delete(g, 1);  // member of exactly one cloud, no black nbrs
    EXPECT_TRUE(xheal::graph::is_connected(g));
    // No secondary cloud should exist: a single unit needs no connector.
    const auto& reg = healer.registry();
    for (ColorId c : reg.colors()) {
        EXPECT_EQ(reg.find(c)->kind, CloudKind::primary);
    }
    healer.check_consistency(g);
}

/// Builds the two-primary-clouds-plus-black-neighbor scenario:
///   c1 (id 0) center of star over {x, a1, a2}
///   c2 (id 1) center of star over {x, b1, b2}
///   plain black edge x - y.
/// Deleting c1 then c2 yields primary clouds P1 = {x,a1,a2}, P2 = {x,b1,b2};
/// x is in both; y is a pure black neighbor of x.
struct TwoCloudFixture : ::testing::Test {
    Graph g;
    NodeId c1, c2, x, a1, a2, b1, b2, y;
    std::unique_ptr<XhealHealer> healer = make_healer(4, 7);

    void SetUp() override {
        c1 = g.add_node();
        c2 = g.add_node();
        x = g.add_node();
        a1 = g.add_node();
        a2 = g.add_node();
        b1 = g.add_node();
        b2 = g.add_node();
        y = g.add_node();
        for (NodeId v : {x, a1, a2}) g.add_black_edge(c1, v);
        for (NodeId v : {x, b1, b2}) g.add_black_edge(c2, v);
        g.add_black_edge(x, y);
        healer->on_delete(g, c1);
        healer->on_delete(g, c2);
    }
};

TEST_F(TwoCloudFixture, SetupProducedTwoPrimaryClouds) {
    const auto& reg = healer->registry();
    auto clouds_of_x = reg.primary_clouds_of(x);
    EXPECT_EQ(clouds_of_x.size(), 2u);
    EXPECT_TRUE(reg.is_free(x));
    EXPECT_FALSE(reg.in_any_cloud(y));
    healer->check_consistency(g);
    EXPECT_TRUE(xheal::graph::is_connected(g));
}

TEST_F(TwoCloudFixture, DeletingSharedMemberBuildsSecondary) {
    auto report = healer->on_delete(g, x);
    EXPECT_TRUE(xheal::graph::is_connected(g));
    healer->check_consistency(g);

    // A secondary cloud now connects P1, P2 and singleton y.
    const auto& reg = healer->registry();
    std::size_t secondaries = 0;
    for (ColorId c : reg.colors()) {
        const Cloud* cloud = reg.find(c);
        if (cloud->kind != CloudKind::secondary) continue;
        ++secondaries;
        EXPECT_EQ(cloud->size(), 3u);  // one bridge per unit
        EXPECT_TRUE(cloud->has_member(y));
    }
    EXPECT_EQ(secondaries, 1u);
    EXPECT_EQ(report.combines, 0u);
    // y is now a bridge: not free.
    EXPECT_FALSE(reg.is_free(y));
}

TEST_F(TwoCloudFixture, BridgeDeletionFixesSecondary) {
    healer->on_delete(g, x);
    const auto& reg = healer->registry();
    // Find a bridge associated with a primary cloud (not y).
    NodeId bridge = xheal::graph::invalid_node;
    for (NodeId v : g.nodes()) {
        if (v != y && !reg.is_free(v)) bridge = v;
    }
    ASSERT_NE(bridge, xheal::graph::invalid_node);

    healer->on_delete(g, bridge);  // Case 2.2
    EXPECT_TRUE(xheal::graph::is_connected(g));
    healer->check_consistency(g);
}

TEST_F(TwoCloudFixture, RepeatedDeletionsKeepConnectivity) {
    // Grind the fixture down to 2 nodes; connectivity and registry
    // consistency must hold after every step.
    while (g.node_count() > 2) {
        NodeId victim = g.nodes().front();
        healer->on_delete(g, victim);
        EXPECT_TRUE(xheal::graph::is_connected(g));
        healer->check_consistency(g);
    }
}

TEST(XhealDegree, BoundHoldsUnderHubAttack) {
    xheal::util::Rng rng(5);
    Graph initial = wl::make_erdos_renyi(40, 0.15, rng);
    HealingSession session(initial, make_healer(2, 11));
    auto& healer = dynamic_cast<XhealHealer&>(session.healer());
    for (int step = 0; step < 30; ++step) {
        // Hub attack: delete the max-degree node.
        NodeId worst = xheal::graph::invalid_node;
        std::size_t best = 0;
        for (NodeId v : session.current().nodes()) {
            if (session.current().degree(v) >= best) {
                best = session.current().degree(v);
                worst = v;
            }
        }
        session.delete_node(worst);
        check_degree_bound(session.current(), session.reference(), healer.kappa());
        EXPECT_TRUE(xheal::graph::is_connected(session.current()));
    }
}

TEST(XhealExpansion, StarCollapseKeepsConstantExpansion) {
    // The paper's motivating example: deleting the star center must not
    // collapse expansion (tree baselines drop to O(1/n)).
    Graph g = wl::make_star(64);
    auto healer = make_healer(3, 3);
    healer->on_delete(g, 0);
    EXPECT_GE(xheal::spectral::edge_expansion_estimate(g), 1.0);
}

TEST(XhealDeterminism, SameSeedSameResult) {
    auto run = [](std::uint64_t seed) {
        Graph g = wl::make_star(20);
        XhealHealer healer(XhealConfig{3, seed});
        healer.on_delete(g, 0);
        healer.on_delete(g, 5);
        healer.on_delete(g, 10);
        std::vector<std::pair<NodeId, NodeId>> edges;
        g.for_each_edge([&](NodeId u, NodeId v, const xheal::graph::EdgeClaims&) {
            edges.emplace_back(u, v);
        });
        return edges;
    };
    EXPECT_EQ(run(1234), run(1234));
    EXPECT_NE(run(1234), run(4321));
}

}  // namespace
