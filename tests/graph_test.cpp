#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "util/expects.hpp"

namespace {

using namespace xheal::graph;
using xheal::util::ContractViolation;

TEST(Graph, AddNodesAllocatesMonotonicIds) {
    Graph g;
    EXPECT_EQ(g.add_node(), 0u);
    EXPECT_EQ(g.add_node(), 1u);
    g.remove_node(1);
    // Ids are never reused.
    EXPECT_EQ(g.add_node(), 2u);
    EXPECT_EQ(g.node_count(), 2u);
}

TEST(Graph, AddNodeWithIdAdvancesCounter) {
    Graph g;
    g.add_node_with_id(10);
    EXPECT_EQ(g.add_node(), 11u);
    EXPECT_THROW(g.add_node_with_id(10), ContractViolation);
}

TEST(Graph, BlackEdgeBasics) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_black_claim(0, 1));
    EXPECT_FALSE(g.is_colored_edge(0, 1));
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.degree(0), 1u);
    // Idempotent.
    g.add_black_edge(1, 0);
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, SelfLoopRejected) {
    Graph g;
    g.add_node();
    EXPECT_THROW(g.add_black_edge(0, 0), ContractViolation);
}

TEST(Graph, ColorClaimCreatesEdge) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_color_claim(0, 1, 5);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.is_colored_edge(0, 1));
    EXPECT_FALSE(g.has_black_claim(0, 1));
    EXPECT_TRUE(g.has_color_claim(0, 1, 5));
    EXPECT_FALSE(g.has_color_claim(0, 1, 6));
}

TEST(Graph, RecoloringKeepsOneEdge) {
    // The paper's "recolor instead of multi-edge": a black edge gaining a
    // color claim stays a single edge with both claims.
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.add_color_claim(0, 1, 3);
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_TRUE(g.claims(0, 1).black);
    EXPECT_TRUE(g.claims(0, 1).has_color(3));
    EXPECT_TRUE(g.is_colored_edge(0, 1));
}

TEST(Graph, DroppingColorRevertsToBlack) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.add_color_claim(0, 1, 3);
    EXPECT_TRUE(g.remove_color_claim(0, 1, 3));
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(g.is_colored_edge(0, 1));
    EXPECT_TRUE(g.has_black_claim(0, 1));
}

TEST(Graph, EdgeDisappearsWhenLastClaimRemoved) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_color_claim(0, 1, 3);
    g.add_color_claim(0, 1, 9);
    EXPECT_TRUE(g.remove_color_claim(0, 1, 3));
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.remove_color_claim(0, 1, 9));
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, RemoveMissingClaimReturnsFalse) {
    Graph g;
    g.add_node();
    g.add_node();
    EXPECT_FALSE(g.remove_color_claim(0, 1, 3));
    g.add_black_edge(0, 1);
    EXPECT_FALSE(g.remove_color_claim(0, 1, 3));
    EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, RemoveBlackClaim) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.add_color_claim(0, 1, 2);
    EXPECT_TRUE(g.remove_black_claim(0, 1));
    EXPECT_TRUE(g.has_edge(0, 1));  // color claim keeps it alive
    EXPECT_TRUE(g.remove_color_claim(0, 1, 2));
    EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, RemoveNodeDropsIncidentEdges) {
    Graph g;
    for (int i = 0; i < 4; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(0, 2);
    g.add_color_claim(0, 3, 7);
    g.add_black_edge(1, 2);
    g.remove_node(0);
    EXPECT_FALSE(g.has_node(0));
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, NeighborsSortedAndMirrored) {
    Graph g;
    for (int i = 0; i < 5; ++i) g.add_node();
    g.add_black_edge(2, 4);
    g.add_black_edge(2, 0);
    g.add_black_edge(2, 3);
    auto view = g.neighbors(2);
    EXPECT_EQ(std::vector<NodeId>(view.begin(), view.end()),
              (std::vector<NodeId>{0, 3, 4}));
    for (NodeId u : g.neighbors(2)) {
        EXPECT_TRUE(g.claims(u, 2).black);
    }
}

TEST(Graph, ForEachEdgeVisitsOncePerEdge) {
    Graph g;
    for (int i = 0; i < 4; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(1, 2);
    g.add_black_edge(2, 3);
    std::size_t visits = 0;
    g.for_each_edge([&](NodeId u, NodeId v, const EdgeClaims& c) {
        EXPECT_LT(u, v);
        EXPECT_TRUE(c.black);
        ++visits;
    });
    EXPECT_EQ(visits, 3u);
}

TEST(Graph, VolumeAndDegreeExtremes) {
    Graph g;
    for (int i = 0; i < 4; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(0, 2);
    g.add_black_edge(0, 3);
    EXPECT_EQ(g.max_degree(), 3u);
    EXPECT_EQ(g.min_degree(), 1u);
    std::vector<NodeId> s{0, 1};
    EXPECT_EQ(g.volume(s), 4u);
}

TEST(Graph, CopySemanticsIndependent) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    Graph copy = g;
    copy.remove_node(0);
    EXPECT_TRUE(g.has_node(0));
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(copy.has_node(0));
}

TEST(Graph, ClaimsRequireExistingNodes) {
    Graph g;
    g.add_node();
    EXPECT_THROW(g.add_black_edge(0, 99), ContractViolation);
    EXPECT_THROW(g.degree(99), ContractViolation);
}

TEST(Graph, InvalidColorRejected) {
    Graph g;
    g.add_node();
    g.add_node();
    EXPECT_THROW(g.add_color_claim(0, 1, invalid_color), ContractViolation);
}

}  // namespace
