#include <gtest/gtest.h>

#include <cmath>

#include "spectral/random_walk.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::spectral;
using xheal::graph::Graph;
namespace wl = xheal::workload;

TEST(RandomWalk, StationaryDistributionIsDegreeProportional) {
    auto g = wl::make_star(4);  // center degree 4, leaves degree 1; 2m = 8
    auto pi = stationary_distribution(g);
    EXPECT_DOUBLE_EQ(pi[0], 0.5);
    for (std::size_t i = 1; i <= 4; ++i) EXPECT_DOUBLE_EQ(pi[i], 0.125);
}

TEST(RandomWalk, StationaryIsFixedPointOfLazyStep) {
    auto g = wl::make_petersen();
    auto pi = stationary_distribution(g);
    auto next = lazy_walk_step(g, pi);
    for (std::size_t i = 0; i < pi.size(); ++i) EXPECT_NEAR(next[i], pi[i], 1e-12);
}

TEST(RandomWalk, StepConservesMass) {
    auto g = wl::make_grid(3, 3);
    std::vector<double> p(9, 0.0);
    p[0] = 1.0;
    for (int t = 0; t < 5; ++t) {
        p = lazy_walk_step(g, p);
        double mass = 0.0;
        for (double x : p) mass += x;
        EXPECT_NEAR(mass, 1.0, 1e-12);
    }
}

TEST(RandomWalk, TotalVariationBasics) {
    EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
    EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(total_variation({0.75, 0.25}, {0.25, 0.75}), 0.5);
}

TEST(RandomWalk, CompleteGraphMixesAlmostInstantly) {
    auto g = wl::make_complete(16);
    auto t = mixing_time(g, 0, 0.25);
    ASSERT_TRUE(t.has_value());
    EXPECT_LE(*t, 3u);
}

TEST(RandomWalk, PathMixesSlowly) {
    auto fast = mixing_time_worst(wl::make_complete(16), 0.25);
    auto slow = mixing_time_worst(wl::make_path(16), 0.25);
    ASSERT_TRUE(fast.has_value());
    ASSERT_TRUE(slow.has_value());
    EXPECT_GT(*slow, 4 * *fast);
}

TEST(RandomWalk, DisconnectedNeverMixes) {
    Graph g;
    for (int i = 0; i < 4; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(2, 3);
    EXPECT_EQ(mixing_time(g, 0, 0.1, 500), std::nullopt);
}

TEST(RandomWalk, PreliminariesExampleExpanderVsTwoCliques) {
    // The paper's Preliminaries example: an expander mixes in O(log n)
    // steps; two cliques joined by one edge (similar edge expansion,
    // conductance O(1/n)) mix polynomially slowly.
    xheal::util::Rng rng(5);
    auto expander = wl::make_random_regular(16, 4, rng);
    auto dumbbell = wl::make_dumbbell(8);  // also 16 nodes
    auto t_exp = mixing_time_worst(expander, 0.25);
    auto t_dumb = mixing_time_worst(dumbbell, 0.25);
    ASSERT_TRUE(t_exp.has_value());
    ASSERT_TRUE(t_dumb.has_value());
    EXPECT_GT(*t_dumb, 5 * *t_exp);
}

TEST(RandomWalk, SpectralBoundPredictsMixingOrder) {
    // Measured mixing time should be within a constant of the spectral
    // prediction (2/lambda2) ln(n/eps) on well-behaved graphs.
    for (auto make : {+[] { return wl::make_complete(12); },
                      +[] { return wl::make_cycle(12); },
                      +[] { return wl::make_petersen(); }}) {
        auto g = make();
        auto measured = mixing_time_worst(g, 0.25);
        ASSERT_TRUE(measured.has_value());
        double bound = spectral_mixing_bound(g, 0.25);
        EXPECT_LE(static_cast<double>(*measured), 2.0 * bound + 2.0);
    }
}

}  // namespace
