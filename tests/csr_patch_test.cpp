// Incremental CSR snapshot property tests (tentpole of the incremental
// probe engine): an IncrementalSnapshot fed a graph's structure journal
// must be indistinguishable from a from-scratch build — same node list,
// offsets, targets and inverse-sqrt degrees, byte for byte — no matter how
// the delta stream interleaves inserts, deletions and edge churn, whether
// the journal repeats ids, names dead ids, or overflows. And the
// warm-started lambda2 probe (previous sample's Ritz vector re-seeded into
// the next solve) must agree with a cold solve to within the probe
// tolerance: warm starts buy iterations, never accuracy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/graph.hpp"
#include "spectral/probes.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

using namespace xheal;
using graph::Graph;
using graph::NodeId;
using spectral::CsrGraph;
using spectral::IncrementalSnapshot;
using spectral::ProbeEngine;

namespace {

/// Assert the synced snapshot equals a fresh build, array by array.
void expect_identical(const IncrementalSnapshot& snap, const Graph& g,
                      const char* context) {
    CsrGraph fresh;
    fresh.build(g);
    const CsrGraph& patched = snap.csr();
    ASSERT_EQ(patched.size(), fresh.size()) << context;
    EXPECT_EQ(patched.nodes(), fresh.nodes()) << context;
    EXPECT_EQ(patched.offsets(), fresh.offsets()) << context;
    EXPECT_EQ(patched.targets(), fresh.targets()) << context;
    ASSERT_EQ(patched.inv_sqrt_degrees().size(), fresh.inv_sqrt_degrees().size())
        << context;
    for (std::size_t i = 0; i < fresh.inv_sqrt_degrees().size(); ++i) {
        // Byte-identical, not approximately equal: both sides compute
        // 1/sqrt(degree) the same way, so any difference is a stale row.
        EXPECT_EQ(patched.inv_sqrt_degrees()[i], fresh.inv_sqrt_degrees()[i])
            << context << " row " << i;
    }
}

/// One random structural mutation on g, journaled. Weighted toward edge
/// churn (the common repair delta), with node deletion + insertion mixed in
/// so the dense renumbering shifts under the patcher.
void mutate(Graph& g, util::Rng& rng) {
    auto view = g.nodes();
    std::vector<NodeId> alive(view.begin(), view.end());
    std::uint64_t dice = rng.index(10);
    if (dice < 2 && g.node_count() > 8) {
        g.remove_node(alive[rng.index(alive.size())]);
    } else if (dice < 4) {
        NodeId v = g.add_node();
        for (int i = 0; i < 3 && !alive.empty(); ++i)
            g.add_black_edge(v, alive[rng.index(alive.size())]);
    } else if (dice < 7 && g.edge_count() > 8) {
        // Delete a random edge of a random node.
        for (int tries = 0; tries < 8; ++tries) {
            NodeId u = alive[rng.index(alive.size())];
            if (g.degree(u) == 0) continue;
            auto nbrs = g.neighbors(u);
            g.remove_black_claim(u, nbrs[rng.index(nbrs.size())]);
            break;
        }
    } else {
        NodeId u = alive[rng.index(alive.size())];
        NodeId v = alive[rng.index(alive.size())];
        if (u != v) g.add_black_edge(u, v);
    }
}

}  // namespace

TEST(CsrPatch, FuzzedDeltaStreamsPatchToTheFreshBuild) {
    util::Rng topo_rng(4242);
    Graph g = workload::make_erdos_renyi(220, 0.04, topo_rng);
    g.set_journal_limit(100000);

    IncrementalSnapshot snap;
    snap.note(g, g.journal(), g.journal_overflowed());
    g.clear_journal();
    snap.sync(g);
    expect_identical(snap, g, "initial build");

    util::Rng rng(7);
    for (int round = 0; round < 60; ++round) {
        // A burst of mutations between syncs, like repairs between samples.
        std::uint64_t burst = 1 + rng.index(12);
        for (std::uint64_t i = 0; i < burst; ++i) mutate(g, rng);
        snap.note(g, g.journal(), g.journal_overflowed());
        g.clear_journal();
        snap.sync(g);
        SCOPED_TRACE(round);
        expect_identical(snap, g, "after patched sync");
    }
}

TEST(CsrPatch, OverflowedJournalForcesARebuildAndStaysCorrect) {
    util::Rng topo_rng(91);
    Graph g = workload::make_erdos_renyi(150, 0.05, topo_rng);
    g.set_journal_limit(4);  // tiny: every burst overflows

    IncrementalSnapshot snap;
    snap.note(g, g.journal(), g.journal_overflowed());
    g.clear_journal();
    snap.sync(g);
    std::uint64_t rebuilds_before = snap.rebuilds();

    util::Rng rng(13);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 6; ++i) mutate(g, rng);
        snap.note(g, g.journal(), g.journal_overflowed());
        g.clear_journal();
        snap.sync(g);
        SCOPED_TRACE(round);
        expect_identical(snap, g, "after overflow sync");
    }
    // An unknown delta can never be patched.
    EXPECT_EQ(snap.rebuilds() - rebuilds_before, 10u);
    EXPECT_EQ(snap.patched_events(), 0u);
}

TEST(CsrPatch, SteadyChurnMostlyPatchesInsteadOfRebuilding) {
    util::Rng topo_rng(5);
    Graph g = workload::make_erdos_renyi(400, 0.02, topo_rng);
    g.set_journal_limit(100000);

    IncrementalSnapshot snap;
    snap.note(g, g.journal(), g.journal_overflowed());
    g.clear_journal();
    snap.sync(g);  // rebuild #1: first sync

    util::Rng rng(17);
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 4; ++i) mutate(g, rng);
        snap.note(g, g.journal(), g.journal_overflowed());
        g.clear_journal();
        snap.sync(g);
    }
    // Small deltas against 400 rows: the patch path must carry the load
    // (the incremental engine's whole point). Node insertion can break the
    // append-only id assumption mid-burst, so a few rebuilds are fine.
    EXPECT_GT(snap.patched_events(), 40u);
    EXPECT_LT(snap.rebuilds(), 10u);
}

TEST(CsrPatch, WarmAndColdLambda2AgreeWithinProbeTolerance) {
    util::Rng topo_rng(23);
    Graph g = workload::make_random_regular(600, 6, topo_rng);
    g.set_journal_limit(100000);

    ProbeEngine warm_engine;  // auto path: warm-starts after the 1st solve
    util::Rng rng(3);
    double worst = 0.0;
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 10; ++i) mutate(g, rng);
        warm_engine.begin_sample(g, g.journal(), g.journal_overflowed());
        g.clear_journal();
        double warm = warm_engine.lambda2(g, 12345);
        warm_engine.end_sample();

        ProbeEngine cold_engine;  // fresh engine: no warm state, same budget
        double cold = cold_engine.lambda2(g, 12345);
        // Near-exact reference (larger budget, tight tolerance). On this
        // clustered spectrum the cold probe's stagnation exit legitimately
        // leaves ~1e-2 of residual error — the probe tolerance is a stopping
        // rule, not an accuracy guarantee — so "agree" is measured against
        // the probe's real accuracy envelope, not the stopping tolerance.
        double exact = cold_engine.lambda2_sparse(g, 12345);

        SCOPED_TRACE(round);
        ASSERT_GT(warm, 0.0);  // stayed connected (regular graph, light churn)
        // Both probes live inside the same accuracy envelope (a few percent
        // of lambda2 at the 64-step budget), so they cannot drift apart.
        EXPECT_NEAR(warm, cold, 0.05 * exact);
        // Warm starts buy iterations, never cost accuracy: the warm probe is
        // never materially further from the truth than the cold one...
        EXPECT_LE(std::abs(warm - exact),
                  std::abs(cold - exact) + ProbeEngine::probe_lambda2_tol);
        // ...and once the engine holds a previous Ritz vector (round 3 on),
        // the warm probe lands within the stopping tolerance of the truth —
        // strictly better than what the cold budget alone can promise.
        if (round >= 3)
            EXPECT_NEAR(warm, exact, 2 * ProbeEngine::probe_lambda2_tol);
        worst = std::max(worst, std::abs(warm - cold));
    }
    RecordProperty("worst_warm_cold_gap", worst);
}
