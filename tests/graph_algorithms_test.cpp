#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::graph;
namespace wl = xheal::workload;

TEST(Bfs, PathDistances) {
    auto g = wl::make_path(6);
    auto d = bfs_distances(g, 0);
    for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d.at(v), v);
}

TEST(Bfs, GridDistanceIsManhattan) {
    auto g = wl::make_grid(4, 5);
    auto d = bfs_distances(g, 0);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_EQ(d.at(static_cast<NodeId>(r * 5 + c)), r + c);
}

TEST(Distance, DisconnectedIsNullopt) {
    Graph g;
    g.add_node();
    g.add_node();
    EXPECT_EQ(distance(g, 0, 1), std::nullopt);
    EXPECT_EQ(distance(g, 0, 0), std::optional<std::size_t>{0});
}

TEST(Connectivity, DetectsComponents) {
    Graph g;
    for (int i = 0; i < 5; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(2, 3);
    EXPECT_FALSE(is_connected(g));
    auto comps = connected_components(g);
    ASSERT_EQ(comps.size(), 3u);
    EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(comps[1], (std::vector<NodeId>{2, 3}));
    EXPECT_EQ(comps[2], (std::vector<NodeId>{4}));
}

TEST(Connectivity, EmptyAndSingletonAreConnected) {
    Graph g;
    EXPECT_TRUE(is_connected(g));
    g.add_node();
    EXPECT_TRUE(is_connected(g));
}

TEST(Diameter, KnownValues) {
    EXPECT_EQ(diameter_exact(wl::make_path(7)), std::optional<std::size_t>{6});
    EXPECT_EQ(diameter_exact(wl::make_cycle(8)), std::optional<std::size_t>{4});
    EXPECT_EQ(diameter_exact(wl::make_complete(5)), std::optional<std::size_t>{1});
    EXPECT_EQ(diameter_exact(wl::make_star(6)), std::optional<std::size_t>{2});
    EXPECT_EQ(diameter_exact(wl::make_petersen()), std::optional<std::size_t>{2});
}

TEST(Diameter, DisconnectedIsNullopt) {
    Graph g;
    g.add_node();
    g.add_node();
    EXPECT_EQ(diameter_exact(g), std::nullopt);
}

TEST(Articulation, PathInternalNodesAreCuts) {
    auto g = wl::make_path(5);
    EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{1, 2, 3}));
}

TEST(Articulation, CycleHasNone) {
    EXPECT_TRUE(articulation_points(wl::make_cycle(6)).empty());
}

TEST(Articulation, StarCenterIsTheOnlyCut) {
    auto g = wl::make_star(5);
    EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{0}));
}

TEST(Articulation, DumbbellBridgeEndpoints) {
    auto g = wl::make_dumbbell(4);  // bridge between node 0 and node 4
    EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{0, 4}));
}

TEST(CutSize, CountsCrossingEdges) {
    auto g = wl::make_cycle(6);
    std::unordered_set<NodeId> s{0, 1, 2};
    EXPECT_EQ(cut_size(g, s), 2u);
    std::unordered_set<NodeId> alternating{0, 2, 4};
    EXPECT_EQ(cut_size(g, alternating), 6u);
}

TEST(Stretch, IdenticalGraphsHaveStretchOne) {
    auto g = wl::make_grid(3, 3);
    EXPECT_DOUBLE_EQ(stretch_vs(g, g), 1.0);
}

TEST(Stretch, DetourMeasured) {
    // ref: cycle C6; g: path (cycle with edge (0,5) removed). The pair
    // (0,5) has ref distance 1 but g distance 5.
    auto ref = wl::make_cycle(6);
    auto g = wl::make_cycle(6);
    g.remove_black_claim(0, 5);
    EXPECT_DOUBLE_EQ(stretch_vs(g, ref), 5.0);
}

TEST(Stretch, DisconnectionIsInfinite) {
    auto ref = wl::make_path(3);
    Graph g = ref;
    g.remove_black_claim(0, 1);
    EXPECT_TRUE(std::isinf(stretch_vs(g, ref)));
}

TEST(Stretch, DeletedNodesExcludedAsEndpoints) {
    // ref keeps node 1; g deleted it but bridged 0-2. Stretch counts only
    // alive pairs: dist_g(0,2)=1 vs dist_ref(0,2)=2 -> ratio 0.5 -> max
    // with remaining pairs stays finite (no infinite from deleted node 1).
    auto ref = wl::make_path(3);
    Graph g = ref;
    g.remove_node(1);
    g.add_black_edge(0, 2);
    double s = stretch_vs(g, ref);
    EXPECT_LE(s, 1.0);
}

}  // namespace
