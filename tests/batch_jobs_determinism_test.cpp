// Worker-pool determinism: trace_tools::run_batch must produce
// byte-identical deterministic fields at every worker count. Each pool
// thread constructs a fresh self-contained ScenarioRunner per job (own
// master rng, probe stream, healer, scratch), so nothing observable leaks
// across jobs — scheduling interleavings move timing fields only, and
// outcomes land positionally whatever order the workers claimed them in.
//
// This test (with async_probe_equivalence_test) is the CI tsan job's
// workload: jobs=8 over a 5-spec pack forces real claim-counter
// contention and oversubscribed worker + probe-pipeline threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "trace_tools/batch.hpp"

namespace xheal {
namespace {

std::vector<trace_tools::BatchJob> load_pack(const std::string& pack) {
    std::filesystem::path dir =
        std::filesystem::path(XHEAL_REPO_DIR) / "scenarios" / "packs" / pack;
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".scn")
            files.push_back(entry.path().filename().string());
    std::sort(files.begin(), files.end());
    std::vector<trace_tools::BatchJob> jobs;
    for (const auto& file : files)
        jobs.push_back({file,
                        scenario::ScenarioSpec::parse_file((dir / file).string()),
                        scenario::ProbeMode::automatic});
    return jobs;
}

void expect_identical(const std::vector<trace_tools::BatchOutcome>& a,
                      const std::vector<trace_tools::BatchOutcome>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("outcome " + std::to_string(i) + " (" + a[i].file + ")");
        EXPECT_EQ(a[i].file, b[i].file);
        EXPECT_EQ(a[i].scenario, b[i].scenario);
        EXPECT_EQ(a[i].healer, b[i].healer);
        EXPECT_EQ(a[i].pass, b[i].pass);
        EXPECT_EQ(a[i].steps, b[i].steps);
        EXPECT_EQ(a[i].events, b[i].events);
        EXPECT_EQ(a[i].trace_hash, b[i].trace_hash);
        EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
        EXPECT_EQ(a[i].samples, b[i].samples);
        EXPECT_EQ(a[i].failures, b[i].failures);
        EXPECT_EQ(a[i].errored, b[i].errored);
    }
}

// The tournament pack at jobs 1 / 2 / 8: jobs=1 runs on the calling
// thread (a threading-free baseline), jobs=8 oversubscribes a 5-job list
// so workers race the claim counter and at least some run concurrently.
TEST(BatchJobsDeterminism, TournamentPackAcrossWorkerCounts) {
    auto jobs = load_pack("tournament");
    ASSERT_GE(jobs.size(), 2u);
    auto serial = trace_tools::run_batch(jobs, 1);
    auto two = trace_tools::run_batch(jobs, 2);
    auto eight = trace_tools::run_batch(jobs, 8);
    expect_identical(serial, two);
    expect_identical(serial, eight);
    for (const auto& r : serial) EXPECT_FALSE(r.errored) << r.error;

    // Tournament property carried through the pool: one shared schedule,
    // one stream hash across all healers.
    for (const auto& r : eight)
        EXPECT_EQ(r.trace_hash, eight.front().trace_hash) << r.file;
}

// A spec naming an unknown healer becomes an errored outcome in its own
// slot — the pool must contain the throw, not tear down sibling jobs.
TEST(BatchJobsDeterminism, ErroredJobIsIsolated) {
    auto jobs = load_pack("tournament");
    ASSERT_GE(jobs.size(), 2u);
    jobs[1].spec.healer = scenario::ComponentSpec{"bandaid", {}};
    auto rows = trace_tools::run_batch(jobs, 4);
    ASSERT_EQ(rows.size(), jobs.size());
    EXPECT_TRUE(rows[1].errored);
    EXPECT_FALSE(rows[1].error.empty());
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (i != 1) EXPECT_FALSE(rows[i].errored) << rows[i].error;
}

// Degenerate inputs: an empty job list and workers=0 (treated as 1).
TEST(BatchJobsDeterminism, DegenerateInputs) {
    EXPECT_TRUE(trace_tools::run_batch({}, 8).empty());
    auto jobs = load_pack("tournament");
    jobs.resize(1);
    auto rows = trace_tools::run_batch(jobs, 0);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].errored);
}

}  // namespace
}  // namespace xheal
