// Model-based fuzz test for the multi-claim Graph: a long random sequence
// of operations executed against both the real Graph and a trivially
// correct reference model (map of edge -> claim set), cross-checked after
// every step. Catches mirror/bookkeeping drift the unit tests might miss.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

#include <sstream>

namespace {

using namespace xheal::graph;
using xheal::util::Rng;

struct ReferenceModel {
    std::set<NodeId> nodes;
    // key: normalized pair; value: (black?, colors)
    std::map<std::pair<NodeId, NodeId>, std::pair<bool, std::set<ColorId>>> edges;

    static std::pair<NodeId, NodeId> key(NodeId u, NodeId v) {
        return {std::min(u, v), std::max(u, v)};
    }

    void add_node(NodeId v) { nodes.insert(v); }

    void remove_node(NodeId v) {
        nodes.erase(v);
        for (auto it = edges.begin(); it != edges.end();) {
            if (it->first.first == v || it->first.second == v) {
                it = edges.erase(it);
            } else {
                ++it;
            }
        }
    }

    void add_black(NodeId u, NodeId v) { edges[key(u, v)].first = true; }

    void add_color(NodeId u, NodeId v, ColorId c) { edges[key(u, v)].second.insert(c); }

    void remove_color(NodeId u, NodeId v, ColorId c) {
        auto it = edges.find(key(u, v));
        if (it == edges.end()) return;
        it->second.second.erase(c);
        if (!it->second.first && it->second.second.empty()) edges.erase(it);
    }

    void remove_black(NodeId u, NodeId v) {
        auto it = edges.find(key(u, v));
        if (it == edges.end()) return;
        it->second.first = false;
        if (it->second.second.empty()) edges.erase(it);
    }
};

void cross_check(const Graph& g, const ReferenceModel& model) {
    ASSERT_EQ(g.node_count(), model.nodes.size());
    ASSERT_EQ(g.edge_count(), model.edges.size());
    for (NodeId v : model.nodes) ASSERT_TRUE(g.has_node(v));
    for (const auto& [pair, claims] : model.edges) {
        ASSERT_TRUE(g.has_edge(pair.first, pair.second));
        const auto& actual = g.claims(pair.first, pair.second);
        ASSERT_EQ(actual.black, claims.first);
        ASSERT_EQ(actual.colors.size(), claims.second.size());
        for (ColorId c : claims.second) ASSERT_TRUE(actual.has_color(c));
    }
    // Degrees agree.
    for (NodeId v : model.nodes) {
        std::size_t expected = 0;
        for (const auto& [pair, _] : model.edges) {
            if (pair.first == v || pair.second == v) ++expected;
        }
        ASSERT_EQ(g.degree(v), expected);
    }
}

TEST(GraphFuzz, RandomOperationSequenceMatchesModel) {
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        Rng rng(seed);
        Graph g;
        ReferenceModel model;

        // Seed nodes.
        for (int i = 0; i < 8; ++i) model.add_node(g.add_node());

        auto random_node = [&]() -> NodeId {
            // Draw a position over the live view, then walk to it: same
            // distribution as indexing the old materialized list.
            auto view = g.nodes();
            std::size_t at = rng.index(view.size());
            auto it = view.begin();
            std::advance(it, static_cast<std::ptrdiff_t>(at));
            return *it;
        };

        for (int step = 0; step < 1200; ++step) {
            double roll = rng.uniform01();
            if (roll < 0.10) {
                model.add_node(g.add_node());
            } else if (roll < 0.16 && g.node_count() > 3) {
                NodeId v = random_node();
                g.remove_node(v);
                model.remove_node(v);
            } else if (roll < 0.40 && g.node_count() >= 2) {
                NodeId u = random_node(), v = random_node();
                if (u != v) {
                    g.add_black_edge(u, v);
                    model.add_black(u, v);
                }
            } else if (roll < 0.65 && g.node_count() >= 2) {
                NodeId u = random_node(), v = random_node();
                ColorId c = static_cast<ColorId>(1 + rng.index(5));
                if (u != v) {
                    g.add_color_claim(u, v, c);
                    model.add_color(u, v, c);
                }
            } else if (roll < 0.85 && g.node_count() >= 2) {
                NodeId u = random_node(), v = random_node();
                ColorId c = static_cast<ColorId>(1 + rng.index(5));
                if (u != v) {
                    g.remove_color_claim(u, v, c);
                    model.remove_color(u, v, c);
                }
            } else if (g.node_count() >= 2) {
                NodeId u = random_node(), v = random_node();
                if (u != v) {
                    g.remove_black_claim(u, v);
                    model.remove_black(u, v);
                }
            }
            if (step % 50 == 0) cross_check(g, model);
        }
        cross_check(g, model);
    }
}

TEST(GraphIo, DotOutputContainsNodesAndColors) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.add_color_claim(1, 2, 3);
    std::ostringstream out;
    write_dot(out, g);
    std::string dot = out.str();
    EXPECT_NE(dot.find("graph xheal {"), std::string::npos);
    EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
    EXPECT_NE(dot.find("color="), std::string::npos);
    EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

TEST(GraphIo, EdgeListFormat) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    g.add_color_claim(0, 1, 7);
    std::ostringstream out;
    write_edge_list(out, g);
    EXPECT_EQ(out.str(), "0 1 black 7\n");
}

}  // namespace
