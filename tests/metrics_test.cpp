#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "graph/graph.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

TEST(DegreeIncreaseMetric, IdenticalGraphsHaveRatioOne) {
    auto g = wl::make_cycle(8);
    auto r = degree_increase(g, g);
    EXPECT_DOUBLE_EQ(r.max_ratio, 1.0);
    EXPECT_DOUBLE_EQ(r.mean_ratio, 1.0);
}

TEST(DegreeIncreaseMetric, DetectsBlowup) {
    Graph ref = wl::make_path(4);  // degrees 1,2,2,1
    Graph g = wl::make_path(4);
    g.add_black_edge(0, 2);
    g.add_black_edge(0, 3);  // node 0: degree 3 vs ref 1
    auto r = degree_increase(g, ref);
    EXPECT_DOUBLE_EQ(r.max_ratio, 3.0);
    EXPECT_EQ(r.argmax, 0u);
    EXPECT_GT(r.mean_ratio, 1.0);
}

TEST(DegreeIncreaseMetric, SkipsZeroReferenceDegree) {
    Graph ref;
    ref.add_node();
    ref.add_node();
    Graph g = ref;
    g.add_black_edge(0, 1);
    auto r = degree_increase(g, ref);
    EXPECT_DOUBLE_EQ(r.max_ratio, 0.0);  // no node with positive ref degree
}

TEST(DegreeIncreaseMetric, IgnoresDeletedNodes) {
    Graph ref = wl::make_star(4);
    Graph g = ref;
    g.remove_node(0);  // hub deleted; leaves have degree 0 in g
    auto r = degree_increase(g, ref);
    EXPECT_DOUBLE_EQ(r.max_ratio, 0.0);
}

TEST(StretchMetric, ExactWhenSamplesCoverGraph) {
    auto ref = wl::make_cycle(6);
    Graph g = ref;
    g.remove_black_claim(0, 5);
    xheal::util::Rng rng(3);
    double s = sampled_stretch(g, ref, 100, rng);
    EXPECT_DOUBLE_EQ(s, 5.0);
}

TEST(StretchMetric, AtLeastOne) {
    auto g = wl::make_complete(5);
    xheal::util::Rng rng(4);
    EXPECT_DOUBLE_EQ(sampled_stretch(g, g, 3, rng), 1.0);
}

TEST(StretchMetric, SampledBoundedByExact) {
    auto ref = wl::make_grid(4, 4);
    Graph g = ref;
    g.remove_black_claim(0, 1);
    xheal::util::Rng rng(5);
    double sampled = sampled_stretch(g, ref, 4, rng);
    double exact = sampled_stretch(g, ref, 100, rng);
    EXPECT_LE(sampled, exact + 1e-12);
}

TEST(Theorem2Bound, MatchesClosedForm) {
    // lambda' = 1, dmin = dmax = 4, kappa = 8: term1 = 16/(8*32^2) = 1/512;
    // term2 = 1/(2*32^2) = 1/2048. Bound takes the min.
    double b = theorem2_lambda_bound(1.0, 4, 4, 8);
    EXPECT_NEAR(b, 1.0 / 2048.0, 1e-15);
}

TEST(Theorem2Bound, SmallLambdaMakesTerm1Bind) {
    double b = theorem2_lambda_bound(0.01, 4, 4, 8);
    double term1 = 0.01 * 0.01 * 16.0 / (8.0 * 1024.0);
    EXPECT_NEAR(b, term1, 1e-15);
}

TEST(Theorem2Bound, ZeroDegreeGuard) {
    EXPECT_DOUBLE_EQ(theorem2_lambda_bound(1.0, 0, 0, 4), 0.0);
}

TEST(Theorem2Bound, DecreasesWithKappa) {
    EXPECT_GT(theorem2_lambda_bound(0.5, 3, 6, 4), theorem2_lambda_bound(0.5, 3, 6, 8));
}

}  // namespace
