// TraceDiff unit tests: structural equality, first-divergence localization
// per field, prefix/length handling, header and end-record reporting, and
// the human renderer's context window.
#include <gtest/gtest.h>

#include "trace_tools/diff.hpp"

using namespace xheal;
using scenario::Trace;
using scenario::TraceEvent;
using trace_tools::DiffResult;

namespace {

TraceEvent insert_event(std::uint64_t step, graph::NodeId node,
                        std::vector<graph::NodeId> neighbors) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::insert;
    e.step = step;
    e.node = node;
    e.neighbors = std::move(neighbors);
    return e;
}

TraceEvent delete_event(std::uint64_t step, graph::NodeId node) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::remove;
    e.step = step;
    e.node = node;
    return e;
}

Trace sample_trace() {
    Trace t;
    t.scenario = "sample";
    t.seed = 9;
    t.spec_hash = 0xabc;
    for (std::uint64_t i = 0; i < 10; ++i) {
        if (i % 2 == 0)
            t.events.push_back(insert_event(i, 100 + i, {1, 2}));
        else
            t.events.push_back(delete_event(i, i));
    }
    t.trace_hash = 0x111;
    t.fingerprint = 0x222;
    return t;
}

}  // namespace

TEST(TraceDiff, IdenticalTracesCompareEqual) {
    auto a = sample_trace();
    auto diff = trace_tools::diff_traces(a, a);
    EXPECT_TRUE(diff.identical());
    EXPECT_TRUE(diff.events_equal());
    EXPECT_EQ(diff.divergence_index, DiffResult::npos);
    EXPECT_NE(trace_tools::format_diff(diff, a, a).find("identical"),
              std::string::npos);
}

TEST(TraceDiff, ReportsFirstDivergentEventAndField) {
    auto a = sample_trace();
    auto b = sample_trace();
    b.events[7].node = 99;          // first divergence
    b.events[9].neighbors = {3};    // later divergence must not mask it
    auto diff = trace_tools::diff_traces(a, b);
    EXPECT_FALSE(diff.identical());
    EXPECT_EQ(diff.divergence_index, 7u);
    EXPECT_EQ(diff.divergence_field, "node");
}

TEST(TraceDiff, DistinguishesKindNeighborsAndStepFields) {
    auto a = sample_trace();
    auto b = sample_trace();
    b.events[3] = insert_event(3, 3, {1});
    EXPECT_EQ(trace_tools::diff_traces(a, b).divergence_field, "kind");

    b = sample_trace();
    b.events[4].neighbors = {1, 2, 5};
    EXPECT_EQ(trace_tools::diff_traces(a, b).divergence_field, "neighbors");

    b = sample_trace();
    b.events[5].step = 50;
    EXPECT_EQ(trace_tools::diff_traces(a, b).divergence_field, "step");
}

TEST(TraceDiff, PrefixTraceDivergesAtItsEnd) {
    auto a = sample_trace();
    auto b = sample_trace();
    b.events.resize(6);
    auto diff = trace_tools::diff_traces(a, b);
    EXPECT_EQ(diff.divergence_index, 6u);
    EXPECT_EQ(diff.divergence_field, "length");
    // The renderer must mark the end of the shorter side.
    auto text = trace_tools::format_diff(diff, a, b);
    EXPECT_NE(text.find("<end of trace>"), std::string::npos);
}

TEST(TraceDiff, HeaderAndEndRecordDifferencesAreReported) {
    auto a = sample_trace();
    auto b = sample_trace();
    b.seed = 10;
    b.fingerprint = 0x333;
    auto diff = trace_tools::diff_traces(a, b);
    EXPECT_FALSE(diff.identical());
    EXPECT_TRUE(diff.events_equal());
    EXPECT_FALSE(diff.header_equal);
    EXPECT_NE(diff.header_note.find("seed"), std::string::npos);
    EXPECT_TRUE(diff.trace_hash_equal);
    EXPECT_FALSE(diff.fingerprint_equal);
    // Same events + different fingerprint is the healer-divergence shape.
    auto text = trace_tools::format_diff(diff, a, b);
    EXPECT_NE(text.find("healer-side divergence"), std::string::npos);
}

TEST(TraceDiff, FormatShowsContextWindowAroundTheDivergence) {
    auto a = sample_trace();
    auto b = sample_trace();
    b.events[5].node = 77;
    auto diff = trace_tools::diff_traces(a, b);
    auto text = trace_tools::format_diff(diff, a, b, 2);
    // The divergent pair is marked; the window spans [3, 7].
    EXPECT_NE(text.find("> a[5]"), std::string::npos);
    EXPECT_NE(text.find("> b[5]"), std::string::npos);
    EXPECT_NE(text.find("  a[3]"), std::string::npos);
    EXPECT_NE(text.find("  b[7]"), std::string::npos);
    EXPECT_EQ(text.find("a[2]"), std::string::npos);
    EXPECT_EQ(text.find("a[8]"), std::string::npos);
}
