// Sparse probe layer: the CSR snapshot mirrors the slot graph exactly, and
// the matrix-free Lanczos lambda2 agrees with the dense Jacobi reference to
// 1e-6 across 50 randomized small graphs (Erdos-Renyi, rings, stars,
// disconnected unions) plus post-churn graphs replayed from traces.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "scenario/runner.hpp"
#include "spectral/csr.hpp"
#include "spectral/probes.hpp"
#include "workload/generators.hpp"

using namespace xheal;
using graph::Graph;
using graph::NodeId;

namespace {

/// Erdos-Renyi draw without the library generator's connectivity resampling
/// (the property suite wants disconnected instances too).
Graph raw_erdos_renyi(std::size_t n, double p, util::Rng& rng) {
    Graph g;
    for (std::size_t i = 0; i < n; ++i) g.add_node();
    for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v)
            if (rng.chance(p)) g.add_black_edge(u, v);
    return g;
}

/// Two disjoint rings: always disconnected, lambda2 exactly 0.
Graph two_rings(std::size_t a, std::size_t b) {
    Graph g;
    for (std::size_t i = 0; i < a + b; ++i) g.add_node();
    for (std::size_t i = 0; i < a; ++i)
        g.add_black_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % a));
    for (std::size_t i = 0; i < b; ++i)
        g.add_black_edge(static_cast<NodeId>(a + i),
                         static_cast<NodeId>(a + (i + 1) % b));
    return g;
}

void expect_sparse_matches_dense(const Graph& g, const char* what) {
    spectral::ProbeEngine engine;
    double dense = engine.lambda2_dense(g);
    double sparse = engine.lambda2_sparse(g, /*seed=*/g.node_count() * 7919 + 13);
    EXPECT_NEAR(sparse, dense, 1e-6) << what << " n=" << g.node_count();
}

}  // namespace

TEST(CsrSnapshot, MirrorsTheSlotGraphAfterChurn) {
    util::Rng rng(11);
    Graph g = workload::make_erdos_renyi(40, 0.15, rng);
    // Punch tombstone holes and add late nodes so ids are non-contiguous.
    g.remove_node(3);
    g.remove_node(17);
    NodeId fresh = g.add_node();
    g.add_black_edge(fresh, 5);
    g.add_black_edge(fresh, 9);

    spectral::CsrGraph csr;
    csr.build(g);
    ASSERT_EQ(csr.size(), g.node_count());
    ASSERT_EQ(csr.edge_count(), g.edge_count());
    EXPECT_EQ(csr.index_of(3), spectral::CsrGraph::npos);
    EXPECT_EQ(csr.index_of(17), spectral::CsrGraph::npos);
    for (NodeId v : g.nodes()) {
        std::uint32_t i = csr.index_of(v);
        ASSERT_NE(i, spectral::CsrGraph::npos);
        ASSERT_EQ(csr.nodes()[i], v);
        ASSERT_EQ(csr.degree(i), g.degree(v));
        std::vector<NodeId> row_ids;
        for (std::uint32_t j : csr.row(i)) row_ids.push_back(csr.nodes()[j]);
        std::vector<NodeId> expected(g.neighbors(v).begin(), g.neighbors(v).end());
        EXPECT_EQ(row_ids, expected);
    }

    // Rebuild over a mutated graph reuses the snapshot in place.
    g.remove_node(25);
    csr.build(g);
    EXPECT_EQ(csr.size(), g.node_count());
    EXPECT_EQ(csr.index_of(25), spectral::CsrGraph::npos);
}

TEST(SparseLambda2, AgreesWithDenseOnFiftyRandomizedGraphs) {
    util::Rng rng(2024);
    std::size_t cases = 0;
    // 20 Erdos-Renyi draws across the connectivity threshold (some of these
    // are disconnected, which is the point).
    for (int i = 0; i < 20; ++i) {
        std::size_t n = 8 + rng.index(40);
        double p = 0.05 + 0.25 * rng.uniform01();
        Graph g = raw_erdos_renyi(n, p, rng);
        expect_sparse_matches_dense(g, "erdos-renyi");
        ++cases;
    }
    // 10 rings.
    for (int i = 0; i < 10; ++i) {
        Graph g = workload::make_cycle(3 + rng.index(60));
        expect_sparse_matches_dense(g, "ring");
        ++cases;
    }
    // 10 stars.
    for (int i = 0; i < 10; ++i) {
        Graph g = workload::make_star(2 + rng.index(50));
        expect_sparse_matches_dense(g, "star");
        ++cases;
    }
    // 10 guaranteed-disconnected unions.
    for (int i = 0; i < 10; ++i) {
        Graph g = two_rings(3 + rng.index(20), 3 + rng.index(20));
        expect_sparse_matches_dense(g, "two-rings");
        ++cases;
    }
    EXPECT_EQ(cases, 50u);
}

TEST(SparseLambda2, AgreesWithDenseOnPostChurnGraphsReplayedFromTraces) {
    auto spec = scenario::ScenarioSpec::parse(R"(
name probe-churn
seed 99
topology random-regular n=48 d=4
healer xheal d=2
phase churn steps=60 delete_fraction=0.5 deleter=random inserter=random-attach k=3 min_nodes=12
phase assault steps=10 delete_fraction=1 deleter=max-degree min_nodes=12
)");
    scenario::ScenarioRunner recorder(spec);
    auto recorded = recorder.run();
    expect_sparse_matches_dense(recorder.session().current(), "post-churn");

    // The same graph reproduced through trace replay must agree too.
    scenario::ScenarioRunner replayer(spec);
    replayer.replay(recorded.to_trace(spec));
    expect_sparse_matches_dense(replayer.session().current(), "replayed");
}

TEST(SparseLambda2, AutoSelectionIsConsistentAcrossTheThreshold) {
    // A graph just under the dense limit and one just over it: the auto
    // probe must agree with both forced paths.
    util::Rng rng(5);
    spectral::ProbeEngine engine(/*dense_limit=*/32);
    Graph small = workload::make_hgraph_graph(30, 2, rng);
    EXPECT_NEAR(engine.lambda2(small), engine.lambda2_dense(small), 1e-12);
    // The auto path uses the budgeted probe accuracy; compare loosely.
    Graph large = workload::make_hgraph_graph(64, 2, rng);
    EXPECT_NEAR(engine.lambda2(large), engine.lambda2_sparse(large), 1e-3);
}

TEST(SparseLambda2, TrivialAndDegenerateGraphs) {
    spectral::ProbeEngine engine;
    Graph empty;
    EXPECT_EQ(engine.lambda2(empty), 0.0);
    Graph single;
    single.add_node();
    EXPECT_EQ(engine.lambda2(single), 0.0);
    Graph isolated;  // two nodes, no edges: disconnected
    isolated.add_node();
    isolated.add_node();
    EXPECT_EQ(engine.lambda2_sparse(isolated), 0.0);
    EXPECT_NEAR(engine.lambda2_dense(isolated), 0.0, 1e-12);
}

TEST(SparseComponentCount, MatchesTheGraphLayer) {
    util::Rng rng(31);
    spectral::ProbeEngine engine;
    Graph g = two_rings(6, 9);
    EXPECT_EQ(engine.component_count(g), 2u);
    g.add_black_edge(0, 6);  // join the rings
    EXPECT_EQ(engine.component_count(g), 1u);
    Graph e;
    EXPECT_EQ(engine.component_count(e), 0u);
    Graph er = raw_erdos_renyi(40, 0.05, rng);
    EXPECT_EQ(engine.component_count(er), graph::connected_components(er).size());
}
