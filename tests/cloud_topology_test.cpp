#include <gtest/gtest.h>

#include "expander/cloud_topology.hpp"
#include "util/expects.hpp"

namespace {

using namespace xheal::expander;
using xheal::graph::NodeId;
using xheal::util::ContractViolation;
using xheal::util::Rng;

std::vector<NodeId> ids(std::size_t n) {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<NodeId>(i));
    return out;
}

TEST(CloudTopology, SmallCloudIsClique) {
    Rng rng(1);
    CloudTopology t(ids(5), 2, rng);  // kappa = 4; 5 <= kappa+1 -> clique
    EXPECT_EQ(t.mode(), CloudTopology::Mode::clique);
    EXPECT_EQ(t.edges().size(), 10u);  // C(5,2)
}

TEST(CloudTopology, LargeCloudIsHGraph) {
    Rng rng(2);
    CloudTopology t(ids(12), 2, rng);  // 12 > kappa+1 = 5
    EXPECT_EQ(t.mode(), CloudTopology::Mode::hgraph);
    // Projected simple edges at most d * n (union of 2 Hamilton cycles).
    EXPECT_LE(t.edges().size(), 24u);
    EXPECT_GE(t.edges().size(), 12u);
}

TEST(CloudTopology, GrowthCrossesIntoHGraph) {
    Rng rng(3);
    CloudTopology t(ids(5), 2, rng);
    EXPECT_EQ(t.mode(), CloudTopology::Mode::clique);
    t.insert(100, rng);  // size 6 > kappa+1 = 5
    EXPECT_EQ(t.mode(), CloudTopology::Mode::hgraph);
    EXPECT_TRUE(t.contains(100));
    EXPECT_EQ(t.size(), 6u);
}

TEST(CloudTopology, ShrinkDropsBackToClique) {
    Rng rng(4);
    CloudTopology t(ids(7), 2, rng);
    EXPECT_EQ(t.mode(), CloudTopology::Mode::hgraph);
    t.remove(0, rng);
    t.remove(1, rng);  // size 5 <= kappa+1
    EXPECT_EQ(t.mode(), CloudTopology::Mode::clique);
    EXPECT_EQ(t.edges().size(), 10u);
}

TEST(CloudTopology, MinimumHGraphSizeIsThree) {
    Rng rng(5);
    CloudTopology t(ids(4), 1, rng);  // kappa = 2; 4 > 3 -> hgraph
    EXPECT_EQ(t.mode(), CloudTopology::Mode::hgraph);
    t.remove(0, rng);
    // Size 3 = kappa+1: clique of 3 (same as one cycle).
    EXPECT_EQ(t.mode(), CloudTopology::Mode::clique);
    EXPECT_EQ(t.edges().size(), 3u);
}

TEST(CloudTopology, HalfLossTriggersRebuildFlag) {
    Rng rng(6);
    CloudTopology t(ids(20), 2, rng);
    EXPECT_FALSE(t.needs_rebuild());
    for (NodeId v = 0; v < 10; ++v) t.remove(v, rng);
    EXPECT_FALSE(t.needs_rebuild());  // exactly half is not yet below half
    t.remove(10, rng);
    EXPECT_TRUE(t.needs_rebuild());
    t.rebuild(rng);
    EXPECT_FALSE(t.needs_rebuild());
}

TEST(CloudTopology, InsertionDoesNotResetRebuildBaseline) {
    Rng rng(7);
    CloudTopology t(ids(20), 2, rng);
    for (NodeId v = 0; v < 9; ++v) t.remove(v, rng);
    t.insert(50, rng);  // size 12, baseline still 20
    t.remove(9, rng);
    t.remove(10, rng);  // size 10
    t.remove(11, rng);  // size 9 < 10
    EXPECT_TRUE(t.needs_rebuild());
}

TEST(CloudTopology, EdgesAreSortedSimplePairs) {
    Rng rng(8);
    CloudTopology t(ids(15), 3, rng);
    auto edges = t.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_LT(edges[i].first, edges[i].second);
        if (i > 0) {
            EXPECT_LT(edges[i - 1], edges[i]);
        }
    }
}

TEST(CloudTopology, RemoveRequiresMembershipAndSize) {
    Rng rng(9);
    CloudTopology t(ids(2), 2, rng);
    EXPECT_THROW(t.remove(5, rng), ContractViolation);
    t.remove(0, rng);
    EXPECT_THROW(t.remove(1, rng), ContractViolation);  // size >= 2 required
}

TEST(CloudTopology, TwoNodeCloudHasOneEdge) {
    Rng rng(10);
    CloudTopology t({3, 7}, 4, rng);
    EXPECT_EQ(t.mode(), CloudTopology::Mode::clique);
    ASSERT_EQ(t.edges().size(), 1u);
    EXPECT_EQ(t.edges()[0], (std::pair<NodeId, NodeId>{3, 7}));
}

}  // namespace
