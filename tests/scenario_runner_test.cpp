// Engine-layer tests: scenario determinism (same spec + seed => identical
// trace hash), byte-for-byte replay (identical final-graph fingerprint),
// trace JSONL round-trip, schedule semantics (burst, fallback, floors),
// expectation evaluation, and the session alive-pool invariant the
// strategies sample from.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "scenario/runner.hpp"

using namespace xheal;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;

namespace {

ScenarioSpec star_collapse_spec() {
    return ScenarioSpec::parse(R"(
name star-collapse
seed 7
topology star leaves=48
healer xheal d=3
phase kill steps=1 delete_fraction=1 deleter=max-degree min_nodes=1
expect connected
)");
}

ScenarioSpec phased_churn_spec() {
    return ScenarioSpec::parse(R"(
name phased-churn
seed 42
topology random-regular n=32 d=4
healer xheal d=2
phase grow steps=25 delete_fraction=0.2 deleter=random inserter=preferential-attach k=3 min_nodes=8
phase churn steps=40 delete_fraction=0.5 deleter=random inserter=random-attach k=3 min_nodes=8
phase assault steps=10 delete_fraction=1 deleter=max-degree min_nodes=12
expect connected
)");
}

ScenarioSpec bridge_hunter_spec() {
    return ScenarioSpec::parse(R"(
name bridge-hunter
seed 29
topology erdos-renyi n=48 p=0.13
healer xheal d=2 seed=17
phase starve steps=30 delete_fraction=1 deleter=bridge-hunter min_nodes=6
expect connected
)");
}

}  // namespace

class ScenarioDeterminism : public ::testing::TestWithParam<int> {
protected:
    ScenarioSpec spec() const {
        switch (GetParam()) {
            case 0: return star_collapse_spec();
            case 1: return phased_churn_spec();
            default: return bridge_hunter_spec();
        }
    }
};

TEST_P(ScenarioDeterminism, SameSpecAndSeedYieldIdenticalTraceHash) {
    auto first = ScenarioRunner(spec()).run();
    auto second = ScenarioRunner(spec()).run();
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.events.size(), second.events.size());
    EXPECT_TRUE(first.passed()) << (first.failures.empty() ? "" : first.failures[0]);
}

TEST_P(ScenarioDeterminism, ReplayReproducesTheFinalGraphByteForByte) {
    auto s = spec();
    auto recorded = ScenarioRunner(s).run();
    auto trace = recorded.to_trace(s);

    // Serialize + parse the JSONL in between, as xheal_run replay does.
    std::stringstream io;
    scenario::write_trace(io, trace);
    auto loaded = scenario::read_trace(io);
    EXPECT_EQ(loaded.trace_hash, recorded.trace_hash);
    EXPECT_EQ(loaded.events.size(), recorded.events.size());
    EXPECT_EQ(loaded.spec_hash, s.content_hash());

    auto replayed = ScenarioRunner(s).replay(loaded);
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
}

TEST_P(ScenarioDeterminism, DifferentSeedPerturbsTheTrace) {
    auto s = spec();
    auto base = ScenarioRunner(s).run();
    s.seed += 1;
    auto shifted = ScenarioRunner(s).run();
    // Star collapse is a single forced deletion — the event stream is
    // seed-independent, but every stochastic schedule must diverge.
    if (GetParam() != 0) EXPECT_NE(base.trace_hash, shifted.trace_hash);
    // The healer's private randomness always moves with the seed.
    EXPECT_NE(base.fingerprint, shifted.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Specs, ScenarioDeterminism, ::testing::Values(0, 1, 2));

TEST(ScenarioRunner, AlivePoolMatchesTheGraphThroughoutChurn) {
    auto spec = phased_churn_spec();
    ScenarioRunner runner(spec);
    runner.run();
    const auto& session = runner.session();
    const auto& pool = session.alive_pool();
    auto view = session.current().nodes();
    std::vector<graph::NodeId> expected(view.begin(), view.end());
    std::vector<graph::NodeId> got(pool.begin(), pool.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(pool.size(), session.current().node_count());
}

TEST(ScenarioRunner, BurstMultipliesEventsPerStep) {
    auto spec = ScenarioSpec::parse(R"(
name burst
seed 3
topology cycle n=12
healer no-heal
phase grow steps=10 burst=3 delete_fraction=0 inserter=random-attach k=2
)");
    auto result = ScenarioRunner(spec).run();
    EXPECT_EQ(result.steps_done, 10u);
    EXPECT_EQ(result.events.size(), 30u);
    EXPECT_EQ(result.phases[0].insertions, 30u);
}

TEST(ScenarioRunner, BlockedDeleteFallsBackToInsertInMixedPhases) {
    // Population floor equals the start size, so every delete is blocked
    // and the mixed phase must insert instead of stalling.
    auto spec = ScenarioSpec::parse(R"(
name floor
seed 5
topology cycle n=8
healer no-heal
phase churn steps=20 delete_fraction=0.9 deleter=random inserter=random-attach k=2 min_nodes=64
)");
    auto result = ScenarioRunner(spec).run();
    EXPECT_EQ(result.phases[0].deletions, 0u);
    EXPECT_EQ(result.phases[0].insertions, 20u);
    EXPECT_EQ(result.phases[0].skipped, 0u);
}

TEST(ScenarioRunner, DeletionOnlyPhaseRespectsThePopulationFloor) {
    auto spec = ScenarioSpec::parse(R"(
name floor-only
seed 5
topology cycle n=10
healer no-heal
phase drain steps=20 delete_fraction=1 deleter=random min_nodes=6
)");
    auto result = ScenarioRunner(spec).run();
    EXPECT_EQ(result.phases[0].deletions, 4u);  // 10 -> 6, then floor holds
    EXPECT_EQ(result.phases[0].skipped, 16u);
    EXPECT_EQ(ScenarioRunner(spec).run().final_sample.nodes, 6u);
}

TEST(ScenarioRunner, FailedExpectationProducesAFailVerdict) {
    auto spec = ScenarioSpec::parse(R"(
name impossible
seed 5
topology cycle n=16
healer no-heal
phase drain steps=4 delete_fraction=1 deleter=random min_nodes=4
expect nodes >= 100
)");
    auto result = ScenarioRunner(spec).run();
    EXPECT_FALSE(result.passed());
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_NE(result.failures[0].find("nodes"), std::string::npos);
}

TEST(ScenarioRunner, ZeroSampleEveryMeansFinalSampleOnly) {
    // sample_every = 0 is the documented "final-only" cadence: exactly one
    // sample, which IS the final sample, carrying the expectation probes.
    auto spec = phased_churn_spec();
    spec.sample_every = 0;
    spec.probes = {"connected", "degree"};
    auto result = ScenarioRunner(spec).run();
    ASSERT_EQ(result.samples.size(), 1u);
    EXPECT_EQ(result.samples[0].step, result.final_sample.step);
    EXPECT_EQ(result.samples[0].nodes, result.final_sample.nodes);
    EXPECT_EQ(result.samples[0].components, result.final_sample.components);
    EXPECT_EQ(result.final_sample.step, result.steps_done);
}

TEST(ScenarioRunner, CadenceCoincidingWithTheLastStepIsNotDuplicated) {
    // 75 total steps, cadence 25: samples at 25 and 50; the would-be step-75
    // cadence point folds into the final sample instead of duplicating it.
    auto spec = phased_churn_spec();
    spec.sample_every = 25;
    auto result = ScenarioRunner(spec).run();
    ASSERT_EQ(result.samples.size(), 3u);
    EXPECT_EQ(result.samples[0].step, 25u);
    EXPECT_EQ(result.samples[1].step, 50u);
    EXPECT_EQ(result.samples[2].step, 75u);  // the final sample
    EXPECT_EQ(result.final_sample.step, 75u);
}

TEST(ScenarioRunner, CadenceLargerThanTheScheduleYieldsFinalSampleOnly) {
    auto spec = phased_churn_spec();
    spec.sample_every = 1000;  // > total steps (75)
    auto result = ScenarioRunner(spec).run();
    ASSERT_EQ(result.samples.size(), 1u);
    EXPECT_EQ(result.samples[0].step, result.steps_done);
}

TEST(ScenarioRunner, ProbeCostIsAccountedPerSampleAndPerRun) {
    auto spec = phased_churn_spec();
    spec.sample_every = 10;
    spec.probes = {"connected", "degree", "lambda2", "stretch"};
    auto result = ScenarioRunner(spec).run();
    double sum = 0.0;
    for (const auto& s : result.samples) {
        EXPECT_GE(s.probe_seconds, 0.0);
        sum += s.probe_seconds;
    }
    EXPECT_NEAR(result.probe_seconds, sum, 1e-9);
    // `seconds` measures stepping only; probe cost is accounted separately.
    EXPECT_GE(result.seconds, 0.0);
}

TEST(ScenarioRunner, SamplingCadenceDoesNotPerturbTheTrace) {
    auto base_spec = phased_churn_spec();
    auto probed_spec = phased_churn_spec();
    probed_spec.probes = {"connected", "degree", "expansion", "stretch"};
    probed_spec.sample_every = 5;
    auto base = ScenarioRunner(base_spec).run();
    auto probed = ScenarioRunner(probed_spec).run();
    EXPECT_EQ(base.trace_hash, probed.trace_hash);
    EXPECT_EQ(base.fingerprint, probed.fingerprint);
    EXPECT_GT(probed.samples.size(), base.samples.size());
}

TEST(ScenarioTrace, GraphFingerprintSeesClaimsAndStructure) {
    graph::Graph a;
    a.add_node();
    a.add_node();
    a.add_black_edge(0, 1);
    graph::Graph b;
    b.add_node();
    b.add_node();
    b.add_black_edge(0, 1);
    EXPECT_EQ(scenario::graph_fingerprint(a), scenario::graph_fingerprint(b));
    b.add_color_claim(0, 1, 4);
    EXPECT_NE(scenario::graph_fingerprint(a), scenario::graph_fingerprint(b));
}

TEST(ScenarioTrace, RejectsCorruptTraces) {
    std::stringstream empty;
    EXPECT_THROW(scenario::read_trace(empty), std::runtime_error);
    std::stringstream missing_end(
        R"({"type":"header","scenario":"x","seed":1,"spec_hash":"0x0"})"
        "\n");
    EXPECT_THROW(scenario::read_trace(missing_end), std::runtime_error);
    std::stringstream bad_count(
        R"({"type":"header","scenario":"x","seed":1,"spec_hash":"0x0"})"
        "\n"
        R"({"type":"end","events":3,"trace_hash":"0x0","fingerprint":"0x0"})"
        "\n");
    EXPECT_THROW(scenario::read_trace(bad_count), std::runtime_error);
}

TEST(ScenarioRunnerV2, InsertBurstLeadsEveryStep) {
    // insert_burst forced arrivals are extra events on top of the regular
    // burst budget, recorded in the trace like any insert.
    auto spec = ScenarioSpec::parse(R"(
name flash
seed 3
topology cycle n=12
healer no-heal
phase flash steps=10 insert_burst=2 delete_fraction=0 inserter=random-attach k=2
)");
    auto result = ScenarioRunner(spec).run();
    EXPECT_EQ(result.steps_done, 10u);
    // 2 forced + 1 regular insert (delete_fraction=0) per step.
    EXPECT_EQ(result.events.size(), 30u);
    EXPECT_EQ(result.phases[0].insertions, 30u);
    for (const auto& e : result.events)
        EXPECT_EQ(e.kind, scenario::TraceEvent::Kind::insert);
}

TEST(ScenarioRunnerV2, PerPhaseSeedMakesPhaseStreamsPrefixIndependent) {
    // Two schedules whose first phases consume DIFFERENT amounts of master
    // randomness (k=2 vs k=3 neighbor picks) but produce the same
    // population. With seed= on the second phase, its event subsequence is
    // identical across both runs; without it, the prefix perturbation
    // leaks in.
    auto make = [](const std::string& k, const std::string& seed_key) {
        return ScenarioSpec::parse(
            "name reseed\nseed 5\ntopology cycle n=20\nhealer no-heal\n"
            "phase grow steps=6 delete_fraction=0 inserter=random-attach k=" + k + "\n"
            "phase drain steps=8" + seed_key +
            " delete_fraction=1 deleter=random min_nodes=4\n");
    };
    auto drain_events = [](const scenario::RunResult& result) {
        std::vector<scenario::TraceEvent> out;
        for (const auto& e : result.events)
            if (e.phase == 1) out.push_back(e);
        return out;
    };

    auto seeded_a = ScenarioRunner(make("2", " seed=77")).run();
    auto seeded_b = ScenarioRunner(make("3", " seed=77")).run();
    EXPECT_EQ(drain_events(seeded_a), drain_events(seeded_b));
    EXPECT_NE(seeded_a.trace_hash, seeded_b.trace_hash);  // phase 1 differs

    auto unseeded_a = ScenarioRunner(make("2", "")).run();
    auto unseeded_b = ScenarioRunner(make("3", "")).run();
    EXPECT_NE(drain_events(unseeded_a), drain_events(unseeded_b));
}

TEST(ScenarioRunnerV2, RampIsDeterministicAndReplayable) {
    auto spec = ScenarioSpec::parse(R"(
name ramp-replay
seed 17
topology random-regular n=24 d=4
healer xheal d=2
phase ramp steps=30 delete_fraction=0.2..0.8 deleter=random:0.5,max-degree:0.5 inserter=random-attach k=2 min_nodes=8
)");
    auto first = ScenarioRunner(spec).run();
    auto second = ScenarioRunner(spec).run();
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.fingerprint, second.fingerprint);

    auto replayed = ScenarioRunner(spec).replay(first.to_trace(spec));
    EXPECT_EQ(replayed.trace_hash, first.trace_hash);
    EXPECT_EQ(replayed.fingerprint, first.fingerprint);
}
