// Spec-layer tests: grammar parsing, canonical round-trip, typed parameter
// access, and registry factory coverage (every listed name constructs).
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

using namespace xheal;
using scenario::ComponentSpec;
using scenario::Expectation;
using scenario::ScenarioSpec;

namespace {

const char* kSample = R"(# phased churn against xheal
name phased-churn
seed 42
topology random-regular n=64 d=4
healer xheal d=2
probes degree expansion
sample_every 20
phase warmup steps=60 delete_fraction=0.3 deleter=random inserter=random-attach k=3 min_nodes=8
phase assault steps=30 delete_fraction=1 deleter=max-degree burst=2
expect connected
expect max_degree_ratio <= 12
)";

}  // namespace

TEST(ScenarioSpec, ParsesTheDocumentedGrammar) {
    auto spec = ScenarioSpec::parse(kSample);
    EXPECT_EQ(spec.name, "phased-churn");
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.topology.kind, "random-regular");
    EXPECT_EQ(spec.topology.get_u64("n", 0), 64u);
    EXPECT_EQ(spec.healer.kind, "xheal");
    EXPECT_EQ(spec.healer.get_u64("d", 0), 2u);
    EXPECT_EQ(spec.probes, (std::vector<std::string>{"degree", "expansion"}));
    EXPECT_EQ(spec.sample_every, 20u);

    ASSERT_EQ(spec.phases.size(), 2u);
    EXPECT_EQ(spec.phases[0].name, "warmup");
    EXPECT_EQ(spec.phases[0].steps, 60u);
    EXPECT_DOUBLE_EQ(spec.phases[0].delete_fraction, 0.3);
    EXPECT_EQ(spec.phases[0].min_nodes, 8u);
    EXPECT_EQ(spec.phases[0].deleter.kind, "random");
    EXPECT_EQ(spec.phases[0].inserter.kind, "random-attach");
    EXPECT_EQ(spec.phases[0].inserter.get_u64("k", 0), 3u);  // bare-k sugar
    EXPECT_EQ(spec.phases[1].deleter.kind, "max-degree");
    EXPECT_EQ(spec.phases[1].burst, 2u);
    EXPECT_EQ(spec.total_steps(), 90u);

    ASSERT_EQ(spec.expectations.size(), 2u);
    EXPECT_EQ(spec.expectations[0].kind, Expectation::Kind::connected);
    EXPECT_EQ(spec.expectations[1].kind, Expectation::Kind::max_degree_ratio_le);
    EXPECT_DOUBLE_EQ(spec.expectations[1].value, 12.0);
}

TEST(ScenarioSpec, CanonicalTextRoundTrips) {
    auto spec = ScenarioSpec::parse(kSample);
    std::string canonical = spec.to_text();
    auto reparsed = ScenarioSpec::parse(canonical);
    EXPECT_EQ(reparsed.to_text(), canonical);
    EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
}

TEST(ScenarioSpec, RejectsMalformedInput) {
    EXPECT_THROW(ScenarioSpec::parse("bogus directive\n"), std::runtime_error);
    EXPECT_THROW(ScenarioSpec::parse("topology star\nhealer xheal\n"),
                 std::runtime_error);  // no phase
    EXPECT_THROW(ScenarioSpec::parse("healer xheal\nphase p steps=1\n"),
                 std::runtime_error);  // no topology
    EXPECT_THROW(
        ScenarioSpec::parse(
            "topology star\nhealer xheal\nphase p steps=1\nexpect expansion <= 1\n"),
        std::runtime_error);  // expansion only supports >=
    EXPECT_THROW(ScenarioSpec::parse("topology star\nhealer xheal\nphase p steps=1 "
                                     "frobnicate=2\n"),
                 std::runtime_error);  // unknown phase key
    EXPECT_THROW(ScenarioSpec::parse("seed twelve\ntopology star\nhealer xheal\n"
                                     "phase p steps=1\n"),
                 std::runtime_error);  // bad integer
}

/// Assert parse() rejects `body` and that the error message carries a line
/// number plus the offending fragment, so CLI users can find the typo.
void expect_rejects(const std::string& body, const std::string& fragment) {
    try {
        ScenarioSpec::parse(body);
        FAIL() << "accepted malformed spec:\n" << body;
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
}

TEST(ScenarioSpec, RejectionMessagesNameLineAndFragment) {
    const std::string prologue = "topology star\nhealer xheal\n";
    // Malformed key=value tokens in every position that takes them.
    expect_rejects(prologue + "phase p steps=1 keyonly\n", "keyonly");
    expect_rejects(prologue + "phase p steps=1 =value\n", "=value");
    expect_rejects("topology star leaves\nhealer xheal\nphase p steps=1\n", "leaves");
    expect_rejects(prologue + "phase p\n", "steps");  // missing steps=N
    // Out-of-range / unparsable phase parameters.
    expect_rejects(prologue + "phase p steps=0\n", "steps");
    expect_rejects(prologue + "phase p steps=1 burst=0\n", "burst");
    expect_rejects(prologue + "phase p steps=many\n", "many");
    expect_rejects(prologue + "phase p steps=1 delete_fraction=half\n", "half");
    expect_rejects(prologue + "phase p steps=1 min_nodes=-3\n", "-3");
    // Directive arity.
    expect_rejects("name a b\n" + prologue + "phase p steps=1\n", "name");
    expect_rejects(prologue + "sample_every\nphase p steps=1\n", "sample_every");
    expect_rejects(prologue + "stretch_samples 3 4\nphase p steps=1\n",
                   "stretch_samples");
    // Expectation grammar.
    expect_rejects(prologue + "phase p steps=1\nexpect\n", "expect");
    expect_rejects(prologue + "phase p steps=1\nexpect connected 1\n", "connected");
    expect_rejects(prologue + "phase p steps=1\nexpect lambda2 >= soon\n", "soon");
    expect_rejects(prologue + "phase p steps=1\nexpect entropy >= 1\n", "entropy");
}

TEST(ScenarioSpecV2, ParsesTheGrammarV2PhaseKeys) {
    auto spec = ScenarioSpec::parse(
        "topology random-regular n=32 d=4\nhealer xheal\n"
        "phase ramp steps=50 seed=9 insert_burst=2 delete_fraction=0.1..0.9 "
        "deleter=random:0.7,max-degree:0.3 min_nodes=6\n"
        "phase tail steps=10 delete_fraction=0.5\n");
    ASSERT_EQ(spec.phases.size(), 2u);
    const auto& ramp = spec.phases[0];
    ASSERT_TRUE(ramp.seed.has_value());
    EXPECT_EQ(*ramp.seed, 9u);
    EXPECT_EQ(ramp.insert_burst, 2u);
    EXPECT_DOUBLE_EQ(ramp.delete_fraction, 0.1);
    ASSERT_TRUE(ramp.delete_fraction_end.has_value());
    EXPECT_DOUBLE_EQ(*ramp.delete_fraction_end, 0.9);
    ASSERT_EQ(ramp.deleter_mix.size(), 2u);
    EXPECT_EQ(ramp.deleter_mix[0].component.kind, "random");
    EXPECT_DOUBLE_EQ(ramp.deleter_mix[0].weight, 0.7);
    EXPECT_EQ(ramp.deleter_mix[1].component.kind, "max-degree");
    EXPECT_DOUBLE_EQ(ramp.deleter_mix[1].weight, 0.3);
    // The second phase stays plain: no seed, no ramp, no mixture.
    EXPECT_FALSE(spec.phases[1].seed.has_value());
    EXPECT_FALSE(spec.phases[1].delete_fraction_end.has_value());
    EXPECT_TRUE(spec.phases[1].deleter_mix.empty());

    // The ramp hits both endpoints and interpolates linearly between them.
    EXPECT_DOUBLE_EQ(ramp.delete_fraction_at(0), 0.1);
    EXPECT_DOUBLE_EQ(ramp.delete_fraction_at(49), 0.9);
    EXPECT_NEAR(ramp.delete_fraction_at(24), 0.1 + 0.8 * 24.0 / 49.0, 1e-12);
    EXPECT_DOUBLE_EQ(spec.phases[1].delete_fraction_at(5), 0.5);

    // Canonical round-trip covers every v2 key.
    std::string canonical = spec.to_text();
    auto reparsed = ScenarioSpec::parse(canonical);
    EXPECT_EQ(reparsed.to_text(), canonical);
    EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
    EXPECT_NE(canonical.find("seed=9"), std::string::npos);
    EXPECT_NE(canonical.find("insert_burst=2"), std::string::npos);
    EXPECT_NE(canonical.find("delete_fraction=0.1..0.9"), std::string::npos);
    EXPECT_NE(canonical.find("deleter=random:0.7,max-degree:0.3"), std::string::npos);
}

TEST(ScenarioSpecV2, LastDeleterKeyWinsInBothDirections) {
    const std::string prologue = "topology star\nhealer xheal\n";
    // Mixture overrides an earlier plain kind…
    auto a = ScenarioSpec::parse(
        prologue + "phase p steps=1 deleter=cut-point deleter=random:0.5,max-degree:0.5\n");
    EXPECT_EQ(a.phases[0].deleter_mix.size(), 2u);
    // …and a plain kind overrides an earlier mixture.
    auto b = ScenarioSpec::parse(
        prologue + "phase p steps=1 deleter=random:0.5,max-degree:0.5 deleter=cut-point\n");
    EXPECT_TRUE(b.phases[0].deleter_mix.empty());
    EXPECT_EQ(b.phases[0].deleter.kind, "cut-point");
    EXPECT_NE(b.to_text().find("deleter=cut-point"), std::string::npos);
}

TEST(ScenarioSpecV2, LossyNetworkKeysParseAndRoundTrip) {
    const std::string prologue = "topology star\nhealer xheal-dist\n";
    auto spec = ScenarioSpec::parse(
        prologue + "phase storm steps=30 delete_fraction=1 drop=0.1 latency=2\n"
                   "phase calm steps=10 delete_fraction=0.2\n");
    ASSERT_EQ(spec.phases.size(), 2u);
    ASSERT_TRUE(spec.phases[0].drop.has_value());
    EXPECT_DOUBLE_EQ(*spec.phases[0].drop, 0.1);
    ASSERT_TRUE(spec.phases[0].latency.has_value());
    EXPECT_EQ(*spec.phases[0].latency, 2u);
    // Unset keys stay unset: the healer falls back to its base fault model.
    EXPECT_FALSE(spec.phases[1].drop.has_value());
    EXPECT_FALSE(spec.phases[1].latency.has_value());

    std::string canonical = spec.to_text();
    auto reparsed = ScenarioSpec::parse(canonical);
    EXPECT_EQ(reparsed.to_text(), canonical);
    EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
    EXPECT_NE(canonical.find("drop=0.1"), std::string::npos);
    EXPECT_NE(canonical.find("latency=2"), std::string::npos);

    // Probabilities outside [0, 1] and non-integer latencies are parse
    // errors, not silent clamps.
    expect_rejects(prologue + "phase p steps=1 drop=1.5\n", "[0, 1]");
    expect_rejects(prologue + "phase p steps=1 drop=-0.1\n", "[0, 1]");
    expect_rejects(prologue + "phase p steps=1 latency=2.5\n", "latency");
}

TEST(ScenarioSpecV2, RejectsMalformedRampsAndMixtures) {
    const std::string prologue = "topology star\nhealer xheal\n";
    // Ramps: reversed, negative, out-of-range, missing bounds, junk bounds.
    expect_rejects(prologue + "phase p steps=1 delete_fraction=0.9..0.1\n", "reversed");
    expect_rejects(prologue + "phase p steps=1 delete_fraction=-0.1..0.5\n", ">= 0");
    expect_rejects(prologue + "phase p steps=1 delete_fraction=0.5..1.5\n", "<= 1");
    expect_rejects(prologue + "phase p steps=1 delete_fraction=0.1..\n", "bounds");
    expect_rejects(prologue + "phase p steps=1 delete_fraction=..0.9\n", "bounds");
    expect_rejects(prologue + "phase p steps=1 delete_fraction=a..b\n", "bad number");
    // Mixtures: negative weight, non-normalizable (all-zero) weights,
    // missing weight, missing kind, dotted params against a mixture.
    expect_rejects(prologue + "phase p steps=1 deleter=random:-1,max-degree:2\n",
                   "negative");
    expect_rejects(prologue + "phase p steps=1 deleter=random:0,max-degree:0\n",
                   "normalizable");
    expect_rejects(prologue + "phase p steps=1 deleter=random:0.5,max-degree\n",
                   "kind:weight");
    expect_rejects(prologue + "phase p steps=1 deleter=:0.5\n", "kind:weight");
    expect_rejects(prologue + "phase p steps=1 deleter=random:\n", "kind:weight");
    expect_rejects(prologue + "phase p steps=1 deleter=random:0.5,max-degree:0.5 "
                              "deleter.k=2\n",
                   "deleter.*");
    // Phase seed must be a u64.
    expect_rejects(prologue + "phase p steps=1 seed=-4\n", "-4");
    expect_rejects(prologue + "phase p steps=1 seed=lots\n", "lots");
}

TEST(ScenarioRegistryV2, PhaseDeleterFactoryBuildsSinglesAndMixtures) {
    scenario::PhaseSpec single;
    single.deleter.kind = "max-degree";
    auto s = scenario::make_phase_deleter(single, nullptr);
    EXPECT_EQ(s->name(), "max-degree");

    scenario::PhaseSpec mixed;
    mixed.deleter_mix.push_back({ComponentSpec{"random", {}}, 0.7});
    mixed.deleter_mix.push_back({ComponentSpec{"max-degree", {}}, 0.3});
    auto m = scenario::make_phase_deleter(mixed, nullptr);
    EXPECT_EQ(m->name(), "composite");

    // Member kinds go through make_deleter: unknown kinds and capability
    // requirements (bridge-hunter without a registry) throw identically.
    scenario::PhaseSpec bogus;
    bogus.deleter_mix.push_back({ComponentSpec{"chaos", {}}, 1.0});
    EXPECT_THROW(scenario::make_phase_deleter(bogus, nullptr), std::runtime_error);
    scenario::PhaseSpec hunter;
    hunter.deleter_mix.push_back({ComponentSpec{"bridge-hunter", {}}, 1.0});
    EXPECT_THROW(scenario::make_phase_deleter(hunter, nullptr), std::runtime_error);
}

TEST(ScenarioRegistry, UnknownFactoryKindsAreRejectedByEveryFactory) {
    util::Rng rng(4);
    EXPECT_THROW(scenario::make_topology(ComponentSpec{"tesseract", {}}, rng),
                 std::runtime_error);
    EXPECT_THROW(scenario::make_healer(ComponentSpec{"bandaid", {}}, 1),
                 std::runtime_error);
    EXPECT_THROW(scenario::make_deleter(ComponentSpec{"chaos", {}}, nullptr),
                 std::runtime_error);
    EXPECT_THROW(scenario::make_inserter(ComponentSpec{"wormhole", {}}),
                 std::runtime_error);
    // The faulty wrapper refuses stateful inner healers and itself.
    EXPECT_THROW(scenario::make_healer(ComponentSpec{"faulty", {{"inner", "xheal"}}}, 1),
                 std::runtime_error);
    EXPECT_THROW(
        scenario::make_healer(ComponentSpec{"faulty", {{"inner", "faulty"}}}, 1),
        std::runtime_error);
}

TEST(ScenarioSpec, EveryBundledScenarioParsesAndRoundTrips) {
    // Everything under scenarios/ — the top-level specs plus the pack tree
    // (scenarios/packs/*/*.scn, the batch-runner corpus).
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             std::string(XHEAL_REPO_DIR) + "/scenarios"))
        if (entry.is_regular_file() && entry.path().extension() == ".scn")
            files.push_back(entry.path().string());
    EXPECT_GE(files.size(), 16u);  // 6 top-level + 10 pack specs at minimum
    for (const std::string& path : files) {
        SCOPED_TRACE(path);
        auto spec = ScenarioSpec::parse_file(path);
        EXPECT_FALSE(spec.phases.empty());
        std::string canonical = spec.to_text();
        auto reparsed = ScenarioSpec::parse(canonical);
        EXPECT_EQ(reparsed.to_text(), canonical);
        EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
    }
}

TEST(ScenarioSpec, TypedParamAccessors) {
    ComponentSpec c{"x", {{"n", "7"}, {"p", "0.25"}, {"flag", "true"}}};
    EXPECT_EQ(c.get_u64("n", 0), 7u);
    EXPECT_DOUBLE_EQ(c.get_double("p", 0.0), 0.25);
    EXPECT_TRUE(c.get_bool("flag", false));
    EXPECT_EQ(c.get_u64("absent", 9u), 9u);
    ComponentSpec bad{"x", {{"n", "zap"}}};
    EXPECT_THROW(bad.get_u64("n", 0), std::runtime_error);
}

TEST(ScenarioRegistry, EveryListedTopologyConstructs) {
    util::Rng rng(3);
    for (const auto& kind : scenario::topology_names()) {
        ComponentSpec spec{kind, {}};
        auto g = scenario::make_topology(spec, rng);
        EXPECT_GT(g.node_count(), 0u) << kind;
    }
    EXPECT_THROW(scenario::make_topology(ComponentSpec{"moebius", {}}, rng),
                 std::runtime_error);
}

TEST(ScenarioRegistry, EveryListedHealerConstructs) {
    for (const auto& kind : scenario::healer_names()) {
        auto handle = scenario::make_healer(ComponentSpec{kind, {}}, 5);
        ASSERT_NE(handle.healer, nullptr) << kind;
        EXPECT_GE(handle.kappa, 1u);
        bool xheal_family = kind == "xheal" || kind == "xheal-dist";
        EXPECT_EQ(handle.registry != nullptr, xheal_family) << kind;
    }
    EXPECT_THROW(scenario::make_healer(ComponentSpec{"prayer", {}}, 5),
                 std::runtime_error);
}

TEST(ScenarioRegistry, EveryListedStrategyConstructs) {
    auto xheal = scenario::make_healer(ComponentSpec{"xheal", {}}, 5);
    for (const auto& kind : scenario::deleter_names()) {
        auto deleter = scenario::make_deleter(ComponentSpec{kind, {}}, xheal.registry);
        ASSERT_NE(deleter, nullptr) << kind;
        EXPECT_EQ(deleter->name(), kind);
    }
    // bridge-hunter needs a cloud registry.
    EXPECT_THROW(scenario::make_deleter(ComponentSpec{"bridge-hunter", {}}, nullptr),
                 std::runtime_error);
    for (const auto& kind : scenario::inserter_names()) {
        auto inserter = scenario::make_inserter(ComponentSpec{kind, {{"k", "2"}}});
        ASSERT_NE(inserter, nullptr) << kind;
        EXPECT_EQ(inserter->name(), kind);
    }
}
