#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "util/expects.hpp"

namespace {

using namespace xheal::sim;
using xheal::graph::NodeId;
using xheal::util::ContractViolation;

TEST(Network, MessagesDeliveredNextRound) {
    Network net;
    std::vector<int> received;
    net.add_node(1, [&](const Message& m, Context&) { received.push_back(m.type); });
    net.post(0, 1, 42);
    EXPECT_TRUE(received.empty());  // not yet delivered
    EXPECT_EQ(net.step(), 1u);
    EXPECT_EQ(received, std::vector<int>{42});
    EXPECT_EQ(net.rounds_executed(), 1u);
    EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(Network, StepOnIdleChargesNoRound) {
    Network net;
    net.add_node(1);
    EXPECT_EQ(net.step(), 0u);
    EXPECT_EQ(net.rounds_executed(), 0u);
}

TEST(Network, RepliesArriveOneRoundLater) {
    Network net;
    int pongs = 0;
    net.add_node(1, [&](const Message& m, Context& ctx) {
        if (m.type == 1) ctx.send(m.from, 2);  // ping -> pong
    });
    net.add_node(2, [&](const Message& m, Context&) {
        if (m.type == 2) ++pongs;
    });
    net.post(2, 1, 1);
    net.step();  // ping delivered, pong enqueued
    EXPECT_EQ(pongs, 0);
    net.step();
    EXPECT_EQ(pongs, 1);
    EXPECT_EQ(net.messages_sent(), 2u);
    EXPECT_EQ(net.rounds_executed(), 2u);
}

TEST(Network, MessagesToRemovedNodesDropSilently) {
    Network net;
    net.add_node(1);
    net.add_node(2);
    net.post(1, 2, 7);
    net.remove_node(2);
    EXPECT_EQ(net.step(), 0u);  // dropped on delivery
    EXPECT_EQ(net.messages_sent(), 1u);  // still counted as sent
}

TEST(Network, RunUntilQuiescent) {
    // A relay chain: node i forwards to i+1.
    Network net;
    for (NodeId i = 0; i < 5; ++i) {
        net.add_node(i, [](const Message& m, Context& ctx) {
            if (ctx.self() < 4) ctx.send(ctx.self() + 1, m.type);
        });
    }
    net.post(99, 0, 5);
    std::size_t rounds = net.run();
    EXPECT_EQ(rounds, 5u);  // 0->1->2->3->4 then quiescent
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.messages_sent(), 5u);
}

TEST(Network, RunRespectsMaxRounds) {
    // Two nodes bouncing forever.
    Network net;
    auto bounce = [](const Message& m, Context& ctx) { ctx.send(m.from, m.type); };
    net.add_node(1, bounce);
    net.add_node(2, bounce);
    net.post(1, 2, 0);
    std::size_t rounds = net.run(10);
    EXPECT_EQ(rounds, 10u);
    EXPECT_FALSE(net.idle());
}

TEST(Network, CountersResettable) {
    Network net;
    net.add_node(1);
    net.post(0, 1, 1);
    net.step();
    net.reset_counters();
    EXPECT_EQ(net.messages_sent(), 0u);
    EXPECT_EQ(net.rounds_executed(), 0u);
}

TEST(Network, DuplicateNodeRejected) {
    Network net;
    net.add_node(1);
    EXPECT_THROW(net.add_node(1), ContractViolation);
    EXPECT_THROW(net.remove_node(5), ContractViolation);
}

TEST(Network, HandlerSwapTakesEffect) {
    Network net;
    int a = 0, b = 0;
    net.add_node(1, [&](const Message&, Context&) { ++a; });
    net.post(0, 1, 0);
    net.step();
    net.set_handler(1, [&](const Message&, Context&) { ++b; });
    net.post(0, 1, 0);
    net.step();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(Network, PayloadRoundTrips) {
    Network net;
    std::vector<std::uint64_t> got;
    net.add_node(1, [&](const Message& m, Context&) { got = m.payload; });
    net.post(0, 1, 3, {10, 20, 30});
    net.step();
    EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(Network, BroadcastWaveCountsRoundsOnce) {
    // One sender fans out to 10 receivers: 10 messages, 1 round.
    Network net;
    for (NodeId i = 0; i < 11; ++i) net.add_node(i);
    for (NodeId i = 1; i < 11; ++i) net.post(0, i, 1);
    net.step();
    EXPECT_EQ(net.messages_sent(), 10u);
    EXPECT_EQ(net.rounds_executed(), 1u);
}

// ---- round-numbering convention (pinned; see network.hpp header) ----

TEST(Network, RoundConventionDeliveryRoundIsOneBased) {
    // A pre-step post is a round-0 send: delivered in round 1, and
    // Context::round() inside the handler reports exactly that. A reply
    // sent from round r arrives in round r + 1.
    Network net;
    std::vector<std::size_t> delivery_rounds;
    net.add_node(1, [&](const Message& m, Context& ctx) {
        delivery_rounds.push_back(ctx.round());
        if (m.type == 1) ctx.send(1, 2);  // self-reply, next round
    });
    net.post(0, 1, 1);
    net.run();
    EXPECT_EQ(delivery_rounds, (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(net.rounds_executed(), 2u);
}

TEST(Network, RoundConventionLatencyDelaysDelivery) {
    // latency = 2: a round-0 send is delivered in round 1 + 2 = 3. The two
    // gap steps deliver nothing but are charged as rounds (the network is
    // not idle, time passes).
    Network net;
    std::size_t delivered_in = 0;
    net.add_node(1, [&](const Message&, Context& ctx) { delivered_in = ctx.round(); });
    net.set_fault_model({0.0, 2});
    net.post(0, 1, 7);
    EXPECT_EQ(net.step(), 0u);  // gap round 1
    EXPECT_EQ(net.step(), 0u);  // gap round 2
    EXPECT_FALSE(net.idle());
    EXPECT_EQ(net.step(), 1u);  // delivery round 3
    EXPECT_EQ(delivered_in, 3u);
    EXPECT_EQ(net.rounds_executed(), 3u);
    EXPECT_TRUE(net.idle());
}

TEST(Network, InFlightMessagesKeepTheirStampedDelay) {
    // Lowering latency mid-run must not accelerate messages already in
    // flight; new sends use the new model.
    Network net;
    std::vector<int> order;
    net.add_node(1, [&](const Message& m, Context&) { order.push_back(m.type); });
    net.set_fault_model({0.0, 3});
    net.post(0, 1, 100);            // due in round 4
    net.set_fault_model({0.0, 0});
    net.post(0, 1, 200);            // due in round 1
    net.run();
    EXPECT_EQ(order, (std::vector<int>{200, 100}));
    EXPECT_EQ(net.rounds_executed(), 4u);
}

// ---- fault injection ----

TEST(Network, DropStreamIsDeterministicPerSeed) {
    auto run_once = [](std::uint64_t seed) {
        Network net;
        std::vector<int> got;
        net.add_node(1, [&](const Message& m, Context&) { got.push_back(m.type); });
        net.seed_drop_stream(seed);
        net.set_fault_model({0.5, 0});
        for (int i = 0; i < 64; ++i) net.post(0, 1, i);
        net.run();
        return std::pair{got, net.messages_dropped()};
    };
    auto [a, dropped_a] = run_once(42);
    auto [b, dropped_b] = run_once(42);
    EXPECT_EQ(a, b);  // same seed, same survivors in the same order
    EXPECT_EQ(dropped_a, dropped_b);
    // Sanity: at drop=0.5 over 64 coins, both outcomes occur.
    EXPECT_GT(dropped_a, 0u);
    EXPECT_LT(dropped_a, 64u);
    EXPECT_EQ(a.size() + dropped_a, 64u);
}

TEST(Network, DroppedMessagesStillBilledAsSent) {
    Network net;
    net.add_node(1);
    net.set_fault_model({1.0, 0});  // certain loss
    net.post(0, 1, 1);
    net.post(0, 1, 2);
    EXPECT_TRUE(net.idle());        // nothing actually in flight
    EXPECT_EQ(net.messages_sent(), 2u);
    EXPECT_EQ(net.messages_dropped(), 2u);
    EXPECT_EQ(net.run(), 0u);
}

TEST(Network, ControlPostsBypassFaults) {
    // post_control models the failure-detector channel: immune to drop and
    // latency, delivered next step, still billed as sent.
    Network net;
    std::vector<std::size_t> delivered_in;
    net.add_node(1, [&](const Message&, Context& ctx) {
        delivered_in.push_back(ctx.round());
    });
    net.set_fault_model({1.0, 5});
    net.post_control(Message{0, 1, 9, {}});
    EXPECT_EQ(net.step(), 1u);
    EXPECT_EQ(delivered_in, (std::vector<std::size_t>{1}));
    EXPECT_EQ(net.messages_sent(), 1u);
    EXPECT_EQ(net.messages_dropped(), 0u);
}

// ---- mid-step mutation safety (regression: self-destructing handler) ----

TEST(Network, HandlerCanRebindItselfFromWithinHandler) {
    // A handler replacing itself used to destroy the live std::function
    // mid-call (UB). The swap now defers to round end: every message of the
    // current round runs under the original handler, the new one takes over
    // next round.
    Network net;
    int original = 0, replacement = 0;
    net.add_node(1, [&](const Message&, Context&) {
        ++original;
        net.set_handler(1, [&](const Message&, Context&) { ++replacement; });
    });
    net.post(0, 1, 1);
    net.post(0, 1, 2);  // same round as the first
    net.step();
    EXPECT_EQ(original, 2);     // both same-round messages: old handler
    EXPECT_EQ(replacement, 0);
    net.post(0, 1, 3);
    net.step();
    EXPECT_EQ(original, 2);
    EXPECT_EQ(replacement, 1);  // swap landed at round boundary
}

TEST(Network, RemoveNodeFromWithinHandlerDefersToRoundEnd) {
    Network net;
    int delivered = 0;
    net.add_node(1, [&](const Message&, Context&) {
        ++delivered;
        net.remove_node(1);
    });
    net.post(0, 1, 1);
    net.post(0, 1, 2);
    net.step();  // both delivered this round, removal applies after
    EXPECT_EQ(delivered, 2);
    EXPECT_FALSE(net.has_node(1));
}

TEST(Network, ResetCountersRequiresIdleNetwork) {
    // Resetting with messages in flight would bill cross-epoch: sent in the
    // old epoch, rounds charged in the new (regression: epoch leak).
    Network net;
    net.add_node(1);
    net.post(0, 1, 1);
    EXPECT_THROW(net.reset_counters(), ContractViolation);
    net.run();
    net.reset_counters();  // idle: fine
    EXPECT_EQ(net.messages_sent(), 0u);
    EXPECT_EQ(net.rounds_executed(), 0u);
}

}  // namespace
