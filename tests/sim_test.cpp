#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "util/expects.hpp"

namespace {

using namespace xheal::sim;
using xheal::graph::NodeId;
using xheal::util::ContractViolation;

TEST(Network, MessagesDeliveredNextRound) {
    Network net;
    std::vector<int> received;
    net.add_node(1, [&](const Message& m, Context&) { received.push_back(m.type); });
    net.post(0, 1, 42);
    EXPECT_TRUE(received.empty());  // not yet delivered
    EXPECT_EQ(net.step(), 1u);
    EXPECT_EQ(received, std::vector<int>{42});
    EXPECT_EQ(net.rounds_executed(), 1u);
    EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(Network, StepOnIdleChargesNoRound) {
    Network net;
    net.add_node(1);
    EXPECT_EQ(net.step(), 0u);
    EXPECT_EQ(net.rounds_executed(), 0u);
}

TEST(Network, RepliesArriveOneRoundLater) {
    Network net;
    int pongs = 0;
    net.add_node(1, [&](const Message& m, Context& ctx) {
        if (m.type == 1) ctx.send(m.from, 2);  // ping -> pong
    });
    net.add_node(2, [&](const Message& m, Context&) {
        if (m.type == 2) ++pongs;
    });
    net.post(2, 1, 1);
    net.step();  // ping delivered, pong enqueued
    EXPECT_EQ(pongs, 0);
    net.step();
    EXPECT_EQ(pongs, 1);
    EXPECT_EQ(net.messages_sent(), 2u);
    EXPECT_EQ(net.rounds_executed(), 2u);
}

TEST(Network, MessagesToRemovedNodesDropSilently) {
    Network net;
    net.add_node(1);
    net.add_node(2);
    net.post(1, 2, 7);
    net.remove_node(2);
    EXPECT_EQ(net.step(), 0u);  // dropped on delivery
    EXPECT_EQ(net.messages_sent(), 1u);  // still counted as sent
}

TEST(Network, RunUntilQuiescent) {
    // A relay chain: node i forwards to i+1.
    Network net;
    for (NodeId i = 0; i < 5; ++i) {
        net.add_node(i, [](const Message& m, Context& ctx) {
            if (ctx.self() < 4) ctx.send(ctx.self() + 1, m.type);
        });
    }
    net.post(99, 0, 5);
    std::size_t rounds = net.run();
    EXPECT_EQ(rounds, 5u);  // 0->1->2->3->4 then quiescent
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.messages_sent(), 5u);
}

TEST(Network, RunRespectsMaxRounds) {
    // Two nodes bouncing forever.
    Network net;
    auto bounce = [](const Message& m, Context& ctx) { ctx.send(m.from, m.type); };
    net.add_node(1, bounce);
    net.add_node(2, bounce);
    net.post(1, 2, 0);
    std::size_t rounds = net.run(10);
    EXPECT_EQ(rounds, 10u);
    EXPECT_FALSE(net.idle());
}

TEST(Network, CountersResettable) {
    Network net;
    net.add_node(1);
    net.post(0, 1, 1);
    net.step();
    net.reset_counters();
    EXPECT_EQ(net.messages_sent(), 0u);
    EXPECT_EQ(net.rounds_executed(), 0u);
}

TEST(Network, DuplicateNodeRejected) {
    Network net;
    net.add_node(1);
    EXPECT_THROW(net.add_node(1), ContractViolation);
    EXPECT_THROW(net.remove_node(5), ContractViolation);
}

TEST(Network, HandlerSwapTakesEffect) {
    Network net;
    int a = 0, b = 0;
    net.add_node(1, [&](const Message&, Context&) { ++a; });
    net.post(0, 1, 0);
    net.step();
    net.set_handler(1, [&](const Message&, Context&) { ++b; });
    net.post(0, 1, 0);
    net.step();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(Network, PayloadRoundTrips) {
    Network net;
    std::vector<std::uint64_t> got;
    net.add_node(1, [&](const Message& m, Context&) { got = m.payload; });
    net.post(0, 1, 3, {10, 20, 30});
    net.step();
    EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(Network, BroadcastWaveCountsRoundsOnce) {
    // One sender fans out to 10 receivers: 10 messages, 1 round.
    Network net;
    for (NodeId i = 0; i < 11; ++i) net.add_node(i);
    for (NodeId i = 1; i < 11; ++i) net.post(0, i, 1);
    net.step();
    EXPECT_EQ(net.messages_sent(), 10u);
    EXPECT_EQ(net.rounds_executed(), 1u);
}

}  // namespace
