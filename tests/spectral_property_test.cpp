// Parameterized property sweep over graph families for the spectral
// toolkit: solver agreement (Jacobi vs Lanczos), estimator ordering
// (spectral lower bound <= exact <= sweep upper bound), Cheeger inequality,
// and normalized-spectrum range. One TEST_P instance per family.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <unordered_set>

#include "expander/deterministic.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/laplacian.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::spectral;
using xheal::graph::Graph;
namespace wl = xheal::workload;

struct SpectralParam {
    std::string name;
    std::function<Graph()> make;
};

std::string param_name(const ::testing::TestParamInfo<SpectralParam>& info) {
    return info.param.name;
}

class SpectralPropertyTest : public ::testing::TestWithParam<SpectralParam> {};

TEST_P(SpectralPropertyTest, NormalizedSpectrumWithinZeroTwo) {
    Graph g = GetParam().make();
    auto vals = laplacian_spectrum(g, LaplacianKind::normalized);
    EXPECT_NEAR(vals.front(), 0.0, 1e-8);
    for (double v : vals) {
        EXPECT_GE(v, -1e-8);
        EXPECT_LE(v, 2.0 + 1e-8);
    }
}

TEST_P(SpectralPropertyTest, CombinatorialSpectrumSumsToTwoM) {
    // trace(L) = sum of degrees = 2m.
    Graph g = GetParam().make();
    auto vals = laplacian_spectrum(g, LaplacianKind::combinatorial);
    double sum = 0.0;
    for (double v : vals) sum += v;
    EXPECT_NEAR(sum, 2.0 * static_cast<double>(g.edge_count()), 1e-6);
}

TEST_P(SpectralPropertyTest, DenseAndSparseLambda2Agree) {
    Graph g = GetParam().make();
    auto dense_vals = laplacian_spectrum(g, LaplacianKind::normalized);
    // Force the Lanczos path regardless of size by calling the operator
    // through fiedler() on a graph above the threshold, or compare directly
    // against the dense value for small graphs (lambda2() dispatches).
    double l2 = lambda2(g, LaplacianKind::normalized);
    EXPECT_NEAR(l2, dense_vals[1], 1e-5);
}

TEST_P(SpectralPropertyTest, EstimatorOrdering) {
    Graph g = GetParam().make();
    if (g.node_count() > exact_expansion_limit) GTEST_SKIP();
    double exact = edge_expansion_exact(g);
    double sweep = sweep_cut(g).expansion;
    double lower = expansion_spectral_lower_bound(g);
    EXPECT_LE(lower, exact + 1e-9);
    EXPECT_GE(sweep, exact - 1e-9);
}

TEST_P(SpectralPropertyTest, CheegerInequalityExact) {
    Graph g = GetParam().make();
    if (g.node_count() > exact_expansion_limit) GTEST_SKIP();
    double phi = cheeger_exact(g);
    double l2 = lambda2(g, LaplacianKind::normalized);
    EXPECT_GE(2.0 * phi + 1e-9, l2);
    EXPECT_GT(l2, phi * phi / 2.0 - 1e-9);
}

TEST_P(SpectralPropertyTest, ConductanceOfSweepSideMatchesReport) {
    // The sweep's best_side must actually realize the reported conductance.
    Graph g = GetParam().make();
    auto sweep = sweep_cut(g);
    if (sweep.best_side.empty()) GTEST_SKIP();
    std::unordered_set<xheal::graph::NodeId> side(sweep.best_side.begin(),
                                                  sweep.best_side.end());
    std::size_t cut = xheal::graph::cut_size(g, side);
    std::size_t vol = g.volume(sweep.best_side);
    std::size_t total = 2 * g.edge_count();
    double phi = static_cast<double>(cut) /
                 static_cast<double>(std::min(vol, total - vol));
    EXPECT_NEAR(phi, sweep.conductance, 1e-9);
}

std::vector<SpectralParam> make_params() {
    return {
        {"path16", [] { return wl::make_path(16); }},
        {"cycle17", [] { return wl::make_cycle(17); }},
        {"star15", [] { return wl::make_star(15); }},
        {"complete12", [] { return wl::make_complete(12); }},
        {"grid4x4", [] { return wl::make_grid(4, 4); }},
        {"torus4x4", [] { return wl::make_torus(4, 4); }},
        {"hypercube4", [] { return wl::make_hypercube(4); }},
        {"tree15", [] { return wl::make_binary_tree(15); }},
        {"dumbbell8", [] { return wl::make_dumbbell(8); }},
        {"petersen", [] { return wl::make_petersen(); }},
        {"regular4",
         [] {
             xheal::util::Rng rng(5);
             return wl::make_random_regular(16, 4, rng);
         }},
        {"er18",
         [] {
             xheal::util::Rng rng(6);
             return wl::make_erdos_renyi(18, 0.3, rng);
         }},
        {"hgraph16",
         [] {
             xheal::util::Rng rng(7);
             return wl::make_hgraph_graph(16, 3, rng);
         }},
        {"margulis25",
         [] {
             return xheal::expander::make_margulis_expander(5);
         }},
        {"debruijn20",
         [] { return xheal::expander::make_debruijn_graph(20); }},
    };
}

INSTANTIATE_TEST_SUITE_P(Families, SpectralPropertyTest,
                         ::testing::ValuesIn(make_params()), param_name);

TEST(LanczosLargeAgreement, GridAndRegularAboveDenseLimit) {
    // Explicit large-n agreement checks beyond the parameterized families.
    xheal::util::Rng rng(8);
    for (auto make : {std::function<Graph()>([] { return wl::make_grid(14, 14); }),
                      std::function<Graph()>([&rng] {
                          return wl::make_random_regular(220, 4, rng);
                      })}) {
        Graph g = make();
        ASSERT_GT(g.node_count(), dense_spectral_limit);
        auto dense_vals = laplacian_spectrum(g, LaplacianKind::normalized);
        EXPECT_NEAR(lambda2(g), dense_vals[1], 1e-5);
    }
}

}  // namespace
