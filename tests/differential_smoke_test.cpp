// Differential smoke: the first step toward cross-healer differential
// fuzzing (ROADMAP). Two runs of one schedule that differ ONLY in the
// healer must produce the IDENTICAL adversary event stream whenever the
// adversary is degree-agnostic (random deleter, random-attach inserter):
// healers add edges but never change the alive set, the alive-pool order,
// or the master rng consumption. The TraceDiff machinery must therefore
// attribute the divergence to the repair side — equal events and equal
// stream hash, different final-graph fingerprint — and never report a
// bogus first-divergent *event*, which would point debugging at the
// adversary schedule instead of the healer.
//
// This is the property the tournament pack rests on: one schedule, many
// healers, comparable rows because the trace hash column is constant.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.hpp"
#include "trace_tools/diff.hpp"

using namespace xheal;

namespace {

scenario::ScenarioSpec spec_with_healer(const std::string& healer) {
    return scenario::ScenarioSpec::parse(
        "name diff-smoke\n"
        "seed 321\n"
        "topology random-regular n=48 d=4\n"
        "healer " + healer + "\n"
        "phase churn steps=60 delete_fraction=0.5 deleter=random "
        "inserter=random-attach k=3 min_nodes=12\n"
        "phase drain steps=20 delete_fraction=0.6..0.9 deleter=random "
        "inserter=random-attach k=3 min_nodes=12\n");
}

}  // namespace

TEST(DifferentialSmoke, DivergenceIsAttributedToTheFirstRepairNotTheSchedule) {
    auto xheal_spec = spec_with_healer("xheal d=2");
    auto baseline_spec = spec_with_healer("cycle");

    auto xheal_run = scenario::ScenarioRunner(xheal_spec).run();
    auto baseline_run = scenario::ScenarioRunner(baseline_spec).run();

    auto a = xheal_run.to_trace(xheal_spec);
    auto b = baseline_run.to_trace(baseline_spec);
    auto diff = trace_tools::diff_traces(a, b);

    // The adversary schedule did not diverge: same events, same stream
    // hash. Any reported first-divergent event here would be a diff bug.
    EXPECT_TRUE(diff.events_equal()) << "bogus adversary divergence at event "
                                     << diff.divergence_index << " (field "
                                     << diff.divergence_field << ")";
    EXPECT_TRUE(diff.trace_hash_equal);
    EXPECT_EQ(a.trace_hash, b.trace_hash);

    // The healers DID diverge — at the very first repair: the schedule
    // opens with delete pressure, both healers repaired differently, and
    // the final fingerprints (which see the healer's edges) disagree.
    EXPECT_FALSE(diff.fingerprint_equal);
    EXPECT_NE(a.fingerprint, b.fingerprint);
    EXPECT_FALSE(diff.identical());

    // The rendered diff names the healer side, not an event index.
    std::string rendered = trace_tools::format_diff(diff, a, b, 2);
    EXPECT_NE(rendered.find("healer-side divergence"), std::string::npos) << rendered;
    EXPECT_EQ(rendered.find("first divergent event"), std::string::npos) << rendered;

    // Sanity on the premise itself: both runs actually deleted (so repairs
    // happened), and a degree-AWARE adversary would not have this
    // property — documented by the deleter choice in the spec above.
    std::size_t deletions = 0;
    for (const auto& e : xheal_run.events)
        if (e.kind == scenario::TraceEvent::Kind::remove) ++deletions;
    EXPECT_GT(deletions, 20u);
}

TEST(DifferentialSmoke, EveryBaselineSharesTheXhealStream) {
    // The full tournament roster: every healer kind that can run this
    // schedule produces the identical stream hash. A healer whose repairs
    // consumed the master rng or mutated the alive pool would break here.
    auto reference = scenario::ScenarioRunner(spec_with_healer("xheal d=2")).run();
    for (const char* healer : {"no-heal", "line", "cycle", "star", "forgiving-tree",
                               "random-match", "xheal-dist d=2"}) {
        SCOPED_TRACE(healer);
        auto run = scenario::ScenarioRunner(spec_with_healer(healer)).run();
        EXPECT_EQ(run.trace_hash, reference.trace_hash);
        EXPECT_EQ(run.events.size(), reference.events.size());
    }
}
