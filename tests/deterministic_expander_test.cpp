#include <gtest/gtest.h>

#include "expander/deterministic.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"

namespace {

using namespace xheal::expander;
using xheal::graph::NodeId;

TEST(Margulis, ShapeAndDegrees) {
    for (std::size_t m : {2u, 3u, 5u, 8u}) {
        auto g = make_margulis_expander(m);
        EXPECT_EQ(g.node_count(), m * m);
        for (NodeId v : g.nodes()) EXPECT_LE(g.degree(v), 8u);
        EXPECT_TRUE(xheal::graph::is_connected(g));
    }
}

TEST(Margulis, ConstantSpectralGapAcrossSizes) {
    // The Gabber-Galil construction has a size-independent spectral gap;
    // check lambda2 stays above a fixed constant as m grows.
    for (std::size_t m : {4u, 6u, 8u, 12u}) {
        auto g = make_margulis_expander(m);
        EXPECT_GT(xheal::spectral::lambda2(g), 0.07) << "m=" << m;
    }
}

TEST(Margulis, ExpansionIsConstant) {
    auto small = make_margulis_expander(4);   // 16 nodes, exact
    EXPECT_GT(xheal::spectral::edge_expansion_exact(small), 1.0);
    auto large = make_margulis_expander(12);  // 144 nodes, sweep estimate
    EXPECT_GT(xheal::spectral::edge_expansion_estimate(large), 0.8);
}

TEST(Margulis, Deterministic) {
    auto a = make_margulis_expander(5);
    auto b = make_margulis_expander(5);
    EXPECT_EQ(a.edge_count(), b.edge_count());
    a.for_each_edge([&](NodeId u, NodeId v, const xheal::graph::EdgeClaims&) {
        EXPECT_TRUE(b.has_edge(u, v));
    });
}

TEST(DeBruijn, ShapeAndConnectivity) {
    for (std::size_t n : {2u, 3u, 7u, 16u, 33u, 100u}) {
        auto g = make_debruijn_graph(n);
        EXPECT_EQ(g.node_count(), n);
        EXPECT_TRUE(xheal::graph::is_connected(g)) << "n=" << n;
        for (NodeId v : g.nodes()) EXPECT_LE(g.degree(v), 7u);
    }
}

TEST(DeBruijn, EdgesOverArbitraryMemberIds) {
    std::vector<NodeId> members{5, 17, 99, 102, 406};
    auto edges = debruijn_edges_over(members);
    EXPECT_GE(edges.size(), members.size());  // at least the cycle
    for (const auto& [u, v] : edges) {
        EXPECT_LT(u, v);
        EXPECT_TRUE(std::find(members.begin(), members.end(), u) != members.end());
        EXPECT_TRUE(std::find(members.begin(), members.end(), v) != members.end());
    }
}

TEST(DeBruijn, ReasonableExpansionAtModerateSize) {
    auto g = make_debruijn_graph(64);
    EXPECT_GT(xheal::spectral::edge_expansion_estimate(g), 0.5);
    EXPECT_GT(xheal::spectral::lambda2(g), 0.05);
}

TEST(DeBruijn, ExpansionDoesNotCollapseWithSize) {
    // Quasi-expander shape: lambda2 at n=256 within a small factor of
    // lambda2 at n=32 (no 1/n collapse).
    double l32 = xheal::spectral::lambda2(make_debruijn_graph(32));
    double l256 = xheal::spectral::lambda2(make_debruijn_graph(256));
    EXPECT_GT(l256, l32 / 6.0);
}

}  // namespace
