#include <gtest/gtest.h>

#include <set>

#include "expander/hgraph.hpp"
#include "graph/algorithms.hpp"
#include "spectral/expansion.hpp"
#include "util/expects.hpp"

namespace {

using namespace xheal::expander;
using xheal::graph::Graph;
using xheal::graph::NodeId;
using xheal::util::ContractViolation;
using xheal::util::Rng;

std::vector<NodeId> ids(std::size_t n, NodeId base = 0) {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(base + static_cast<NodeId>(i));
    return out;
}

Graph project(const HGraph& h) {
    Graph g;
    for (NodeId v : h.members_sorted()) g.add_node_with_id(v);
    for (const auto& [u, v] : h.edges()) g.add_black_edge(u, v);
    return g;
}

TEST(HGraph, ConstructionIsValidAndCovering) {
    Rng rng(1);
    HGraph h(ids(12), 3, rng);
    EXPECT_EQ(h.size(), 12u);
    EXPECT_EQ(h.cycle_count(), 3u);
    EXPECT_EQ(h.kappa(), 6u);
    h.validate();
    EXPECT_EQ(h.members_sorted(), ids(12));
}

TEST(HGraph, ProjectedDegreeAtMostKappa) {
    Rng rng(2);
    HGraph h(ids(30), 4, rng);
    auto g = project(h);
    for (NodeId v : g.nodes()) {
        EXPECT_LE(g.degree(v), h.kappa());
        EXPECT_GE(g.degree(v), 2u);  // at least the two neighbors of one cycle
    }
}

TEST(HGraph, ProjectionIsConnected) {
    Rng rng(3);
    for (int trial = 0; trial < 5; ++trial) {
        HGraph h(ids(40), 2, rng);
        EXPECT_TRUE(xheal::graph::is_connected(project(h)));  // one Hamilton cycle suffices
    }
}

TEST(HGraph, InsertMaintainsCycles) {
    Rng rng(4);
    HGraph h(ids(5), 3, rng);
    for (NodeId v = 5; v < 25; ++v) {
        h.insert(v, rng);
        h.validate();
    }
    EXPECT_EQ(h.size(), 25u);
}

TEST(HGraph, DeleteMaintainsCycles) {
    Rng rng(5);
    HGraph h(ids(20), 3, rng);
    for (NodeId v = 0; v < 17; ++v) {
        h.remove(v);
        h.validate();
    }
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h.members_sorted(), (std::vector<NodeId>{17, 18, 19}));
}

TEST(HGraph, SuccessorPredecessorMirror) {
    Rng rng(6);
    HGraph h(ids(9), 2, rng);
    for (std::size_t c = 0; c < h.cycle_count(); ++c) {
        for (NodeId v : h.members_sorted()) {
            EXPECT_EQ(h.predecessor(h.successor(v, c), c), v);
        }
    }
}

TEST(HGraph, DegenerateSizes) {
    Rng rng(7);
    HGraph h(ids(3), 2, rng);
    h.remove(0);
    EXPECT_EQ(h.size(), 2u);
    h.validate();
    // Two nodes: each cycle is u <-> v; projection is the single edge.
    EXPECT_EQ(h.edges().size(), 1u);
    h.remove(1);
    EXPECT_EQ(h.size(), 1u);
    EXPECT_TRUE(h.edges().empty());  // self-loop dropped
    EXPECT_THROW(h.remove(2), ContractViolation);
}

TEST(HGraph, InsertRejectsDuplicates) {
    Rng rng(8);
    HGraph h(ids(4), 2, rng);
    EXPECT_THROW(h.insert(2, rng), ContractViolation);
}

TEST(HGraph, DeterministicGivenSeed) {
    Rng rng_a(99), rng_b(99);
    HGraph a(ids(15), 3, rng_a);
    HGraph b(ids(15), 3, rng_b);
    EXPECT_EQ(a.edges(), b.edges());
}

TEST(HGraph, ChurnedGraphStaysExpanding) {
    // Theorem 3 smoke test: after an insert/delete churn the graph should
    // still look like a random H-graph (positive expansion, connected).
    Rng rng(10);
    HGraph h(ids(16), 3, rng);
    NodeId next = 16;
    for (int step = 0; step < 60; ++step) {
        if (step % 2 == 0) {
            h.insert(next++, rng);
        } else {
            auto members = h.members_sorted();
            h.remove(members[rng.index(members.size())]);
        }
        h.validate();
    }
    auto g = project(h);
    EXPECT_TRUE(xheal::graph::is_connected(g));
    EXPECT_GT(xheal::spectral::edge_expansion_estimate(g), 0.5);
}

TEST(HGraph, FreshRandomHGraphHasOmegaDExpansion) {
    // Theorem 4 smoke test at small scale (exact expansion, n=14, d=3):
    // edge expansion should be at least ~d/2.
    Rng rng(11);
    for (int trial = 0; trial < 3; ++trial) {
        HGraph h(ids(14), 3, rng);
        auto g = project(h);
        EXPECT_GE(xheal::spectral::edge_expansion_exact(g), 1.5);
    }
}

}  // namespace
