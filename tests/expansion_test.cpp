#include <gtest/gtest.h>

#include "spectral/expansion.hpp"
#include "spectral/laplacian.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::spectral;
namespace wl = xheal::workload;
using xheal::graph::Graph;

TEST(ExactExpansion, CompleteGraph) {
    // K_n: h = n - floor(n/2) = ceil(n/2).
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_complete(4)), 2.0);
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_complete(5)), 3.0);
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_complete(6)), 3.0);
}

TEST(ExactExpansion, CycleAndPath) {
    // C_n: best cut is an arc of floor(n/2) nodes with 2 crossing edges.
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_cycle(8)), 2.0 / 4.0);
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_cycle(9)), 2.0 / 4.0);
    // P_n: one crossing edge over floor(n/2) nodes.
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_path(8)), 1.0 / 4.0);
}

TEST(ExactExpansion, StarIsOne) {
    EXPECT_DOUBLE_EQ(edge_expansion_exact(wl::make_star(7)), 1.0);
}

TEST(ExactExpansion, DumbbellIsBridgeOverClique) {
    auto g = wl::make_dumbbell(5);
    EXPECT_DOUBLE_EQ(edge_expansion_exact(g), 1.0 / 5.0);
}

TEST(ExactExpansion, DisconnectedIsZero) {
    Graph g;
    for (int i = 0; i < 4; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(2, 3);
    EXPECT_DOUBLE_EQ(edge_expansion_exact(g), 0.0);
}

TEST(ExactCheeger, CompleteGraph) {
    // K_4: best cut S of 2 nodes: cut=4, vol(S)=6 -> phi = 2/3.
    EXPECT_NEAR(cheeger_exact(wl::make_complete(4)), 4.0 / 6.0, 1e-12);
}

TEST(ExactCheeger, CycleMatchesFormula) {
    // C_8: cut 2, vol of half = 8 -> phi = 1/4.
    EXPECT_NEAR(cheeger_exact(wl::make_cycle(8)), 0.25, 1e-12);
}

TEST(ExactCheeger, DumbbellSmall) {
    // Dumbbell of cliques of 4: cut=1, side volume = 4*3+1 = 13.
    EXPECT_NEAR(cheeger_exact(wl::make_dumbbell(4)), 1.0 / 13.0, 1e-12);
}

TEST(CheegerInequality, HoldsOnGraphZoo) {
    // Theorem 1: 2*phi >= lambda2 > phi^2 / 2 (normalized Laplacian).
    std::vector<Graph> zoo;
    zoo.push_back(wl::make_path(9));
    zoo.push_back(wl::make_cycle(10));
    zoo.push_back(wl::make_complete(7));
    zoo.push_back(wl::make_star(8));
    zoo.push_back(wl::make_dumbbell(5));
    zoo.push_back(wl::make_petersen());
    zoo.push_back(wl::make_grid(3, 4));
    for (const auto& g : zoo) {
        double phi = cheeger_exact(g);
        double l2 = lambda2(g, LaplacianKind::normalized);
        EXPECT_GE(2.0 * phi + 1e-9, l2);
        EXPECT_GT(l2, phi * phi / 2.0 - 1e-9);
    }
}

TEST(SweepCut, UpperBoundsExactOnSmallGraphs) {
    std::vector<Graph> zoo;
    zoo.push_back(wl::make_cycle(12));
    zoo.push_back(wl::make_dumbbell(6));
    zoo.push_back(wl::make_grid(3, 5));
    for (const auto& g : zoo) {
        auto sweep = sweep_cut(g);
        EXPECT_GE(sweep.expansion + 1e-9, edge_expansion_exact(g));
        EXPECT_GE(sweep.conductance + 1e-9, cheeger_exact(g));
    }
}

TEST(SweepCut, FindsTheDumbbellBottleneckExactly) {
    // The Fiedler sweep must discover the single bridge cut.
    auto g = wl::make_dumbbell(8);
    auto sweep = sweep_cut(g);
    EXPECT_NEAR(sweep.conductance, cheeger_exact(g), 1e-9);
    EXPECT_EQ(sweep.best_side.size(), 8u);
}

TEST(SweepCut, DisconnectedReturnsZero) {
    Graph g;
    for (int i = 0; i < 4; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(2, 3);
    auto sweep = sweep_cut(g);
    EXPECT_DOUBLE_EQ(sweep.expansion, 0.0);
    EXPECT_DOUBLE_EQ(sweep.conductance, 0.0);
}

TEST(Estimators, SwitchBetweenExactAndSweep) {
    auto small = wl::make_cycle(10);
    EXPECT_DOUBLE_EQ(edge_expansion_estimate(small), edge_expansion_exact(small));
    auto large = wl::make_cycle(200);
    // Sweep on a cycle finds an arc cut: 2 / 100.
    EXPECT_NEAR(edge_expansion_estimate(large), 0.02, 0.02);
    EXPECT_GT(edge_expansion_estimate(large), 0.0);
}

TEST(Estimators, SpectralLowerBoundBelowExact) {
    std::vector<Graph> zoo;
    zoo.push_back(wl::make_cycle(12));
    zoo.push_back(wl::make_complete(8));
    zoo.push_back(wl::make_grid(4, 4));
    for (const auto& g : zoo) {
        EXPECT_LE(expansion_spectral_lower_bound(g), edge_expansion_exact(g) + 1e-9);
    }
}

TEST(ExactExpansion, RandomRegularIsExpander) {
    // Small random 4-regular graphs have constant expansion (T4 smoke).
    xheal::util::Rng rng(17);
    for (int trial = 0; trial < 3; ++trial) {
        auto g = wl::make_random_regular(14, 4, rng);
        EXPECT_GE(edge_expansion_exact(g), 0.5);
    }
}

}  // namespace
