// Protocol-cost tests for DistributedXheal: each repair event must charge
// the LOCAL-model costs Section 5 assigns to it, and the combine-phase BFS
// flood must actually reach the whole combined cloud.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>

#include "core/distributed_xheal.hpp"
#include "core/session.hpp"
#include "graph/algorithms.hpp"
#include "scenario/trace.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

TEST(DistributedProtocol, Case1CostDecomposition) {
    // Star center deletion with k leaves: notices (k) + election (k-1 msgs,
    // ceil(log2 k) rounds) + install (2 per claimed edge + vice) round.
    const std::size_t k = 64;
    Graph g = wl::make_star(k);
    DistributedXheal healer(XhealConfig{2, 5});
    auto report = healer.on_delete(g, 0);

    const auto& reg = healer.registry();
    auto colors = reg.colors();
    ASSERT_EQ(colors.size(), 1u);
    std::size_t cloud_edges = reg.find(colors.front())->claimed.size();

    std::size_t expected = k                      // deletion notices
                           + (k - 1)              // tournament messages
                           + 2 * cloud_edges + 1; // install + vice-leader
    EXPECT_EQ(report.messages, expected);

    std::size_t election_rounds = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(k))));
    // notice round + election rounds + install round
    EXPECT_EQ(report.rounds, 1 + election_rounds + 1);
}

TEST(DistributedProtocol, FixCloudChargesSpliceAndLeaderHandover) {
    Graph g = wl::make_star(16);
    DistributedXheal healer(XhealConfig{2, 5});
    healer.on_delete(g, 0);  // create cloud
    const auto& reg = healer.registry();
    auto colors = reg.colors();
    ASSERT_EQ(colors.size(), 1u);
    NodeId leader = reg.find(colors.front())->leader;

    // Deleting the leader forces the vice-leader announce broadcast.
    auto report = healer.on_delete(g, leader);
    std::size_t cloud_size = reg.find(colors.front())->size();
    // notices (deg) + splices (<= kappa) + leader announce (size) at least.
    EXPECT_GE(report.messages, cloud_size);
    EXPECT_LE(report.rounds, 6u);
}

TEST(DistributedProtocol, InsertMemberIsConstantCost) {
    // Trigger a bridge-replacement INSERT via a Case 2.2 deletion and check
    // it stays O(kappa) messages, O(1) rounds per event.
    Graph g;
    NodeId c1 = g.add_node(), c2 = g.add_node(), x = g.add_node();
    NodeId a1 = g.add_node(), a2 = g.add_node(), a3 = g.add_node();
    NodeId b1 = g.add_node(), b2 = g.add_node(), b3 = g.add_node();
    for (NodeId v : {x, a1, a2, a3}) g.add_black_edge(c1, v);
    for (NodeId v : {x, b1, b2, b3}) g.add_black_edge(c2, v);
    DistributedXheal healer(XhealConfig{2, 7});
    healer.on_delete(g, c1);
    healer.on_delete(g, c2);
    healer.on_delete(g, x);  // secondary cloud appears

    // Find and delete a bridge (non-free node).
    NodeId bridge = xheal::graph::invalid_node;
    for (NodeId v : g.nodes()) {
        if (!healer.registry().is_free(v)) bridge = v;
    }
    ASSERT_NE(bridge, xheal::graph::invalid_node);
    auto report = healer.on_delete(g, bridge);
    // Case 2.2 on tiny clouds: bounded by a small constant budget.
    EXPECT_LE(report.messages, 80u);
    EXPECT_LE(report.rounds, 20u);
    EXPECT_TRUE(xheal::graph::is_connected(g));
}

TEST(DistributedProtocol, CombineFloodCoversCombinedCloud) {
    // Force combines (kappa = 2) and verify the flood's message count is at
    // least the combined cloud's edge count (every edge carries the wave or
    // the convergecast) and rounds stay logarithmic-ish in the cloud size.
    xheal::util::Rng rng(17);
    Graph g = wl::make_erdos_renyi(26, 0.25, rng);
    DistributedXheal healer(XhealConfig{1, 23});
    for (int step = 0; step < 200 && g.node_count() > 4; ++step) {
        NodeId victim = xheal::graph::invalid_node;
        for (NodeId v : g.nodes()) {
            if (!healer.registry().is_free(v)) {
                victim = v;
                break;
            }
        }
        if (victim == xheal::graph::invalid_node) victim = g.nodes().front();
        auto report = healer.on_delete(g, victim);
        if (report.combines == 0) continue;

        // Locate the combine event and its cloud.
        for (const auto& ev : healer.inner().last_events()) {
            if (ev.kind != HealEvent::Kind::combine) continue;
            const Cloud* cloud = healer.registry().find(ev.color);
            if (cloud == nullptr) continue;  // absorbed by a later event
            EXPECT_GE(report.messages, cloud->claimed.size());
            EXPECT_LE(report.rounds,
                      4 * static_cast<std::size_t>(
                              std::log2(static_cast<double>(cloud->size()) + 2)) +
                          24);
        }
        return;  // one verified combine suffices
    }
    FAIL() << "no combine occurred";
}

TEST(DistributedProtocol, InsertionChargesNothing) {
    Graph g = wl::make_cycle(8);
    DistributedXheal healer(XhealConfig{2, 9});
    healer.on_delete(g, 0);  // attach actors, run one repair
    auto before = healer.network().messages_sent();
    NodeId v = g.add_node();
    g.add_black_edge(v, 2);
    healer.on_insert(g, v);
    EXPECT_EQ(healer.network().messages_sent(), before);
}

// ---- lossy-network hardening ----

TEST(DistributedProtocol, LossyRepairConvergesToLosslessGraph) {
    // The load-bearing invariant: repair decisions are leader-local, so
    // drops change only the bill. Run the identical deletion schedule
    // through a lossless and a drop=0.2 healer (same healer seed) and the
    // repaired graphs must stay byte-identical at every step, while the
    // lossy run pays strictly more messages and some retries.
    Graph g_perfect = wl::make_star(32);
    Graph g_lossy = wl::make_star(32);
    DistributedXheal perfect(XhealConfig{2, 5});
    DistributedXheal lossy(XhealConfig{2, 5}, DistFaultConfig{0.2, 0, 8});

    std::uint64_t messages_perfect = 0, messages_lossy = 0;
    std::size_t retries_total = 0;
    while (g_perfect.node_count() > 6) {
        NodeId victim = g_perfect.nodes().front();
        ASSERT_EQ(victim, g_lossy.nodes().front());
        auto rp = perfect.on_delete(g_perfect, victim);
        auto rl = lossy.on_delete(g_lossy, victim);
        EXPECT_EQ(rp.retries, 0u);
        messages_perfect += rp.messages;
        messages_lossy += rl.messages;
        retries_total += rl.retries;
        ASSERT_EQ(xheal::scenario::graph_fingerprint(g_perfect),
                  xheal::scenario::graph_fingerprint(g_lossy));
    }
    EXPECT_GT(messages_lossy, messages_perfect);  // acks + re-sends
    EXPECT_GT(retries_total, 0u);                 // drops actually happened
    EXPECT_GT(lossy.network().messages_dropped(), 0u);
}

TEST(DistributedProtocol, LossyRunsAreDeterministic) {
    // Same seeds, same schedule: identical billing, drop coin by drop coin.
    auto run_once = [] {
        Graph g = wl::make_star(24);
        DistributedXheal healer(XhealConfig{2, 7}, DistFaultConfig{0.15, 1, 8});
        std::uint64_t messages = 0;
        std::size_t rounds = 0, retries = 0;
        while (g.node_count() > 8) {
            auto r = healer.on_delete(g, g.nodes().front());
            messages += r.messages;
            rounds += r.rounds;
            retries += r.retries;
        }
        return std::tuple{messages, rounds, retries,
                          xheal::scenario::graph_fingerprint(g)};
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(DistributedProtocol, LatencyMultipliesRoundsExactly) {
    // drop = 0, latency = L keeps the lossless fast path (no acks): every
    // delivery wave costs 1 + L rounds instead of 1, so the star repair's
    // round bill is exactly (1 + L) times the lossless bill, with an
    // unchanged message count.
    const std::size_t k = 16, L = 2;
    Graph g_base = wl::make_star(k);
    Graph g_slow = wl::make_star(k);
    DistributedXheal base(XhealConfig{2, 5});
    DistributedXheal slow(XhealConfig{2, 5}, DistFaultConfig{0.0, L, 8});
    auto rb = base.on_delete(g_base, 0);
    auto rs = slow.on_delete(g_slow, 0);
    EXPECT_EQ(rs.rounds, (1 + L) * rb.rounds);
    EXPECT_EQ(rs.messages, rb.messages);
    EXPECT_EQ(rs.retries, 0u);
}

TEST(DistributedProtocol, CombineFloodSurvivesDrops) {
    // Replay the combine-hunting loop of CombineFloodCoversCombinedCloud
    // under drop = 0.15: the flood + convergecast must still complete and
    // the repaired graph must match the lossless twin's after every event.
    xheal::util::Rng rng(17);
    Graph g_perfect = wl::make_erdos_renyi(26, 0.25, rng);
    Graph g_lossy = g_perfect;
    DistributedXheal perfect(XhealConfig{1, 23});
    DistributedXheal lossy(XhealConfig{1, 23}, DistFaultConfig{0.15, 0, 8});
    bool combined = false;
    for (int step = 0; step < 200 && g_perfect.node_count() > 4; ++step) {
        NodeId victim = xheal::graph::invalid_node;
        for (NodeId v : g_perfect.nodes()) {
            if (!perfect.registry().is_free(v)) {
                victim = v;
                break;
            }
        }
        if (victim == xheal::graph::invalid_node)
            victim = g_perfect.nodes().front();
        auto rp = perfect.on_delete(g_perfect, victim);
        lossy.on_delete(g_lossy, victim);
        ASSERT_EQ(xheal::scenario::graph_fingerprint(g_perfect),
                  xheal::scenario::graph_fingerprint(g_lossy));
        combined = combined || rp.combines > 0;
    }
    EXPECT_TRUE(combined) << "schedule no longer exercises a combine";
    EXPECT_TRUE(xheal::graph::is_connected(g_lossy));
}

TEST(DistributedProtocol, ActorLifecycleTracksGraph) {
    Graph g = wl::make_star(8);
    DistributedXheal healer(XhealConfig{2, 11});
    healer.on_delete(g, 0);
    EXPECT_FALSE(healer.network().has_node(0));
    for (NodeId v : g.nodes()) EXPECT_TRUE(healer.network().has_node(v));
    NodeId w = g.add_node();
    g.add_black_edge(w, g.nodes().front());
    healer.on_insert(g, w);
    EXPECT_TRUE(healer.network().has_node(w));
}

}  // namespace
