// Failure injection: adversarial kill sequences aimed at the healer's
// internal machinery — leaders, vice-leaders, whole clouds, cascades down
// to the minimum graph — asserting full invariants after every kill.
#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "graph/algorithms.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::ColorId;
using xheal::graph::Graph;
using xheal::graph::NodeId;
namespace wl = xheal::workload;

/// A leader of any live cloud, or invalid_node.
NodeId find_a_leader(const CloudRegistry& reg) {
    for (ColorId c : reg.colors()) return reg.find(c)->leader;
    return xheal::graph::invalid_node;
}

TEST(FailureInjection, RepeatedLeaderAssassination) {
    Graph g = wl::make_star(40);
    XhealHealer healer(XhealConfig{2, 3});
    healer.on_delete(g, 0);  // create the first cloud
    for (int kill = 0; kill < 30 && g.node_count() > 4; ++kill) {
        NodeId leader = find_a_leader(healer.registry());
        if (leader == xheal::graph::invalid_node) break;
        healer.on_delete(g, leader);
        ASSERT_TRUE(xheal::graph::is_connected(g)) << "kill " << kill;
        ASSERT_NO_THROW(healer.check_consistency(g)) << "kill " << kill;
    }
}

TEST(FailureInjection, ViceLeaderAssassination) {
    Graph g = wl::make_star(40);
    XhealHealer healer(XhealConfig{2, 7});
    healer.on_delete(g, 0);
    for (int kill = 0; kill < 30 && g.node_count() > 4; ++kill) {
        NodeId victim = xheal::graph::invalid_node;
        for (ColorId c : healer.registry().colors()) {
            NodeId vice = healer.registry().find(c)->vice_leader;
            if (vice != xheal::graph::invalid_node) {
                victim = vice;
                break;
            }
        }
        if (victim == xheal::graph::invalid_node) break;
        healer.on_delete(g, victim);
        ASSERT_TRUE(xheal::graph::is_connected(g));
        ASSERT_NO_THROW(healer.check_consistency(g));
    }
}

TEST(FailureInjection, WipeOutAnEntireCloud) {
    // Delete every member of the first cloud, one per step.
    Graph g = wl::make_star(20);
    XhealHealer healer(XhealConfig{2, 11});
    healer.on_delete(g, 0);
    auto colors = healer.registry().colors();
    ASSERT_FALSE(colors.empty());
    ColorId target = colors.front();
    for (int guard = 0; guard < 25 && healer.registry().exists(target); ++guard) {
        NodeId member = healer.registry().find(target)->members_sorted().front();
        healer.on_delete(g, member);
        ASSERT_TRUE(xheal::graph::is_connected(g));
        ASSERT_NO_THROW(healer.check_consistency(g));
    }
    EXPECT_FALSE(healer.registry().exists(target));
}

TEST(FailureInjection, CascadeToMinimumGraph) {
    // Grind several topologies all the way down to 2 nodes with the
    // worst-victim heuristic (max colored degree).
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        xheal::util::Rng rng(seed);
        Graph g = wl::make_erdos_renyi(20, 0.3, rng);
        XhealHealer healer(XhealConfig{2, seed});
        while (g.node_count() > 2) {
            NodeId victim = xheal::graph::invalid_node;
            std::size_t best = 0;
            for (NodeId v : g.nodes()) {
                std::size_t colored = 0;
                for (const auto& [u, claims] : g.adjacency(v)) {
                    (void)u;
                    if (claims.colored()) ++colored;
                }
                if (victim == xheal::graph::invalid_node || colored > best) {
                    victim = v;
                    best = colored;
                }
            }
            healer.on_delete(g, victim);
            ASSERT_TRUE(xheal::graph::is_connected(g));
            ASSERT_NO_THROW(healer.check_consistency(g));
        }
    }
}

TEST(FailureInjection, InsertionsDuringCascade) {
    // Interleave insertions touching cloud members mid-cascade.
    xheal::util::Rng rng(9);
    auto healer_ptr = std::make_unique<XhealHealer>(XhealConfig{2, 13});
    std::size_t kappa = healer_ptr->kappa();
    HealingSession session(wl::make_star(16), std::move(healer_ptr));
    session.delete_node(0);
    for (int step = 0; step < 40; ++step) {
        if (step % 4 == 3) {
            auto alive = session.alive_nodes();
            auto nbrs = rng.sample(alive, std::min<std::size_t>(2, alive.size()));
            std::sort(nbrs.begin(), nbrs.end());
            session.insert_node(nbrs);
        } else if (session.current().node_count() > 4) {
            auto alive = session.alive_nodes();
            session.delete_node(alive[rng.index(alive.size())]);
        }
        ASSERT_NO_THROW(check_session(session, kappa)) << "step " << step;
    }
}

TEST(FailureInjection, StarOfStarsCollapse) {
    // A hub of hubs: deleting the super-hub then each sub-hub exercises
    // clouds containing other clouds' members.
    Graph g;
    NodeId super_hub = g.add_node();
    std::vector<NodeId> hubs;
    for (int i = 0; i < 5; ++i) {
        NodeId hub = g.add_node();
        hubs.push_back(hub);
        g.add_black_edge(super_hub, hub);
        for (int leaf = 0; leaf < 4; ++leaf) {
            NodeId l = g.add_node();
            g.add_black_edge(hub, l);
        }
    }
    XhealHealer healer(XhealConfig{2, 19});
    healer.on_delete(g, super_hub);
    ASSERT_TRUE(xheal::graph::is_connected(g));
    for (NodeId hub : hubs) {
        healer.on_delete(g, hub);
        ASSERT_TRUE(xheal::graph::is_connected(g));
        ASSERT_NO_THROW(healer.check_consistency(g));
    }
}

TEST(FailureInjection, PathologicalTwoNodeGraphs) {
    Graph g = wl::make_path(2);
    XhealHealer healer(XhealConfig{2, 23});
    healer.on_delete(g, 0);
    EXPECT_EQ(g.node_count(), 1u);
    healer.on_delete(g, 1);
    EXPECT_EQ(g.node_count(), 0u);
    healer.check_consistency(g);
}

}  // namespace
