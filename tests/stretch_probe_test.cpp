// Sampled-stretch probe properties: the budgeted probe is a lower bound on
// the exact stretch (a max over a subset of sources can only miss pairs),
// it reaches the exact value once the budget covers every live node, and
// the probe RNG stream never perturbs run determinism (trace hash and
// final-graph fingerprint are budget-independent).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/metrics.hpp"
#include "graph/algorithms.hpp"
#include "scenario/runner.hpp"
#include "spectral/probes.hpp"

using namespace xheal;

namespace {

scenario::ScenarioSpec churn_spec() {
    return scenario::ScenarioSpec::parse(R"(
name stretch-churn
seed 23
topology random-regular n=48 d=4
healer xheal d=2
phase churn steps=50 delete_fraction=0.6 deleter=random inserter=random-attach k=3 min_nodes=16
)");
}

/// Exact stretch of the paper's metric, clamped to the probe's >= 1 floor.
double exact_stretch(const graph::Graph& g, const graph::Graph& ref) {
    return std::max(1.0, graph::stretch_vs(g, ref));
}

}  // namespace

TEST(StretchProbe, SampledValueNeverExceedsExactAndConvergesWithBudget) {
    scenario::ScenarioRunner runner(churn_spec());
    runner.run();
    const graph::Graph& g = runner.session().current();
    const graph::Graph& ref = runner.session().reference();

    double exact = exact_stretch(g, ref);
    ASSERT_TRUE(std::isfinite(exact));

    spectral::ProbeEngine engine;
    double previous_best = 0.0;
    for (std::size_t budget : {1u, 2u, 4u, 8u, 16u, 32u}) {
        // Average-free determinism: a fresh rng per budget level keeps each
        // draw independent of the others.
        util::Rng rng(7000 + budget);
        double sampled = engine.sampled_stretch(g, ref, budget, rng);
        EXPECT_LE(sampled, exact) << "budget " << budget;
        EXPECT_GE(sampled, 1.0);
        previous_best = std::max(previous_best, sampled);
    }
    // A budget covering every live node degenerates to the exact sweep.
    util::Rng rng(1);
    double full = engine.sampled_stretch(g, ref, g.node_count(), rng);
    EXPECT_DOUBLE_EQ(full, exact);
    EXPECT_LE(previous_best, full);
}

TEST(StretchProbe, FullBudgetMatchesTheLegacyMetric) {
    scenario::ScenarioRunner runner(churn_spec());
    runner.run();
    const graph::Graph& g = runner.session().current();
    const graph::Graph& ref = runner.session().reference();

    spectral::ProbeEngine engine;
    util::Rng probe_rng(42);
    util::Rng legacy_rng(42);
    double sparse = engine.sampled_stretch(g, ref, g.node_count() + 5, probe_rng);
    double legacy = core::sampled_stretch(g, ref, g.node_count() + 5, legacy_rng);
    EXPECT_DOUBLE_EQ(sparse, legacy);
}

TEST(StretchProbe, TrivialGraphsReportUnitStretch) {
    spectral::ProbeEngine engine;
    util::Rng rng(3);
    graph::Graph tiny;
    tiny.add_node();
    EXPECT_DOUBLE_EQ(engine.sampled_stretch(tiny, tiny, 8, rng), 1.0);
    // Budget 0 samples nothing: the probe reports the trivial floor.
    graph::Graph pair;
    pair.add_node();
    pair.add_node();
    pair.add_black_edge(0, 1);
    EXPECT_DOUBLE_EQ(engine.sampled_stretch(pair, pair, 0, rng), 1.0);
}

TEST(StretchProbe, DisconnectionInTheHealedGraphIsInfinite) {
    // ref: a path 0-1-2; g: node 1 deleted and no healing (no-heal would
    // leave 0 and 2 disconnected while ref connects them through 1).
    graph::Graph ref;
    for (int i = 0; i < 3; ++i) ref.add_node();
    ref.add_black_edge(0, 1);
    ref.add_black_edge(1, 2);
    graph::Graph g;
    for (int i = 0; i < 3; ++i) g.add_node();
    g.add_black_edge(0, 1);
    g.add_black_edge(1, 2);
    g.remove_node(1);

    spectral::ProbeEngine engine;
    util::Rng rng(9);
    EXPECT_TRUE(std::isinf(engine.sampled_stretch(g, ref, 8, rng)));
}

TEST(StretchProbe, ProbeBudgetLeavesRunDeterminismUnchanged) {
    auto base_spec = churn_spec();
    auto probed_spec = churn_spec();
    probed_spec.probes = {"stretch", "lambda2", "connected"};
    probed_spec.sample_every = 7;
    probed_spec.stretch_samples = 3;
    auto heavy_spec = churn_spec();
    heavy_spec.probes = {"stretch"};
    heavy_spec.sample_every = 2;
    heavy_spec.stretch_samples = 31;

    auto base = scenario::ScenarioRunner(base_spec).run();
    auto probed = scenario::ScenarioRunner(probed_spec).run();
    auto heavy = scenario::ScenarioRunner(heavy_spec).run();
    EXPECT_EQ(base.trace_hash, probed.trace_hash);
    EXPECT_EQ(base.trace_hash, heavy.trace_hash);
    EXPECT_EQ(base.fingerprint, probed.fingerprint);
    EXPECT_EQ(base.fingerprint, heavy.fingerprint);
}
