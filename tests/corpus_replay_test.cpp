// Fuzz-corpus replay: every (.scn, .jsonl) reproducer pair checked in
// under tests/data/corpus/ is replayed byte-for-byte on every ctest run —
// the same contract as the golden traces, but over *fuzz findings*: each
// pair was produced by `xheal_run fuzz` catching an invariant violation
// (the `faulty` drop-repair healer) and ddmin-shrinking it. Replaying them
// forever pins the three properties every forensics artifact rests on:
//
//   1. shrunk reproducers are standalone — the spec alone rebuilds the
//      session the executor used (no hidden state);
//   2. canonical applied streams survive strict replay — hashes match
//      byte-for-byte, including through grammar-v2 specs (ramps, mixtures);
//   3. the trace format and engine semantics have not drifted — else every
//      reproducer ever shared in an issue or CI artifact is silently dead.
//
// To add a pair: run `xheal_run fuzz <spec> --out tests/data/corpus/<name>`
// (or `xheal_run shrink`), verify `xheal_run replay` passes, check both
// files in. Pairs whose violation is a healer exception cannot live here —
// their strict replay re-raises at the final event by design.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

using namespace xheal;

namespace {

std::filesystem::path corpus_dir() {
    return std::filesystem::path(XHEAL_REPO_DIR) / "tests" / "data" / "corpus";
}

std::vector<std::string> corpus_names() {
    std::vector<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir()))
        if (entry.is_regular_file() && entry.path().extension() == ".scn")
            names.push_back(entry.path().stem().string());
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace

// An empty corpus would make the replay suite below pass vacuously; the
// checked-in seed set (faulty-healer finds, incl. one grammar-v2 spec and
// one compact-epoch stream) is four pairs, and every .scn must have its
// .jsonl.
TEST(CorpusReplay, CorpusIsPresentAndPaired) {
    auto names = corpus_names();
    EXPECT_GE(names.size(), 4u);
    for (const auto& name : names) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(std::filesystem::exists(corpus_dir() / (name + ".jsonl")))
            << name << ".scn has no recorded stream";
    }
}

// The id-compaction epoch (DESIGN.md decision 12) is part of the trace
// format; at least one reproducer must carry a compact event so format
// drift there cannot go unnoticed by the corpus.
TEST(CorpusReplay, CorpusCoversCompactEvents) {
    bool found = false;
    for (const auto& name : corpus_names()) {
        auto trace = scenario::read_trace_file(
            (corpus_dir() / (name + ".jsonl")).string());
        for (const auto& event : trace.events)
            if (event.kind == scenario::TraceEvent::Kind::compact) found = true;
    }
    EXPECT_TRUE(found) << "no corpus reproducer carries a compact event";
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, PairReplaysByteForByte) {
    const std::string name = GetParam();
    auto spec =
        scenario::ScenarioSpec::parse_file((corpus_dir() / (name + ".scn")).string());
    auto trace =
        scenario::read_trace_file((corpus_dir() / (name + ".jsonl")).string());

    // The recorded header still names the checked-in spec.
    EXPECT_EQ(trace.scenario, spec.name);
    EXPECT_EQ(trace.seed, spec.seed);
    EXPECT_EQ(trace.spec_hash, spec.content_hash())
        << name << ".scn edited since the stream was recorded";

    // Strict replay must reproduce the recorded stream hash and the final
    // healed-graph fingerprint exactly.
    auto result = scenario::ScenarioRunner(spec).replay(trace);
    EXPECT_EQ(result.trace_hash, trace.trace_hash);
    EXPECT_EQ(result.fingerprint, trace.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay, ::testing::ValuesIn(corpus_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             std::string name = info.param;
                             for (char& c : name)
                                 if (!std::isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });
