// Structural-event allocation soak: the repair hot path is allocation-free
// in steady state (repair_scratch_soak_test), and since the arena'd
// connect_units landed the STRUCTURAL events — creating a new secondary
// expander cloud and the costly combine — are too: clouds are recycled
// through the registry's slot pool, heal events and their member vectors
// through the healer's event pool, and every former per-call container is
// a persistent scratch buffer. This soak drives exactly those paths (a
// bridge-hunting kill loop starves clouds of free nodes, forcing
// FixSecondary and combines) and PINS the steady-state budget at ZERO.
//
// "Steady state" means every pooled buffer has seen its peak: the cloud
// pool its peak live-cloud count, each revived cloud's H-graph its peak
// membership, the event pool its peak per-repair event count. Those peaks
// depend on how the kill schedule unfolds, so a fixed-length warmup can't
// be trusted; instead the warmup is ADAPTIVE — batches of bridge kills
// until two consecutive batches allocate nothing — and only then does the
// counted window open. A single allocation in the window fails the pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <vector>

#include "core/cloud_registry.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

// ----- counting global allocator -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace xheal;
using graph::NodeId;

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

/// Bridge-first victim picker (the adversary::BridgeHunterDeletion policy)
/// with caller-owned scratch, so the PICKER contributes no allocations to
/// the counted window — the budget below measures the healer alone.
NodeId pick_bridge_victim(const core::HealingSession& session,
                          const core::CloudRegistry& registry,
                          std::vector<graph::ColorId>& prim_scratch) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_score = 0;
    for (NodeId v : g.nodes()) {
        if (registry.is_free(v)) continue;
        registry.primary_clouds_of(v, prim_scratch);
        std::size_t score = 1 + prim_scratch.size();
        if (best == graph::invalid_node || score > best_score) {
            best = v;
            best_score = score;
        }
    }
    if (best != graph::invalid_node) return best;
    // Before any cloud exists (or between waves) fall back to the hub, the
    // deletion most likely to spawn the first secondary clouds.
    std::size_t best_degree = 0;
    for (NodeId v : g.nodes()) {
        std::size_t d = g.degree(v);
        if (best == graph::invalid_node || d > best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

/// Adversary inserts restoring the population to `target`, each new node
/// attached to three distinct random survivors. Runs OUTSIDE the measured
/// batches: insertion itself may allocate (fresh ids grow the graph's slot
/// table and the registry's membership index), but it keeps the workload
/// stationary so the kill batches can reach a true steady state.
void replenish(core::HealingSession& session, util::Rng& rng, std::size_t target,
               std::vector<NodeId>& alive, std::vector<NodeId>& nbrs) {
    while (session.current().node_count() < target) {
        const auto view = session.current().nodes();
        alive.assign(view.begin(), view.end());
        nbrs.clear();
        while (nbrs.size() < 3 && nbrs.size() < alive.size()) {
            NodeId w = alive[rng.index(alive.size())];
            if (std::find(nbrs.begin(), nbrs.end(), w) == nbrs.end()) nbrs.push_back(w);
        }
        session.insert_node(nbrs);
    }
}

}  // namespace

TEST(ConnectUnitsSoak, StructuralEventsAllocateNothingInSteadyState) {
    util::Rng topo_rng(29);
    auto healer = std::make_unique<core::XhealHealer>(core::XhealConfig{/*d=*/2,
                                                                       /*seed=*/17});
    const core::CloudRegistry& registry = healer->registry();
    core::HealingSession session(workload::make_erdos_renyi(140, 0.12, topo_rng),
                                 std::move(healer));

    std::vector<graph::ColorId> prim_scratch;
    std::vector<NodeId> alive_scratch, nbr_scratch;
    util::Rng insert_rng(99);
    core::RepairReport window_totals;

    // Adaptive warmup: batches of 10 bridge kills, population replenished
    // between batches (outside measurement) so the workload is stationary,
    // until two consecutive batches allocate nothing — only then has every
    // pool provably seen its peak for this schedule. A fixed-length warmup
    // can't be trusted: the peaks (pool slots, per-slot H-graph sizes,
    // per-repair event counts) depend on how the schedule unfolds.
    std::size_t warm_batches = 0;
    std::size_t zero_streak = 0;
    while (zero_streak < 2) {
        ASSERT_LT(warm_batches, 300u)
            << "warmup never reached an allocation-free batch — the arena is "
               "no longer reaching steady state";
        replenish(session, insert_rng, 140, alive_scratch, nbr_scratch);
        std::uint64_t batch_before = allocations();
        for (int i = 0; i < 10; ++i) {
            NodeId v = pick_bridge_victim(session, registry, prim_scratch);
            ASSERT_NE(v, graph::invalid_node);
            session.delete_node(v);
        }
        zero_streak = allocations() == batch_before ? zero_streak + 1 : 0;
        ++warm_batches;
    }
    ASSERT_GT(registry.cloud_count(), 0u);

    // Counted window: 30 more bridge kills, all forcing FixSecondary /
    // combine repairs (each one creates or merges clouds).
    replenish(session, insert_rng, 140, alive_scratch, nbr_scratch);
    std::uint64_t before = allocations();
    std::size_t deletions = 0;
    for (int i = 0; i < 30; ++i) {
        NodeId v = pick_bridge_victim(session, registry, prim_scratch);
        ASSERT_NE(v, graph::invalid_node);
        auto report = session.delete_node(v);
        window_totals.accumulate(report);
        ++deletions;
    }
    std::uint64_t allocated = allocations() - before;

    // The window must actually have exercised the structural paths.
    ASSERT_EQ(deletions, 30u);
    ASSERT_GT(window_totals.combines, 0u) << "workload no longer forces combines";
    ASSERT_GT(window_totals.clouds_touched, deletions)
        << "workload no longer creates/merges clouds";

    // The PIN: zero. Cloud creation recycles a pooled slot, combine reuses
    // the survivor's H-graph storage, events and member lists come from the
    // event pool — nothing on the structural path may touch the heap once
    // warm. Any regression (a per-event container, a re-materialized
    // membership vector) fails here with the exact count.
    EXPECT_EQ(allocated, 0u)
        << allocated << " allocations over " << window_totals.clouds_touched
        << " structural cloud events — the arena'd connect_units path "
           "regressed";
    std::cout << "[ BUDGET   ] " << allocated << " allocations / "
              << window_totals.clouds_touched << " cloud events after "
              << warm_batches << " warmup batches (combines: "
              << window_totals.combines << ")\n";

    session.healer().check_consistency(session.current());
}
