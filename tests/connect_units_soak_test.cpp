// Structural-event allocation soak: the repair hot path is allocation-free
// in steady state (repair_scratch_soak_test), but ROADMAP lists the
// remaining exception — connect_units still allocates on STRUCTURAL
// events: creating a new secondary expander cloud and the costly combine.
// This soak drives exactly those paths (a bridge-hunting kill loop starves
// clouds of free nodes, forcing FixSecondary and combines) and PINS the
// current allocation budget, so that
//
//   - an accidental allocation regression on the structural path fails the
//     upper bound loudly, and
//   - the PR that finally de-allocates secondary creation/combine must
//     lower the pinned bound in the same commit (the lower bound below
//     fails once the allocations disappear), keeping ROADMAP honest.
//
// The budget is counted per structural event (clouds_touched across the
// window's repairs), not per run, so the pin survives schedule tweaks.
// Measured on the reference toolchain (gcc/libstdc++ Release): ~9
// allocations per structural cloud event — the new cloud's H-graph slot
// vectors, membership rows and claim mirror.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>
#include <vector>

#include "core/cloud_registry.hpp"
#include "core/session.hpp"
#include "core/xheal_healer.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

// ----- counting global allocator -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace xheal;
using graph::NodeId;

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

/// Bridge-first victim picker (the adversary::BridgeHunterDeletion policy)
/// with caller-owned scratch, so the PICKER contributes no allocations to
/// the counted window — the budget below measures the healer alone.
NodeId pick_bridge_victim(const core::HealingSession& session,
                          const core::CloudRegistry& registry,
                          std::vector<graph::ColorId>& prim_scratch) {
    const auto& g = session.current();
    NodeId best = graph::invalid_node;
    std::size_t best_score = 0;
    for (NodeId v : g.nodes()) {
        if (registry.is_free(v)) continue;
        registry.primary_clouds_of(v, prim_scratch);
        std::size_t score = 1 + prim_scratch.size();
        if (best == graph::invalid_node || score > best_score) {
            best = v;
            best_score = score;
        }
    }
    if (best != graph::invalid_node) return best;
    // Before any cloud exists (or between waves) fall back to the hub, the
    // deletion most likely to spawn the first secondary clouds.
    std::size_t best_degree = 0;
    for (NodeId v : g.nodes()) {
        std::size_t d = g.degree(v);
        if (best == graph::invalid_node || d > best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

}  // namespace

TEST(ConnectUnitsSoak, StructuralEventAllocationsStayWithinThePinnedBudget) {
    util::Rng topo_rng(29);
    auto healer = std::make_unique<core::XhealHealer>(core::XhealConfig{/*d=*/2,
                                                                       /*seed=*/17});
    const core::CloudRegistry& registry = healer->registry();
    core::HealingSession session(workload::make_erdos_renyi(140, 0.12, topo_rng),
                                 std::move(healer));

    std::vector<graph::ColorId> prim_scratch;
    core::RepairReport window_totals;

    // Warmup: kill bridges until the cloud machinery exists and every
    // steady-state scratch buffer has seen its peak (the same contract the
    // steady-state soaks rely on). 40 deletions create the first secondary
    // clouds and trigger early combines.
    for (int i = 0; i < 40; ++i) {
        NodeId v = pick_bridge_victim(session, registry, prim_scratch);
        if (v == graph::invalid_node) break;
        session.delete_node(v);
    }
    ASSERT_GT(registry.cloud_count(), 0u);

    // Counted window: 50 more bridge kills, all forcing FixSecondary /
    // combine repairs (each one creates or merges clouds).
    std::uint64_t before = allocations();
    std::size_t deletions = 0;
    for (int i = 0; i < 50; ++i) {
        NodeId v = pick_bridge_victim(session, registry, prim_scratch);
        if (v == graph::invalid_node) break;
        auto report = session.delete_node(v);
        window_totals.accumulate(report);
        ++deletions;
    }
    std::uint64_t allocated = allocations() - before;

    // The window must actually have exercised the structural paths.
    ASSERT_GT(deletions, 30u);
    ASSERT_GT(window_totals.combines, 0u) << "workload no longer forces combines";
    ASSERT_GT(window_totals.clouds_touched, deletions)
        << "workload no longer creates/merges clouds";

    // Structural events this window: every repair here touched clouds, so
    // normalize by clouds_touched (creation + combine + dissolution).
    double per_event =
        static_cast<double>(allocated) / static_cast<double>(window_totals.clouds_touched);

    // The PIN. Upper bound: ~4x the measured ~9/event on the reference
    // toolchain — an O(population) allocation regression (e.g.
    // re-materializing membership vectors per event) blows through it.
    // Lower bound: connect_units DOES allocate today (ROADMAP); when a
    // future PR removes those allocations this assertion fails and the
    // budget must be re-pinned to zero in the same commit.
    EXPECT_GT(allocated, 0u)
        << "structural events no longer allocate — ROADMAP item done; re-pin to 0";
    EXPECT_LE(per_event, 40.0)
        << allocated << " allocations over " << window_totals.clouds_touched
        << " structural cloud events (" << per_event << " per event)";
    // Keep the measured figure in the test log for future re-pinning.
    std::cout << "[ BUDGET   ] " << allocated << " allocations / "
              << window_totals.clouds_touched << " cloud events = " << per_event
              << " per structural event (combines: " << window_totals.combines
              << ")\n";

    session.healer().check_consistency(session.current());
}
