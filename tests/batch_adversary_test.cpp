// Batched adversary (grammar: `batch=k` phase key) — k deletions are
// staged per repair flush, amortizing H-graph splices and claim-mirror
// syncs across the batch (DESIGN.md decision 9). These tests pin the
// contract that makes batch>1 safe to ship:
//
//   * the trace format is unchanged — each deletion is still logged as its
//     own event — and a recorded batched run replays byte-for-byte (same
//     trace hash AND same final-graph fingerprint, which means replay
//     reproduces every flush boundary exactly: one missed boundary would
//     desynchronize the healer's rng and change the healed graph);
//   * batch=1 is the identity — the spec text omits it and the semantics
//     (and hashes) are exactly the unbatched ones, so every pre-batch
//     golden trace stays valid;
//   * the key round-trips through spec text and participates in the
//     content hash only when it is not the default.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/runner.hpp"
#include "scenario/trace.hpp"

using namespace xheal;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;

namespace {

/// Churny schedule with two batched phases (one batch larger than its
/// per-step deletion count, exercising the flush-at-phase-end path), an
/// unbatched phase in the middle, inserts interleaved (every insert forces
/// a flush), and a sampling cadence that lands mid-batch.
ScenarioSpec batched_spec() {
    return ScenarioSpec::parse(R"(
name batch-churn
seed 11
topology erdos-renyi n=160 p=0.08
healer xheal d=2
probes connected
sample_every 20
phase surge steps=60 delete_fraction=0.8 deleter=random inserter=random-attach k=3 batch=16 min_nodes=24
phase calm steps=30 delete_fraction=0.3 deleter=random inserter=random-attach k=3 min_nodes=24
phase finale steps=25 delete_fraction=1 deleter=max-degree batch=64 min_nodes=24
)");
}

}  // namespace

TEST(BatchAdversary, BatchKeyRoundTripsThroughSpecText) {
    auto spec = batched_spec();
    ASSERT_EQ(spec.phases.size(), 3u);
    EXPECT_EQ(spec.phases[0].batch, 16u);
    EXPECT_EQ(spec.phases[1].batch, 1u);
    EXPECT_EQ(spec.phases[2].batch, 64u);

    auto reparsed = ScenarioSpec::parse(spec.to_text());
    EXPECT_EQ(reparsed.content_hash(), spec.content_hash());
    EXPECT_EQ(reparsed.phases[0].batch, 16u);
    EXPECT_EQ(reparsed.phases[1].batch, 1u);
    EXPECT_EQ(reparsed.phases[2].batch, 64u);
    // The default never appears in the text: pre-batch specs hash the same.
    EXPECT_EQ(spec.to_text().find("batch=1 "), std::string::npos);
}

TEST(BatchAdversary, BatchZeroIsRejected) {
    EXPECT_THROW(ScenarioSpec::parse(R"(
name bad
seed 1
topology star leaves=8
healer xheal d=2
phase kill steps=1 delete_fraction=1 batch=0
)"),
                 std::runtime_error);
}

TEST(BatchAdversary, BatchedRunIsDeterministic) {
    auto a = ScenarioRunner(batched_spec()).run();
    auto b = ScenarioRunner(batched_spec()).run();
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_GT(a.events.size(), 0u);
}

TEST(BatchAdversary, BatchedTraceReplaysByteForByte) {
    auto spec = batched_spec();
    auto recorded = ScenarioRunner(spec).run();
    auto trace = recorded.to_trace(spec);

    // Serialize + parse the JSONL in between, as xheal_run replay does.
    std::stringstream io;
    scenario::write_trace(io, trace);
    auto loaded = scenario::read_trace(io);
    EXPECT_EQ(loaded.trace_hash, recorded.trace_hash);

    auto replayed = ScenarioRunner(spec).replay(loaded);
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
    // Replay re-derives the per-phase accounting from the event stream.
    ASSERT_EQ(replayed.phases.size(), recorded.phases.size());
    for (std::size_t i = 0; i < recorded.phases.size(); ++i) {
        EXPECT_EQ(replayed.phases[i].deletions, recorded.phases[i].deletions) << i;
        EXPECT_EQ(replayed.phases[i].insertions, recorded.phases[i].insertions) << i;
    }
}

TEST(BatchAdversary, ExplicitBatchOneMatchesUnbatchedSemantics) {
    auto unbatched = batched_spec();
    for (auto& phase : unbatched.phases) phase.batch = 1;

    auto explicit_one = ScenarioSpec::parse(unbatched.to_text());
    ASSERT_EQ(explicit_one.content_hash(), unbatched.content_hash());

    auto a = ScenarioRunner(unbatched).run();
    auto b = ScenarioRunner(explicit_one).run();
    EXPECT_EQ(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(BatchAdversary, BatchingChangesScheduleButKeepsGraphHealthy) {
    // batch>1 is NEW semantics (deferred reconnection), so the event stream
    // legitimately diverges from batch=1 on the same seed — but the healed
    // graph must stay consistent and connected under the same floors.
    auto batched = batched_spec();
    auto flat = batched_spec();
    for (auto& phase : flat.phases) phase.batch = 1;

    auto a = ScenarioRunner(batched).run();
    auto b = ScenarioRunner(flat).run();
    EXPECT_NE(a.trace_hash, b.trace_hash);
    EXPECT_EQ(a.final_sample.components, 1u);
    EXPECT_EQ(b.final_sample.components, 1u);
}
