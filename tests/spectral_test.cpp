#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spectral/jacobi.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/laplacian.hpp"
#include "spectral/tridiag.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::spectral;
namespace wl = xheal::workload;
using xheal::graph::Graph;

TEST(DenseMatrix, MultiplyAndSymmetry) {
    DenseMatrix m(2);
    m.at(0, 0) = 2.0;
    m.at(0, 1) = 1.0;
    m.at(1, 0) = 1.0;
    m.at(1, 1) = 3.0;
    auto y = m.multiply({1.0, 2.0});
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_DOUBLE_EQ(m.symmetry_error(), 0.0);
}

TEST(Jacobi, DiagonalMatrixEigenvalues) {
    DenseMatrix m(3);
    m.at(0, 0) = 3.0;
    m.at(1, 1) = -1.0;
    m.at(2, 2) = 2.0;
    auto vals = jacobi_eigenvalues(m);
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_NEAR(vals[0], -1.0, 1e-10);
    EXPECT_NEAR(vals[1], 2.0, 1e-10);
    EXPECT_NEAR(vals[2], 3.0, 1e-10);
}

TEST(Jacobi, TwoByTwoKnownEigenpairs) {
    DenseMatrix m(2);
    m.at(0, 0) = 2.0;
    m.at(0, 1) = 1.0;
    m.at(1, 0) = 1.0;
    m.at(1, 1) = 2.0;
    auto eig = jacobi_eigen(m);
    EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
    // Eigenvector for 1 is (1,-1)/sqrt(2) up to sign.
    double ratio = eig.vectors.at(0, 0) / eig.vectors.at(1, 0);
    EXPECT_NEAR(ratio, -1.0, 1e-8);
}

TEST(Laplacian, CompleteGraphSpectrum) {
    // K_n combinatorial Laplacian: {0, n (n-1 times)}.
    auto g = wl::make_complete(6);
    auto vals = laplacian_spectrum(g, LaplacianKind::combinatorial);
    EXPECT_NEAR(vals[0], 0.0, 1e-9);
    for (std::size_t i = 1; i < vals.size(); ++i) EXPECT_NEAR(vals[i], 6.0, 1e-9);
}

TEST(Laplacian, StarSpectrum) {
    // Star with c center + n leaves: {0, 1 (n-1 times), n+1}.
    auto g = wl::make_star(5);
    auto vals = laplacian_spectrum(g, LaplacianKind::combinatorial);
    ASSERT_EQ(vals.size(), 6u);
    EXPECT_NEAR(vals[0], 0.0, 1e-9);
    for (std::size_t i = 1; i <= 4; ++i) EXPECT_NEAR(vals[i], 1.0, 1e-9);
    EXPECT_NEAR(vals[5], 6.0, 1e-9);
}

TEST(Laplacian, CycleSpectrum) {
    // C_n: eigenvalues 2 - 2cos(2 pi k / n).
    std::size_t n = 8;
    auto g = wl::make_cycle(n);
    auto vals = laplacian_spectrum(g, LaplacianKind::combinatorial);
    std::vector<double> expected;
    for (std::size_t k = 0; k < n; ++k)
        expected.push_back(2.0 - 2.0 * std::cos(2.0 * std::numbers::pi *
                                                static_cast<double>(k) / static_cast<double>(n)));
    std::sort(expected.begin(), expected.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(vals[i], expected[i], 1e-8);
}

TEST(Laplacian, PathSpectrum) {
    // P_n: eigenvalues 4 sin^2(pi k / (2n)).
    std::size_t n = 7;
    auto g = wl::make_path(n);
    auto vals = laplacian_spectrum(g, LaplacianKind::combinatorial);
    std::vector<double> expected;
    for (std::size_t k = 0; k < n; ++k) {
        double s = std::sin(std::numbers::pi * static_cast<double>(k) /
                            (2.0 * static_cast<double>(n)));
        expected.push_back(4.0 * s * s);
    }
    std::sort(expected.begin(), expected.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(vals[i], expected[i], 1e-8);
}

TEST(Laplacian, NormalizedSpectrumInZeroTwo) {
    auto g = wl::make_petersen();
    auto vals = laplacian_spectrum(g, LaplacianKind::normalized);
    for (double v : vals) {
        EXPECT_GE(v, -1e-9);
        EXPECT_LE(v, 2.0 + 1e-9);
    }
    EXPECT_NEAR(vals[0], 0.0, 1e-9);
}

TEST(Laplacian, NormalizedCompleteGraph) {
    // K_n normalized Laplacian: {0, n/(n-1) repeated}.
    auto g = wl::make_complete(5);
    auto vals = laplacian_spectrum(g, LaplacianKind::normalized);
    for (std::size_t i = 1; i < vals.size(); ++i) EXPECT_NEAR(vals[i], 5.0 / 4.0, 1e-9);
}

TEST(Tridiag, MatchesJacobiOnTridiagonal) {
    std::vector<double> diag{2.0, 3.0, 1.0, 4.0};
    std::vector<double> off{1.0, 0.5, -0.25};
    auto tvals = tridiag_eigenvalues(diag, off);

    DenseMatrix m(4);
    for (std::size_t i = 0; i < 4; ++i) m.at(i, i) = diag[i];
    for (std::size_t i = 0; i < 3; ++i) {
        m.at(i, i + 1) = off[i];
        m.at(i + 1, i) = off[i];
    }
    auto jvals = jacobi_eigenvalues(m);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(tvals[i], jvals[i], 1e-9);
}

TEST(Tridiag, EigenvectorsSatisfyDefinition) {
    std::vector<double> diag{1.0, 2.0, 3.0};
    std::vector<double> off{0.5, 0.5};
    auto eig = tridiag_eigen(diag, off);
    for (std::size_t k = 0; k < 3; ++k) {
        const auto& v = eig.vectors[k];
        // T v = lambda v componentwise.
        std::vector<double> tv(3, 0.0);
        tv[0] = diag[0] * v[0] + off[0] * v[1];
        tv[1] = off[0] * v[0] + diag[1] * v[1] + off[1] * v[2];
        tv[2] = off[1] * v[1] + diag[2] * v[2];
        for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(tv[i], eig.values[k] * v[i], 1e-9);
    }
}

TEST(Lambda2, Lambda2OfDisconnectedIsZero) {
    Graph g;
    g.add_node();
    g.add_node();
    g.add_node();
    g.add_black_edge(0, 1);
    EXPECT_DOUBLE_EQ(lambda2(g), 0.0);
}

TEST(Lambda2, CombinatorialPathFormula) {
    // lambda2(P_n) = 4 sin^2(pi/(2n)).
    std::size_t n = 10;
    auto g = wl::make_path(n);
    double expected = 4.0 * std::pow(std::sin(std::numbers::pi / (2.0 * n)), 2);
    EXPECT_NEAR(lambda2(g, LaplacianKind::combinatorial), expected, 1e-8);
}

TEST(Lambda2, LanczosAgreesWithDenseOnLargeGraph) {
    // 13x13 grid has 169 nodes: above dense_spectral_limit, so fiedler()
    // takes the Lanczos path; compare against the dense Jacobi answer.
    auto g = wl::make_grid(13, 13);
    ASSERT_GT(g.node_count(), dense_spectral_limit);
    auto dense_vals = laplacian_spectrum(g, LaplacianKind::normalized);
    double sparse = lambda2(g, LaplacianKind::normalized);
    EXPECT_NEAR(sparse, dense_vals[1], 1e-6);
}

TEST(Lambda2, HypercubeCombinatorial) {
    // Q_d combinatorial Laplacian eigenvalues are 2k; lambda2 = 2.
    auto g = wl::make_hypercube(4);
    EXPECT_NEAR(lambda2(g, LaplacianKind::combinatorial), 2.0, 1e-7);
}

TEST(Lanczos, SmallestEigenvalueOfExplicitOperator) {
    // Operator diag(1..6) with no deflation: smallest eigenvalue 1.
    std::size_t n = 6;
    LinearOperator apply = [n](const std::vector<double>& x, std::vector<double>& y) {
        for (std::size_t i = 0; i < n; ++i) y[i] = static_cast<double>(i + 1) * x[i];
    };
    xheal::util::Rng rng(3);
    auto res = lanczos_smallest(apply, n, {}, rng);
    EXPECT_NEAR(res.value, 1.0, 1e-8);
    // Ritz vector concentrates on coordinate 0.
    EXPECT_GT(std::abs(res.vector[0]), 0.99);
}

TEST(Fiedler, VectorSeparatesDumbbell) {
    // The Fiedler vector of a dumbbell splits the two cliques by sign.
    auto g = wl::make_dumbbell(6);
    auto fr = fiedler(g, LaplacianKind::normalized);
    ASSERT_EQ(fr.nodes.size(), 12u);
    // Nodes 0..5 are clique A, 6..11 clique B.
    double sign_a = fr.vector[0] >= 0 ? 1.0 : -1.0;
    for (std::size_t i = 0; i < 6; ++i) EXPECT_GT(sign_a * fr.vector[i], -1e-6);
    for (std::size_t i = 6; i < 12; ++i) EXPECT_LT(sign_a * fr.vector[i], 1e-6);
}

}  // namespace
