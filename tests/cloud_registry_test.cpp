#include <gtest/gtest.h>

#include "core/cloud_registry.hpp"
#include "util/expects.hpp"
#include "workload/generators.hpp"

namespace {

using namespace xheal::core;
using xheal::graph::ColorId;
using xheal::graph::Graph;
using xheal::graph::NodeId;
using xheal::util::ContractViolation;
using xheal::util::Rng;
namespace wl = xheal::workload;

std::vector<NodeId> ids(std::size_t n) {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(static_cast<NodeId>(i));
    return out;
}

struct RegistryTest : ::testing::Test {
    Graph g;
    CloudRegistry reg{2};  // kappa = 4
    Rng rng{77};

    void add_nodes(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) g.add_node();
    }
};

TEST_F(RegistryTest, CreateCloudClaimsEdges) {
    add_nodes(4);
    std::size_t added = 0;
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(4), rng, &added);
    EXPECT_NE(c, xheal::graph::invalid_color);
    // 4 <= kappa+1: clique, 6 edges claimed.
    EXPECT_EQ(added, 6u);
    EXPECT_EQ(g.edge_count(), 6u);
    EXPECT_TRUE(g.has_color_claim(0, 1, c));
    reg.verify(g);
}

TEST_F(RegistryTest, RecolorExistingBlackEdge) {
    add_nodes(3);
    g.add_black_edge(0, 1);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(3), rng);
    EXPECT_EQ(g.edge_count(), 3u);  // no duplicate created
    EXPECT_TRUE(g.claims(0, 1).black);
    EXPECT_TRUE(g.has_color_claim(0, 1, c));
    reg.verify(g);
}

TEST_F(RegistryTest, DestroyCloudRevertsSharedEdgesToBlack) {
    add_nodes(3);
    g.add_black_edge(0, 1);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(3), rng);
    std::size_t removed = 0;
    reg.destroy_cloud(g, c, &removed);
    EXPECT_EQ(removed, 3u);
    EXPECT_TRUE(g.has_edge(0, 1));  // black claim survives
    EXPECT_FALSE(g.has_edge(1, 2));
    EXPECT_FALSE(reg.exists(c));
    EXPECT_FALSE(reg.in_any_cloud(0));
    reg.verify(g);
}

TEST_F(RegistryTest, MembershipQueries) {
    add_nodes(6);
    ColorId p1 = reg.create_cloud(g, CloudKind::primary, {0, 1, 2}, rng);
    ColorId p2 = reg.create_cloud(g, CloudKind::primary, {2, 3, 4}, rng);
    EXPECT_EQ(reg.primary_clouds_of(2), (std::vector<ColorId>{p1, p2}));
    EXPECT_EQ(reg.primary_clouds_of(5), std::vector<ColorId>{});
    EXPECT_TRUE(reg.is_free(0));

    ColorId s = reg.create_cloud(g, CloudKind::secondary, {0, 3}, rng);
    EXPECT_EQ(reg.secondary_cloud_of(0), std::optional<ColorId>{s});
    EXPECT_FALSE(reg.is_free(0));
    EXPECT_TRUE(reg.is_free(2));
    EXPECT_EQ(reg.free_members_of(p1), (std::vector<NodeId>{1, 2}));
    reg.verify(g);
}

TEST_F(RegistryTest, SecondaryRequiresFreeMembers) {
    add_nodes(4);
    reg.create_cloud(g, CloudKind::secondary, {0, 1}, rng);
    EXPECT_THROW(reg.create_cloud(g, CloudKind::secondary, {1, 2}, rng),
                 ContractViolation);
}

TEST_F(RegistryTest, RemoveMemberKeepsCloudConsistent) {
    add_nodes(8);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(8), rng);
    // Node 3 leaves (healer-driven, still in graph).
    NodeId survivor = reg.remove_member(g, c, 3, rng, /*deleted_from_graph=*/false);
    EXPECT_EQ(survivor, xheal::graph::invalid_node);
    EXPECT_FALSE(reg.find(c)->has_member(3));
    EXPECT_EQ(reg.find(c)->size(), 7u);
    // Node 3 has no leftover claims.
    EXPECT_EQ(g.degree(3), 0u);
    reg.verify(g);
}

TEST_F(RegistryTest, RemoveMemberAfterGraphDeletion) {
    add_nodes(6);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(6), rng);
    g.remove_node(2);
    NodeId survivor = reg.remove_member(g, c, 2, rng, /*deleted_from_graph=*/true);
    EXPECT_EQ(survivor, xheal::graph::invalid_node);
    EXPECT_EQ(reg.find(c)->size(), 5u);
    reg.verify(g);
}

TEST_F(RegistryTest, DissolutionReturnsSurvivor) {
    add_nodes(2);
    ColorId c = reg.create_cloud(g, CloudKind::primary, {0, 1}, rng);
    NodeId survivor = reg.remove_member(g, c, 0, rng, /*deleted_from_graph=*/false);
    EXPECT_EQ(survivor, 1u);
    EXPECT_FALSE(reg.exists(c));
    EXPECT_FALSE(reg.in_any_cloud(1));
    EXPECT_FALSE(g.has_edge(0, 1));
    reg.verify(g);
}

TEST_F(RegistryTest, ThreeMemberCloudSurvivesOneLoss) {
    add_nodes(3);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(3), rng);
    NodeId survivor = reg.remove_member(g, c, 1, rng, false);
    EXPECT_EQ(survivor, xheal::graph::invalid_node);
    EXPECT_TRUE(reg.exists(c));
    EXPECT_TRUE(g.has_color_claim(0, 2, c));
    reg.verify(g);
}

TEST_F(RegistryTest, InsertMemberGrowsCloud) {
    add_nodes(5);
    ColorId c = reg.create_cloud(g, CloudKind::primary, {0, 1, 2}, rng);
    reg.insert_member(g, c, 4, rng);
    EXPECT_TRUE(reg.find(c)->has_member(4));
    EXPECT_EQ(reg.primary_clouds_of(4), std::vector<ColorId>{c});
    EXPECT_GE(g.degree(4), 1u);
    reg.verify(g);
}

TEST_F(RegistryTest, HalfLossTriggersRebuild) {
    add_nodes(20);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(20), rng);
    std::size_t before = reg.find(c)->rebuild_count;
    for (NodeId v = 0; v < 11; ++v) {
        reg.remove_member(g, c, v, rng, false);
    }
    EXPECT_GT(reg.find(c)->rebuild_count, before);
    reg.verify(g);
}

TEST_F(RegistryTest, LeadershipMaintainedAcrossRemovals) {
    add_nodes(10);
    ColorId c = reg.create_cloud(g, CloudKind::primary, ids(10), rng);
    for (NodeId v = 0; v < 8; ++v) {
        reg.remove_member(g, c, v, rng, false);
        const Cloud* cloud = reg.find(c);
        ASSERT_NE(cloud, nullptr);
        EXPECT_TRUE(cloud->has_member(cloud->leader));
        if (cloud->size() >= 2) {
            EXPECT_TRUE(cloud->has_member(cloud->vice_leader));
            EXPECT_NE(cloud->leader, cloud->vice_leader);
        }
    }
    reg.verify(g);
}

TEST_F(RegistryTest, OverlappingCloudsShareEdgeClaims) {
    add_nodes(4);
    ColorId a = reg.create_cloud(g, CloudKind::primary, {0, 1, 2}, rng);
    ColorId b = reg.create_cloud(g, CloudKind::primary, {1, 2, 3}, rng);
    // Edge (1,2) carries both claims and is one physical edge.
    EXPECT_TRUE(g.has_color_claim(1, 2, a));
    EXPECT_TRUE(g.has_color_claim(1, 2, b));
    reg.destroy_cloud(g, a);
    EXPECT_TRUE(g.has_edge(1, 2));  // still claimed by b
    EXPECT_FALSE(g.has_edge(0, 1));
    reg.verify(g);
}

TEST_F(RegistryTest, BridgeAssocPurgedOnRemoval) {
    add_nodes(6);
    ColorId p = reg.create_cloud(g, CloudKind::primary, {0, 1, 2}, rng);
    ColorId s = reg.create_cloud(g, CloudKind::secondary, {0, 3, 4}, rng);
    reg.find(s)->set_bridge_assoc(0, p);
    reg.remove_member(g, s, 0, rng, false);
    EXPECT_FALSE(reg.find(s)->has_bridge_assoc(0));
    EXPECT_TRUE(reg.is_free(0));
    reg.verify(g);
}

}  // namespace
