// Trace-forensics subsystem tests: executor canonicalization + oracle
// wiring, InvariantSuite findings, fuzzer determinism and bug-finding,
// ddmin shrinking, and the seeded end-to-end demo of the acceptance
// criteria — a fault-injected healer is caught by the fuzzer, shrunk to a
// tiny reproducer, and the emitted (.scn, .jsonl) pair replays
// byte-for-byte through the strict ScenarioRunner::replay path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/fault_injection.hpp"
#include "core/invariants.hpp"
#include "scenario/runner.hpp"
#include "trace_tools/executor.hpp"
#include "trace_tools/fuzz.hpp"
#include "trace_tools/shrink.hpp"

using namespace xheal;
using scenario::ScenarioRunner;
using scenario::ScenarioSpec;
using scenario::TraceEvent;
using trace_tools::ExecOptions;
using trace_tools::TraceExecutor;

namespace {

ScenarioSpec healthy_spec() {
    return ScenarioSpec::parse(R"(
name healthy-churn
seed 21
topology random-regular n=32 d=4
healer xheal d=2
phase churn steps=40 delete_fraction=0.5 deleter=random inserter=random-attach k=3 min_nodes=8
expect connected
)");
}

/// The intentionally-broken healer of the acceptance demo: every 4th
/// deletion is applied without repair (core::FaultInjectingHealer wrapping
/// the stateless cycle baseline).
ScenarioSpec faulty_spec() {
    return ScenarioSpec::parse(R"(
name faulty-demo
seed 11
topology cycle n=24
healer faulty inner=cycle drop_every=4
phase churn steps=40 delete_fraction=0.7 deleter=random inserter=random-attach k=2 min_nodes=4
expect connected
)");
}

}  // namespace

TEST(InvariantSuite, CleanSessionProducesNoFindings) {
    auto spec = healthy_spec();
    ScenarioRunner runner(spec);
    runner.run();
    core::InvariantSuite suite(runner.kappa());
    std::vector<core::InvariantFinding> findings;
    suite.check_structural(runner.session(), findings);
    EXPECT_TRUE(findings.empty()) << findings[0].oracle << ": " << findings[0].message;
}

TEST(InvariantSuite, HooksAndSpectralFloorFire) {
    auto spec = healthy_spec();
    ScenarioRunner runner(spec);
    runner.run();
    core::InvariantSuite suite(runner.kappa());
    suite.add_hook("always-fails",
                   [](const core::HealingSession&) { return std::string("boom"); });
    // An absurd floor: every finite lambda2 reading violates it.
    suite.set_lambda2_floor(10.0, [](const graph::Graph&) { return 0.5; });
    std::vector<core::InvariantFinding> findings;
    suite.check_structural(runner.session(), findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].oracle, "always-fails");
    EXPECT_EQ(findings[0].message, "boom");
    findings.clear();
    suite.check_spectral(runner.session(), findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].oracle, "lambda2-floor");
}

TEST(TraceExecutor, CanonicalStreamOfARecordedRunReplaysByteForByte) {
    auto spec = healthy_spec();
    auto recorded = ScenarioRunner(spec).run();

    TraceExecutor executor;
    auto exec = executor.execute(spec, recorded.events);
    EXPECT_FALSE(exec.failed());
    EXPECT_EQ(exec.skipped, 0u);
    ASSERT_EQ(exec.applied.size(), recorded.events.size());
    EXPECT_EQ(exec.trace_hash, recorded.trace_hash);
    EXPECT_EQ(exec.fingerprint, recorded.fingerprint);

    // The canonical trace goes through the *strict* replay path untouched.
    auto replayed = ScenarioRunner(spec).replay(exec.to_trace(spec));
    EXPECT_EQ(replayed.trace_hash, recorded.trace_hash);
    EXPECT_EQ(replayed.fingerprint, recorded.fingerprint);
}

TEST(TraceExecutor, SkipsInfeasibleEventsAndRenumbersSteps) {
    auto spec = healthy_spec();
    auto events = ScenarioRunner(spec).run().events;

    // Sabotage the stream: a delete of a node that never existed, a
    // duplicate of the first delete (dead on second application), and an
    // insert attached only to that dead node.
    std::vector<TraceEvent> mutated;
    TraceEvent ghost;
    ghost.kind = TraceEvent::Kind::remove;
    ghost.node = 9999;
    mutated.push_back(ghost);
    for (const auto& e : events) mutated.push_back(e);
    auto first_delete = std::find_if(events.begin(), events.end(), [](const auto& e) {
        return e.kind == TraceEvent::Kind::remove;
    });
    ASSERT_NE(first_delete, events.end());
    mutated.push_back(*first_delete);  // already dead
    TraceEvent orphan;
    orphan.kind = TraceEvent::Kind::insert;
    orphan.neighbors = {first_delete->node};
    mutated.push_back(orphan);

    TraceExecutor executor;
    auto exec = executor.execute(spec, mutated);
    EXPECT_EQ(exec.skipped, 3u);
    ASSERT_EQ(exec.applied.size(), events.size());
    for (std::size_t i = 0; i < exec.applied.size(); ++i)
        EXPECT_EQ(exec.applied[i].step, i);
    // Same feasible events in the same order => same final graph.
    auto clean = executor.execute(spec, events);
    EXPECT_EQ(exec.fingerprint, clean.fingerprint);
}

TEST(TraceExecutor, InsertNeighborsAreFilteredToTheLiveSet) {
    auto spec = ScenarioSpec::parse(R"(
name tiny
seed 2
topology cycle n=6
healer cycle
phase p steps=1 delete_fraction=1 deleter=random min_nodes=1
)");
    // Delete node 0, then insert referencing 0 (dead), 1 and 1 (dup), 42
    // (never existed).
    std::vector<TraceEvent> events;
    TraceEvent del;
    del.kind = TraceEvent::Kind::remove;
    del.node = 0;
    events.push_back(del);
    TraceEvent ins;
    ins.kind = TraceEvent::Kind::insert;
    ins.neighbors = {1, 0, 1, 42};
    events.push_back(ins);

    TraceExecutor executor;
    auto exec = executor.execute(spec, events);
    ASSERT_EQ(exec.applied.size(), 2u);
    EXPECT_EQ(exec.applied[1].neighbors, (std::vector<graph::NodeId>{1}));
    EXPECT_EQ(exec.applied[1].node, 6u);  // session-assigned id
    EXPECT_FALSE(exec.failed());
}

TEST(TraceExecutor, FaultyHealerViolationIsLocalizedAndCutsTheStream) {
    auto spec = faulty_spec();
    auto events = ScenarioRunner(spec).run().events;
    TraceExecutor executor;
    auto exec = executor.execute(spec, events);
    ASSERT_TRUE(exec.failed());
    EXPECT_EQ(exec.violations[0].oracle, "connectivity");
    // stop_on_violation: the canonical stream ends at the breaking event.
    EXPECT_EQ(exec.violations[0].event_index, exec.applied.size() - 1);
    EXPECT_LT(exec.applied.size(), events.size());
}

TEST(TraceExecutor, Lambda2FloorOracleFiresThroughTheProbeEngine) {
    // A 24-cycle's normalized-Laplacian lambda2 is ~2(1-cos(2*pi/24)) ≈
    // 0.068 — far below the floor; the probe engine must report it.
    auto spec = ScenarioSpec::parse(R"(
name lambda2-floor
seed 2
topology cycle n=24
healer cycle
phase p steps=1 delete_fraction=1 deleter=random min_nodes=1
)");
    ExecOptions options;
    options.lambda2_floor = 0.5;
    TraceExecutor executor(options);
    auto exec = executor.execute(spec, {});
    ASSERT_EQ(exec.violations.size(), 1u);
    EXPECT_EQ(exec.violations[0].oracle, "lambda2-floor");

    // A complete graph clears the same floor (lambda2 = n/(n-1) > 1).
    auto dense = ScenarioSpec::parse(R"(
name lambda2-ok
seed 2
topology complete n=12
healer cycle
phase p steps=1 delete_fraction=1 deleter=random min_nodes=1
)");
    EXPECT_FALSE(executor.execute(dense, {}).failed());
}

TEST(TraceFuzzer, SameSeedReproducesTheSameReport) {
    trace_tools::FuzzOptions options;
    options.candidates = 12;
    options.seed = 5;
    auto a = trace_tools::TraceFuzzer(faulty_spec(), options).run();
    auto b = trace_tools::TraceFuzzer(faulty_spec(), options).run();
    ASSERT_EQ(a.findings.size(), b.findings.size());
    ASSERT_FALSE(a.findings.empty());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        EXPECT_EQ(a.findings[i].candidate, b.findings[i].candidate);
        EXPECT_EQ(a.findings[i].mutator, b.findings[i].mutator);
        EXPECT_EQ(a.findings[i].exec.trace_hash, b.findings[i].exec.trace_hash);
    }
}

TEST(TraceFuzzer, HealthySpecSurvivesAFuzzRound) {
    trace_tools::FuzzOptions options;
    options.candidates = 30;
    options.seed = 17;
    auto report = trace_tools::TraceFuzzer(healthy_spec(), options).run();
    EXPECT_EQ(report.candidates_run, 30u);
    EXPECT_TRUE(report.clean())
        << report.findings[0].mutator << ": "
        << report.findings[0].exec.violations[0].oracle << " — "
        << report.findings[0].exec.violations[0].message;
}

TEST(TraceShrinker, NonFailingInputIsReportedNotShrunk) {
    auto spec = healthy_spec();
    auto events = ScenarioRunner(spec).run().events;
    auto result = trace_tools::shrink(spec, events);
    EXPECT_FALSE(result.input_failed);
}

// The acceptance-criteria demo, end to end: fuzz catches the intentionally
// broken healer, shrink reduces the stream to <= 25 events, and the emitted
// reproducer pair replays byte-for-byte through the strict path.
TEST(TraceForensicsDemo, FuzzCatchesShrinksAndReproducesTheInjectedBug) {
    auto spec = faulty_spec();

    // 1. Fuzz: the broken healer cannot survive mutated churn.
    trace_tools::FuzzOptions fuzz_options;
    fuzz_options.candidates = 20;
    fuzz_options.seed = 3;
    auto report = trace_tools::TraceFuzzer(spec, fuzz_options).run();
    ASSERT_FALSE(report.clean());
    const auto& finding = report.findings.front();

    // 2. Shrink: ddmin the finding to a minimal reproducer.
    auto shrunk = trace_tools::shrink(finding.spec, finding.events);
    ASSERT_TRUE(shrunk.input_failed);
    EXPECT_LE(shrunk.final_events(), 25u);
    EXPECT_LT(shrunk.final_events(), finding.events.size());
    ASSERT_TRUE(shrunk.exec.failed());
    EXPECT_EQ(shrunk.exec.violations[0].oracle, "connectivity");

    // 3. Reproducer: write the pair, read it back, strict-replay it.
    std::string base = testing::TempDir() + "xheal_forensics_demo";
    auto [scn_path, trace_path] =
        trace_tools::write_reproducer(base, finding.spec, shrunk);
    auto respec = ScenarioSpec::parse_file(scn_path);
    auto retrace = scenario::read_trace_file(trace_path);
    EXPECT_EQ(retrace.spec_hash, respec.content_hash());
    EXPECT_EQ(retrace.events.size(), shrunk.final_events());

    auto replayed = ScenarioRunner(respec).replay(retrace);
    EXPECT_EQ(replayed.trace_hash, retrace.trace_hash);
    EXPECT_EQ(replayed.fingerprint, retrace.fingerprint);

    // 4. The reproducer still demonstrates the violation when re-executed
    //    under the oracles (what `xheal_run shrink` re-confirms).
    TraceExecutor executor;
    auto reexec = executor.execute(respec, retrace.events);
    ASSERT_TRUE(reexec.failed());
    EXPECT_EQ(reexec.violations[0].oracle, "connectivity");
    EXPECT_EQ(reexec.trace_hash, retrace.trace_hash);

    std::remove(scn_path.c_str());
    std::remove(trace_path.c_str());
}
